"""Availability under chaos: the multi-tenant serving scenario's headline.

Two claims, asserted directionally:

(a) with admission control, backoff retries and storm defense on, the
    non-victim tenants stay inside their p99.9 SLO while the rack rides
    out a switch fail-over -- a few seconds of shed requests on the
    lowest-priority tenant, zero error-budget burn for the rest;

(b) with storm defense off, the full chaos phase (crash + loss + blade
    outage) reproduces a classic retry storm: rejected requests come
    back as retries, retries saturate the queues, every tenant blows its
    objective and burn rates spike by an order of magnitude.

Run through :func:`repro.service.run_service` (the same engine behind
``python -m repro serve`` and the ``kvs-service`` sweep preset); a final
check replays a service sweep point across worker processes to pin the
byte-identical-at-any-``--jobs`` contract.
"""

from common import print_table
from repro.service import ServiceConfig, rerun_without_defense, run_service


def run_matrix():
    data = {}
    for chaos in ("none", "crash", "full"):
        defended = run_service(ServiceConfig(chaos=chaos))
        undefended = rerun_without_defense(defended.config)
        data[chaos] = {"on": summarize(defended), "off": summarize(undefended)}
    return data


def summarize(sr):
    return {
        "met": all(r.met for r in sr.slo.results),
        "max_burn": max(t.slo_burn for t in sr.tenants),
        "retries": sum(t.retries for t in sr.tenants),
        "shed": sum(t.shed for t in sr.tenants),
        "unavailability": [t.unavailability_us for t in sr.tenants],
        "availability": [round(t.availability, 4) for t in sr.tenants],
        "p999": [t.p999_us for t in sr.tenants],
        "outages": list(sr.outage_windows),
        "storms": len(sr.storm_windows),
    }


def test_service_availability(benchmark):
    data = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print_table(
        "Serving under chaos: SLO compliance x storm defense",
        ["chaos", "defense", "all-SLOs-met", "max-burn", "retries", "shed"],
        [
            [chaos, defense, cell["met"], cell["max_burn"],
             cell["retries"], cell["shed"]]
            for chaos in ("none", "crash", "full")
            for defense, cell in data[chaos].items()
        ],
    )

    # (a) Fail-over with the full defense stack: every tenant meets its
    # p99.9 objective even though the switch actually went down.
    crash = data["crash"]["on"]
    assert crash["outages"], "switch crash never fired"
    assert crash["met"]
    assert crash["max_burn"] == 0.0
    # Priority order holds: tenant 0 is never the one shed.
    assert crash["unavailability"][0] == 0.0

    # (b) Full chaos without storm defense: the retry storm.
    storm = data["full"]["off"]
    calm = data["full"]["on"]
    assert calm["met"] and calm["max_burn"] == 0.0
    assert not storm["met"], "expected SLO violations without defense"
    assert storm["max_burn"] > 5.0
    assert storm["retries"] >= 2 * calm["retries"]
    # Graceful degradation is visible on the defended side: the
    # lowest-priority tenant absorbed the unavailability.
    assert calm["unavailability"][-1] > 0.0
    assert calm["unavailability"][0] == 0.0

    # Quiet baseline sanity: no chaos, everyone comfortably compliant.
    assert data["none"]["on"]["met"]


def test_service_sweep_jobs_invariant(benchmark):
    from repro.sweep import SweepSpec, run_sweep
    from repro.sweep.presets import preset_grids

    def both():
        spec = SweepSpec.from_grids(preset_grids("kvs-service-quick"), seeds=(1,))
        return (
            run_sweep(spec, jobs=1).to_json_text(),
            run_sweep(spec, jobs=2).to_json_text(),
        )

    serial, parallel = benchmark.pedantic(both, rounds=1, iterations=1)
    assert serial == parallel
