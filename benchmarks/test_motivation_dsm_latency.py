"""Section 2.2 / Section 3 motivation: why the metadata belongs in the
network.

The paper argues that compute-centric and memory-centric DSM adaptations
pay *multiple sequential remote round trips* per un-cached access (home
metadata hop, then data fetch), while MIND reaches its metadata in half a
round trip because the switch sits on the request path anyway.

This benchmark measures a single un-cached remote read on all three
designs under identical latency constants and checks MIND wins by roughly
the cost of the home round trip.
"""

import pytest

from common import print_table
from repro.api import MindSystem
from repro.baselines.dsm import DsmFlavor, TransparentDsm
from repro.core.mmu import MindConfig
from repro.sim.network import PAGE_SIZE


def measure_mind() -> float:
    system = MindSystem(
        num_compute_blades=2,
        num_memory_blades=2,
        cache_capacity_pages=64,
        mind_config=MindConfig(
            directory_capacity=256,
            memory_blade_capacity=1 << 26,
            enable_bounded_splitting=False,
        ),
    )
    proc = system.spawn_process()
    buf = proc.mmap(1 << 16)
    thread = proc.spawn_thread()
    t0 = system.now_us
    thread.touch(buf + PAGE_SIZE)  # remote home for a fair comparison
    return system.now_us - t0


def measure_dsm(flavor: DsmFlavor) -> float:
    dsm = TransparentDsm(flavor, num_compute=2, num_memory=2)
    dsm.mmap(1 << 16)
    # Pick a page whose home is the *other* node (the common case: with N
    # blades, (N-1)/N of pages are remote-homed).
    return dsm.measure_uncached_read(requester=0, va=PAGE_SIZE)


def run_figure():
    return {
        "MIND (in-network)": measure_mind(),
        "compute-centric DSM": measure_dsm(DsmFlavor.COMPUTE_CENTRIC),
        "memory-centric DSM": measure_dsm(DsmFlavor.MEMORY_CENTRIC),
    }


def test_motivation_dsm_latency(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    print_table(
        "Motivation (Sec 2.2): un-cached remote read latency",
        ["design", "latency (us)"],
        [[k, v] for k, v in data.items()],
    )
    mind = data["MIND (in-network)"]
    cc = data["compute-centric DSM"]
    mc = data["memory-centric DSM"]
    # MIND lands at its one-round-trip point.
    assert 7.0 < mind < 13.0
    # Both strawmen pay the extra sequential home round trip: at least
    # ~3 us slower (two extra wire traversals + handler), i.e. >25 %.
    assert cc > mind * 1.25
    assert mc > mind * 1.25
    # The two strawmen are equivalent in latency structure (the paper's
    # point: moving the home to memory blades does not help -- it only
    # adds a CPU requirement there).
    assert abs(cc - mc) < 0.15 * mind
