"""Fig. 7 (right): end-to-end latency break-down under full sharing.

Paper result: with sharing-ratio 1, read-only traffic sees S->S-like
latency regardless of blade count; lower read ratios pay two extra costs
on top of the base M-steal latency: synchronous TLB shootdowns at the
invalidated blades and queueing delay while invalidation requests wait to
be processed, both of which grow with blade count.
"""

import pytest

from common import print_table, runner_config
from repro.runner import run_system
from repro.workloads import UniformSharingWorkload

READ_RATIOS = [1.0, 0.5, 0.0]
BLADE_COUNTS = [2, 4, 8]
ACCESSES = 2_500


def run_figure():
    cfg = runner_config()
    data = {}
    for read_ratio in READ_RATIOS:
        for blades in BLADE_COUNTS:
            wl = UniformSharingWorkload(
                blades,
                accesses_per_thread=ACCESSES,
                read_ratio=read_ratio,
                sharing_ratio=1.0,
                shared_pages=1_000,
                burst=4,
            )
            result = run_system("mind", wl, blades, cfg)
            inv = result.stats.breakdown("invalidation")
            n_inv = max(1, result.stats.counter("invalidations_sent"))
            data[(read_ratio, blades)] = {
                "fault_us": result.stats.mean_latency("fault"),
                "inv_tlb_us": inv.get("tlb", 0.0) / n_inv,
                "inv_queue_us": inv.get("queue", 0.0) / n_inv,
            }
    return data


def test_fig7_latency_breakdown(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    for metric in ("fault_us", "inv_tlb_us", "inv_queue_us"):
        rows = [
            [f"R={r}"] + [data[(r, b)][metric] for b in BLADE_COUNTS]
            for r in READ_RATIOS
        ]
        print_table(
            f"Fig 7 (right): {metric} at sharing ratio 1",
            ["read-ratio"] + [f"{b}C" for b in BLADE_COUNTS],
            rows,
        )
    # Read-only latency is a single clean fetch, independent of blades.
    for b in BLADE_COUNTS:
        assert 7.0 < data[(1.0, b)]["fault_us"] < 13.0
        assert data[(1.0, b)]["inv_tlb_us"] == 0.0
    # Lower read ratios pay more end-to-end.
    for b in BLADE_COUNTS:
        assert data[(0.0, b)]["fault_us"] > 1.3 * data[(1.0, b)]["fault_us"]
    # Shootdown and queueing components are real and grow with blades.
    assert data[(0.0, 8)]["inv_tlb_us"] > 0.0
    assert (
        data[(0.0, 8)]["inv_queue_us"] >= data[(0.0, 2)]["inv_queue_us"]
    )
    # Write-heavy mean fault latency grows with blade count (queueing).
    assert data[(0.0, 8)]["fault_us"] >= data[(0.0, 2)]["fault_us"]
