"""Datacenter-scale topology sweep, CI-sized: the crossover table.

A scaled-down ``multirack-scale`` preset: the scenario driver across
rack counts at a fixed cross-rack sharing fraction.  The table charts
the headline multi-rack result -- intra-rack fault latency stays at the
paper's rack-scale ~10 us as racks are added, while cross-rack faults
pay the spine premium and the oversubscribed spine tier picks up load.
The full 1 -> 32 rack curve (2048 blades) is the offline
``python -m repro sweep --preset multirack-scale``.
"""

from common import print_table
from repro.multirack import MultiRackScenarioConfig, run_multirack
from repro.sim.stats import LatencySummary

RACKS = [1, 2, 4, 8]
CROSS_FRACTION = 0.2


def run_point(racks):
    return run_multirack(
        MultiRackScenarioConfig(
            racks=racks,
            compute_blades_per_rack=4,
            accesses_per_thread=150,
            cross_fraction=CROSS_FRACTION,
            pages_per_rack=128,
            cache_capacity_pages=256,
        )
    )


def run_figure():
    return {racks: run_point(racks) for racks in RACKS}


def test_multirack_scale(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = []
    for racks, result in data.items():
        stats = result.stats
        intra = LatencySummary.of(stats.latencies.get("fault:intra", ()))
        cross = LatencySummary.of(stats.latencies.get("fault:cross", ()))
        rows.append(
            [
                racks,
                result.num_blades,
                round(intra.p50, 2),
                round(cross.p50, 2) if cross.count else "-",
                round(cross.p50 / intra.p50, 2) if cross.count else "-",
                int(stats.gauges.get("tier:spine:bytes", 0.0)),
            ]
        )
    print_table(
        "Extension (Sec 8): fault-latency crossover vs rack count "
        f"(cross fraction {CROSS_FRACTION})",
        ["racks", "blades", "intra p50 (us)", "cross p50 (us)",
         "cross/intra", "spine bytes"],
        rows,
    )
    intra_p50 = {
        r: LatencySummary.of(data[r].stats.latencies["fault:intra"]).p50
        for r in RACKS
    }
    # Sharding keeps the home-rack path at rack-scale cost: adding racks
    # must not inflate intra-rack faults (allow noise, not structure).
    for racks in RACKS[1:]:
        assert intra_p50[racks] < 1.5 * intra_p50[1]
    # One rack has no spine; every multi-rack point pays it.
    assert data[1].stats.gauges.get("tier:spine:bytes", 0.0) == 0
    for racks in RACKS[1:]:
        stats = data[racks].stats
        cross = LatencySummary.of(stats.latencies["fault:cross"])
        assert cross.p50 > intra_p50[racks] + 5.0
        assert stats.gauges["tier:spine:bytes"] > 0
    # Spine load grows with the rack count (more cross-rack pairs).
    assert (
        data[8].stats.gauges["tier:spine:bytes"]
        > data[2].stats.gauges["tier:spine:bytes"]
    )
