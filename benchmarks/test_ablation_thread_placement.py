"""Ablation: sharing-aware thread placement (Section 8, "Thread
management").

The paper proposes co-locating threads with a high proportion of shared
accesses as an orthogonal optimization to in-network coherence.  This
ablation quantifies it on a team-structured workload: round-robin
placement scatters each team across blades and pays coherence for every
team interaction; affinity placement recovers the team structure from the
traces and keeps that traffic on-blade.
"""

import pytest

from common import print_table, runner_config
from repro.placement import (
    affinity_placement,
    cross_blade_share_fraction,
    round_robin_placement,
    run_with_placement,
)
from repro.workloads import TeamSharingWorkload

NUM_BLADES = 4
TEAM_SIZE = 4
NUM_THREADS = NUM_BLADES * TEAM_SIZE
ACCESSES = 3_000


def run_figure():
    cfg = runner_config(num_memory_blades=2)
    wl = TeamSharingWorkload(
        NUM_THREADS, accesses_per_thread=ACCESSES, team_size=TEAM_SIZE
    )
    bases = [0x100000 + (1 << 32) * i for i in range(len(wl.region_specs()))]
    traces = wl.all_traces(bases)
    placements = {
        "round-robin": round_robin_placement(NUM_THREADS, NUM_BLADES),
        "affinity": affinity_placement(traces, NUM_BLADES, TEAM_SIZE),
    }
    out = {}
    for name, placement in placements.items():
        result = run_with_placement(wl, NUM_BLADES, placement, cfg)
        out[name] = {
            "runtime_ms": result.runtime_us / 1000,
            "invalidations": result.stats.counter("invalidations_sent"),
            "flushed": result.stats.counter("flushed_pages"),
            "cross_share": cross_blade_share_fraction(traces, placement),
        }
    return out


def test_ablation_thread_placement(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    print_table(
        "Ablation (Sec 8): thread placement on a team-sharing workload",
        ["policy", "runtime (ms)", "invalidations", "flushed pages", "cross-blade share"],
        [
            [name, d["runtime_ms"], d["invalidations"], d["flushed"], d["cross_share"]]
            for name, d in data.items()
        ],
    )
    rr, aff = data["round-robin"], data["affinity"]
    # Affinity placement eliminates nearly all cross-blade sharing...
    assert aff["cross_share"] < 0.1 < rr["cross_share"]
    # ...and with it the bulk of the coherence traffic and runtime.
    assert aff["invalidations"] < rr["invalidations"] / 3
    assert aff["runtime_ms"] < rr["runtime_ms"] / 1.5
