"""Fig. 7 (left): end-to-end latency per MSI state transition.

Paper result: transitions without invalidations (I->S, S->S, S->M with its
parallel invalidation, I->M) complete in a single RDMA round (~9 us);
transitions stealing a Modified region (M->S, M->M) must invalidate and
flush the owner before fetching, costing two sequential rounds (~18 us).
Latency is essentially independent of the number of blades requesting.
"""

import pytest

from common import print_table, runner_config
from repro.api import MindSystem
from repro.core.mmu import MindConfig
from repro.sim.network import PAGE_SIZE

LABELS = ["I->S", "S->S", "I->M", "S->M", "M->S", "M->M"]
BLADE_COUNTS = [2, 4, 8]


def measure(num_blades):
    system = MindSystem(
        num_compute_blades=num_blades,
        num_memory_blades=2,
        cache_capacity_pages=1024,
        mind_config=MindConfig(
            directory_capacity=4096,
            memory_blade_capacity=1 << 28,
            enable_bounded_splitting=False,
        ),
    )
    proc = system.spawn_process()
    threads = [proc.spawn_thread() for _ in range(num_blades)]
    stride = 16 * PAGE_SIZE  # one region per exercise, no interference

    def exercise(page, sequence):
        """sequence: list of (thread index, write?) touches on one page."""
        for tid, write in sequence:
            threads[tid].touch(page, write=write)

    buf = proc.mmap(1 << 22)
    # I->S then S->S at every other blade.
    exercise(buf + 0 * stride, [(t, False) for t in range(num_blades)])
    # I->M.
    exercise(buf + 1 * stride, [(0, True)])
    # S->M: all blades read, then one writes (parallel invalidation).
    exercise(
        buf + 2 * stride,
        [(t, False) for t in range(num_blades)] + [(0, True)],
    )
    # M->S: one writes, another reads (owner flush, sequential).
    exercise(buf + 3 * stride, [(0, True), (1, False)])
    # M->M: ownership steal.
    exercise(buf + 4 * stride, [(0, True), (1, True)])
    return {
        label: system.stats.mean_latency(f"fault:{label}") for label in LABELS
    }


def run_figure():
    return {b: measure(b) for b in BLADE_COUNTS}


def test_fig7_state_transition_latency(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = [
        [f"{b}C"] + [data[b][label] for label in LABELS] for b in BLADE_COUNTS
    ]
    print_table(
        "Fig 7 (left): state transition latency (us)",
        ["blades"] + LABELS,
        rows,
    )
    for b in BLADE_COUNTS:
        lat = data[b]
        # Single-round transitions land near the 9 us point.
        for label in ("I->S", "S->S", "I->M", "S->M"):
            assert 7.0 < lat[label] < 13.0, (b, label, lat[label])
        # Owner-steal transitions cost roughly two rounds.
        for label in ("M->S", "M->M"):
            assert 1.6 < lat[label] / lat["I->S"] < 2.6, (b, label)
        # S->M's invalidation overlaps the fetch: far below the M-steals.
        assert lat["S->M"] < 0.75 * lat["M->S"]
