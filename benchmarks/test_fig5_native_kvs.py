"""Fig. 5 (right): Native-KVS scaling on MIND and FastSwap.

Paper results: on a single blade both systems scale near-linearly to 10
threads.  Beyond a blade (MIND only -- FastSwap cannot share state across
blades): YCSB-C (read-only) keeps scaling linearly since reads incur no
invalidations; YCSB-A (50 % writes) scales poorly, though better than
Memcached M_A thanks to the KVS's per-blade partitioning.
"""

from common import ACCESSES, perf, print_table, runner_config, make_ma
from repro.runner import run_system, scaling_sweep
from repro.workloads import NativeKvsWorkload

INTRA_THREADS = [1, 2, 4, 10]
INTER_BLADES = [1, 2, 4, 8]
TPB = 10


def kvs_a(num_threads):
    return NativeKvsWorkload(num_threads, accesses_per_thread=ACCESSES, read_ratio=0.5)


def kvs_c(num_threads):
    return NativeKvsWorkload(num_threads, accesses_per_thread=ACCESSES, read_ratio=1.0)


def run_figure():
    cfg = runner_config()
    out = {}
    # Intra-blade on MIND and FastSwap.
    for label, factory in (("A", kvs_a), ("C", kvs_c)):
        for system in ("mind", "fastswap"):
            base = None
            curve = {}
            for threads in INTRA_THREADS:
                r = run_system(system, factory(threads), 1, cfg)
                p = perf(r)
                base = base or p
                curve[threads] = p / base
            out[(label, system, "intra")] = curve
    # Inter-blade on MIND only.
    for label, factory in (("A", kvs_a), ("C", kvs_c)):
        results = scaling_sweep("mind", factory, INTER_BLADES, TPB, cfg)
        base = perf(results[1])
        out[(label, "mind", "inter")] = {b: perf(r) / base for b, r in results.items()}
    # Memcached comparison point for the partitioning claim.
    ma = scaling_sweep("mind", make_ma, [1, 8], TPB, cfg)
    out[("M_A", "mind", "inter")] = {b: perf(r) / perf(ma[1]) for b, r in ma.items()}
    return out


def test_fig5_native_kvs(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = []
    for label in ("A", "C"):
        for system in ("mind", "fastswap"):
            curve = data[(label, system, "intra")]
            rows.append([f"YCSB-{label}/{system}"] + [curve[t] for t in INTRA_THREADS])
    print_table(
        "Fig 5 (right): Native-KVS intra-blade (normalized to 1 thread)",
        ["config"] + [f"{t}t" for t in INTRA_THREADS],
        rows,
    )
    rows = [
        [f"YCSB-{label}/mind"]
        + [data[(label, "mind", "inter")][b] for b in INTER_BLADES]
        for label in ("A", "C")
    ]
    print_table(
        "Fig 5 (right): Native-KVS inter-blade on MIND (normalized to 1 blade)",
        ["config"] + [f"{b}b" for b in INTER_BLADES],
        rows,
    )

    # Intra-blade: both systems near-linear to 10 threads.
    for label in ("A", "C"):
        assert data[(label, "mind", "intra")][10] > 7.0
        assert data[(label, "fastswap", "intra")][10] > 7.0
    # Read-only YCSB-C scales across blades; YCSB-A does not scale well.
    c_curve = data[("C", "mind", "inter")]
    a_curve = data[("A", "mind", "inter")]
    assert c_curve[8] > 4.0
    assert a_curve[8] < 0.6 * c_curve[8]
    # Native-KVS YCSB-A beats Memcached M_A at 8 blades (partitioning).
    assert a_curve[8] > data[("M_A", "mind", "inter")][8]
