"""Fig. 6: invalidation overhead as a fraction of memory accesses.

Paper result: remote accesses, invalidation requests and flushed pages as
fractions of total accesses, for TF/GC/M_A/M_C at 1-8 blades.  The growth
in invalidations and flushes is much steeper for GC than TF, and M_A/M_C
trigger over 10x more invalidations and page flushes than either -- the
direct explanation of the Fig. 5 scaling order.
"""

from common import (
    BLADE_COUNTS,
    THREADS_PER_BLADE,
    WORKLOADS,
    print_table,
    runner_config,
)
from repro.runner import scaling_sweep

METRICS = ["remote_accesses", "invalidations_sent", "flushed_pages"]


def run_figure():
    cfg = runner_config()
    data = {}
    for wl_name, factory in WORKLOADS.items():
        results = scaling_sweep("mind", factory, BLADE_COUNTS, THREADS_PER_BLADE, cfg)
        data[wl_name] = {
            b: {m: r.fraction_of_accesses(m) for m in METRICS}
            for b, r in results.items()
        }
    return data


def test_fig6_invalidation_overhead(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    for metric in METRICS:
        rows = [
            [wl] + [data[wl][b][metric] for b in BLADE_COUNTS]
            for wl in WORKLOADS
        ]
        print_table(
            f"Fig 6: {metric} / total accesses",
            ["workload"] + [f"{b}b" for b in BLADE_COUNTS],
            rows,
        )

    inval = {w: data[w][8]["invalidations_sent"] for w in WORKLOADS}
    flush = {w: data[w][8]["flushed_pages"] for w in WORKLOADS}
    # M_A triggers the most invalidations, far more than TF; the paper's
    # ordering M_A > GC > TF holds (our GC is relatively more
    # invalidation-heavy than the paper's, see EXPERIMENTS.md).
    assert inval["M_A"] > inval["GC"] > inval["TF"]
    assert inval["M_A"] > 8 * inval["TF"]
    assert inval["M_C"] > 1.5 * inval["TF"]
    # GC's invalidation growth is much steeper than TF's.
    assert inval["GC"] > 3 * inval["TF"]
    assert flush["GC"] > flush["TF"]
    # Single blade: no cross-blade sharing, so no invalidations at all.
    for wl in WORKLOADS:
        assert data[wl][1]["invalidations_sent"] == 0.0
    # Invalidations grow with blade count for the contended workloads.
    for wl in ("GC", "M_A"):
        assert data[wl][8]["invalidations_sent"] >= data[wl][2]["invalidations_sent"]
