"""Latency under load: the open-loop hockey stick against the MIND path.

The scaling figures replay traces closed-loop, which measures capacity
but not what a service-level objective sees: a closed-loop client slows
its own offered load when the server queues.  Here requests arrive on a
deterministic open-loop Poisson schedule at increasing per-thread rates;
the end-to-end latency (queueing + trace-slice service) is recorded into
windowed telemetry.  The classic serving-system shape must appear: flat
latency at low utilization, then an explosive knee as the offered rate
approaches the per-thread service capacity.

Driven through :mod:`repro.sweep` with ``telemetry=true``, so every
point also carries a ``repro.telemetry/v1`` timeline document and SLO
compliance metrics.
"""

from common import print_table, run_grid

#: per-thread offered rates (requests per simulated us), low to overload.
RATES = [0.005, 0.01, 0.02, 0.04]

GRID = (
    "system=mind;workload=uniform;blades=2;threads_per_blade=2;"
    "read_ratio=0.5;sharing_ratio=0.5;accesses_per_thread=2000;"
    "shared_pages=400;private_pages_per_thread=256;burst=4;"
    "cache_capacity_pages=3072;num_memory_blades=2;epoch_us=2000;"
    "telemetry=true;arrival_process=poisson;request_size=8;"
    "arrival_rate_per_thread=" + ",".join(str(r) for r in RATES)
)


def run_figure():
    results = run_grid(GRID)
    data = {}
    for rate in RATES:
        record = results.one(arrival_rate_per_thread=rate)
        data[rate] = {
            "queue_mean": record.metrics["latency:openloop:queue:mean"],
            "p50": record.metrics["latency:openloop:latency:p50"],
            "p99": record.metrics["latency:openloop:latency:p99"],
            "p999": record.metrics["latency:openloop:latency:p999"],
            "service_mean": record.metrics["latency:openloop:service:mean"],
            "compliance": record.metrics["slo:openloop-p99:compliance"],
            "windows": record.metrics["telemetry:windows"],
            "timeline": record.timeline,
        }
    return data


def test_latency_under_load(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    print_table(
        "Open-loop latency under load (per-thread Poisson arrivals)",
        ["rate/us", "queue-mean", "p50", "p99", "p99.9", "slo-p99"],
        [
            [
                f"{rate:g}",
                data[rate]["queue_mean"],
                data[rate]["p50"],
                data[rate]["p99"],
                data[rate]["p999"],
                data[rate]["compliance"],
            ]
            for rate in RATES
        ],
    )
    low, high = data[RATES[0]], data[RATES[-1]]
    # Low utilization: barely any queueing -- end-to-end tracks service.
    assert low["queue_mean"] < 0.5 * low["service_mean"]
    # The knee: queueing dominates at the highest offered rate.
    assert high["queue_mean"] > 5 * low["queue_mean"]
    assert high["p99"] > 2 * low["p99"]
    # Tail ordering holds at every point.
    for rate in RATES:
        point = data[rate]
        assert point["p50"] <= point["p99"] <= point["p999"]
    # Every point carries a windowed timeline document.
    for rate in RATES:
        assert data[rate]["timeline"]["schema"] == "repro.telemetry/v1"
        assert data[rate]["windows"] >= 1
