"""Fig. 9 (left): directory storage vs false-invalidation tradeoff.

Paper result: for TF and GC, tracking small fixed-size regions (16 kB)
minimizes false invalidations but costs many directory entries; large
fixed regions (2 MB) invert the tradeoff.  Bounded Splitting's adaptive
sizing lands near the small-region false-invalidation count while using
far fewer entries than the 16 kB configuration requires.
"""

import pytest

from common import THREADS_PER_BLADE, make_gc, make_tf, print_table, runner_config
from repro.core.bounded_splitting import BoundedSplittingConfig
from repro.core.mmu import MindConfig
from repro.runner import run_system

NUM_BLADES = 4
ACCESSES = 2_500
KB = 1024
FIXED_SIZES = [16 * KB, 128 * KB, 2048 * KB]


def run_point(factory, region_size=None, adaptive=False):
    """One configuration: fixed region size, or adaptive Bounded Splitting."""
    if adaptive:
        mind = MindConfig(
            initial_region_size=16 * KB,
            epoch_us=1_000.0,
            enable_bounded_splitting=True,
        )
    else:
        mind = MindConfig(
            initial_region_size=region_size,
            max_region_size=max(region_size, 2048 * KB),
            enable_bounded_splitting=False,
        )
    cfg = runner_config(mind=mind)
    wl = factory(NUM_BLADES * THREADS_PER_BLADE, ACCESSES)
    result = run_system("mind", wl, NUM_BLADES, cfg)
    return {
        "false_invalidations": result.stats.counter("false_invalidations"),
        "directory_peak": result.stats.counter("directory_peak"),
    }


def run_figure():
    data = {}
    for wl_name, factory in (("TF", make_tf), ("GC", make_gc)):
        for size in FIXED_SIZES:
            data[(wl_name, f"fixed-{size // KB}KB")] = run_point(
                factory, region_size=size
            )
        data[(wl_name, "bounded-splitting")] = run_point(factory, adaptive=True)
    return data


def test_fig9_storage_perf_tradeoff(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    for wl_name in ("TF", "GC"):
        rows = [
            [
                cfg,
                data[(wl_name, cfg)]["false_invalidations"],
                data[(wl_name, cfg)]["directory_peak"],
            ]
            for cfg in [f"fixed-{s // KB}KB" for s in FIXED_SIZES]
            + ["bounded-splitting"]
        ]
        print_table(
            f"Fig 9 (left): {wl_name} false invalidations vs directory entries",
            ["config", "false invals", "peak entries"],
            rows,
        )
    for wl_name in ("TF", "GC"):
        small = data[(wl_name, "fixed-16KB")]["false_invalidations"]
        large = data[(wl_name, "fixed-2048KB")]["false_invalidations"]
        adaptive = data[(wl_name, "bounded-splitting")]["false_invalidations"]
        small_entries = data[(wl_name, "fixed-16KB")]["directory_peak"]
        large_entries = data[(wl_name, "fixed-2048KB")]["directory_peak"]
        # The fixed-size tradeoff: big regions -> more false invalidations,
        # fewer entries.
        assert large > small, wl_name
        assert large_entries < small_entries, wl_name
        # Adaptive sizing beats the large fixed configuration on false
        # invalidations.
        assert adaptive < large, wl_name
