"""Fig. 5 (center): performance scaling across compute blades.

Paper results, 10 threads per blade, 1-8 blades:

- **TF** scales well under MIND despite TSO (~1.67x per doubling).
- **GC** improves from 1 to 2 blades, then degrades: random contentious
  shared writes trigger M-state transitions and invalidations.
- **M_A / M_C** do not scale beyond one blade: many sharers + shared
  writes saturate both the coherence protocol and the switch directory.
- **MIND-PSO / MIND-PSO+** (simulated weaker consistency / infinite
  directory) recover part of the loss; **GAM** keeps scaling because its
  slow software path makes extra remote traffic relatively cheap.

Driven through :mod:`repro.sweep` (the ``fig5-inter`` preset): the
4 systems x 4 workloads x 4 blade counts product is one declarative grid,
fanned out across worker processes when ``REPRO_SWEEP_JOBS`` > 1.
"""

from common import (
    BLADE_COUNTS,
    WORKLOAD_KEYS,
    WORKLOADS,
    point_perf,
    print_table,
    run_grid,
)
from repro.sweep.presets import PRESETS

SYSTEMS = ["mind", "mind-pso", "mind-pso+", "gam"]


def run_figure():
    results = run_grid(*PRESETS["fig5-inter"])
    data = {}
    for wl_name, wl_key in WORKLOAD_KEYS.items():
        mind_base = point_perf(
            results.one(system="mind", workload=wl_key, num_blades=1)
        )
        for system in SYSTEMS:
            data[(wl_name, system)] = {
                b: point_perf(
                    results.one(system=system, workload=wl_key, num_blades=b)
                )
                / mind_base
                for b in BLADE_COUNTS
            }
    return data


def test_fig5_inter_blade_scaling(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    for wl_name in WORKLOADS:
        rows = [
            [system] + [data[(wl_name, system)][b] for b in BLADE_COUNTS]
            for system in SYSTEMS
        ]
        print_table(
            f"Fig 5 (center): {wl_name} inter-blade scaling "
            "(normalized to MIND @ 1 blade)",
            ["system"] + [f"{b}b" for b in BLADE_COUNTS],
            rows,
        )

    mind = {w: data[(w, "mind")] for w in WORKLOADS}
    # TF keeps scaling with blades (the paper's best case) and is the best
    # scaler of the four workloads.
    assert mind["TF"][8] > 3.0
    assert mind["TF"][8] > mind["TF"][2] > mind["TF"][1] * 1.4
    assert mind["TF"][8] == max(mind[w][8] for w in WORKLOADS)
    # GC stops scaling early: barely above 1x at 2 blades and far below TF
    # at 8.  (Paper shows a peak at 2 then decline; our reproduction
    # plateaus instead -- see EXPERIMENTS.md -- but the headline "GC does
    # not scale like TF" holds.)
    assert mind["GC"][2] < 1.35
    assert mind["GC"][8] < 0.60 * mind["TF"][8]
    assert mind["GC"][8] < 2.4
    # M_A does not scale beyond one blade.
    assert mind["M_A"][8] < 1.6
    assert mind["M_A"][8] == min(mind[w][8] for w in WORKLOADS)
    # M_C improves from 4 to 8 blades (invalidations grow little), but
    # stays below TF.
    assert mind["M_C"][8] > mind["M_C"][4]
    assert mind["M_C"][8] < 0.85 * mind["TF"][8]
    # The simulated relaxations help the contended workloads.
    assert data[("M_A", "mind-pso")][8] >= mind["M_A"][8] * 0.95
    assert data[("M_A", "mind-pso+")][8] >= data[("M_A", "mind-pso")][8] * 0.95
    assert data[("M_C", "mind-pso")][8] > mind["M_C"][8] * 0.95
    # GAM scales on write-heavy workloads but from a much lower base: at a
    # single blade GAM is several times slower than MIND.
    assert data[("M_A", "gam")][1] < 0.6
    assert data[("TF", "gam")][1] < 0.6
    assert data[("TF", "gam")][8] < mind["TF"][8]
