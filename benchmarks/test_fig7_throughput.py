"""Fig. 7 (center): memory throughput vs read-write and sharing ratios.

Paper result: 8 blades x 1 thread, uniform random over a large working
set.  Read-only or fully-private traffic stays cached and throughput is
high; increasing both the write proportion and the sharing ratio triggers
M->S / S->M transitions with invalidations and drops throughput by ~10x
at sharing-ratio 1, read-ratio 0.

Driven through :mod:`repro.sweep` (the ``fig7-throughput`` preset): the
read-ratio x sharing-ratio product is a single declarative grid.
"""

from common import print_table, run_grid
from repro.sweep.presets import PRESETS

READ_RATIOS = [1.0, 0.5, 0.0]
SHARING_RATIOS = [0.0, 0.5, 1.0]


def run_figure():
    results = run_grid(*PRESETS["fig7-throughput"])
    data = {}
    for read_ratio in READ_RATIOS:
        for sharing_ratio in SHARING_RATIOS:
            record = results.one(
                read_ratio=read_ratio, sharing_ratio=sharing_ratio
            )
            data[(read_ratio, sharing_ratio)] = record.metrics["throughput_iops"]
    return data


def test_fig7_throughput(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = [
        [f"R={r}"] + [data[(r, s)] / 1e6 for s in SHARING_RATIOS]
        for r in READ_RATIOS
    ]
    print_table(
        "Fig 7 (center): throughput (M IOPS) vs sharing ratio",
        ["read-ratio"] + [f"share={s}" for s in SHARING_RATIOS],
        rows,
    )
    # Read-only: high throughput at every sharing ratio (the paper's own
    # read-only spread is ~2x, "1-2 x 10^6 IOPS").
    for s in SHARING_RATIOS:
        assert data[(1.0, s)] > 0.45 * data[(1.0, 0.0)]
    # No sharing: writes are private, throughput stays high.
    assert data[(0.0, 0.0)] > 0.5 * data[(1.0, 0.0)]
    # Write-heavy + fully shared collapses by ~an order of magnitude.
    assert data[(0.0, 1.0)] < 0.2 * data[(1.0, 0.0)]
    # Monotone in both knobs (more writes or more sharing never helps).
    assert data[(0.0, 1.0)] <= data[(0.5, 1.0)] <= data[(1.0, 1.0)] * 1.05
    assert data[(0.0, 1.0)] <= data[(0.0, 0.5)] <= data[(0.0, 0.0)] * 1.05
