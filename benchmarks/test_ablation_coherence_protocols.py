"""Ablation: MSI vs MESI vs MOESI in the switch (Section 8, "Other
coherence protocols").

The paper argues richer protocols are realizable (the STT grows by only
tens of entries) and could reduce broadcasts and write-backs to
disaggregated memory.  With MOESI implemented, this ablation measures it:

- **MESI** removes the S->M upgrade invalidation for private
  read-then-write patterns (a sole reader gets an exclusive copy).
- **MOESI** additionally serves read-steals cache-to-cache (M->O),
  eliminating the owner flush: fewer pages written back to memory blades
  and a faster steal path.
"""

import pytest

from common import ACCESSES, make_gc, print_table, runner_config
from repro.core.stt import build_mesi_stt, build_moesi_stt, build_msi_stt, stt_size
from repro.runner import run_system
from repro.workloads import UniformSharingWorkload

NUM_BLADES = 4
TPB = 4
PROTOCOLS = ["mind", "mind-mesi", "mind-moesi"]


def read_steal_workload(num_threads):
    """Write-then-widely-read: the pattern MOESI's O state accelerates."""
    return UniformSharingWorkload(
        num_threads,
        accesses_per_thread=ACCESSES,
        read_ratio=0.8,
        sharing_ratio=0.8,
        shared_pages=600,
        private_pages_per_thread=256,
        burst=4,
    )


def run_figure():
    cfg = runner_config(num_memory_blades=2)
    data = {}
    for wl_name, factory in (
        ("read-steal", read_steal_workload),
        ("GC", make_gc),
    ):
        for system in PROTOCOLS:
            result = run_system(system, factory(NUM_BLADES * TPB), NUM_BLADES, cfg)
            data[(wl_name, system)] = {
                "runtime_ms": result.runtime_us / 1000,
                "written_back": result.stats.counter("pages_written_back"),
                "cache_to_cache": result.stats.counter("cache_to_cache_transfers"),
                "mean_fault_us": result.stats.mean_latency("fault"),
            }
    return data


def test_ablation_coherence_protocols(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    for wl_name in ("read-steal", "GC"):
        print_table(
            f"Ablation (Sec 8): protocol comparison on {wl_name}",
            ["protocol", "runtime (ms)", "pages written back", "c2c transfers", "mean fault (us)"],
            [
                [
                    system,
                    data[(wl_name, system)]["runtime_ms"],
                    data[(wl_name, system)]["written_back"],
                    data[(wl_name, system)]["cache_to_cache"],
                    data[(wl_name, system)]["mean_fault_us"],
                ]
                for system in PROTOCOLS
            ],
        )
    # STT growth is tens of entries, as the paper predicts.
    assert stt_size(build_msi_stt()) <= stt_size(build_mesi_stt())
    assert stt_size(build_moesi_stt()) < 40

    for wl_name in ("read-steal", "GC"):
        msi = data[(wl_name, "mind")]
        moesi = data[(wl_name, "mind-moesi")]
        # MOESI replaces owner flushes with cache-to-cache transfers:
        # strictly fewer pages pushed back to memory blades -- exactly the
        # "reducing write-backs to disaggregated memory" of Section 8.
        assert moesi["cache_to_cache"] > 0
        assert moesi["written_back"] < msi["written_back"], wl_name
        # End-to-end it stays roughly neutral: the saved flushes are
        # balanced by O->M steals (two-phase where MSI's S->M after a
        # read-steal was one-phase) -- an honest protocol tradeoff.
        assert moesi["runtime_ms"] <= msi["runtime_ms"] * 1.15, wl_name
