"""Extension: scaling beyond a rack (Section 8).

The multi-rack fabric partitions the global VA space across racks, each
rack's switch remaining the home for its slice.  This benchmark maps the
resulting NUMA-like cost structure: intra- vs cross-rack fault latency,
and throughput of a sharing workload as its cross-rack fraction grows --
the quantitative argument for the paper's closing remark that rack-to-
datacenter scaling mirrors the single-node-to-NUMA shift.
"""

import pytest

from common import print_table
from repro.multirack import MultiRackConfig, MultiRackFabric
from repro.sim.network import PAGE_SIZE

CROSS_FRACTIONS = [0.0, 0.25, 0.5, 1.0]
OPS_PER_BLADE = 300


def build_fabric():
    return MultiRackFabric(
        MultiRackConfig(
            num_racks=2, compute_blades_per_rack=2, cache_capacity_pages=512
        )
    )


def measure_latencies():
    fabric = build_fabric()
    pdid = fabric.spawn_process()
    local = fabric.mmap(pdid, 1 << 16, rack=0)
    remote = fabric.mmap(pdid, 1 << 16, rack=1)
    blade = fabric.compute_blades[0]
    t0 = fabric.engine.now
    fabric.run_process(blade.ensure_page(pdid, local, False))
    intra = fabric.engine.now - t0
    t0 = fabric.engine.now
    fabric.run_process(blade.ensure_page(pdid, remote, False))
    cross = fabric.engine.now - t0
    # Cross-rack write steal: owner in the other rack.
    other = fabric.compute_blades[2]
    fabric.run_process(other.ensure_page(pdid, remote + PAGE_SIZE, True))
    t0 = fabric.engine.now
    fabric.run_process(blade.ensure_page(pdid, remote + PAGE_SIZE, True))
    cross_steal = fabric.engine.now - t0
    return {"intra": intra, "cross": cross, "cross_steal": cross_steal}


def measure_throughput(cross_fraction):
    """Each blade sweeps pages, a fraction of them homed in the other rack."""
    import numpy as np

    fabric = build_fabric()
    pdid = fabric.spawn_process()
    bufs = {r: fabric.mmap(pdid, 1 << 21, rack=r) for r in (0, 1)}
    rng = np.random.default_rng(3)
    gens = []
    for blade in fabric.compute_blades:
        home = blade.home_rack
        away = 1 - home
        accesses = []
        for i in range(OPS_PER_BLADE):
            rack = away if rng.random() < cross_fraction else home
            page = int(rng.integers(0, 256))
            accesses.append(
                (bufs[rack] + page * PAGE_SIZE, bool(rng.random() < 0.3))
            )
        gens.append(blade.run_thread(pdid, accesses))
    t0 = fabric.engine.now
    fabric.run_all(gens)
    elapsed = fabric.engine.now - t0
    total = OPS_PER_BLADE * len(fabric.compute_blades)
    return total / elapsed  # accesses per us


def run_figure():
    data = {"latency": measure_latencies()}
    for frac in CROSS_FRACTIONS:
        data[("throughput", frac)] = measure_throughput(frac)
    return data


def test_extension_multirack(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    lat = data["latency"]
    print_table(
        "Extension (Sec 8): multi-rack fault latency (us)",
        ["intra-rack", "cross-rack", "cross-rack write steal"],
        [[lat["intra"], lat["cross"], lat["cross_steal"]]],
    )
    print_table(
        "Extension (Sec 8): throughput vs cross-rack access fraction",
        ["cross fraction", "accesses/us"],
        [[f, data[("throughput", f)]] for f in CROSS_FRACTIONS],
    )
    # The NUMA-like structure: one spine round trip per cross-rack fault.
    assert lat["cross"] > lat["intra"] + 5.0
    assert lat["cross_steal"] > lat["cross"]
    # Locality matters: all-local beats all-remote sharing clearly.
    assert data[("throughput", 0.0)] > 1.3 * data[("throughput", 1.0)]
    # Monotone degradation as sharing crosses the spine more often.
    assert data[("throughput", 0.25)] >= data[("throughput", 1.0)]
