"""Fig. 5 (left): performance scaling on a single compute blade.

Paper result: MIND and FastSwap scale almost linearly with thread count up
to 10 threads (hardware-MMU page-fault path); GAM scales linearly only to
~4 threads and sub-linearly after, because its user-level library checks
permissions on every access under a lock.

Driven through :mod:`repro.sweep`: the grid below is the ``fig5-intra``
preset, so ``python -m repro sweep --preset fig5-intra`` reproduces the
same points from the command line.
"""

from common import point_perf, print_table, run_grid
from repro.sweep.presets import PRESETS

THREAD_COUNTS = [1, 2, 4, 10]
SYSTEMS = ["mind", "gam", "fastswap"]


def run_figure():
    results = run_grid(*PRESETS["fig5-intra"])
    curves = {}
    for system in SYSTEMS:
        base = point_perf(results.one(system=system, threads_per_blade=1))
        curves[system] = {
            t: point_perf(results.one(system=system, threads_per_blade=t)) / base
            for t in THREAD_COUNTS
        }
    return curves


def test_fig5_intra_blade_scaling(benchmark):
    curves = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = [
        [system] + [curves[system][t] for t in THREAD_COUNTS]
        for system in SYSTEMS
    ]
    print_table(
        "Fig 5 (left): TF intra-blade scaling (normalized to 1 thread)",
        ["system"] + [f"{t}t" for t in THREAD_COUNTS],
        rows,
    )
    # MIND and FastSwap near-linear at 10 threads; GAM clearly sub-linear.
    assert curves["mind"][10] > 8.0
    assert curves["fastswap"][10] > 8.0
    assert curves["gam"][10] < 7.0
    # GAM is fine at low thread counts (the knee is past 2).
    assert curves["gam"][2] > 1.7
    # MIND ~linear at every point.
    for t in THREAD_COUNTS:
        assert curves["mind"][t] > 0.85 * t
