"""Fig. 5 (left): performance scaling on a single compute blade.

Paper result: MIND and FastSwap scale almost linearly with thread count up
to 10 threads (hardware-MMU page-fault path); GAM scales linearly only to
~4 threads and sub-linearly after, because its user-level library checks
permissions on every access under a lock.
"""

from common import make_tf, perf, print_table, runner_config
from repro.runner import run_system

THREAD_COUNTS = [1, 2, 4, 10]
SYSTEMS = ["mind", "gam", "fastswap"]


def run_figure():
    cfg = runner_config(num_memory_blades=2)
    curves = {}
    for system in SYSTEMS:
        base = None
        curve = {}
        for threads in THREAD_COUNTS:
            result = run_system(system, make_tf(threads), 1, cfg)
            p = perf(result)
            if base is None:
                base = p
            curve[threads] = p / base
        curves[system] = curve
    return curves


def test_fig5_intra_blade_scaling(benchmark):
    curves = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = [
        [system] + [curves[system][t] for t in THREAD_COUNTS]
        for system in SYSTEMS
    ]
    print_table(
        "Fig 5 (left): TF intra-blade scaling (normalized to 1 thread)",
        ["system"] + [f"{t}t" for t in THREAD_COUNTS],
        rows,
    )
    # MIND and FastSwap near-linear at 10 threads; GAM clearly sub-linear.
    assert curves["mind"][10] > 8.0
    assert curves["fastswap"][10] > 8.0
    assert curves["gam"][10] < 7.0
    # GAM is fine at low thread counts (the knee is past 2).
    assert curves["gam"][2] > 1.7
    # MIND ~linear at every point.
    for t in THREAD_COUNTS:
        assert curves["mind"][t] > 0.85 * t
