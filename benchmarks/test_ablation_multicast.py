"""Ablation: in-network multicast invalidation vs CPU unicast (P3).

Design principle P3 says MIND exploits *network-centric hardware
primitives*: invalidations ride the switch's native multicast (one
data-plane pass, sharer list embedded, non-sharers pruned at egress).
This ablation removes the primitive: the switch CPU generates one unicast
invalidation per sharer, serially — the way a software or
controller-based design would fan out — and measures what the primitive
is worth as sharer count grows.
"""

import pytest

from common import print_table
from repro.api import MindSystem
from repro.core.mmu import MindConfig

SHARER_COUNTS = [2, 4, 8, 16]


def measure_upgrade_latency(mode: str, num_blades: int) -> float:
    """Mean S->M latency with ``num_blades - 1`` sharers to invalidate."""
    system = MindSystem(
        num_compute_blades=num_blades,
        num_memory_blades=1,
        cache_capacity_pages=128,
        mind_config=MindConfig(
            invalidation_mode=mode,
            directory_capacity=512,
            memory_blade_capacity=1 << 26,
            enable_bounded_splitting=False,
        ),
    )
    proc = system.spawn_process()
    buf = proc.mmap(1 << 16)
    threads = [proc.spawn_thread() for _ in range(num_blades)]
    for t in threads:
        t.touch(buf)
    threads[0].touch(buf, write=True)
    return system.stats.mean_latency("fault:S->M")


def run_figure():
    return {
        (mode, n): measure_upgrade_latency(mode, n)
        for mode in ("multicast", "unicast-cpu")
        for n in SHARER_COUNTS
    }


def test_ablation_multicast(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = [
        [mode] + [data[(mode, n)] for n in SHARER_COUNTS]
        for mode in ("multicast", "unicast-cpu")
    ]
    print_table(
        "Ablation (P3): S->M upgrade latency (us) vs blades sharing the page",
        ["mode"] + [f"{n}C" for n in SHARER_COUNTS],
        rows,
    )
    # Multicast latency is flat in sharer count (parallel fan-out).
    assert data[("multicast", 16)] < 1.3 * data[("multicast", 2)]
    # Unicast grows roughly linearly with sharers and is far worse at 16.
    assert data[("unicast-cpu", 16)] > 2 * data[("unicast-cpu", 4)]
    assert data[("unicast-cpu", 16)] > 5 * data[("multicast", 16)]
    # Even at 2 blades the CPU hop already costs something.
    assert data[("unicast-cpu", 2)] > data[("multicast", 2)]
