"""Fig. 8 (center): match-action rules vs dataset size.

Paper result: MIND's translation (one prefix per memory blade) plus
protection (one range per vma) rules stay essentially constant as the
dataset grows, while page-table-style approaches grow linearly with the
dataset -- even with 2 MB or 1 GB huge pages -- against a ~45 k rule
budget on the switch.
"""

import pytest

from common import print_table
from repro.core.mmu import InNetworkMmu, MindConfig
from repro.blades.memory import MemoryBlade
from repro.sim.engine import Engine
from repro.sim.network import Network, PAGE_SIZE

GB = 1 << 30
DATASET_SIZES = [1 * GB, 2 * GB, 4 * GB, 8 * GB, 16 * GB]
NUM_MEMORY_BLADES = 8
#: vma size used to build the heap (glibc-style large pow2 arenas).
CHUNK = 64 * (1 << 20)
RULE_BUDGET = 45_000


def page_based_entries(dataset: int, page: int) -> int:
    return -(-dataset // page)


def build_mind(dataset: int) -> dict:
    engine = Engine()
    network = Network(engine)
    mmu = InNetworkMmu(
        engine,
        network,
        MindConfig(
            memory_blade_capacity=1 << 34,
            enable_bounded_splitting=False,
        ),
    )
    for i in range(NUM_MEMORY_BLADES):
        mmu.add_memory_blade(
            MemoryBlade(i, network, 1 << 34, store_data=False)
        )
    task = mmu.controller.sys_exec("heap")
    allocated = 0
    while allocated < dataset:
        mmu.controller.sys_mmap(task.pid, CHUNK)
        allocated += CHUNK
    return mmu.match_action_rules()


def run_figure():
    data = {}
    for dataset in DATASET_SIZES:
        rules = build_mind(dataset)
        data[dataset] = {
            "mind": rules["total"],
            "4KB pages": page_based_entries(dataset, PAGE_SIZE),
            "2MB pages": page_based_entries(dataset, 2 << 20),
            "1GB pages": page_based_entries(dataset, GB),
        }
    return data


def test_fig8_match_action_entries(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    schemes = ["mind", "4KB pages", "2MB pages", "1GB pages"]
    rows = [
        [f"{d // GB}GB"] + [data[d][s] for s in schemes] for d in DATASET_SIZES
    ]
    print_table(
        "Fig 8 (center): match-action entries vs dataset size",
        ["dataset"] + schemes,
        rows,
    )
    smallest, largest = DATASET_SIZES[0], DATASET_SIZES[-1]
    # MIND's rule count is ~constant in dataset size...
    assert data[largest]["mind"] <= 2 * data[smallest]["mind"]
    # ...and tiny in absolute terms (well under the switch budget).
    assert data[largest]["mind"] < 2_000 < RULE_BUDGET
    # Page-based translation scales linearly and blows the budget.
    assert data[largest]["4KB pages"] == 16 * data[smallest]["4KB pages"]
    assert data[largest]["4KB pages"] > RULE_BUDGET
    assert data[largest]["2MB pages"] == 16 * data[smallest]["2MB pages"]
    # Even 1 GB pages grow linearly, unlike MIND.
    assert data[largest]["1GB pages"] == 16 * data[smallest]["1GB pages"]
    assert data[largest]["mind"] < data[largest]["2MB pages"]
