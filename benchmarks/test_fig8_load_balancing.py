"""Fig. 8 (right): allocation load balancing across memory blades.

Paper result (Jain's fairness index over 8 memory blades): MIND's
least-allocated-blade placement is near-optimal (index ~1.0); 2 MB page
placement achieves similar balance but at the cost of vastly more
translation entries (Fig. 8 center); 1 GB pages balance poorly for
allocation-intensive workloads, because a huge-page allocator packs many
small allocations into the same open superpage -- and a superpage lives on
one blade.
"""

import pytest

from common import print_table
from repro.alloc import GlobalAllocator

GB = 1 << 30
MB = 1 << 20
NUM_BLADES = 8

#: per-workload heap compositions (vma sizes in bytes), shaped like the
#: evaluation's applications: TF = large model/activation arenas, GC = rank
#: array shards + per-thread edge buffers, M = many allocator slabs.
HEAPS = {
    "TF": [256 * MB] * 6 + [128 * MB] * 10,
    "GC": [256 * MB] * 4 + [64 * MB] * 16,
    "M_A/C": [64 * MB] * 36,
}


def jain(loads):
    total = sum(loads)
    if total == 0:
        return 1.0
    return total**2 / (len(loads) * sum(x * x for x in loads))


def place_mind(heap):
    galloc = GlobalAllocator()
    for i in range(NUM_BLADES):
        galloc.add_blade(i, va_base=i << 34, size=1 << 34)
    for size in heap:
        galloc.allocate(size)
    return jain([galloc.blade(i).allocated_bytes for i in range(NUM_BLADES)])


def place_paged(heap, page_size):
    """Page-granularity placement.

    Allocations at least one page big are spread page-by-page onto the
    least-loaded blade (the best a paging scheme can do).  Allocations
    *smaller* than a page are packed into the currently open page -- the
    standard hugepage-allocator behaviour that clusters small vmas onto
    one blade and ruins balance for 1 GB pages.
    """
    loads = [0] * NUM_BLADES
    open_blade, open_remaining = None, 0
    for size in heap:
        if size >= page_size:
            for _ in range(-(-size // page_size)):
                idx = loads.index(min(loads))
                loads[idx] += page_size
        else:
            if open_remaining < size:
                open_blade = loads.index(min(loads))
                loads[open_blade] += page_size
                open_remaining = page_size
            open_remaining -= size
    return jain(loads)


def run_figure():
    data = {}
    for name, heap in HEAPS.items():
        data[name] = {
            "MIND": place_mind(heap),
            "2MB pages": place_paged(heap, 2 * MB),
            "1GB pages": place_paged(heap, GB),
        }
    return data


def test_fig8_load_balancing(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    schemes = ["MIND", "2MB pages", "1GB pages"]
    rows = [[wl] + [data[wl][s] for s in schemes] for wl in HEAPS]
    print_table(
        "Fig 8 (right): Jain's fairness of memory-blade load",
        ["workload"] + schemes,
        rows,
    )
    for wl in HEAPS:
        # MIND and 2 MB paging are near-optimal.
        assert data[wl]["MIND"] > 0.9, wl
        assert data[wl]["2MB pages"] > 0.95, wl
    # 1 GB pages balance poorly for the allocation-intensive heap, whose
    # slabs pack into a handful of superpages.
    assert data["M_A/C"]["1GB pages"] < 0.75
    assert data["M_A/C"]["1GB pages"] < data["M_A/C"]["MIND"]
