"""Fig. 9 (right): impact of epoch size and initial region size.

Paper result: epoch sizes from 1 to 100 ms barely change total false
invalidations (larger epochs just cost less control-plane work; the paper
picks 100 ms); smaller *initial region sizes* yield fewer false
invalidations, because large initial regions take several split epochs to
stabilize, eating false invalidations in the interim.  16 kB is chosen
because going smaller explodes the initial entry count.

With our ~1000x time compression, the paper's 1-100 ms epoch range maps
to the 50-2000 us sweep below.
"""

import pytest

from common import THREADS_PER_BLADE, make_gc, make_tf, print_table, runner_config
from repro.core.mmu import MindConfig
from repro.runner import run_system

NUM_BLADES = 4
ACCESSES = 2_500
KB = 1024

EPOCH_SIZES_US = [50.0, 200.0, 1000.0, 2000.0]
INITIAL_SIZES = [4 * KB, 16 * KB, 256 * KB, 2048 * KB]
DEFAULT_EPOCH_US = 1000.0
DEFAULT_INITIAL = 16 * KB


def run_point(factory, epoch_us, initial_size):
    mind = MindConfig(
        initial_region_size=initial_size,
        epoch_us=epoch_us,
        enable_bounded_splitting=True,
    )
    cfg = runner_config(mind=mind)
    wl = factory(NUM_BLADES * THREADS_PER_BLADE, ACCESSES)
    result = run_system("mind", wl, NUM_BLADES, cfg)
    return {
        "false_invalidations": result.stats.counter("false_invalidations"),
        "rule_updates": result.stats.counter("splits") + result.stats.counter("merges"),
        "directory_final": result.stats.counter("directory_final"),
    }


def run_figure():
    data = {}
    for wl_name, factory in (("TF", make_tf), ("GC", make_gc)):
        for epoch in EPOCH_SIZES_US:
            data[(wl_name, "epoch", epoch)] = run_point(
                factory, epoch, DEFAULT_INITIAL
            )
        for initial in INITIAL_SIZES:
            data[(wl_name, "initial", initial)] = run_point(
                factory, DEFAULT_EPOCH_US, initial
            )
    return data


def test_fig9_epoch_region_sizing(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    for wl_name in ("TF", "GC"):
        base = max(1, data[(wl_name, "epoch", 1000.0)]["false_invalidations"])
        rows = [
            [
                f"{epoch:.0f}us",
                data[(wl_name, "epoch", epoch)]["false_invalidations"] / base,
                data[(wl_name, "epoch", epoch)]["rule_updates"],
            ]
            for epoch in EPOCH_SIZES_US
        ]
        print_table(
            f"Fig 9 (right): {wl_name} vs epoch size (false invals normalized)",
            ["epoch", "false invals (norm)", "split/merge ops"],
            rows,
        )
        base_i = max(1, data[(wl_name, "initial", 2048 * KB)]["false_invalidations"])
        rows = [
            [
                f"{initial // KB}KB",
                data[(wl_name, "initial", initial)]["false_invalidations"] / base_i,
                data[(wl_name, "initial", initial)]["directory_final"],
            ]
            for initial in INITIAL_SIZES
        ]
        print_table(
            f"Fig 9 (right): {wl_name} vs initial region size "
            "(false invals normalized to 2MB)",
            ["initial size", "false invals (norm)", "final entries"],
            rows,
        )

    for wl_name in ("TF", "GC"):
        # Smaller initial regions -> fewer false invalidations; 2 MB is the
        # worst of the sweep.
        fi = {
            s: data[(wl_name, "initial", s)]["false_invalidations"]
            for s in INITIAL_SIZES
        }
        assert fi[4 * KB] <= fi[16 * KB] * 1.2, wl_name
        assert fi[2048 * KB] >= fi[16 * KB], wl_name
        assert fi[2048 * KB] > fi[4 * KB], wl_name
        # ...but smaller initial regions cost more directory entries.
        assert (
            data[(wl_name, "initial", 4 * KB)]["directory_final"]
            > data[(wl_name, "initial", 256 * KB)]["directory_final"]
        ), wl_name
        # Epoch size has a mild effect on false invalidations (within ~3x
        # across a 40x range) while shorter epochs do more control work.
        fe = {
            e: data[(wl_name, "epoch", e)]["false_invalidations"]
            for e in EPOCH_SIZES_US
        }
        assert max(fe.values()) < 4 * max(1, min(fe.values())), wl_name
        assert (
            data[(wl_name, "epoch", 50.0)]["rule_updates"]
            >= data[(wl_name, "epoch", 2000.0)]["rule_updates"]
        ), wl_name
