"""Ablation: how directory capacity shapes contended-workload performance.

Section 7.2 attributes part of M_A's poor scaling to the directory limit:
entries pinned at the 30 k budget force coarse regions and capacity
evictions, i.e. false invalidations.  The paper speculates that future
ASICs with more TCAM/SRAM would remove the bottleneck; this sweep measures
exactly that counterfactual by growing the (scaled) directory budget.
"""

import pytest

from common import ACCESSES, make_ma, print_table, runner_config
from repro.core.mmu import MindConfig
from repro.runner import run_system

NUM_BLADES = 4
TPB = 10
BUDGETS = [500, 1_500, 5_000, 50_000]


def run_figure():
    data = {}
    for budget in BUDGETS:
        cfg = runner_config(
            mind=MindConfig(directory_capacity=budget, epoch_us=1_000.0)
        )
        result = run_system(
            "mind", make_ma(NUM_BLADES * TPB, ACCESSES), NUM_BLADES, cfg
        )
        data[budget] = {
            "throughput_miops": result.throughput_iops / 1e6,
            "false_invalidations": result.stats.counter("false_invalidations"),
            "capacity_events": result.stats.counter("directory_capacity_events"),
            "peak_entries": result.stats.counter("directory_peak"),
        }
    return data


def test_ablation_directory_capacity(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    print_table(
        "Ablation (Sec 7.2): M_A vs directory budget",
        ["budget", "throughput (M IOPS)", "false invals", "capacity events", "peak entries"],
        [
            [b, d["throughput_miops"], d["false_invalidations"],
             d["capacity_events"], d["peak_entries"]]
            for b, d in data.items()
        ],
    )
    # Small budgets thrash: capacity events by the thousand.
    assert data[500]["capacity_events"] > 100
    # A large budget eliminates capacity pressure entirely...
    assert data[50_000]["capacity_events"] == 0
    # ...and reduces false invalidations dramatically.
    assert (
        data[50_000]["false_invalidations"]
        < 0.5 * data[500]["false_invalidations"]
    )
    # Throughput improves monotonically (within noise) with the budget.
    assert (
        data[50_000]["throughput_miops"] > 1.1 * data[500]["throughput_miops"]
    )