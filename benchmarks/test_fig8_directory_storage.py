"""Fig. 8 (left): cache directory entries over time vs the SRAM budget.

Paper result: with a 30 k-entry directory budget, TF and GC stay well
below the limit under Bounded Splitting, while M_A and M_C -- whose
shared regions are many and write-hot -- hover near the limit for the
whole run, which is why their scaling suffers from false invalidations.

Our traces are thousands of times shorter than the paper's runs, so the
budget is scaled down proportionally (to 3 k entries) to recreate the same
pressure regime; the contrast between workloads is what is asserted.
"""

import pytest

from common import THREADS_PER_BLADE, WORKLOADS, print_table, runner_config
from repro.core.mmu import MindConfig
from repro.runner import run_system

NUM_BLADES = 8
DIRECTORY_BUDGET = 3_000
ACCESSES = 2_500


def run_figure():
    data = {}
    for wl_name, factory in WORKLOADS.items():
        cfg = runner_config(
            mind=MindConfig(
                directory_capacity=DIRECTORY_BUDGET,
                epoch_us=1_000.0,
            )
        )
        wl = factory(NUM_BLADES * THREADS_PER_BLADE, ACCESSES)
        result = run_system("mind", wl, NUM_BLADES, cfg)
        series = result.stats.series("directory_entries")
        peak = max((v for _t, v in series), default=0)
        final = series[-1][1] if series else 0
        data[wl_name] = {
            "series": series,
            "peak": peak,
            "final": final,
            "capacity_events": result.stats.counter("directory_capacity_events"),
        }
    return data


def test_fig8_directory_storage(benchmark):
    data = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    rows = [
        [wl, data[wl]["peak"], data[wl]["final"], data[wl]["capacity_events"]]
        for wl in WORKLOADS
    ]
    print_table(
        f"Fig 8 (left): directory entries (budget {DIRECTORY_BUDGET})",
        ["workload", "peak entries", "final entries", "capacity events"],
        rows,
    )
    for wl in WORKLOADS:
        assert len(data[wl]["series"]) >= 1, f"{wl}: no epochs recorded"
        assert data[wl]["peak"] <= DIRECTORY_BUDGET
    # M_A / M_C press against the budget; they live near the limit.
    for wl in ("M_A", "M_C"):
        assert data[wl]["peak"] > 0.8 * DIRECTORY_BUDGET, wl
    # TF stays comfortably below the Memcached workloads.
    assert data["TF"]["peak"] < data["M_A"]["peak"]
