"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper's evaluation
(Section 7) at a compressed scale: traces of a few thousand accesses per
thread instead of minutes of execution, with the Bounded Splitting epoch
compressed proportionally (see EXPERIMENTS.md, "time-scale compression").
Absolute numbers therefore differ from the paper; the *shapes* -- who
wins, by what factor, where the crossovers are -- are asserted.

Each benchmark prints the rows/series the paper's figure plots, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation as
text tables.
"""

from __future__ import annotations

from typing import Dict, List

from repro.runner import RunnerConfig, run_system, scaling_sweep
from repro.sim.stats import RunResult
from repro.workloads import (
    GraphLikeWorkload,
    MemcachedYcsbWorkload,
    NativeKvsWorkload,
    TensorFlowLikeWorkload,
    UniformSharingWorkload,
)

#: threads per compute blade in the inter-blade experiments (paper: 10).
THREADS_PER_BLADE = 10
#: trace length per thread (compressed from the paper's minutes-long runs).
ACCESSES = 2_000
#: compute-blade counts swept in Fig. 5 / 6 / 7.
BLADE_COUNTS = [1, 2, 4, 8]

#: compressed Bounded Splitting epoch for replays (paper: 100 ms).
EPOCH_US = 2_000.0


def runner_config(**overrides) -> RunnerConfig:
    defaults = dict(num_memory_blades=4, epoch_us=EPOCH_US)
    defaults.update(overrides)
    return RunnerConfig(**defaults)


# -- the paper's four application workloads ---------------------------------

def make_tf(num_threads: int, accesses: int = ACCESSES) -> TensorFlowLikeWorkload:
    return TensorFlowLikeWorkload(num_threads, accesses_per_thread=accesses)


def make_gc(num_threads: int, accesses: int = ACCESSES) -> GraphLikeWorkload:
    return GraphLikeWorkload(num_threads, accesses_per_thread=accesses)


def make_ma(num_threads: int, accesses: int = ACCESSES) -> MemcachedYcsbWorkload:
    return MemcachedYcsbWorkload.workload_a(num_threads, accesses_per_thread=accesses)


def make_mc(num_threads: int, accesses: int = ACCESSES) -> MemcachedYcsbWorkload:
    return MemcachedYcsbWorkload.workload_c(num_threads, accesses_per_thread=accesses)


WORKLOADS = {"TF": make_tf, "GC": make_gc, "M_A": make_ma, "M_C": make_mc}


def perf(result: RunResult) -> float:
    """The scaling metric: useful work per unit simulated time."""
    return result.total_accesses / result.runtime_us


def normalized_series(results: Dict[int, RunResult], base: float) -> Dict[int, float]:
    return {k: perf(r) / base for k, r in results.items()}


def print_table(title: str, header: List[str], rows: List[List]) -> None:
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(_fmt(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
