"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper's evaluation
(Section 7) at a compressed scale: traces of a few thousand accesses per
thread instead of minutes of execution, with the Bounded Splitting epoch
compressed proportionally (see EXPERIMENTS.md, "time-scale compression").
Absolute numbers therefore differ from the paper; the *shapes* -- who
wins, by what factor, where the crossovers are -- are asserted.

The sweep-shaped figures (Fig. 5 scaling, Fig. 7 throughput) run through
:mod:`repro.sweep`: the driver declares a grid, :func:`run_grid` executes
it (fanning out across worker processes when ``REPRO_SWEEP_JOBS`` > 1),
and assertions read the per-point metrics back.  The same grids are
runnable standalone via ``python -m repro sweep --preset fig5-intra``.

Each benchmark prints the rows/series the paper's figure plots, so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation as
text tables.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.runner import RunnerConfig
from repro.sim.stats import RunResult
from repro.sweep import PointRecord, SweepResults, SweepSpec, run_sweep
from repro.workloads import (
    GraphLikeWorkload,
    MemcachedYcsbWorkload,
    TensorFlowLikeWorkload,
)

#: threads per compute blade in the inter-blade experiments (paper: 10).
THREADS_PER_BLADE = 10
#: trace length per thread (compressed from the paper's minutes-long runs).
ACCESSES = 2_000
#: compute-blade counts swept in Fig. 5 / 6 / 7.
BLADE_COUNTS = [1, 2, 4, 8]

#: compressed Bounded Splitting epoch for replays (paper: 100 ms).
EPOCH_US = 2_000.0

#: worker processes for sweep-backed benchmarks; 1 replays serially and
#: any value produces byte-identical results (deterministic simulation).
SWEEP_JOBS = int(os.environ.get("REPRO_SWEEP_JOBS", "1"))


def runner_config(**overrides) -> RunnerConfig:
    defaults = dict(num_memory_blades=4, epoch_us=EPOCH_US)
    defaults.update(overrides)
    return RunnerConfig(**defaults)


def run_grid(
    *grids: str,
    seeds: Sequence[int] = (1,),
    jobs: Optional[int] = None,
) -> SweepResults:
    """Execute grid strings through the sweep engine (no output file)."""
    spec = SweepSpec.from_grids(list(grids), seeds=list(seeds))
    return run_sweep(spec, jobs=SWEEP_JOBS if jobs is None else jobs)


def point_perf(record: PointRecord) -> float:
    """The scaling metric for a sweep point: accesses per simulated us."""
    return record.metrics["total_accesses"] / record.metrics["runtime_us"]


# -- the paper's four application workloads ---------------------------------

def make_tf(num_threads: int, accesses: int = ACCESSES) -> TensorFlowLikeWorkload:
    return TensorFlowLikeWorkload(num_threads, accesses_per_thread=accesses)


def make_gc(num_threads: int, accesses: int = ACCESSES) -> GraphLikeWorkload:
    return GraphLikeWorkload(num_threads, accesses_per_thread=accesses)


def make_ma(num_threads: int, accesses: int = ACCESSES) -> MemcachedYcsbWorkload:
    return MemcachedYcsbWorkload.workload_a(num_threads, accesses_per_thread=accesses)


def make_mc(num_threads: int, accesses: int = ACCESSES) -> MemcachedYcsbWorkload:
    return MemcachedYcsbWorkload.workload_c(num_threads, accesses_per_thread=accesses)


WORKLOADS = {"TF": make_tf, "GC": make_gc, "M_A": make_ma, "M_C": make_mc}

#: figure label -> sweep-registry workload key (same generators).
WORKLOAD_KEYS = {"TF": "tf", "GC": "gc", "M_A": "ycsb_a", "M_C": "ycsb_c"}


def perf(result: RunResult) -> float:
    """The scaling metric: useful work per unit simulated time."""
    return result.total_accesses / result.runtime_us


def normalized_series(results: Dict[int, RunResult], base: float) -> Dict[int, float]:
    return {k: perf(r) / base for k, r in results.items()}


def print_table(title: str, header: List[str], rows: List[List]) -> None:
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(_fmt(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
