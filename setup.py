"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (no network in the build environment).  All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
