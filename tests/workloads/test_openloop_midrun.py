"""Open-loop dispatchers started mid-run keep a relative schedule.

Regression test: arrival times are offsets from the *dispatcher's*
start, not absolute simulation time.  A serving thread added mid-run
(elastic capacity) must start its schedule fresh -- with absolute
times every arrival would already be past due and the new thread would
release its whole schedule as one thundering-herd burst.
"""

from repro.blades.consistency import ConsistencyModel
from repro.cluster import ClusterConfig, MindCluster
from repro.workloads import UniformSharingWorkload
from repro.workloads.openloop import (
    ArrivalSpec,
    arrival_times,
    open_loop_thread,
    thread_arrival_seed,
)

DELAY_US = 2_000.0


def run_with_late_thread():
    workload = UniformSharingWorkload(2, accesses_per_thread=64, seed=5)
    cluster = MindCluster(
        ClusterConfig(
            num_compute_blades=2, num_memory_blades=2,
            cache_capacity_pages=1_024,
        )
    )
    controller = cluster.controller
    task = controller.sys_exec(workload.name)
    bases = [
        controller.sys_mmap(task.pid, spec.size_bytes)
        for spec in workload.region_specs()
    ]
    traces = workload.all_traces(bases)
    spec = ArrivalSpec(process="poisson", rate_per_us=0.05, request_size=8)

    def dispatcher(trace, start_delay_us=0.0):
        thread = controller.place_thread(task.pid)
        blade = cluster.compute_blade(thread.blade_id)
        if start_delay_us:
            yield start_delay_us
        yield from open_loop_thread(
            blade,
            task.pid,
            trace.stream(),
            spec,
            thread_arrival_seed(workload.name, workload.seed, trace.thread_id),
            ConsistencyModel.TSO,
            name=f"openloop.t{trace.thread_id}",
        )

    cluster.run_all([
        dispatcher(traces[0]),
        dispatcher(traces[1], start_delay_us=DELAY_US),
    ])
    return cluster, workload, spec, traces


class TestMidRunDispatcher:
    def test_late_thread_keeps_its_full_schedule(self):
        cluster, workload, spec, traces = run_with_late_thread()
        num_requests = -(-len(traces[1].stream()) // spec.request_size)
        late_arrivals = arrival_times(
            spec,
            num_requests,
            thread_arrival_seed(workload.name, workload.seed, 1),
        )
        # The late dispatcher's final arrival lands at start + offset; a
        # thundering-herd burst would finish almost immediately after
        # DELAY_US instead.
        assert cluster.engine.now >= DELAY_US + late_arrivals[-1]

    def test_every_request_still_completes(self):
        cluster, workload, spec, traces = run_with_late_thread()
        expected = sum(
            -(-len(t.stream()) // spec.request_size) for t in traces
        )
        assert cluster.stats.counter("openloop_arrivals") == expected
        assert cluster.stats.counter("openloop_completions") == expected
