"""Unit tests for the trace framework."""

import numpy as np
import pytest

from repro.sim.network import PAGE_SIZE
from repro.workloads.synthetic import UniformSharingWorkload
from repro.workloads.trace import (
    RegionSpec,
    ThreadTrace,
    interleave,
    stable_seed,
)


def make_workload(**kwargs):
    kwargs.setdefault("num_threads", 2)
    kwargs.setdefault("accesses_per_thread", 500)
    kwargs.setdefault("shared_pages", 64)
    kwargs.setdefault("private_pages_per_thread", 16)
    return UniformSharingWorkload(**kwargs)


def bases_for(workload, start=0x100000, stride=1 << 24):
    return [start + i * stride for i in range(len(workload.region_specs()))]


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, 2) == stable_seed("a", 1, 2)

    def test_varies_with_inputs(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a", 1) != stable_seed("b", 1)


class TestRegionSpec:
    def test_num_pages(self):
        assert RegionSpec("x", 3 * PAGE_SIZE).num_pages == 3
        assert RegionSpec("x", 100).num_pages == 1


class TestBinding:
    def test_trace_is_deterministic(self):
        wl = make_workload()
        bases = bases_for(wl)
        t1 = wl.thread_trace(0, bases)
        t2 = wl.thread_trace(0, bases)
        assert (t1.vas == t2.vas).all()
        assert (t1.writes == t2.writes).all()

    def test_threads_differ(self):
        wl = make_workload()
        bases = bases_for(wl)
        t0 = wl.thread_trace(0, bases)
        t1 = wl.thread_trace(1, bases)
        assert not (t0.vas == t1.vas).all()

    def test_seed_changes_trace(self):
        bases = bases_for(make_workload())
        a = make_workload(seed=1).thread_trace(0, bases)
        b = make_workload(seed=2).thread_trace(0, bases)
        assert not (a.vas == b.vas).all()

    def test_length_matches_request(self):
        wl = make_workload(accesses_per_thread=123)
        assert len(wl.thread_trace(0, bases_for(wl))) == 123

    def test_addresses_within_regions(self):
        wl = make_workload()
        bases = bases_for(wl)
        specs = wl.region_specs()
        trace = wl.thread_trace(0, bases)
        spans = [(b, b + s.size_bytes) for b, s in zip(bases, specs)]
        for va in trace.vas[:100].tolist():
            assert any(lo <= va < hi for lo, hi in spans)

    def test_wrong_base_count_rejected(self):
        wl = make_workload()
        with pytest.raises(ValueError):
            wl.thread_trace(0, [0x1000])

    def test_all_traces(self):
        wl = make_workload(num_threads=3)
        traces = wl.all_traces(bases_for(wl))
        assert [t.thread_id for t in traces] == [0, 1, 2]


class TestBurst:
    def test_burst_repeats_pages(self):
        wl = make_workload(burst=4, accesses_per_thread=400)
        trace = wl.thread_trace(0, bases_for(wl))
        vas = trace.vas
        # Consecutive groups of 4 identical addresses.
        assert (vas[0:4] == vas[0]).all()
        assert len(trace) == 400

    def test_burst_one_no_repeat_structure(self):
        wl = make_workload(burst=1, accesses_per_thread=400, shared_pages=10_000,
                           sharing_ratio=1.0)
        trace = wl.thread_trace(0, bases_for(wl))
        # With a large page pool, immediate repeats are rare.
        repeats = (trace.vas[1:] == trace.vas[:-1]).mean()
        assert repeats < 0.05

    def test_num_touches(self):
        wl = make_workload(burst=8, accesses_per_thread=100)
        assert wl.num_touches == 13

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            make_workload(burst=0)


class TestStats:
    def test_write_fraction(self):
        wl = make_workload(read_ratio=1.0)
        trace = wl.thread_trace(0, bases_for(wl))
        assert trace.write_fraction == 0.0
        wl = make_workload(read_ratio=0.0)
        trace = wl.thread_trace(0, bases_for(wl))
        assert trace.write_fraction == 1.0

    def test_footprint(self):
        wl = make_workload(num_threads=2, shared_pages=64, private_pages_per_thread=16)
        assert wl.footprint_bytes() == (64 + 2 * 16) * PAGE_SIZE

    def test_describe(self):
        assert "threads" in make_workload().describe()


class TestInterleave:
    def _trace(self, tid, n, start):
        vas = np.arange(start, start + n, dtype=np.int64) * PAGE_SIZE
        return ThreadTrace(tid, vas, np.zeros(n, dtype=bool))

    def test_preserves_all_accesses(self):
        merged = interleave([self._trace(0, 100, 0), self._trace(1, 150, 1000)])
        assert len(merged) == 250

    def test_round_robin_chunks(self):
        merged = interleave(
            [self._trace(0, 8, 0), self._trace(1, 8, 1000)], chunk=4
        )
        # First 4 from trace 0, next 4 from trace 1, then alternate back.
        assert (merged.vas[:4] < 1000 * PAGE_SIZE).all()
        assert (merged.vas[4:8] >= 1000 * PAGE_SIZE).all()
        assert (merged.vas[8:12] < 1000 * PAGE_SIZE).all()

    def test_uneven_lengths(self):
        merged = interleave([self._trace(0, 2, 0), self._trace(1, 10, 1000)], chunk=4)
        assert len(merged) == 12

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            interleave([])
