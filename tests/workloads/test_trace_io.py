"""Tests for trace bundle save/load/replay."""

import numpy as np
import pytest

from repro.runner import RunnerConfig, run_system
from repro.sim.network import PAGE_SIZE
from repro.workloads import UniformSharingWorkload
from repro.workloads.trace import RegionSpec
from repro.workloads.trace_io import (
    FileWorkload,
    TraceFormatError,
    convert_pin_text,
    load_traces,
    record_workload,
    save_traces,
)


def sample_bundle(tmp_path, threads=2, n=100):
    specs = [RegionSpec("data", 64 * PAGE_SIZE)]
    rng = np.random.default_rng(5)
    per_thread = [
        (
            np.zeros(n, dtype=np.int64),
            rng.integers(0, 64, size=n),
            rng.random(n) < 0.5,
        )
        for _ in range(threads)
    ]
    path = tmp_path / "trace.npz"
    save_traces(path, "sample", specs, per_thread)
    return path, specs, per_thread


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        path, specs, per_thread = sample_bundle(tmp_path)
        name, loaded_specs, loaded = load_traces(path)
        assert name == "sample"
        assert [(s.name, s.size_bytes) for s in loaded_specs] == [
            (s.name, s.size_bytes) for s in specs
        ]
        for (r, p, w), (lr, lp, lw) in zip(per_thread, loaded):
            assert (r == lr).all() and (p == lp).all() and (w == lw).all()

    def test_mismatched_arrays_rejected(self, tmp_path):
        specs = [RegionSpec("x", PAGE_SIZE)]
        bad = [(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=bool))]
        with pytest.raises(TraceFormatError):
            save_traces(tmp_path / "bad.npz", "bad", specs, bad)

    def test_record_generated_workload(self, tmp_path):
        wl = UniformSharingWorkload(
            2, accesses_per_thread=200, shared_pages=32,
            private_pages_per_thread=8,
        )
        path = tmp_path / "uniform.npz"
        record_workload(wl, path)
        replay = FileWorkload(path)
        assert replay.num_threads == 2
        bases = [i << 32 for i in range(len(wl.region_specs()))]
        original = wl.thread_trace(0, bases)
        recorded = replay.thread_trace(0, bases)
        assert (original.vas == recorded.vas).all()
        assert (original.writes == recorded.writes).all()


class TestFileWorkload:
    def test_replays_on_mind(self, tmp_path):
        path, _specs, per_thread = sample_bundle(tmp_path)
        wl = FileWorkload(path)
        result = run_system(
            "mind", wl, 2, RunnerConfig(num_memory_blades=1, epoch_us=None)
        )
        assert result.total_accesses == sum(len(t[0]) for t in per_thread)
        assert result.workload == "sample"

    def test_burst_expansion(self, tmp_path):
        path, _specs, _per = sample_bundle(tmp_path, n=10)
        wl = FileWorkload(path, burst=4)
        bases = [0]
        trace = wl.thread_trace(0, bases)
        assert len(trace) == 40
        assert (trace.vas[0:4] == trace.vas[0]).all()

    def test_empty_bundle_rejected(self, tmp_path):
        save_traces(tmp_path / "empty.npz", "e", [RegionSpec("x", PAGE_SIZE)], [])
        with pytest.raises(TraceFormatError):
            FileWorkload(tmp_path / "empty.npz")


class TestPinConversion:
    def test_convert_basic(self):
        lines = [
            "# a comment",
            "0 0x1000 R",
            "0 0x2010 W",
            "1 0x1008 R",
            "",
        ]
        specs, per_thread = convert_pin_text(
            lines, region_base=0x0, region_size=16 * PAGE_SIZE
        )
        assert len(specs) == 1
        assert len(per_thread) == 2
        regions, pages, writes = per_thread[0]
        assert pages.tolist() == [1, 2]
        assert writes.tolist() == [False, True]

    def test_bad_line_rejected(self):
        with pytest.raises(TraceFormatError):
            convert_pin_text(["0 0x1000 X"], 0, 16 * PAGE_SIZE)

    def test_out_of_region_rejected(self):
        with pytest.raises(TraceFormatError):
            convert_pin_text(["0 0xFFFFFF R"], 0, 16 * PAGE_SIZE)

    def test_round_trip_through_file(self, tmp_path):
        lines = [f"0 {hex(i * 0x1000)} {'W' if i % 2 else 'R'}" for i in range(8)]
        specs, per_thread = convert_pin_text(lines, 0, 16 * PAGE_SIZE)
        path = tmp_path / "pin.npz"
        save_traces(path, "pin-trace", specs, per_thread)
        wl = FileWorkload(path)
        trace = wl.thread_trace(0, [0])
        assert len(trace) == 8
        assert trace.writes.sum() == 4
