"""Statistical tests for the concrete workload generators.

Each generator must exhibit the access characteristics the paper relies on
to explain its system-level results (sharing, write mix, skew).
"""

import numpy as np
import pytest

from repro.sim.network import PAGE_SIZE
from repro.workloads import (
    GraphLikeWorkload,
    MemcachedYcsbWorkload,
    NativeKvsWorkload,
    TensorFlowLikeWorkload,
    UniformSharingWorkload,
)


def bound(workload):
    specs = workload.region_specs()
    bases = []
    cursor = 0
    for spec in specs:
        bases.append(cursor)
        cursor += 1 << 40  # huge stride: region index recoverable
    return bases


def regions_of(trace):
    return (trace.vas // (1 << 40)).astype(int)


class TestUniform:
    def test_sharing_ratio_respected(self):
        wl = UniformSharingWorkload(
            4, 4000, read_ratio=0.5, sharing_ratio=0.3, shared_pages=1000,
        )
        trace = wl.thread_trace(0, bound(wl))
        shared_frac = (regions_of(trace) == 0).mean()
        assert shared_frac == pytest.approx(0.3, abs=0.05)

    def test_read_ratio_respected(self):
        wl = UniformSharingWorkload(2, 4000, read_ratio=0.8)
        trace = wl.thread_trace(0, bound(wl))
        assert trace.write_fraction == pytest.approx(0.2, abs=0.05)

    def test_extremes(self):
        wl = UniformSharingWorkload(2, 1000, read_ratio=1.0, sharing_ratio=0.0)
        trace = wl.thread_trace(0, bound(wl))
        assert trace.write_fraction == 0.0
        assert (regions_of(trace) == 1).all()  # thread 0's private region

    def test_private_regions_disjoint_by_thread(self):
        wl = UniformSharingWorkload(4, 1000, sharing_ratio=0.0)
        t0 = wl.thread_trace(0, bound(wl))
        t3 = wl.thread_trace(3, bound(wl))
        assert set(regions_of(t0)) == {1}
        assert set(regions_of(t3)) == {4}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            UniformSharingWorkload(2, 100, read_ratio=1.5)
        with pytest.raises(ValueError):
            UniformSharingWorkload(2, 100, sharing_ratio=-0.1)
        with pytest.raises(ValueError):
            UniformSharingWorkload(0, 100)


class TestTensorFlowLike:
    def test_private_traffic_dominates(self):
        wl = TensorFlowLikeWorkload(4, 8000)
        trace = wl.thread_trace(0, bound(wl))
        shared_frac = (regions_of(trace) == 0).mean()
        assert shared_frac < 0.3

    def test_shared_writes_are_rare(self):
        wl = TensorFlowLikeWorkload(4, 8000)
        trace = wl.thread_trace(0, bound(wl))
        shared_writes = (
            (regions_of(trace) == 0) & trace.writes
        ).mean()
        assert shared_writes < 0.05

    def test_activation_sweep_is_sequential(self):
        wl = TensorFlowLikeWorkload(2, 8000, burst=1)
        trace = wl.thread_trace(0, bound(wl))
        acts = trace.vas[regions_of(trace) == 1]
        deltas = np.diff(acts)
        # A sequential sweep: most steps advance by exactly one page.
        assert (deltas == PAGE_SIZE).mean() > 0.7

    def test_threads_use_own_activation_regions(self):
        wl = TensorFlowLikeWorkload(3, 2000)
        for t in range(3):
            trace = wl.thread_trace(t, bound(wl))
            regs = set(regions_of(trace))
            assert regs <= {0, 1 + t}


class TestGraphLike:
    def test_rank_region_shared_by_all_threads(self):
        wl = GraphLikeWorkload(4, 4000)
        for t in range(4):
            trace = wl.thread_trace(t, bound(wl))
            assert (regions_of(trace) == 0).any()

    def test_shared_writes_exceed_tf(self):
        """The paper: GC writes ~2.5x more shared data than TF."""
        gc = GraphLikeWorkload(4, 8000)
        tf = TensorFlowLikeWorkload(4, 8000)
        gc_sw = ((regions_of(gc.thread_trace(0, bound(gc))) == 0)
                 & gc.thread_trace(0, bound(gc)).writes).mean()
        tf_sw = ((regions_of(tf.thread_trace(0, bound(tf))) == 0)
                 & tf.thread_trace(0, bound(tf)).writes).mean()
        assert gc_sw > 2.0 * tf_sw

    def test_hub_pages_are_hot(self):
        wl = GraphLikeWorkload(2, 8000, burst=1)
        trace = wl.thread_trace(0, bound(wl))
        rank_pages = trace.vas[regions_of(trace) == 0] // PAGE_SIZE
        hot = (rank_pages < wl.hot_pages).mean()
        assert hot > wl.hot_fraction * 0.7

    def test_hub_pages_written_too(self):
        wl = GraphLikeWorkload(2, 8000, burst=1)
        trace = wl.thread_trace(0, bound(wl))
        mask = (regions_of(trace) == 0) & trace.writes
        rank_pages = trace.vas[mask] // PAGE_SIZE
        assert (rank_pages < wl.hot_pages).any()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GraphLikeWorkload(2, 100, hot_fraction=2.0)
        with pytest.raises(ValueError):
            GraphLikeWorkload(2, 100, hot_pages=0)


class TestMemcachedYcsb:
    def test_workload_a_write_mix(self):
        wl = MemcachedYcsbWorkload.workload_a(4, accesses_per_thread=4000)
        trace = wl.thread_trace(0, bound(wl))
        # 50% updates plus metadata writes on reads.
        assert 0.45 < trace.write_fraction < 0.75
        assert wl.name == "M_A"

    def test_workload_c_reads_table_only(self):
        wl = MemcachedYcsbWorkload.workload_c(4, accesses_per_thread=4000)
        trace = wl.thread_trace(0, bound(wl))
        table_mask = regions_of(trace) == 0
        assert not trace.writes[table_mask].any()
        assert wl.name == "M_C"

    def test_workload_c_still_writes_metadata(self):
        """GETs bump the LRU: even read-only YCSB-C generates shared
        writes, the root cause of M_C's directory pressure."""
        wl = MemcachedYcsbWorkload.workload_c(4, accesses_per_thread=4000)
        trace = wl.thread_trace(0, bound(wl))
        meta_mask = regions_of(trace) == 1
        assert meta_mask.any()
        assert trace.writes[meta_mask].all()

    def test_zipfian_skew_on_table(self):
        wl = MemcachedYcsbWorkload.workload_c(
            2, accesses_per_thread=8000, table_pages=10_000, burst=1,
            metadata_fraction=0.0,
        )
        trace = wl.thread_trace(0, bound(wl))
        pages = trace.vas // PAGE_SIZE
        _unique, counts = np.unique(pages, return_counts=True)
        # Zipf: the hottest page gets far more than the mean.
        assert counts.max() > 10 * counts.mean()

    def test_all_threads_share_whole_table(self):
        wl = MemcachedYcsbWorkload.workload_a(4, accesses_per_thread=2000)
        spans = []
        for t in range(4):
            trace = wl.thread_trace(t, bound(wl))
            table = trace.vas[regions_of(trace) == 0]
            spans.append((table.min(), table.max()))
        # Every thread covers a broad slice of the same table.
        widths = [hi - lo for lo, hi in spans]
        assert min(widths) > 0.5 * max(widths)


class TestNativeKvs:
    def test_locality_respected(self):
        wl = NativeKvsWorkload(4, 4000, locality=0.9)
        trace = wl.thread_trace(1, bound(wl))
        own = (regions_of(trace) == 1).mean()
        assert own > 0.85

    def test_cross_partition_traffic_exists(self):
        wl = NativeKvsWorkload(4, 4000, locality=0.5)
        trace = wl.thread_trace(0, bound(wl))
        assert len(set(regions_of(trace))) > 1

    def test_name_reflects_mix(self):
        assert NativeKvsWorkload(2, 100, read_ratio=0.5).name == "NativeKVS-A"
        assert NativeKvsWorkload(2, 100, read_ratio=1.0).name == "NativeKVS-C"

    def test_validation(self):
        with pytest.raises(ValueError):
            NativeKvsWorkload(2, 100, locality=1.5)
