"""Tests for the team-scoped sharing workload."""

import numpy as np
import pytest

from repro.workloads import TeamSharingWorkload


def bound(workload):
    return [i << 40 for i in range(len(workload.region_specs()))]


def regions_of(trace):
    return (trace.vas >> 40).astype(int)


@pytest.fixture
def wl():
    return TeamSharingWorkload(8, accesses_per_thread=2000, team_size=4)


def test_team_structure(wl):
    assert wl.num_teams == 2
    assert wl.team_of(0) == 0
    assert wl.team_of(5) == 1


def test_thread_count_must_divide():
    with pytest.raises(ValueError):
        TeamSharingWorkload(7, 100, team_size=4)


def test_region_layout(wl):
    specs = wl.region_specs()
    # global + 2 teams + 8 privates.
    assert len(specs) == 11
    assert specs[0].name == "global"


def test_thread_touches_only_its_team(wl):
    for tid in range(8):
        trace = wl.thread_trace(tid, bound(wl))
        regions = set(regions_of(trace))
        my_team = 1 + wl.team_of(tid)
        other_team = 1 + (1 - wl.team_of(tid))
        assert my_team in regions
        assert other_team not in regions


def test_fraction_split(wl):
    trace = wl.thread_trace(0, bound(wl))
    regions = regions_of(trace)
    team_frac = (regions == 1).mean()
    global_frac = (regions == 0).mean()
    assert team_frac == pytest.approx(wl.team_fraction, abs=0.06)
    assert global_frac == pytest.approx(wl.global_fraction, abs=0.04)


def test_global_traffic_read_mostly(wl):
    trace = wl.thread_trace(0, bound(wl))
    mask = regions_of(trace) == 0
    assert trace.writes[mask].mean() < 0.1


def test_team_traffic_mixed(wl):
    trace = wl.thread_trace(0, bound(wl))
    mask = regions_of(trace) == 1
    assert 0.3 < trace.writes[mask].mean() < 0.7
