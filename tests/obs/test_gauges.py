"""Unit tests for the background gauge sampler."""

import pytest

from repro.obs.gauges import GaugeSampler
from repro.obs.tracer import Tracer
from repro.sim.engine import Engine
from repro.sim.stats import StatsCollector


def test_sampler_records_timeseries_at_interval():
    engine = Engine()
    stats = StatsCollector()
    sampler = GaugeSampler(engine, stats, interval_us=10.0)
    value = {"v": 0}
    sampler.add("metric", lambda: value["v"])
    sampler.start()

    def workload():
        for i in range(4):
            value["v"] = i
            yield 10.0

    engine.run_process(workload())
    sampler.stop()
    points = stats.series("metric")
    # The sampler ticks first at each interval boundary, so it observes the
    # value set during the *previous* interval.
    assert points[:4] == [(0.0, 0.0), (10.0, 0.0), (20.0, 1.0), (30.0, 2.0)]


def test_sampler_emits_trace_counters_when_enabled():
    engine = Engine()
    engine.tracer = Tracer()
    stats = StatsCollector()
    sampler = GaugeSampler(engine, stats, interval_us=5.0)
    sampler.add("depth", lambda: 2)
    sampler.sample_once()
    counters = [r for r in engine.tracer.records() if r[2] == "C"]
    assert counters and counters[0][4] == "depth"
    assert counters[0][6] == {"value": 2.0}


def test_stop_lets_the_queue_drain():
    engine = Engine()
    stats = StatsCollector()
    sampler = GaugeSampler(engine, stats, interval_us=1.0)
    sampler.add("g", lambda: 0)
    sampler.start()
    engine.run(until=2.5)  # ticks at t=0, 1, 2
    sampler.stop()
    engine.run()  # would never return if the sampler kept rescheduling
    assert sampler.samples_taken == 3


def test_start_is_idempotent():
    engine = Engine()
    sampler = GaugeSampler(engine, StatsCollector(), interval_us=1.0)
    sampler.add("g", lambda: 1)
    sampler.start()
    sampler.start()  # must not spawn a second sampling process
    engine.run(until=0.5)
    assert sampler.samples_taken == 1
    sampler.stop()
    engine.run()


def test_rejects_non_positive_interval():
    with pytest.raises(ValueError):
        GaugeSampler(Engine(), StatsCollector(), interval_us=0.0)
