"""Unit tests for the ring-buffered event tracer."""

import json

from repro.obs.tracer import NULL_TRACER, Tracer


def test_records_are_kept_in_emission_order():
    tracer = Tracer()
    tracer.instant(1.0, "a", "one")
    tracer.complete(2.0, 3.0, "b", "two")
    tracer.counter(4.0, "c", "three", 7.0)
    recs = tracer.records()
    assert [r[4] for r in recs] == ["one", "two", "three"]
    assert [r[2] for r in recs] == ["i", "X", "C"]


def test_ring_buffer_drops_oldest_and_counts():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.instant(float(i), "cat", f"e{i}")
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [r[4] for r in tracer.records()] == ["e2", "e3", "e4"]


def test_null_tracer_is_disabled_and_stores_nothing():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.instant(0.0, "cat", "x")
    assert len(NULL_TRACER) == 0
    NULL_TRACER.clear()  # keep the shared instance pristine


def test_track_ids_are_stable_and_dense():
    tracer = Tracer()
    a = tracer.track("alpha")
    b = tracer.track("beta")
    assert tracer.track("alpha") == a
    assert sorted({a, b}) == [0, 1]


def test_categories_in_first_seen_order():
    tracer = Tracer()
    tracer.instant(0.0, "blade", "x")
    tracer.instant(1.0, "switch", "y")
    tracer.instant(2.0, "blade", "z")
    assert tracer.categories() == ["blade", "switch"]


def test_jsonl_round_trips():
    tracer = Tracer()
    tracer.complete(1.0, 2.5, "coherence", "fetch", track=3, args={"n": 1})
    lines = tracer.to_jsonl().strip().splitlines()
    assert len(lines) == 1
    obj = json.loads(lines[0])
    assert obj == {
        "ts": 1.0,
        "dur": 2.5,
        "ph": "X",
        "cat": "coherence",
        "name": "fetch",
        "tid": 3,
        "args": {"n": 1},
    }


def test_chrome_trace_document_shape(tmp_path):
    tracer = Tracer()
    lane = tracer.track("lane")
    tracer.complete(1.0, 2.0, "coherence", "span", track=lane)
    tracer.instant(3.0, "blade", "marker", track=lane)
    tracer.counter(4.0, "gauge", "depth", 5.0, track=lane)
    doc = tracer.chrome_trace()
    events = doc["traceEvents"]
    # one thread_name metadata event plus the three records.
    assert [e["ph"] for e in events] == ["M", "X", "i", "C"]
    assert events[0]["args"]["name"] == "lane"
    assert events[1]["dur"] == 2.0
    # Counter samples are keyed by the counter's leaf name so Chrome
    # renders one named series per counter track.
    assert events[3]["args"] == {"depth": 5.0}
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path))
    assert json.loads(path.read_text())["traceEvents"]


def test_chrome_trace_counter_series_injection():
    tracer = Tracer()
    tracer.complete(1.0, 2.0, "coherence", "span")
    series = {"switch.directory_entries": [(0.0, 1.0), (100.0, 7.0)]}
    doc = tracer.chrome_trace(counter_series=series)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert len(counters) == 2
    assert all(e["name"] == "switch.directory_entries" for e in counters)
    assert all(e["cat"] == "gauge" for e in counters)
    assert counters[0]["args"] == {"directory_entries": 1.0}
    assert counters[1]["ts"] == 100.0


def test_clear_resets_buffer():
    tracer = Tracer(capacity=2)
    tracer.instant(0.0, "c", "a")
    tracer.instant(0.0, "c", "b")
    tracer.instant(0.0, "c", "c")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0
