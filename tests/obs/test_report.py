"""Unit tests for run reports built from RunResults."""

import json
import pickle

import pytest

from repro.runner import RunnerConfig, run_system
from repro.workloads import UniformSharingWorkload


@pytest.fixture(scope="module")
def traced_result():
    workload = UniformSharingWorkload(
        4,
        accesses_per_thread=300,
        read_ratio=0.5,
        sharing_ratio=0.5,
        shared_pages=200,
        private_pages_per_thread=64,
        seed=7,
        burst=4,
    )
    return run_system("mind", workload, 2, RunnerConfig(trace=True))


def test_report_meta_matches_result(traced_result):
    report = traced_result.report()
    assert report.meta["system"] == "MIND"
    assert report.meta["num_blades"] == 2
    assert report.meta["runtime_us"] == traced_result.runtime_us


def test_fault_breakdown_sums_to_end_to_end_latency(traced_result):
    report = traced_result.report()
    assert report.fault_breakdown, "span instrumentation produced no components"
    # The SpanCursor marks partition each fault's wall time, so the
    # components must sum to the measured total (the Fig. 7 consistency).
    assert report.fault_breakdown_error < 0.05


def test_report_surfaces_hotspots_and_peaks(traced_result):
    report = traced_result.report()
    assert any("kernel_lock" in name or "link:" in name for name, _ in report.hotspots)
    assert report.switch_peaks["directory_peak"] > 0
    assert report.switch_peaks["pipeline_passes"] > 0
    assert "directory_sram.used" in report.timeseries_peaks


def test_report_render_and_json(traced_result):
    report = traced_result.report()
    text = report.render()
    assert "fault-path breakdown" in text
    assert "top queueing hotspots" in text
    doc = json.loads(json.dumps(report.to_json()))
    assert doc["meta"]["workload"] == traced_result.workload
    assert doc["fault_breakdown"]


def test_traced_run_result_pickles(traced_result):
    # The multiprocessing-sweep requirement: results (including the trace
    # ring buffer and nested breakdowns) must round-trip through pickle.
    clone = pickle.loads(pickle.dumps(traced_result))
    assert clone.runtime_us == traced_result.runtime_us
    assert clone.stats.breakdowns == traced_result.stats.breakdowns
    assert clone.trace.records() == traced_result.trace.records()
    assert clone.report().fault_breakdown == traced_result.report().fault_breakdown


def test_untraced_result_still_reports():
    workload = UniformSharingWorkload(
        2,
        accesses_per_thread=100,
        shared_pages=64,
        private_pages_per_thread=32,
        seed=3,
    )
    result = run_system("mind", workload, 2, RunnerConfig())
    assert result.trace is None
    report = result.report()
    assert report.fault_breakdown_error < 0.05
    assert "run report" in report.render()
