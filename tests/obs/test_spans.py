"""Unit tests for span cursors (component-wise latency partitioning)."""

from repro.obs.spans import SpanCursor
from repro.obs.tracer import Tracer
from repro.sim.engine import Engine
from repro.sim.stats import StatsCollector


def run_marked_process(engine, stats):
    def proc():
        cursor = SpanCursor(engine, stats, "txn", trace_cat="test")
        yield 3.0
        cursor.mark("first")
        yield 7.0
        cursor.mark("second")
        cursor.mark("empty")  # zero elapsed: must not be recorded
        yield 2.0
        cursor.mark("third")
        return cursor.total()

    return engine.run_process(proc())


def test_marks_partition_the_transaction():
    engine = Engine()
    stats = StatsCollector()
    total = run_marked_process(engine, stats)
    breakdown = stats.breakdown("txn")
    assert breakdown == {"first": 3.0, "second": 7.0, "third": 2.0}
    assert sum(breakdown.values()) == total == 12.0


def test_zero_segments_are_skipped():
    engine = Engine()
    stats = StatsCollector()
    run_marked_process(engine, stats)
    assert "empty" not in stats.breakdown("txn")


def test_spans_emit_trace_records_when_enabled():
    engine = Engine()
    engine.tracer = Tracer()
    stats = StatsCollector()
    run_marked_process(engine, stats)
    spans = [r for r in engine.tracer.records() if r[3] == "test"]
    assert [(r[4], r[0], r[1]) for r in spans] == [
        ("first", 0.0, 3.0),
        ("second", 3.0, 7.0),
        ("third", 10.0, 2.0),
    ]


def test_no_trace_records_when_disabled():
    engine = Engine()  # NULL_TRACER by default
    stats = StatsCollector()
    run_marked_process(engine, stats)
    assert len(engine.tracer) == 0
    # ...but the stats breakdown is still recorded.
    assert stats.breakdown("txn")["first"] == 3.0


def test_skip_advances_without_attribution():
    engine = Engine()
    stats = StatsCollector()

    def proc():
        cursor = SpanCursor(engine, stats, "txn")
        yield 5.0
        cursor.skip()
        yield 1.0
        cursor.mark("tail")

    engine.run_process(proc())
    assert stats.breakdown("txn") == {"tail": 1.0}
