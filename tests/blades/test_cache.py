"""Unit tests for the compute-blade DRAM page cache."""

import pytest

from repro.blades.cache import PageCache
from repro.sim.network import PAGE_SIZE


@pytest.fixture
def cache():
    return PageCache(capacity_pages=4)


class TestLookup:
    def test_miss_on_empty(self, cache):
        assert cache.lookup(0x1000, write=False) is None
        assert cache.misses == 1

    def test_hit_after_insert(self, cache):
        cache.insert(0x1000, b"x" * PAGE_SIZE, writable=False)
        page = cache.lookup(0x1000, write=False)
        assert page is not None
        assert cache.hits == 1

    def test_sub_page_addresses_hit_same_page(self, cache):
        cache.insert(0x1000, None, writable=False)
        assert cache.lookup(0x1234, write=False) is not None

    def test_write_to_read_only_is_upgrade_miss(self, cache):
        cache.insert(0x1000, None, writable=False)
        assert cache.lookup(0x1000, write=True) is None
        assert cache.upgrades == 1

    def test_write_hit_marks_dirty(self, cache):
        cache.insert(0x1000, None, writable=True)
        page = cache.lookup(0x1000, write=True)
        assert page.dirty

    def test_read_hit_does_not_dirty(self, cache):
        cache.insert(0x1000, None, writable=True)
        page = cache.lookup(0x1000, write=False)
        assert not page.dirty

    def test_peek_does_not_count(self, cache):
        cache.insert(0x1000, None, writable=False)
        cache.peek(0x1000)
        assert cache.hits == 0

    def test_contains(self, cache):
        cache.insert(0x1000, None, writable=False)
        assert 0x1000 in cache
        assert 0x1800 in cache  # same page
        assert 0x2000 not in cache


class TestEviction:
    def test_lru_eviction_order(self, cache):
        for i in range(4):
            cache.insert(i * PAGE_SIZE, None, writable=False)
        cache.lookup(0, write=False)  # page 0 becomes most-recent
        evicted = cache.insert(4 * PAGE_SIZE, None, writable=False)
        assert [p.va for p in evicted] == [PAGE_SIZE]  # page 1 was LRU

    def test_dirty_eviction_returned_for_flush(self, cache):
        cache.insert(0, None, writable=True)
        cache.lookup(0, write=True)
        for i in range(1, 5):
            evicted = cache.insert(i * PAGE_SIZE, None, writable=False)
        assert any(p.va == 0 and p.dirty for p in evicted)

    def test_capacity_respected(self, cache):
        for i in range(10):
            cache.insert(i * PAGE_SIZE, None, writable=False)
        assert len(cache) == 4

    def test_reinsert_same_page_no_eviction(self, cache):
        cache.insert(0x1000, None, writable=False)
        evicted = cache.insert(0x1000, b"y" * PAGE_SIZE, writable=True)
        assert evicted == []
        assert len(cache) == 1
        page = cache.peek(0x1000)
        assert page.writable  # upgrade retained

    def test_drop(self, cache):
        cache.insert(0x1000, None, writable=True)
        dropped = cache.drop(0x1000)
        assert dropped.va == 0x1000
        assert cache.peek(0x1000) is None
        assert cache.drop(0x1000) is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PageCache(0)


class TestInvalidation:
    def _fill_region(self, cache):
        cache.insert(0x0, None, writable=True)
        cache.lookup(0x0, write=True)  # dirty
        cache.insert(0x1000, None, writable=True)  # writable, clean
        cache.insert(0x2000, None, writable=False)  # read-only

    def test_drop_invalidation_removes_all(self, cache):
        self._fill_region(cache)
        outcome = cache.invalidate_region(0, 4 * PAGE_SIZE, downgrade_to_shared=False)
        assert len(cache) == 0
        assert [p.va for p in outcome.flushed] == [0x0]
        assert outcome.dropped == 2

    def test_downgrade_keeps_pages_read_only(self, cache):
        self._fill_region(cache)
        outcome = cache.invalidate_region(0, 4 * PAGE_SIZE, downgrade_to_shared=True)
        assert len(cache) == 3
        assert [p.va for p in outcome.flushed] == [0x0]
        for va in (0x0, 0x1000, 0x2000):
            page = cache.peek(va)
            assert not page.writable
            assert not page.dirty

    def test_invalidation_scoped_to_region(self, cache):
        cache.insert(0x0, None, writable=True)
        cache.insert(0x3000, None, writable=True)
        cache.invalidate_region(0, 0x1000, downgrade_to_shared=False)
        assert cache.peek(0x0) is None
        assert cache.peek(0x3000) is not None

    def test_writable_pages_tracking(self, cache):
        self._fill_region(cache)
        writable = cache.writable_pages_in(0, 4 * PAGE_SIZE)
        assert sorted(p.va for p in writable) == [0x0, 0x1000]
        cache.invalidate_region(0, 4 * PAGE_SIZE, downgrade_to_shared=False)
        assert cache.writable_pages_in(0, 4 * PAGE_SIZE) == []

    def test_empty_region_invalidation(self, cache):
        outcome = cache.invalidate_region(0x100000, 0x1000, False)
        assert outcome.pages_affected == 0

    def test_keep_dirty_downgrade_moesi(self, cache):
        """MOESI M->O: pages become read-only but stay dirty, unflushed."""
        self._fill_region(cache)
        outcome = cache.invalidate_region(
            0, 4 * PAGE_SIZE, downgrade_to_shared=True, keep_dirty=True
        )
        assert outcome.flushed == []  # nothing written back
        assert outcome.downgraded == 3
        dirty_page = cache.peek(0x0)
        assert dirty_page.dirty and not dirty_page.writable
        # Writable-set tracking cleared: no page is writable any more.
        assert cache.writable_pages_in(0, 4 * PAGE_SIZE) == []


class TestPayload:
    def test_data_copied_on_insert(self, cache):
        buf = b"a" * PAGE_SIZE
        cache.insert(0x1000, buf, writable=True)
        page = cache.peek(0x1000)
        page.data[0] = ord("z")
        assert buf[0] == ord("a")  # original unchanged

    def test_none_data_supported(self, cache):
        cache.insert(0x1000, None, writable=True)
        assert cache.peek(0x1000).data is None

    def test_hit_rate(self, cache):
        cache.insert(0x1000, None, writable=False)
        cache.lookup(0x1000, write=False)
        cache.lookup(0x2000, write=False)
        assert cache.hit_rate == pytest.approx(0.5)
