"""Behavioural tests for the compute blade (fault path, threads, PSO)."""

import pytest

from repro.blades.consistency import ConsistencyModel
from repro.sim.network import PAGE_SIZE

from conftest import small_cluster


def setup_proc(cluster, length=1 << 20):
    ctl = cluster.controller
    task = ctl.sys_exec("t")
    return task.pid, ctl.sys_mmap(task.pid, length)


class TestFaultPath:
    def test_fault_populates_cache_and_ptes(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        cluster.run_process(blade.ensure_page(pid, base, write=False))
        assert blade.cache.peek(base) is not None
        assert base in blade.ptes

    def test_pte_writability_mirrors_cache(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        cluster.run_process(blade.ensure_page(pid, base, write=True))
        assert blade.ptes.entry(base, pdid=pid).writable
        assert blade.cache.peek(base).writable

    def test_hit_costs_only_dram(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        cluster.run_process(blade.ensure_page(pid, base, write=False))
        t0 = cluster.engine.now
        cluster.run_process(blade.ensure_page(pid, base, write=False))
        assert cluster.engine.now - t0 == pytest.approx(
            cluster.network.config.dram_access_us
        )

    def test_concurrent_faults_same_page_deduplicated(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        cluster.run_all(
            [blade.ensure_page(pid, base, False) for _ in range(5)]
        )
        assert cluster.stats.counter("remote_accesses") == 1

    def test_eviction_unmaps_pte(self, cluster):
        pid, base = setup_proc(cluster, length=1 << 20)
        blade = cluster.compute_blades[0]
        for i in range(blade.cache.capacity_pages + 5):
            cluster.run_process(blade.ensure_page(pid, base + i * PAGE_SIZE, False))
        # The first page was evicted: not cached, not mapped.
        assert blade.cache.peek(base) is None
        assert base not in blade.ptes
        assert cluster.stats.counter("evictions") >= 5

    def test_dirty_eviction_flushes(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        cluster.run_process(blade.ensure_page(pid, base, write=True))
        for i in range(1, blade.cache.capacity_pages + 2):
            cluster.run_process(blade.ensure_page(pid, base + i * PAGE_SIZE, False))
        cluster.run(until=cluster.engine.now + 1000)  # let async flush land
        assert cluster.stats.counter("eviction_flushes") == 1
        assert cluster.stats.counter("pages_written_back") >= 1


class TestByteApi:
    def test_store_load_round_trip(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        cluster.run_process(blade.store_bytes(pid, base + 100, b"hello"))
        out = cluster.run_process(blade.load_bytes(pid, base + 100, 5))
        assert out == b"hello"

    def test_cross_page_store_load(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        payload = bytes(range(200)) * 50  # 10000 bytes, spans 3 pages
        va = base + PAGE_SIZE - 100
        cluster.run_process(blade.store_bytes(pid, va, payload))
        out = cluster.run_process(blade.load_bytes(pid, va, len(payload)))
        assert out == payload

    def test_unwritten_memory_reads_zero(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        out = cluster.run_process(blade.load_bytes(pid, base, 16))
        assert out == bytes(16)


class TestRunThread:
    def test_returns_access_count(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        trace = [(base + (i % 4) * PAGE_SIZE, i % 2 == 0) for i in range(100)]
        count = cluster.run_process(blade.run_thread(pid, trace))
        assert count == 100

    def test_local_hits_batched_but_charged(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        cluster.run_process(blade.ensure_page(pid, base, True))
        t0 = cluster.engine.now
        trace = [(base, False)] * 1000
        cluster.run_process(blade.run_thread(pid, trace))
        elapsed = cluster.engine.now - t0
        expected = 1000 * cluster.network.config.dram_access_us
        assert elapsed == pytest.approx(expected, rel=0.01)

    def test_tso_write_blocks_thread(self, cluster):
        """Under TSO a write fault's full latency lands on the thread."""
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        t0 = cluster.engine.now
        cluster.run_process(
            blade.run_thread(pid, [(base, True)], ConsistencyModel.TSO)
        )
        assert cluster.engine.now - t0 > 5.0  # full remote fault

    def test_pso_write_is_asynchronous(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        trace = [(base + i * PAGE_SIZE, True) for i in range(8)]
        t_tso_cluster = small_cluster()
        pid2, base2 = setup_proc(t_tso_cluster)
        blade2 = t_tso_cluster.compute_blades[0]
        trace2 = [(base2 + i * PAGE_SIZE, True) for i in range(8)]
        t_tso_cluster.run_process(
            blade2.run_thread(pid2, trace2, ConsistencyModel.TSO)
        )
        tso_time = t_tso_cluster.engine.now
        cluster.run_process(
            blade.run_thread(pid, trace, ConsistencyModel.PSO)
        )
        pso_time = cluster.engine.now
        # PSO overlaps the 8 write faults; TSO serializes them.
        assert pso_time < 0.5 * tso_time

    def test_pso_read_after_write_waits(self, cluster):
        """PSO blocks a read to a page whose write is still in flight, so
        the value read must be the written one."""
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]

        def writer_then_reader():
            yield from blade.run_thread(
                pid, [(base, True), (base, False)], ConsistencyModel.PSO
            )
            data = yield from blade.load_bytes(pid, base, 4)
            return data

        cluster.run_process(writer_then_reader())
        # The page is present and writable after the drain.
        assert blade.cache.peek(base) is not None

    def test_pso_store_buffer_bounded(self, cluster):
        pid, base = setup_proc(cluster)
        blade = cluster.compute_blades[0]
        trace = [(base + i * PAGE_SIZE, True) for i in range(100)]
        count = cluster.run_process(
            blade.run_thread(
                pid, trace, ConsistencyModel.PSO, store_buffer_capacity=4
            )
        )
        assert count == 100
        # All writes landed by drain time.
        assert cluster.stats.counter("remote_accesses") == 100

    def test_steal_time_charged_to_threads(self, cluster):
        """TLB shootdowns at a blade slow down that blade's threads."""
        pid, base = setup_proc(cluster)
        b0, b1 = cluster.compute_blades
        cluster.run_process(b0.ensure_page(pid, base, True))
        # Long local-only trace on blade 0 while blade 1 steals the page.
        local = [(base + PAGE_SIZE, False)] * 10
        cluster.run_process(b0.ensure_page(pid, base + PAGE_SIZE, False))

        def contender():
            yield from b1.ensure_page(pid, base, True)

        t0 = cluster.engine.now
        cluster.run_all([b0.run_thread(pid, local * 100), contender()])
        assert b0.steal_time_us > 0
