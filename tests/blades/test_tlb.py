"""Unit tests for PTE tracking and TLB shootdown accounting."""

import pytest

from repro.blades.tlb import PteTable
from repro.sim.network import PAGE_SIZE


@pytest.fixture
def ptes():
    return PteTable()


def test_map_and_contains(ptes):
    ptes.map_page(0x1000, writable=True)
    assert 0x1000 in ptes
    assert 0x1800 in ptes  # same page
    assert 0x2000 not in ptes


def test_entry_lookup(ptes):
    ptes.map_page(0x1000, writable=False)
    entry = ptes.entry(0x1000)
    assert entry is not None and not entry.writable


def test_unmap(ptes):
    ptes.map_page(0x1000, writable=True)
    assert ptes.unmap_page(0x1000)
    assert not ptes.unmap_page(0x1000)
    assert len(ptes) == 0


def test_entries_in_range(ptes):
    for i in range(4):
        ptes.map_page(i * PAGE_SIZE, writable=True)
    assert len(ptes.entries_in(0, 2 * PAGE_SIZE)) == 2


class TestShootdown:
    def test_unmap_shootdown_cost(self, ptes):
        ptes.map_page(0x0, writable=True)
        ptes.map_page(0x1000, writable=True)
        cost = ptes.shootdown_region(0, 2 * PAGE_SIZE, downgrade_to_shared=False)
        assert cost == pytest.approx(
            PteTable.SHOOTDOWN_BASE_US + PteTable.SHOOTDOWN_PER_PAGE_US
        )
        assert len(ptes) == 0
        assert ptes.shootdowns == 1
        assert ptes.pages_shot_down == 2

    def test_no_mapped_pages_no_cost(self, ptes):
        assert ptes.shootdown_region(0, PAGE_SIZE, False) == 0.0
        assert ptes.shootdowns == 0

    def test_downgrade_write_protects(self, ptes):
        ptes.map_page(0x0, writable=True)
        cost = ptes.shootdown_region(0, PAGE_SIZE, downgrade_to_shared=True)
        assert cost > 0
        entry = ptes.entry(0x0)
        assert entry is not None and not entry.writable

    def test_downgrade_of_read_only_pages_free(self, ptes):
        """Write-protecting already-read-only PTEs needs no shootdown."""
        ptes.map_page(0x0, writable=False)
        assert ptes.shootdown_region(0, PAGE_SIZE, downgrade_to_shared=True) == 0.0

    def test_shootdown_scoped_to_region(self, ptes):
        ptes.map_page(0x0, writable=True)
        ptes.map_page(0x5000, writable=True)
        ptes.shootdown_region(0, PAGE_SIZE, False)
        assert 0x5000 in ptes

    def test_cost_scales_with_batch(self, ptes):
        for i in range(8):
            ptes.map_page(i * PAGE_SIZE, writable=True)
        big = ptes.shootdown_region(0, 8 * PAGE_SIZE, False)
        ptes.map_page(0x100000, writable=True)
        small = ptes.shootdown_region(0x100000, PAGE_SIZE, False)
        assert big > small


class TestPerDomain:
    """Cached pages must not leak between protection domains (Sec 3.2)."""

    def test_domains_map_independently(self, ptes):
        ptes.map_page(0x1000, writable=True, pdid=1)
        assert ptes.entry(0x1000, pdid=1) is not None
        assert ptes.entry(0x1000, pdid=2) is None

    def test_unmap_page_clears_all_domains(self, ptes):
        ptes.map_page(0x1000, writable=True, pdid=1)
        ptes.map_page(0x1000, writable=False, pdid=2)
        assert ptes.unmap_page(0x1000)
        assert ptes.entry(0x1000, pdid=1) is None
        assert ptes.entry(0x1000, pdid=2) is None

    def test_unmap_domain_range_scoped(self, ptes):
        ptes.map_page(0x1000, writable=True, pdid=1)
        ptes.map_page(0x1000, writable=False, pdid=2)
        ptes.map_page(0x5000, writable=True, pdid=1)
        removed = ptes.unmap_domain_range(1, 0, 0x2000)
        assert removed == 1
        assert ptes.entry(0x1000, pdid=1) is None
        assert ptes.entry(0x1000, pdid=2) is not None  # other domain kept
        assert ptes.entry(0x5000, pdid=1) is not None  # outside range kept

    def test_shootdown_covers_all_domains(self, ptes):
        ptes.map_page(0x1000, writable=True, pdid=1)
        ptes.map_page(0x1000, writable=True, pdid=2)
        cost = ptes.shootdown_region(0, 0x2000, downgrade_to_shared=False)
        assert cost > 0
        assert len(ptes) == 0

    def test_contains_any_domain(self, ptes):
        ptes.map_page(0x1000, writable=True, pdid=7)
        assert 0x1000 in ptes
