"""Unit tests for the PSO store buffer."""

import pytest

from repro.blades.consistency import ConsistencyModel, StoreBuffer
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


def test_models_enumerated():
    assert ConsistencyModel.TSO.value == "tso"
    assert ConsistencyModel.PSO.value == "pso"


class TestStoreBuffer:
    def test_pending_lookup(self, engine):
        buf = StoreBuffer(4)
        ev = engine.event()
        buf.add(0x1000, ev)
        assert buf.pending_for(0x1000) is ev
        assert buf.pending_for(0x2000) is None

    def test_same_page_coalesces(self, engine):
        buf = StoreBuffer(4)
        ev1, ev2 = engine.event(), engine.event()
        buf.add(0x1000, ev1)
        buf.add(0x1000, ev2)
        assert len(buf) == 1
        assert buf.pending_for(0x1000) is ev1

    def test_full(self, engine):
        buf = StoreBuffer(2)
        buf.add(0x1000, engine.event())
        assert not buf.full
        buf.add(0x2000, engine.event())
        assert buf.full

    def test_complete_frees_slot(self, engine):
        buf = StoreBuffer(1)
        buf.add(0x1000, engine.event())
        buf.complete(0x1000)
        assert not buf.full
        assert buf.pending_for(0x1000) is None

    def test_oldest_skips_completed(self, engine):
        buf = StoreBuffer(4)
        e1, e2 = engine.event(), engine.event()
        buf.add(0x1000, e1)
        buf.add(0x2000, e2)
        e1.succeed()
        buf.complete(0x1000)
        assert buf.oldest() is e2

    def test_oldest_empty(self, engine):
        assert StoreBuffer(2).oldest() is None

    def test_drain_events_only_untriggered(self, engine):
        buf = StoreBuffer(4)
        e1, e2 = engine.event(), engine.event()
        buf.add(0x1000, e1)
        buf.add(0x2000, e2)
        e1.succeed()
        assert buf.drain_events() == [e2]

    def test_peak_occupancy(self, engine):
        buf = StoreBuffer(4)
        buf.add(0x1000, engine.event())
        buf.add(0x2000, engine.event())
        buf.complete(0x1000)
        assert buf.peak_occupancy == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            StoreBuffer(0)
