"""Unit tests for the passive memory blade."""

import pytest

from repro.blades.memory import MemoryBlade, ZERO_PAGE
from repro.sim.engine import Engine
from repro.sim.network import Network, PAGE_SIZE


@pytest.fixture
def blade():
    network = Network(Engine())
    return MemoryBlade(0, network, capacity_bytes=16 * PAGE_SIZE)


def test_register(blade):
    assert not blade.registered
    blade.register()
    assert blade.registered


def test_unwritten_page_reads_zero(blade):
    assert blade.read_page(0) == ZERO_PAGE


def test_write_then_read(blade):
    payload = bytes(range(256)) * 16
    blade.write_page(PAGE_SIZE, payload)
    assert blade.read_page(PAGE_SIZE) == payload
    assert blade.resident_pages == 1


def test_sub_page_address_maps_to_page(blade):
    blade.write_page(PAGE_SIZE, b"\x01" * PAGE_SIZE)
    assert blade.read_page(PAGE_SIZE + 100) == b"\x01" * PAGE_SIZE


def test_short_payload_zero_padded(blade):
    blade.write_page(0, b"abc")
    data = blade.read_page(0)
    assert data[:3] == b"abc"
    assert data[3:] == bytes(PAGE_SIZE - 3)
    assert len(data) == PAGE_SIZE


def test_out_of_capacity_rejected(blade):
    with pytest.raises(ValueError):
        blade.read_page(16 * PAGE_SIZE)
    with pytest.raises(ValueError):
        blade.write_page(-PAGE_SIZE, b"")


def test_counters(blade):
    blade.read_page(0)
    blade.write_page(0, b"x")
    blade.read_page(0)
    assert blade.reads_served == 2
    assert blade.writes_served == 1


def test_store_data_disabled():
    network = Network(Engine())
    blade = MemoryBlade(0, network, capacity_bytes=16 * PAGE_SIZE, store_data=False)
    blade.write_page(0, b"payload")
    assert blade.read_page(0) is None
    assert blade.resident_pages == 0
    # Timing counters still track.
    assert blade.reads_served == 1 and blade.writes_served == 1


def test_capacity_validation():
    network = Network(Engine())
    with pytest.raises(ValueError):
        MemoryBlade(0, network, capacity_bytes=100)  # not page multiple
