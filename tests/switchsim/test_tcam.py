"""Unit and property tests for the TCAM model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switchsim.tcam import (
    Tcam,
    TcamFullError,
    VA_WIDTH,
    block_to_prefix,
    prefix_mask,
    split_range_to_pow2,
)


class TestPrefixMath:
    def test_prefix_mask_full(self):
        assert prefix_mask(VA_WIDTH) == (1 << VA_WIDTH) - 1

    def test_prefix_mask_zero(self):
        assert prefix_mask(0) == 0

    def test_prefix_mask_top_bits(self):
        mask = prefix_mask(8, width=16)
        assert mask == 0xFF00

    def test_prefix_mask_out_of_range(self):
        with pytest.raises(ValueError):
            prefix_mask(17, width=16)
        with pytest.raises(ValueError):
            prefix_mask(-1)

    def test_block_to_prefix_round_trip(self):
        value, mask = block_to_prefix(0x4000, 0x1000)
        assert value == 0x4000
        # All addresses in the block match; neighbours do not.
        assert (0x4FFF & mask) == value
        assert (0x5000 & mask) != value

    def test_block_to_prefix_requires_pow2(self):
        with pytest.raises(ValueError):
            block_to_prefix(0, 3000)

    def test_block_to_prefix_requires_alignment(self):
        with pytest.raises(ValueError):
            block_to_prefix(0x800, 0x1000)


class TestSplitRange:
    def test_aligned_pow2_single_block(self):
        assert split_range_to_pow2(0x10000, 0x1000) == [(0x10000, 0x1000)]

    def test_unaligned_range_decomposes(self):
        blocks = split_range_to_pow2(0x1000, 0x3000)
        assert sum(size for _b, size in blocks) == 0x3000
        for base, size in blocks:
            assert size & (size - 1) == 0
            assert base % size == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_range_to_pow2(0, 0)
        with pytest.raises(ValueError):
            split_range_to_pow2(-1, 10)

    @given(
        base=st.integers(min_value=0, max_value=2**40),
        length=st.integers(min_value=1, max_value=2**24),
    )
    @settings(max_examples=200)
    def test_property_blocks_tile_the_range_exactly(self, base, length):
        blocks = split_range_to_pow2(base, length)
        cursor = base
        for b, size in blocks:
            assert b == cursor, "blocks must be contiguous"
            assert size > 0 and size & (size - 1) == 0, "power-of-two sizes"
            assert b % size == 0, "natural alignment"
            cursor += size
        assert cursor == base + length, "blocks cover exactly the range"

    @given(
        base=st.integers(min_value=0, max_value=2**40),
        exp=st.integers(min_value=0, max_value=20),
    )
    def test_property_aligned_pow2_is_one_block(self, base, exp):
        size = 1 << exp
        aligned = base - (base % size)
        assert split_range_to_pow2(aligned, size) == [(aligned, size)]


class TestTcam:
    def test_insert_and_exact_lookup(self):
        tcam = Tcam(16)
        tcam.insert_prefix(0x1000, 0x1000, "data")
        hit = tcam.lookup(0x1ABC)
        assert hit is not None and hit.data == "data"
        assert tcam.lookup(0x2000) is None

    def test_longest_prefix_match_wins(self):
        tcam = Tcam(16)
        tcam.insert_prefix(0x0, 1 << 20, "coarse")
        tcam.insert_prefix(0x4000, 0x1000, "fine")
        assert tcam.lookup(0x4100).data == "fine"
        assert tcam.lookup(0x9000).data == "coarse"

    def test_lpm_insertion_order_irrelevant(self):
        tcam = Tcam(16)
        tcam.insert_prefix(0x4000, 0x1000, "fine")
        tcam.insert_prefix(0x0, 1 << 20, "coarse")
        assert tcam.lookup(0x4100).data == "fine"

    def test_capacity_enforced(self):
        tcam = Tcam(2)
        tcam.insert_prefix(0x0, 0x1000, 1)
        tcam.insert_prefix(0x1000, 0x1000, 2)
        with pytest.raises(TcamFullError):
            tcam.insert_prefix(0x2000, 0x1000, 3)

    def test_insert_range_all_or_nothing(self):
        tcam = Tcam(2)
        # 0x3000 range needs 2 entries; add 1 first so it cannot fit.
        tcam.insert_prefix(0x100000, 0x1000, "x")
        with pytest.raises(TcamFullError):
            tcam.insert_range(0x1000, 0x3000, "y")
        assert len(tcam) == 1

    def test_insert_range_entry_bound(self):
        """A range of size s needs at most ~2*log2(s) prefix entries."""
        tcam = Tcam(200)
        entries = tcam.insert_range(0x1234000, 0x7F000, "z")
        import math

        assert len(entries) <= 2 * math.ceil(math.log2(0x7F000))

    def test_remove_entry(self):
        tcam = Tcam(4)
        entry = tcam.insert_prefix(0x0, 0x1000, "a")
        tcam.remove(entry)
        assert tcam.lookup(0x500) is None
        assert tcam.free == 4

    def test_remove_where(self):
        tcam = Tcam(4)
        tcam.insert_prefix(0x0, 0x1000, "a")
        tcam.insert_prefix(0x1000, 0x1000, "b")
        removed = tcam.remove_where(lambda e: e.data == "a")
        assert removed == 1
        assert len(tcam) == 1

    def test_value_outside_mask_rejected(self):
        tcam = Tcam(4)
        with pytest.raises(ValueError):
            tcam.insert(value=0xFF, mask=0xF0, priority=1, data=None)

    def test_coalesce_merges_buddies(self):
        tcam = Tcam(8)
        tcam.insert_prefix(0x0, 0x1000, "same")
        tcam.insert_prefix(0x1000, 0x1000, "same")
        assert tcam.coalesce() == 1
        assert len(tcam) == 1
        assert tcam.lookup(0x1800).data == "same"

    def test_coalesce_runs_to_fixpoint(self):
        tcam = Tcam(8)
        for i in range(4):
            tcam.insert_prefix(i * 0x1000, 0x1000, "same")
        tcam.coalesce()
        assert len(tcam) == 1
        assert tcam.lookup(0x3FFF).data == "same"

    def test_coalesce_respects_different_data(self):
        tcam = Tcam(8)
        tcam.insert_prefix(0x0, 0x1000, "a")
        tcam.insert_prefix(0x1000, 0x1000, "b")
        assert tcam.coalesce() == 0
        assert len(tcam) == 2

    def test_coalesce_non_buddies_not_merged(self):
        tcam = Tcam(8)
        # 0x1000 and 0x2000 are not buddies (buddy of 0x1000/0x1000 is 0x0).
        tcam.insert_prefix(0x1000, 0x1000, "a")
        tcam.insert_prefix(0x2000, 0x1000, "a")
        assert tcam.coalesce() == 0

    def test_lookup_counts(self):
        tcam = Tcam(4)
        tcam.lookup(0)
        tcam.lookup(1)
        assert tcam.lookups == 2

    @given(
        exp=st.integers(min_value=12, max_value=24),
        base_block=st.integers(min_value=0, max_value=2**20),
        offset=st.integers(min_value=0, max_value=2**24 - 1),
    )
    @settings(max_examples=100)
    def test_property_prefix_matches_exactly_its_block(self, exp, base_block, offset):
        size = 1 << exp
        base = base_block * size
        if base + size > (1 << VA_WIDTH):
            return
        tcam = Tcam(4)
        tcam.insert_prefix(base, size, "d")
        inside = base + (offset % size)
        assert tcam.lookup(inside) is not None
        outside = (base + size + offset) % (1 << VA_WIDTH)
        if not (base <= outside < base + size):
            assert tcam.lookup(outside) is None
