"""Unit tests for the match-action pipeline model."""

import pytest

from repro.sim.engine import Engine
from repro.sim.network import NetworkConfig
from repro.switchsim.pipeline import MauComputeError, SwitchPipeline


@pytest.fixture
def pipeline():
    return SwitchPipeline(Engine(), NetworkConfig())


def test_add_and_get_stage(pipeline):
    mau = pipeline.add_stage("directory")
    assert pipeline.stage("directory") is mau


def test_duplicate_stage_rejected(pipeline):
    pipeline.add_stage("x")
    with pytest.raises(ValueError):
        pipeline.add_stage("x")


def test_unknown_stage_rejected(pipeline):
    with pytest.raises(KeyError):
        pipeline.stage("nope")


def test_packet_must_traverse_before_ops(pipeline):
    mau = pipeline.add_stage("m")
    pkt = pipeline.packet()
    with pytest.raises(MauComputeError):
        pkt.execute(mau, lambda: 1)


def test_one_op_per_mau_per_pass(pipeline):
    engine = pipeline.engine
    mau = pipeline.add_stage("m")
    pkt = pipeline.packet()
    engine.run_process(pkt.traverse())
    assert pkt.execute(mau, lambda: "ok") == "ok"
    with pytest.raises(MauComputeError):
        pkt.execute(mau, lambda: "second")


def test_recirculation_resets_op_budget(pipeline):
    engine = pipeline.engine
    mau = pipeline.add_stage("m")
    pkt = pipeline.packet()
    engine.run_process(pkt.traverse())
    pkt.execute(mau, lambda: 1)
    engine.run_process(pkt.recirculate())
    assert pkt.execute(mau, lambda: 2) == 2
    assert pipeline.recirculations == 1


def test_different_maus_independent_budgets(pipeline):
    engine = pipeline.engine
    a = pipeline.add_stage("a")
    b = pipeline.add_stage("b")
    pkt = pipeline.packet()
    engine.run_process(pkt.traverse())
    pkt.execute(a, lambda: 1)
    pkt.execute(b, lambda: 2)  # must not raise


def test_concurrent_packets_do_not_interfere(pipeline):
    """Two in-flight packets each get their own per-pass budget."""
    engine = pipeline.engine
    mau = pipeline.add_stage("m")
    p1, p2 = pipeline.packet(), pipeline.packet()
    engine.run_process(p1.traverse())
    engine.run_process(p2.traverse())
    p1.execute(mau, lambda: 1)
    p2.execute(mau, lambda: 2)  # independent budget: no error
    assert mau.total_ops == 2


def test_traverse_costs_pipeline_latency(pipeline):
    engine = pipeline.engine
    pkt = pipeline.packet()
    engine.run_process(pkt.traverse())
    assert engine.now == pytest.approx(pipeline.config.switch_pipeline_us)


def test_recirculate_costs_more_than_traverse(pipeline):
    engine = pipeline.engine
    pkt = pipeline.packet()
    engine.run_process(pkt.traverse())
    t_traverse = engine.now
    engine.run_process(pkt.recirculate())
    assert engine.now - t_traverse > t_traverse


def test_pass_counters(pipeline):
    engine = pipeline.engine
    pkt = pipeline.packet()
    engine.run_process(pkt.traverse())
    engine.run_process(pkt.recirculate())
    assert pipeline.passes == 2
    assert pkt.passes == 2


def test_max_ops_per_pass_configurable(pipeline):
    engine = pipeline.engine
    mau = pipeline.add_stage("wide", max_ops_per_pass=2)
    pkt = pipeline.packet()
    engine.run_process(pkt.traverse())
    pkt.execute(mau, lambda: 1)
    pkt.execute(mau, lambda: 2)
    with pytest.raises(MauComputeError):
        pkt.execute(mau, lambda: 3)
