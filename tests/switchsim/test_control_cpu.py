"""Unit tests for the switch control-plane CPU model."""

import pytest

from repro.sim.engine import Engine
from repro.switchsim.control_cpu import ControlCpu


def test_rule_update_charges_pcie_cost():
    engine = Engine()
    cpu = ControlCpu(engine)
    engine.run_process(cpu.apply_rule_update())
    assert engine.now == pytest.approx(ControlCpu.RULE_UPDATE_US)
    assert cpu.rule_updates == 1


def test_syscall_cost():
    engine = Engine()
    cpu = ControlCpu(engine)
    engine.run_process(cpu.handle_syscall())
    assert engine.now == pytest.approx(ControlCpu.SYSCALL_US)
    assert cpu.syscalls_handled == 1


def test_control_ops_serialize():
    engine = Engine()
    cpu = ControlCpu(engine)
    done = []

    def op():
        yield engine.process(cpu.apply_rule_update())
        done.append(engine.now)

    engine.process(op())
    engine.process(op())
    engine.run()
    assert done[1] == pytest.approx(2 * ControlCpu.RULE_UPDATE_US)


def test_utilization():
    engine = Engine()
    cpu = ControlCpu(engine)

    def op():
        yield engine.process(cpu.apply_rule_update())
        yield ControlCpu.RULE_UPDATE_US  # idle for as long again

    engine.run_process(op())
    assert cpu.utilization() == pytest.approx(0.5)
