"""Tests for switch-side RDMA connection virtualization (Section 6.3)."""

import pytest

from repro.sim.network import PAGE_SIZE
from repro.switchsim.rdma_virt import RdmaVirtualizer

from conftest import small_cluster


class TestVirtualizer:
    def test_connections_created_lazily(self):
        virt = RdmaVirtualizer()
        assert virt.num_connections == 0
        virt.rewrite(compute_port=0, memory_blade=1)
        assert virt.num_connections == 1
        virt.rewrite(0, 1)
        assert virt.num_connections == 1  # reused
        virt.rewrite(0, 2)
        assert virt.num_connections == 2

    def test_psn_sequencing_per_connection(self):
        virt = RdmaVirtualizer()
        assert virt.rewrite(0, 1) == 0
        assert virt.rewrite(0, 1) == 1
        assert virt.rewrite(0, 2) == 0  # independent sequence
        assert virt.rewrite(0, 1) == 2

    def test_rewrite_counters(self):
        virt = RdmaVirtualizer()
        for _ in range(5):
            virt.rewrite(0, 1)
        virt.rewrite(1, 1)
        assert virt.rewrites == 6
        assert virt.connection(0, 1).packets_rewritten == 5
        assert virt.connections_for_blade(0) == 1
        assert virt.connections_for_blade(1) == 1


class TestIntegration:
    def test_fetches_rewrite_headers(self):
        cluster = small_cluster(num_compute=2, num_memory=2)
        ctl = cluster.controller
        task = ctl.sys_exec("t")
        base = ctl.sys_mmap(task.pid, 8 * PAGE_SIZE)
        blade = cluster.compute_blades[0]
        for i in range(4):
            cluster.run_process(
                blade.ensure_page(task.pid, base + i * PAGE_SIZE, False)
            )
        virt = cluster.mmu.coherence.rdma_virt
        assert virt.rewrites == 4
        # One virtual connection per (compute, memory) pair actually used.
        assert virt.connections_for_blade(blade.port.port_id) >= 1

    def test_flushes_rewrite_headers_too(self):
        cluster = small_cluster(num_compute=2, num_memory=1)
        ctl = cluster.controller
        task = ctl.sys_exec("t")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        b0, b1 = cluster.compute_blades
        cluster.run_process(b0.store_bytes(task.pid, base, b"x"))
        before = cluster.mmu.coherence.rdma_virt.rewrites
        cluster.run_process(b1.store_bytes(task.pid, base, b"y"))  # M->M flush
        cluster.run(until=cluster.engine.now + 500)
        assert cluster.mmu.coherence.rdma_virt.rewrites > before + 1
