"""Unit tests for the multicast engine with egress pruning."""

import pytest

from repro.switchsim.multicast import MulticastEngine


@pytest.fixture
def engine():
    mc = MulticastEngine()
    mc.create_group(1, [0, 1, 2, 3])
    return mc


def test_replicate_to_all_sharers(engine):
    out = engine.replicate(1, frozenset({0, 1, 2, 3}))
    assert out == [0, 1, 2, 3]


def test_egress_pruning_drops_non_sharers(engine):
    out = engine.replicate(1, frozenset({1, 3}))
    assert out == [1, 3]
    assert engine.pruned == 2
    assert engine.delivered == 2


def test_requester_excluded(engine):
    out = engine.replicate(1, frozenset({0, 1, 2}), exclude_port=1)
    assert out == [0, 2]


def test_replication_counts_group_size(engine):
    engine.replicate(1, frozenset({0}))
    assert engine.replicated == 4  # one copy per group member


def test_empty_sharer_list(engine):
    assert engine.replicate(1, frozenset()) == []


def test_sharer_not_in_group_not_delivered(engine):
    # Port 9 is a sharer but not in the multicast group: no copy exists.
    out = engine.replicate(1, frozenset({0, 9}))
    assert out == [0]


def test_group_membership_mutation(engine):
    engine.group(1).add_port(4)
    assert engine.replicate(1, frozenset({4})) == [4]
    engine.group(1).remove_port(4)
    assert engine.replicate(1, frozenset({4})) == []


def test_duplicate_group_rejected(engine):
    with pytest.raises(ValueError):
        engine.create_group(1, [])


def test_unknown_group_rejected(engine):
    with pytest.raises(KeyError):
        engine.replicate(99, frozenset())


def test_deterministic_delivery_order(engine):
    out = engine.replicate(1, frozenset({3, 0, 2}))
    assert out == sorted(out)
