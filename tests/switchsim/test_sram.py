"""Unit tests for the SRAM register array (directory slot storage)."""

import pytest

from repro.switchsim.sram import RegisterArray, SramFullError


def test_allocate_and_lookup():
    sram = RegisterArray(4)
    slot = sram.allocate(0x1000, data="entry")
    assert sram.lookup(0x1000) is slot
    assert slot.data == "entry"


def test_lookup_missing_returns_none():
    assert RegisterArray(4).lookup(0x42) is None


def test_capacity_enforced():
    sram = RegisterArray(2)
    sram.allocate(1)
    sram.allocate(2)
    with pytest.raises(SramFullError):
        sram.allocate(3)


def test_duplicate_key_rejected():
    sram = RegisterArray(2)
    sram.allocate(1)
    with pytest.raises(ValueError):
        sram.allocate(1)


def test_release_returns_slot_to_free_list():
    sram = RegisterArray(1)
    sram.allocate(1, data="x")
    sram.release(1)
    assert sram.free == 1
    assert sram.lookup(1) is None
    slot = sram.allocate(2)
    assert slot.data is None  # old payload cleared


def test_release_unknown_key_rejected():
    with pytest.raises(KeyError):
        RegisterArray(2).release(99)


def test_rekey_preserves_slot_data():
    sram = RegisterArray(2)
    sram.allocate(1, data="payload")
    sram.rekey(1, 2)
    assert sram.lookup(1) is None
    assert sram.lookup(2).data == "payload"


def test_rekey_to_existing_key_rejected():
    sram = RegisterArray(4)
    sram.allocate(1)
    sram.allocate(2)
    with pytest.raises(ValueError):
        sram.rekey(1, 2)


def test_rekey_unknown_key_rejected():
    with pytest.raises(KeyError):
        RegisterArray(2).rekey(1, 2)


def test_utilization_and_peak():
    sram = RegisterArray(4)
    sram.allocate(1)
    sram.allocate(2)
    assert sram.utilization() == pytest.approx(0.5)
    sram.release(1)
    assert sram.utilization() == pytest.approx(0.25)
    assert sram.peak_used == 2


def test_items_iterates_live_entries():
    sram = RegisterArray(4)
    sram.allocate(1, data="a")
    sram.allocate(2, data="b")
    assert dict(sram.items()) == {1: "a", 2: "b"}
    assert sorted(sram.keys()) == [1, 2]


def test_invalid_capacity():
    with pytest.raises(ValueError):
        RegisterArray(0)


def test_full_churn_cycle():
    """Allocate/release churn must never leak slots."""
    sram = RegisterArray(8)
    for round_ in range(10):
        for i in range(8):
            sram.allocate(round_ * 100 + i)
        assert sram.free == 0
        for i in range(8):
            sram.release(round_ * 100 + i)
        assert sram.free == 8
