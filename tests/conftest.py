"""Shared fixtures: small, fast cluster configurations for tests."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterConfig, MindCluster
from repro.core.mmu import MindConfig


def small_cluster(
    num_compute: int = 2,
    num_memory: int = 1,
    cache_pages: int = 64,
    **mind_kwargs,
) -> MindCluster:
    """A tiny rack that builds in milliseconds for unit-level tests."""
    mind = MindConfig(
        directory_capacity=mind_kwargs.pop("directory_capacity", 256),
        memory_blade_capacity=mind_kwargs.pop("memory_blade_capacity", 1 << 26),
        enable_bounded_splitting=mind_kwargs.pop("enable_bounded_splitting", False),
        **mind_kwargs,
    )
    return MindCluster(
        ClusterConfig(
            num_compute_blades=num_compute,
            num_memory_blades=num_memory,
            cache_capacity_pages=cache_pages,
            mind=mind,
        )
    )


@pytest.fixture
def cluster() -> MindCluster:
    return small_cluster()


@pytest.fixture
def big_cache_cluster() -> MindCluster:
    return small_cluster(cache_pages=4096)
