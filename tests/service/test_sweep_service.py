"""kvs_service as a sweep workload: dispatch, metrics, guard rails."""

import dataclasses

import pytest

from repro.faults import FaultPlan
from repro.sweep import SweepSpec
from repro.sweep.engine import execute_point, run_sweep
from repro.sweep.presets import preset_grids
from repro.sweep.spec import parse_grid

GRID = (
    "system=mind;workload=kvs_service;blades=2;threads_per_blade=2;"
    "tenants=2;clients_per_tenant=2;requests_per_client=24;max_slots=4;"
    "chaos=none"
)


def service_point():
    return SweepSpec.from_grids([parse_grid(GRID)], seeds=(1,)).points()[0]


class TestDispatch:
    def test_point_executes_and_carries_availability_metrics(self):
        record = execute_point(service_point())
        metrics = record.metrics
        for tenant in range(2):
            assert f"gauge:svc:t{tenant}:availability" in metrics
            assert f"gauge:svc:t{tenant}:slo_compliance" in metrics
            assert f"gauge:svc:t{tenant}:unavailability_us" in metrics
            assert metrics[f"counter:svc:t{tenant}:completions"] > 0
        assert "gauge:svc:slots_final" in metrics
        assert "latency:svc:latency:p999" in metrics
        assert record.timeline is not None

    def test_initial_slots_follow_threads_per_blade(self):
        # The structural axis seeds the pool size unless overridden.
        record = execute_point(service_point())
        assert record.metrics["gauge:svc:slots_final"] >= 1

    def test_external_fault_plan_rejected(self):
        plan = FaultPlan(seed=1).switch_crash(at_us=1_000.0)
        with pytest.raises(ValueError, match="own chaos plan"):
            execute_point(service_point(), fault_plan=plan)

    def test_trace_capture_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            execute_point(service_point(), with_trace=True)

    def test_build_workload_refuses_service_points(self):
        with pytest.raises(ValueError, match="service scenario"):
            service_point().build_workload()


class TestSpecGuards:
    def test_service_workload_requires_mind(self):
        with pytest.raises(ValueError, match="only runs on"):
            parse_grid(GRID.replace("system=mind", "system=mind,gam"))

    def test_unknown_service_param_rejected(self):
        bad = dataclasses.replace(
            service_point(), workload_params=(("warp_factor", 9),)
        )
        with pytest.raises(ValueError, match="warp_factor"):
            execute_point(bad)


class TestQuickPreset:
    def test_kvs_service_quick_is_jobs_invariant(self):
        grids = preset_grids("kvs-service-quick")
        # Trim to the cheapest column for the unit test; CI runs the full
        # preset in its smoke step.
        spec = SweepSpec.from_grids(grids, seeds=(1,))
        points = [p for p in spec.points() if dict(p.workload_params)["chaos"] is None]
        assert points, "quick preset lost its chaos=none column"
        serial = execute_point(points[0])
        again = execute_point(points[0])
        assert serial.metrics == again.metrics
        assert serial.timeline == again.timeline

    def test_quick_preset_parallel_matches_serial(self):
        spec = SweepSpec.from_grids(
            [parse_grid(GRID.replace("chaos=none", "chaos=none,crash;"
                                     "chaos_crash_at_us=1200"))],
            seeds=(1,),
        )
        serial = run_sweep(spec, jobs=1).to_json_text()
        parallel = run_sweep(spec, jobs=2).to_json_text()
        assert serial == parallel
