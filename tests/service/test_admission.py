"""ServiceAdmission: verdicts, storm detection, graceful degradation."""

import pytest

from repro.service import (
    ADMIT,
    REJECT_DEGRADED,
    REJECT_PENDING,
    REJECT_QUEUE,
    ServiceAdmission,
)


def gate(**overrides):
    kwargs = dict(
        num_tenants=3,
        tenant_queue_cap=2,
        storm_window_us=100.0,
        storm_enter_retries=4,
        storm_exit_retries=1,
    )
    kwargs.update(overrides)
    return ServiceAdmission(**kwargs)


class TestValidation:
    def test_needs_a_tenant(self):
        with pytest.raises(ValueError):
            gate(num_tenants=0)

    def test_queue_cap_positive(self):
        with pytest.raises(ValueError):
            gate(tenant_queue_cap=0)

    def test_highwater_in_range(self):
        with pytest.raises(ValueError):
            gate(pending_highwater=0.0)
        with pytest.raises(ValueError):
            gate(pending_highwater=1.5)

    def test_exit_threshold_below_enter(self):
        with pytest.raises(ValueError):
            gate(storm_enter_retries=4, storm_exit_retries=4)


class TestGate:
    def test_admits_until_queue_cap_then_rejects(self):
        g = gate()
        assert g.try_admit(0.0, 0) == ADMIT
        assert g.try_admit(1.0, 0) == ADMIT
        assert g.try_admit(2.0, 0) == REJECT_QUEUE
        g.note_done(0)
        assert g.try_admit(3.0, 0) == ADMIT

    def test_queue_budget_is_per_tenant(self):
        g = gate()
        assert g.try_admit(0.0, 0) == ADMIT
        assert g.try_admit(1.0, 0) == ADMIT
        # Tenant 0 is full; tenant 1 has its own budget.
        assert g.try_admit(2.0, 0) == REJECT_QUEUE
        assert g.try_admit(3.0, 1) == ADMIT

    def test_note_done_without_admit_raises(self):
        with pytest.raises(RuntimeError):
            gate().note_done(0)

    def test_pending_table_highwater_rejects(self):
        load = {"value": 0.2}
        g = gate(pending_load=lambda: load["value"], pending_highwater=0.85)
        assert g.try_admit(0.0, 0) == ADMIT
        load["value"] = 0.9
        assert g.try_admit(1.0, 0) == REJECT_PENDING
        load["value"] = 0.2
        assert g.try_admit(2.0, 0) == ADMIT


class TestStormDefense:
    def test_storm_sheds_lowest_priority_tenant_first(self):
        g = gate()
        for t in range(4):
            g.note_retry(float(t))
        assert g.in_storm
        assert g.shed_level == 1
        assert g.is_shed(2)
        assert not g.is_shed(1) and not g.is_shed(0)
        assert g.try_admit(5.0, 2) == REJECT_DEGRADED
        assert g.try_admit(5.0, 0) == ADMIT

    def test_storm_exit_restores_everyone(self):
        g = gate()
        for t in range(4):
            g.note_retry(float(t))
        assert g.in_storm
        # Long quiet spell: the window drains below the exit threshold.
        assert g.try_admit(500.0, 2) == ADMIT
        assert not g.in_storm
        assert g.shed_level == 0
        assert len(g.storm_windows) == 1
        start, end = g.storm_windows[0]
        assert start == 3.0 and end == 500.0

    def test_escalates_one_tenant_per_window_never_tenant_zero(self):
        g = gate()
        # A persistent storm: retries every 10us for 250us.  Entry fires
        # at t=30 (4 retries in window); one escalation per full window
        # after that, capped so tenant 0 is never shed.
        for t in range(0, 260, 10):
            g.note_retry(float(t))
        assert g.in_storm
        assert g.shed_level == 2
        assert g.is_shed(1) and g.is_shed(2)
        assert not g.is_shed(0)
        assert g.try_admit(251.0, 0) == ADMIT

    def test_defense_off_detects_but_never_sheds(self):
        g = gate(storm_defense=False)
        for t in range(0, 260, 10):
            g.note_retry(float(t))
        assert g.in_storm
        assert g.shed_level == 0
        assert g.try_admit(251.0, 2) == ADMIT

    def test_finalize_closes_open_storm(self):
        g = gate()
        for t in range(4):
            g.note_retry(float(t))
        assert g.in_storm
        g.finalize(200.0)
        assert not g.in_storm
        assert g.storm_windows == [(3.0, 200.0)]
        # Idempotent when no storm is open.
        g.finalize(300.0)
        assert len(g.storm_windows) == 1

    def test_retry_window_prunes_old_entries(self):
        g = gate()
        g.note_retry(0.0)
        g.note_retry(1.0)
        assert g.recent_retry_count == 2
        g.note_retry(500.0)
        assert g.recent_retry_count == 1
