"""End-to-end serving scenario: accounting, chaos wiring, determinism."""

import pytest

from repro.faults.plan import BladeOutage, LinkLossWindow, SwitchCrash
from repro.service import (
    CHAOS_MODES,
    ServiceConfig,
    config_from_params,
    dump_service_json,
    rerun_without_defense,
    run_service,
    service_objectives,
)


def quick_config(**overrides):
    """A small rack that still crosses the failover path when asked."""
    kwargs = dict(
        num_compute_blades=2,
        tenants=2,
        clients_per_tenant=2,
        requests_per_client=32,
        max_slots=4,
        chaos="none",
        chaos_crash_at_us=1_200.0,
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


class TestConfig:
    def test_unknown_chaos_mode_rejected(self):
        with pytest.raises(ValueError):
            quick_config(chaos="meteor").validate()

    def test_none_chaos_normalizes(self):
        # Grid strings parse a literal "none" into Python None.
        config = quick_config(chaos=None).validate()
        assert config.chaos == "none"

    def test_config_from_params_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            config_from_params({"tenants": 2, "warp_factor": 9})

    def test_config_from_params_applies_overrides(self):
        config = config_from_params({"tenants": 2}, seed=9)
        assert config.tenants == 2 and config.seed == 9

    def test_rerun_without_defense_only_flips_the_flag(self):
        config = quick_config(storm_defense=True)
        undefended = rerun_without_defense(config).config
        assert not undefended.storm_defense
        assert undefended.tenants == config.tenants
        assert undefended.seed == config.seed

    def test_chaos_plan_composition(self):
        config = quick_config(chaos="full")
        plan = config.chaos_plan(start_us=100.0)
        kinds = {type(ev) for ev in plan.events}
        assert kinds == {SwitchCrash, LinkLossWindow, BladeOutage}
        crash = next(e for e in plan.events if isinstance(e, SwitchCrash))
        assert crash.at_us == 100.0 + config.chaos_crash_at_us

    def test_no_chaos_means_no_plan(self):
        assert quick_config(chaos="none").chaos_plan(0.0) is None

    def test_objectives_cover_every_tenant_plus_aggregate(self):
        config = quick_config(tenants=3)
        objectives = service_objectives(config)
        assert [o.name for o in objectives] == [
            "svc-t0-p999", "svc-t1-p999", "svc-t2-p999", "svc-p999",
        ]
        assert all(o.threshold_us == config.slo_p999_us for o in objectives)


class TestRunService:
    def test_every_request_is_accounted_for(self):
        sr = run_service(quick_config())
        expected = 2 * 32  # clients_per_tenant * requests_per_client
        for summary in sr.tenants:
            assert summary.arrivals == expected
            assert summary.completions + summary.failed == summary.arrivals
            assert 0.0 < summary.availability <= 1.0
        assert sr.completed == sum(t.completions for t in sr.tenants)
        assert sr.completed == sr.result.total_accesses

    def test_slo_report_and_telemetry_present(self):
        sr = run_service(quick_config())
        assert len(sr.slo.results) == 3  # two tenants + aggregate
        assert sr.result.stats.timeline is not None
        assert sr.serving_start_us > 0.0

    def test_autoscaler_reacts_to_load(self):
        # Crank the arrival rate (so the queue visibly outruns the pool)
        # and tighten the control loop to fit the short run.
        sr = run_service(
            quick_config(
                arrival_rate_per_client=0.08,
                requests_per_client=64,
                initial_slots=1,
                autoscale_interval_us=100.0,
                slot_bringup_us=50.0,
            )
        )
        assert any(kind == "up" for _, kind, _ in sr.scale_events)
        assert sr.result.stats.gauges["svc:slots_final"] >= 1

    def test_crash_chaos_exercises_failover(self):
        sr = run_service(quick_config(chaos="crash"))
        assert sr.outage_windows, "switch crash never fired"
        assert sr.result.stats.counter("failover_rules_installed") > 0
        assert sr.chaos_description
        # Service survives: tenants keep completing after the blip.
        assert all(t.completions > 0 for t in sr.tenants)

    def test_json_deterministic_across_reruns(self):
        a = dump_service_json(run_service(quick_config(chaos="crash")))
        b = dump_service_json(run_service(quick_config(chaos="crash")))
        assert a == b

    def test_seed_changes_the_run(self):
        a = dump_service_json(run_service(quick_config()))
        b = dump_service_json(run_service(quick_config(seed=2)))
        assert a != b

    def test_all_chaos_modes_run_to_completion(self):
        for mode in CHAOS_MODES:
            sr = run_service(
                quick_config(
                    chaos=mode,
                    # Keep full-mode blade outage inside the short run.
                    chaos_loss_start_us=400.0,
                    chaos_loss_end_us=2_000.0,
                    chaos_outage_start_us=1_500.0,
                    chaos_outage_end_us=1_800.0,
                )
            )
            assert sr.completed > 0, f"chaos={mode} completed nothing"
