"""RetryPolicy: capped doubling, seeded jitter, interleaving-free determinism."""

import pytest

from repro.service import RetryPolicy


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_base_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_us=0.0)

    def test_cap_must_cover_base(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_us=100.0, cap_us=50.0)

    def test_jitter_in_unit_interval(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_us(1, 0, 0, 0, attempt=0)


class TestBackoff:
    def test_doubles_to_the_cap_without_jitter(self):
        policy = RetryPolicy(base_us=50.0, cap_us=1_600.0, jitter=0.0)
        delays = [policy.backoff_us(1, 0, 0, 0, a) for a in range(1, 8)]
        assert delays == [50.0, 100.0, 200.0, 400.0, 800.0, 1_600.0, 1_600.0]

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(base_us=50.0, cap_us=1_600.0, jitter=0.5)
        for attempt in range(1, 6):
            ceiling = min(1_600.0, 50.0 * 2 ** (attempt - 1))
            delay = policy.backoff_us(1, 0, 0, 0, attempt)
            assert ceiling * 0.5 <= delay <= ceiling

    def test_same_identity_same_delay(self):
        policy = RetryPolicy()
        a = policy.backoff_us(7, 1, 2, 3, 1)
        b = policy.backoff_us(7, 1, 2, 3, 1)
        assert a == b

    def test_distinct_identities_decorrelate(self):
        # The whole point of seeded per-attempt jitter: simultaneous
        # rejections do not come back as one synchronized wave.
        policy = RetryPolicy()
        delays = {
            policy.backoff_us(7, tenant, client, index, 1)
            for tenant in range(3)
            for client in range(3)
            for index in range(4)
        }
        assert len(delays) == 36

    def test_delay_independent_of_call_order(self):
        # Jitter comes from a stable_seed child stream keyed by request
        # identity, not from a shared RNG, so interleaving cannot matter.
        policy = RetryPolicy()
        forward = [policy.backoff_us(3, 0, 0, i, 1) for i in range(8)]
        backward = [policy.backoff_us(3, 0, 0, i, 1) for i in reversed(range(8))]
        assert forward == list(reversed(backward))
