"""Sweep engine tests: determinism, fan-out, resume, aggregation."""

import json

import pytest

from repro.sweep import (
    SweepResults,
    SweepSpec,
    execute_point,
    run_sweep,
)
from repro.sweep.engine import aggregate

#: small but non-trivial: 2 systems x 2 thread counts x 2 seeds = 8 points.
GRID = (
    "system=mind,gam;workload=uniform;blades=1;threads_per_blade=1,2;"
    "accesses_per_thread=150;shared_pages=64;private_pages_per_thread=32;"
    "num_memory_blades=2;epoch_us=2000"
)


def small_spec(seeds=(1, 2)):
    return SweepSpec.from_grids([GRID], seeds=list(seeds))


class TestSerialExecution:
    def test_runs_every_point_in_order(self):
        spec = small_spec()
        results = run_sweep(spec, jobs=1)
        assert len(results) == 8
        assert [r.point.point_id for r in results.records] == [
            p.point_id for p in spec.points()
        ]
        for record in results.records:
            assert record.metrics["runtime_us"] > 0
            assert record.metrics["total_accesses"] == (
                150 * record.point.num_threads
            )

    def test_rerun_is_identical(self):
        a = run_sweep(small_spec(), jobs=1).to_json_text()
        b = run_sweep(small_spec(), jobs=1).to_json_text()
        assert a == b


class TestParallelExecution:
    def test_jobs2_byte_identical_to_jobs1(self):
        """The acceptance bar: worker fan-out never changes the document."""
        serial = run_sweep(small_spec(), jobs=1).to_json_text()
        parallel = run_sweep(small_spec(), jobs=2).to_json_text()
        assert parallel == serial

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(small_spec(), jobs=0)


class TestResume:
    def test_partial_document_resumes(self, tmp_path):
        out = str(tmp_path / "sweep.json")
        spec = small_spec()
        run_sweep(spec, jobs=1, out=out)
        full_text = (tmp_path / "sweep.json").read_text()

        # Truncate to 3 completed points, as if the run was interrupted.
        doc = json.loads(full_text)
        doc["points"] = doc["points"][:3]
        doc["complete"] = False
        (tmp_path / "sweep.json").write_text(json.dumps(doc))

        executed = []
        resumed = run_sweep(
            spec, jobs=1, out=out,
            progress=lambda done, total, point: executed.append(point.point_id),
        )
        # Only the 5 missing points ran; the document is the full one again.
        assert len(executed) == 5
        assert resumed.to_json_text() == full_text
        assert json.loads((tmp_path / "sweep.json").read_text())["complete"]

    def test_resume_ignores_other_specs_document(self, tmp_path):
        out = str(tmp_path / "sweep.json")
        other = SweepSpec.from_grids(
            ["system=mind;workload=uniform;blades=1;threads_per_blade=1;"
             "accesses_per_thread=50;shared_pages=32;private_pages_per_thread=16"],
            seeds=[1],
        )
        run_sweep(other, jobs=1, out=out)
        executed = []
        run_sweep(
            small_spec(), jobs=1, out=out,
            progress=lambda done, total, point: executed.append(point.point_id),
        )
        assert len(executed) == 8  # nothing reused

    def test_no_resume_flag_reruns(self, tmp_path):
        out = str(tmp_path / "sweep.json")
        spec = small_spec(seeds=(1,))
        run_sweep(spec, jobs=1, out=out)
        executed = []
        run_sweep(
            spec, jobs=1, out=out, resume=False,
            progress=lambda done, total, point: executed.append(point.point_id),
        )
        assert len(executed) == 4


class TestDocument:
    def test_schema_and_shape(self, tmp_path):
        out = str(tmp_path / "sweep.json")
        results = run_sweep(small_spec(), jobs=1, out=out)
        doc = SweepResults.load_doc(out)
        assert doc["schema"] == "repro.sweep/v1"
        assert doc["complete"] is True
        assert doc["num_points"] == 8
        assert len(doc["aggregates"]) == 4  # 8 points, 2 seeds per cell
        assert doc == results.to_doc()

    def test_aggregate_cache_is_transparent(self):
        # The checkpoint-path cache must change nothing: cached and
        # uncached aggregation of the same records are identical, and a
        # cell re-aggregates when its membership grows.
        results = run_sweep(small_spec(), jobs=1)
        cache = {}
        first = aggregate(results.records, cache=cache)
        assert first == aggregate(results.records)
        assert aggregate(results.records, cache=cache) == first
        # Drop one record: the affected cell's key no longer matches, so
        # the stale cached entry is not reused.
        partial = aggregate(results.records[:-1], cache=cache)
        assert partial != first
        assert partial == aggregate(results.records[:-1])

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError, match="schema"):
            SweepResults.load_doc(str(path))

    def test_aggregates_summarize_across_seeds(self):
        results = run_sweep(small_spec(), jobs=1)
        (cell,) = [
            c
            for c in aggregate(results.records)
            if c["system"] == "mind" and c["threads_per_blade"] == 2
        ]
        assert cell["seeds"] == [1, 2]
        summary = cell["metrics"]["runtime_us"]
        values = [
            r.metrics["runtime_us"]
            for r in results.lookup(system="mind", threads_per_blade=2)
        ]
        assert summary["n"] == 2
        assert summary["mean"] == pytest.approx(sum(values) / 2)
        assert summary["min"] == min(values)
        assert summary["max"] == max(values)
        assert summary["min"] <= summary["p50"] <= summary["max"]

    def test_no_wallclock_in_document(self, tmp_path):
        out = str(tmp_path / "sweep.json")
        run_sweep(small_spec(seeds=(1,)), jobs=1, out=out)
        text = (tmp_path / "sweep.json").read_text()
        for banned in ("time", "date", "host"):
            assert f'"{banned}"' not in text


class TestLookup:
    def test_lookup_by_field_and_param(self):
        results = run_sweep(small_spec(seeds=(1,)), jobs=1)
        assert len(results.lookup(system="mind")) == 2
        assert len(results.lookup(threads_per_blade=2)) == 2
        assert len(results.lookup(num_memory_blades=2)) == 4

    def test_one_requires_unique_match(self):
        results = run_sweep(small_spec(seeds=(1,)), jobs=1)
        record = results.one(system="mind", threads_per_blade=1)
        assert record.point.system == "mind"
        with pytest.raises(KeyError):
            results.one(system="mind")
        with pytest.raises(KeyError):
            results.one(system="does-not-exist")


class TestExecutePoint:
    def test_tracing_records_jsonl_without_perturbing_metrics(self):
        spec = small_spec(seeds=(1,))
        point = spec.points()[0]
        plain = execute_point(point)
        traced = execute_point(point, with_trace=True)
        assert plain.trace_jsonl is None
        assert traced.trace_jsonl
        assert traced.metrics["runtime_us"] == plain.metrics["runtime_us"]
