"""The kernel-fast-path determinism contract, enforced end to end.

The checked-in CI baseline (``benchmarks/BENCH_baseline.json``) predates
the kernel fast paths, so replaying its spec today and getting *exactly*
the recorded metrics proves the fast paths changed no simulated result
-- not within a tolerance: to the last bit of every float.  Any
intentional model change that re-blesses the baseline keeps this test
meaningful for the next kernel change.
"""

import json
import os

import pytest

from repro.sweep.engine import execute_point
from repro.sweep.spec import SweepPoint

BASELINE = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "BENCH_baseline.json"
)


def _baseline_points():
    with open(BASELINE) as fh:
        doc = json.load(fh)
    assert doc["schema"] == "repro.sweep/v1"
    return doc["points"]


@pytest.mark.parametrize(
    "recorded",
    _baseline_points(),
    ids=lambda rec: rec["point_id"][:12],
)
def test_ci_quick_cell_matches_baseline_exactly(recorded):
    point = SweepPoint.from_json(recorded)
    fresh = execute_point(point).metrics
    # Newer code may *add* metrics (e.g. the transaction-engine counters
    # postdate this baseline), but every metric the baseline records must
    # still exist and be bit-for-bit identical.
    missing = set(recorded["metrics"]) - set(fresh)
    assert not missing, f"metrics vanished since the baseline: {sorted(missing)}"
    mismatched = {
        name: (fresh[name], want)
        for name, want in recorded["metrics"].items()
        if fresh[name] != want
    }
    assert not mismatched, f"simulated results drifted: {mismatched}"
