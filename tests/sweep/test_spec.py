"""Unit tests for the sweep grid language and point handles."""

import pickle

import pytest

from repro.runner import RunnerConfig
from repro.sweep import (
    GridSpec,
    SweepPoint,
    SweepSpec,
    build_workload_cached,
    parse_grid,
)
from repro.sweep.presets import PRESETS, preset_grids
from repro.sweep.spec import clear_workload_cache


class TestParseGrid:
    def test_axes_and_value_types(self):
        grid = parse_grid("system=mind,gam;blades=1,2;read_ratio=0.5;name=x")
        assert grid.axes["system"] == ["mind", "gam"]
        assert grid.axes["blades"] == [1, 2]
        assert grid.axes["read_ratio"] == [0.5]
        assert grid.axes["name"] == ["x"]

    def test_axis_order_preserved(self):
        grid = parse_grid("b=1;a=2;c=3")
        assert list(grid.axes) == ["b", "a", "c"]

    @pytest.mark.parametrize(
        "text", ["", "=1,2", "system", "system=mind;system=gam", "blades="]
    )
    def test_malformed_grids_rejected(self, text):
        with pytest.raises(ValueError):
            parse_grid(text)

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            parse_grid("system=nonsense")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            parse_grid("workload=nonsense")


class TestExpansion:
    def test_cartesian_product_with_seeds(self):
        grid = parse_grid("system=mind,gam;blades=1,2")
        points = grid.expand(seeds=[1, 2])
        assert len(points) == 8
        # Deterministic order: declaration order, seeds innermost.
        assert [(p.system, p.num_blades, p.seed) for p in points[:4]] == [
            ("mind", 1, 1),
            ("mind", 1, 2),
            ("mind", 2, 1),
            ("mind", 2, 2),
        ]

    def test_seed_axis_overrides_seed_list(self):
        grid = parse_grid("system=mind;seed=7")
        points = grid.expand(seeds=[1, 2, 3])
        assert [p.seed for p in points] == [7]

    def test_param_split_runner_vs_workload(self):
        grid = parse_grid(
            "system=mind;workload=uniform;read_ratio=0.5;num_memory_blades=2;"
            "epoch_us=2000;accesses_per_thread=100"
        )
        (point,) = grid.expand()
        assert dict(point.runner_params) == {
            "num_memory_blades": 2,
            "epoch_us": 2000,
        }
        assert dict(point.workload_params) == {
            "read_ratio": 0.5,
            "accesses_per_thread": 100,
        }
        config = point.runner_config()
        assert isinstance(config, RunnerConfig)
        assert config.num_memory_blades == 2

    def test_num_threads(self):
        grid = parse_grid("blades=4;threads_per_blade=10")
        (point,) = grid.expand()
        assert point.num_threads == 40

    def test_spec_dedupes_overlapping_grids(self):
        spec = SweepSpec.from_grids(
            ["system=mind;blades=1,2", "system=mind;blades=2,4"], seeds=[1]
        )
        assert [p.num_blades for p in spec.points()] == [1, 2, 4]


class TestIdentity:
    def test_point_id_stable_and_seed_sensitive(self):
        a = SweepPoint("mind", "uniform", 2, 2, 1)
        b = SweepPoint("mind", "uniform", 2, 2, 1)
        c = SweepPoint("mind", "uniform", 2, 2, 2)
        assert a.point_id == b.point_id
        assert a.point_id != c.point_id
        # Seeds share a cell; systems do not.
        assert a.cell_id == c.cell_id
        assert a.cell_id != SweepPoint("gam", "uniform", 2, 2, 1).cell_id

    def test_roundtrip_json(self):
        point = SweepPoint(
            "mind", "uniform", 2, 2, 3,
            workload_params=(("read_ratio", 0.5),),
            runner_params=(("epoch_us", 2000),),
        )
        again = SweepPoint.from_json(point.to_json())
        assert again == point
        assert again.point_id == point.point_id

    def test_points_pickle(self):
        point = SweepPoint("mind", "uniform", 1, 2, 1)
        assert pickle.loads(pickle.dumps(point)) == point


class TestWorkloadCache:
    def test_same_handle_reuses_instance_across_systems(self):
        clear_workload_cache()
        mind = SweepPoint("mind", "uniform", 1, 2, 1,
                          workload_params=(("accesses_per_thread", 50),))
        gam = SweepPoint("gam", "uniform", 1, 2, 1,
                         workload_params=(("accesses_per_thread", 50),))
        assert build_workload_cached(mind) is build_workload_cached(gam)

    def test_different_seed_different_instance(self):
        clear_workload_cache()
        a = SweepPoint("mind", "uniform", 1, 2, 1)
        b = SweepPoint("mind", "uniform", 1, 2, 2)
        assert build_workload_cached(a) is not build_workload_cached(b)


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_parse_and_expand(self, name):
        grids = preset_grids(name)
        assert grids
        for grid in grids:
            assert isinstance(grid, GridSpec)
            assert grid.expand(seeds=[1])

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown preset"):
            preset_grids("nope")
