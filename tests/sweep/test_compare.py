"""Regression-gate tests: improved / regressed / unchanged classification."""

import copy

import pytest

from repro.sweep import compare
from repro.sweep.compare import GATED_METRICS, IMPROVED, REGRESSED, UNCHANGED


def _doc(cells):
    return {"schema": "repro.sweep/v1", "aggregates": cells}


def _cell(cell_id="c1", **metrics):
    defaults = {"runtime_us": 1000.0, "throughput_iops": 2.0e6}
    defaults.update(metrics)
    return {
        "cell_id": cell_id,
        "system": "mind",
        "workload": "uniform",
        "num_blades": 2,
        "threads_per_blade": 2,
        "workload_params": {"read_ratio": 0.5},
        "runner_params": {},
        "seeds": [1, 2],
        "metrics": {
            name: {"mean": value, "p50": value, "p99": value,
                   "min": value, "max": value, "n": 2.0}
            for name, value in defaults.items()
        },
    }


def _perturb(doc, metric, factor):
    out = copy.deepcopy(doc)
    for cell in out["aggregates"]:
        if metric in cell["metrics"]:
            for stat in cell["metrics"][metric]:
                if stat != "n":
                    cell["metrics"][metric][stat] *= factor
    return out


class TestClassification:
    def test_identical_documents_pass(self):
        doc = _doc([_cell()])
        report = compare(doc, doc, tolerance=0.15)
        assert not report.has_regressions
        assert all(e.status == UNCHANGED for e in report.entries)

    def test_latency_regression_detected(self):
        """The CI acceptance scenario: +25% latency must go red at 15%."""
        baseline = _doc([_cell(**{"latency:fault:mean": 8.0,
                                  "latency:fault:p99": 20.0})])
        current = _perturb(baseline, "latency:fault:mean", 1.25)
        report = compare(baseline, current, tolerance=0.15)
        assert report.has_regressions
        (entry,) = report.regressions
        assert entry.metric == "latency:fault:mean"
        assert entry.delta == pytest.approx(0.25)

    def test_runtime_regression_detected(self):
        baseline = _doc([_cell()])
        report = compare(baseline, _perturb(baseline, "runtime_us", 1.25), 0.15)
        assert [e.metric for e in report.regressions] == ["runtime_us"]

    def test_throughput_direction_is_higher_better(self):
        baseline = _doc([_cell()])
        slower = compare(baseline, _perturb(baseline, "throughput_iops", 0.7), 0.15)
        assert [e.metric for e in slower.regressions] == ["throughput_iops"]
        faster = compare(baseline, _perturb(baseline, "throughput_iops", 1.3), 0.15)
        assert not faster.has_regressions
        assert [e.metric for e in faster.improvements] == ["throughput_iops"]

    def test_runtime_improvement_classified(self):
        baseline = _doc([_cell()])
        report = compare(baseline, _perturb(baseline, "runtime_us", 0.7), 0.15)
        assert [e.metric for e in report.improvements] == ["runtime_us"]

    def test_within_tolerance_is_unchanged(self):
        baseline = _doc([_cell()])
        report = compare(baseline, _perturb(baseline, "runtime_us", 1.10), 0.15)
        assert all(e.status == UNCHANGED for e in report.entries)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare(_doc([]), _doc([]), tolerance=-0.1)


class TestCellMatching:
    def test_missing_and_new_cells_are_not_regressions(self):
        baseline = _doc([_cell("old")])
        current = _doc([_cell("new")])
        report = compare(baseline, current, tolerance=0.15)
        assert not report.has_regressions
        assert len(report.missing_cells) == 1
        assert len(report.new_cells) == 1

    def test_metrics_missing_on_either_side_are_skipped(self):
        baseline = _doc([_cell(**{"latency:fault:mean": 8.0})])
        current = _doc([_cell()])  # no latency metric
        report = compare(baseline, current, tolerance=0.15)
        assert {e.metric for e in report.entries} == {
            "runtime_us", "throughput_iops",
        }


class TestRender:
    def test_render_mentions_gate_status(self):
        baseline = _doc([_cell()])
        ok = compare(baseline, baseline, 0.15)
        assert "gate: OK" in ok.render()
        bad = compare(baseline, _perturb(baseline, "runtime_us", 2.0), 0.15)
        assert "gate: FAILED" in bad.render()
        assert "runtime_us" in bad.render()

    def test_gated_metrics_cover_headline_perf(self):
        assert "runtime_us" in GATED_METRICS
        assert GATED_METRICS["throughput_iops"] is True
        assert GATED_METRICS["latency:fault:p99"] is False

    def test_to_json_shape(self):
        baseline = _doc([_cell()])
        data = compare(baseline, _perturb(baseline, "runtime_us", 2.0), 0.15).to_json()
        assert data["gate_ok"] is False
        assert data["regressed"][0]["metric"] == "runtime_us"
        assert data["regressed"][0]["status"] == REGRESSED
        assert IMPROVED == "improved"
