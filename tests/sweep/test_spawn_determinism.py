"""Spawn-context determinism: worker processes replay points byte-for-byte.

The sweep engine's whole contract rests on one property: executing a
point in a freshly spawned worker process yields exactly the bytes that
executing it in the parent process would.  These tests prove it the hard
way -- full event traces, with a fault plan whose packet-loss rolls
exercise the RNG streams that fork/spawn differences would corrupt.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.faults import FaultPlan
from repro.sweep import SweepSpec, execute_point
from repro.sweep.engine import reseed_plan_for_point

GRID = (
    "system=mind;workload=uniform;blades=2;threads_per_blade=2;"
    "accesses_per_thread=200;shared_pages=64;private_pages_per_thread=32;"
    "num_memory_blades=2;epoch_us=2000"
)


def lossy_plan(seed=99):
    # Packet loss makes per-packet RNG rolls part of the trace: any
    # divergence in child RNG streams changes retransmission timing.
    return FaultPlan(seed=seed).packet_loss(100.0, 4_000.0, prob=0.05)


def the_point():
    (point,) = SweepSpec.from_grids([GRID], seeds=[1]).points()
    return point


class TestSpawnDeterminism:
    def test_worker_trace_matches_in_process(self):
        point = the_point()
        plan = lossy_plan()
        local = execute_point(point, fault_plan=plan, with_trace=True)
        assert local.metrics["counter:link_packets_dropped"] > 0

        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            remote = pool.submit(
                execute_point, point, lossy_plan(), True
            ).result()

        assert remote.trace_jsonl == local.trace_jsonl
        assert remote.metrics == local.metrics

    def test_in_process_replay_matches_itself(self):
        point = the_point()
        a = execute_point(point, fault_plan=lossy_plan(), with_trace=True)
        b = execute_point(point, fault_plan=lossy_plan(), with_trace=True)
        assert a.trace_jsonl == b.trace_jsonl


class TestReseedDerivation:
    def test_derived_seed_is_pure(self):
        point = the_point()
        a = reseed_plan_for_point(lossy_plan(), point)
        b = reseed_plan_for_point(lossy_plan(), point)
        assert a.seed == b.seed
        assert a.events == b.events

    def test_derived_seed_varies_with_point_and_plan(self):
        spec = SweepSpec.from_grids([GRID], seeds=[1, 2])
        p1, p2 = spec.points()
        plan = lossy_plan()
        assert (
            reseed_plan_for_point(plan, p1).seed
            != reseed_plan_for_point(plan, p2).seed
        )
        assert (
            reseed_plan_for_point(lossy_plan(seed=1), p1).seed
            != reseed_plan_for_point(lossy_plan(seed=2), p1).seed
        )

    def test_reseeding_does_not_mutate_parent_plan(self):
        plan = lossy_plan(seed=42)
        derived = reseed_plan_for_point(plan, the_point())
        assert plan.seed == 42
        assert derived is not plan
        assert derived.events == plan.events

    def test_faulted_metrics_differ_from_clean_run(self):
        point = the_point()
        clean = execute_point(point)
        faulted = execute_point(point, fault_plan=lossy_plan())
        assert faulted.metrics["runtime_us"] > clean.metrics["runtime_us"]


class TestFaultPlanGuards:
    def test_gam_rejects_fault_plans_through_sweep(self):
        (point,) = SweepSpec.from_grids(
            [GRID.replace("system=mind", "system=gam")], seeds=[1]
        ).points()
        with pytest.raises(ValueError):
            execute_point(point, fault_plan=lossy_plan())
