"""GAM consistency-model behaviour: PSO semantics at the trace level."""

import numpy as np
import pytest

from repro.baselines.gam import GamSystem
from repro.sim.network import PAGE_SIZE
from repro.workloads.trace import ThreadTrace


def make_gam(num_blades=1, cache_pages=512):
    return GamSystem(
        num_blades=num_blades,
        num_memory_blades=2,
        cache_capacity_pages=cache_pages,
        memory_blade_capacity=1 << 26,
    )


def run_trace(gam, blade_idx, accesses):
    return gam.engine.run_process(
        gam.run_thread(gam.blades[blade_idx], iter(accesses))
    )


def test_write_burst_overlaps():
    """PSO: consecutive write misses to distinct pages overlap in flight."""
    gam = make_gam()
    base = gam.mmap(1 << 20)
    writes = [(base + i * PAGE_SIZE, True) for i in range(8)]
    count = run_trace(gam, 0, writes)
    assert count == 8
    # Eight sequential remote writes would take ~8 * 12 us; PSO overlaps.
    assert gam.engine.now < 8 * 12.0 * 0.7


def test_read_blocks_on_pending_write():
    """A read to a page with an in-flight write must wait for it."""
    gam = make_gam()
    base = gam.mmap(PAGE_SIZE)
    run_trace(gam, 0, [(base, True), (base, False)])
    # The read observed the completed write: page resident and dirty.
    page = gam.blades[0].cache.peek(base)
    assert page is not None and page.dirty


def test_store_buffer_capacity_backpressure():
    gam = make_gam()
    base = gam.mmap(1 << 22)
    writes = [(base + i * PAGE_SIZE, True) for i in range(64)]
    gam.engine.run_process(
        gam.run_thread(gam.blades[0], iter(writes), store_buffer_capacity=2)
    )
    # All writes landed despite the tiny buffer.
    assert gam.stats.counter("remote_accesses") == 64


def test_drain_at_trace_end():
    """run_thread returns only after every buffered write completed."""
    gam = make_gam()
    base = gam.mmap(1 << 20)
    writes = [(base + i * PAGE_SIZE, True) for i in range(4)]
    run_trace(gam, 0, writes)
    for i in range(4):
        assert gam.blades[0].cache.peek(base + i * PAGE_SIZE) is not None


def test_run_workload_reports_blade_count():
    from repro.workloads import UniformSharingWorkload

    gam = make_gam(num_blades=3)
    wl = UniformSharingWorkload(
        3, accesses_per_thread=100, shared_pages=32, private_pages_per_thread=8
    )
    result = gam.run_workload(wl)
    assert result.num_blades == 3
    assert result.system == "GAM"
