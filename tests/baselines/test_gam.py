"""Behavioural tests for the GAM software-DSM baseline."""

import pytest

from repro.baselines.gam import GamSystem
from repro.sim.network import PAGE_SIZE
from repro.workloads import UniformSharingWorkload


def make_gam(num_blades=2, cache_pages=256):
    return GamSystem(
        num_blades=num_blades,
        num_memory_blades=2,
        cache_capacity_pages=cache_pages,
        memory_blade_capacity=1 << 26,
    )


def run_access(gam, blade_idx, va, write):
    gam.engine.run_process(gam.access(gam.blades[blade_idx], va, write))


class TestAccessPath:
    def test_every_access_pays_software_cost(self):
        gam = make_gam()
        base = gam.mmap(PAGE_SIZE)
        run_access(gam, 0, base, write=False)
        t0 = gam.engine.now
        run_access(gam, 0, base, write=False)  # cache hit
        # Hit still costs ~1 us of software (10x MIND's DRAM hit).
        assert gam.engine.now - t0 > 0.5

    def test_miss_slower_than_hit(self):
        gam = make_gam()
        base = gam.mmap(PAGE_SIZE)
        t0 = gam.engine.now
        run_access(gam, 0, base, write=False)
        miss_time = gam.engine.now - t0
        t1 = gam.engine.now
        run_access(gam, 0, base, write=False)
        hit_time = gam.engine.now - t1
        assert miss_time > 5 * hit_time

    def test_directory_home_partitioned(self):
        gam = make_gam(num_blades=4)
        pages = [i * PAGE_SIZE for i in range(8)]
        homes = {gam._home_blade_for(p).blade_id for p in pages}
        assert homes == {0, 1, 2, 3}

    def test_write_invalidates_other_sharer(self):
        gam = make_gam()
        base = gam.mmap(PAGE_SIZE)
        run_access(gam, 0, base, write=False)
        run_access(gam, 1, base, write=False)
        run_access(gam, 1, base, write=True)
        assert gam.stats.counter("invalidations_sent") == 1
        assert gam.blades[0].cache.peek(base) is None

    def test_read_steal_flushes_dirty_owner(self):
        gam = make_gam()
        base = gam.mmap(PAGE_SIZE)
        run_access(gam, 0, base, write=True)
        run_access(gam, 1, base, write=False)
        assert gam.stats.counter("flushed_pages") == 1

    def test_concurrent_misses_coalesce(self):
        gam = make_gam()
        base = gam.mmap(PAGE_SIZE)
        blade = gam.blades[0]
        procs = [
            gam.engine.process(gam.access(blade, base, False)) for _ in range(5)
        ]
        gam.engine.run_until_complete(gam.engine.all_of(procs))
        assert gam.stats.counter("remote_accesses") == 1


class TestWorkloadReplay:
    def _workload(self, threads=4):
        return UniformSharingWorkload(
            threads,
            accesses_per_thread=300,
            read_ratio=0.5,
            sharing_ratio=0.5,
            shared_pages=128,
            private_pages_per_thread=32,
        )

    def test_run_workload_produces_result(self):
        gam = make_gam()
        result = gam.run_workload(self._workload())
        assert result.system == "GAM"
        assert result.total_accesses == 4 * 300
        assert result.runtime_us > 0

    def test_pso_hides_write_latency(self):
        """GAM's PSO: a write-heavy trace finishes much faster than the sum
        of its write fault latencies."""
        gam = make_gam(num_blades=1, cache_pages=8)
        wl = UniformSharingWorkload(
            1, accesses_per_thread=64, read_ratio=0.0,
            sharing_ratio=0.0, private_pages_per_thread=64,
        )
        result = gam.run_workload(wl)
        remote = result.stats.counter("remote_accesses")
        assert remote >= 35  # ~40 distinct pages out of 64 uniform draws
        # Serialized faults would take remote * ~12 us; PSO overlaps them.
        assert result.runtime_us < remote * 12.0 * 0.6

    def test_library_lock_limits_intra_blade_scaling(self):
        """Hit-dominated work scales sub-linearly past ~4 threads/blade."""
        def run(threads):
            gam = make_gam(num_blades=1, cache_pages=4096)
            wl = UniformSharingWorkload(
                threads, accesses_per_thread=400, read_ratio=1.0,
                sharing_ratio=0.0, private_pages_per_thread=16,
            )
            r = gam.run_workload(wl)
            return r.total_accesses / r.runtime_us

        one = run(1)
        ten = run(10)
        assert ten / one < 7.0  # far from linear at 10 threads
