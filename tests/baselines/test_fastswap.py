"""Behavioural tests for the FastSwap swap-based baseline."""

import pytest

from repro.baselines.fastswap import FastSwapSystem
from repro.runner import RunnerConfig, run_system
from repro.sim.network import PAGE_SIZE
from repro.workloads import UniformSharingWorkload


def make_fastswap(cache_pages=64):
    return FastSwapSystem(
        num_memory_blades=2,
        cache_capacity_pages=cache_pages,
        memory_blade_capacity=1 << 26,
    )


class TestSwapPath:
    def test_swap_in_populates_cache(self):
        fs = make_fastswap()
        base = fs.mmap(PAGE_SIZE)
        fs.engine.run_process(fs._swap_in(base, write=False))
        assert fs.cache.peek(base) is not None
        assert fs.stats.counter("remote_accesses") == 1

    def test_fault_latency_close_to_mind_clean_fetch(self):
        fs = make_fastswap()
        base = fs.mmap(PAGE_SIZE)
        t0 = fs.engine.now
        fs.engine.run_process(fs._swap_in(base, write=False))
        latency = fs.engine.now - t0
        assert 7.0 < latency < 11.0  # ~9 us, like MIND's I->S

    def test_concurrent_faults_deduplicated(self):
        fs = make_fastswap()
        base = fs.mmap(PAGE_SIZE)
        procs = [fs.engine.process(fs._swap_in(base, False)) for _ in range(4)]
        fs.engine.run_until_complete(fs.engine.all_of(procs))
        assert fs.stats.counter("remote_accesses") == 1

    def test_dirty_eviction_swaps_out(self):
        fs = make_fastswap(cache_pages=4)
        base = fs.mmap(1 << 20)
        fs.engine.run_process(fs._swap_in(base, write=True))
        for i in range(1, 6):
            fs.engine.run_process(fs._swap_in(base + i * PAGE_SIZE, write=False))
        fs.engine.run()  # drain async swap-outs
        assert fs.stats.counter("eviction_flushes") == 1
        assert fs.stats.counter("pages_written_back") == 1

    def test_pages_distributed_across_memory_blades(self):
        fs = make_fastswap()
        blades = {fs._memory_blade_for(i * PAGE_SIZE).blade_id for i in range(4)}
        assert blades == {0, 1}


class TestWorkloadReplay:
    def test_all_threads_on_one_blade(self):
        fs = make_fastswap(cache_pages=512)
        wl = UniformSharingWorkload(
            4, accesses_per_thread=300, shared_pages=64, private_pages_per_thread=16
        )
        result = fs.run_workload(wl)
        assert result.num_blades == 1
        assert result.total_accesses == 1200

    def test_no_coherence_traffic(self):
        fs = make_fastswap(cache_pages=512)
        wl = UniformSharingWorkload(
            4, accesses_per_thread=300, read_ratio=0.0, sharing_ratio=1.0,
            shared_pages=64,
        )
        result = fs.run_workload(wl)
        assert result.stats.counter("invalidations_sent") == 0

    def test_runner_rejects_multi_blade_fastswap(self):
        wl = UniformSharingWorkload(4, accesses_per_thread=100)
        with pytest.raises(ValueError):
            run_system("fastswap", wl, num_blades=2, config=RunnerConfig())

    def test_intra_blade_scaling_near_linear(self):
        def run(threads):
            fs = make_fastswap(cache_pages=8192)
            wl = UniformSharingWorkload(
                threads, accesses_per_thread=400, read_ratio=0.5,
                sharing_ratio=0.0, private_pages_per_thread=64,
            )
            r = fs.run_workload(wl)
            return r.total_accesses / r.runtime_us

        assert run(8) / run(1) > 5.0
