"""Tests for the Section 2.2 transparent-DSM strawmen."""

import pytest

from repro.baselines.dsm import DsmFlavor, TransparentDsm
from repro.sim.network import PAGE_SIZE


@pytest.fixture(params=[DsmFlavor.COMPUTE_CENTRIC, DsmFlavor.MEMORY_CENTRIC])
def dsm(request):
    system = TransparentDsm(request.param, num_compute=2, num_memory=2)
    system.mmap(1 << 16)
    return system


def run_access(dsm, node_idx, va, write):
    dsm.engine.run_process(dsm.access(dsm.nodes[node_idx], va, write))


class TestAccessPath:
    def test_hit_is_dram_speed(self, dsm):
        run_access(dsm, 0, 0, write=False)
        t0 = dsm.engine.now
        run_access(dsm, 0, 0, write=False)
        assert dsm.engine.now - t0 == pytest.approx(dsm.config.dram_access_us)

    def test_remote_homed_miss_pays_two_round_trips(self, dsm):
        # Page 1's home is node 1 / memory blade 1: remote from node 0.
        t0 = dsm.engine.now
        run_access(dsm, 0, PAGE_SIZE, write=False)
        latency = dsm.engine.now - t0
        assert latency > 12.0  # home hop + fetch, sequential

    def test_locally_homed_miss_is_cheaper_compute_centric(self):
        dsm = TransparentDsm(DsmFlavor.COMPUTE_CENTRIC, num_compute=2, num_memory=2)
        dsm.mmap(1 << 16)
        t0 = dsm.engine.now
        run_access(dsm, 0, 0, write=False)  # page 0's home is node 0
        local_home = dsm.engine.now - t0
        t1 = dsm.engine.now
        run_access(dsm, 1, PAGE_SIZE * 2, write=False)  # home = node 0, remote
        remote_home = dsm.engine.now - t1
        assert local_home < remote_home

    def test_memory_centric_home_always_remote(self):
        """Memory-centric: the home is a memory blade, so *every* miss pays
        the home round trip (and the blade needs a CPU)."""
        dsm = TransparentDsm(DsmFlavor.MEMORY_CENTRIC, num_compute=2, num_memory=2)
        dsm.mmap(1 << 16)
        latencies = []
        for page in range(2):
            t0 = dsm.engine.now
            run_access(dsm, 0, page * PAGE_SIZE, write=False)
            latencies.append(dsm.engine.now - t0)
        assert min(latencies) > 12.0

    def test_write_invalidates_sharer(self, dsm):
        run_access(dsm, 0, PAGE_SIZE, write=False)
        run_access(dsm, 1, PAGE_SIZE, write=False)
        run_access(dsm, 1, PAGE_SIZE, write=True)
        assert dsm.stats.counter("invalidations_sent") == 1
        assert dsm.nodes[0].cache.peek(PAGE_SIZE) is None

    def test_dirty_steal_flushes(self, dsm):
        run_access(dsm, 0, PAGE_SIZE, write=True)
        run_access(dsm, 1, PAGE_SIZE, write=False)
        assert dsm.stats.counter("flushed_pages") == 1

    def test_directory_tracks_msi(self, dsm):
        run_access(dsm, 0, PAGE_SIZE, write=False)
        entry = dsm.directory[PAGE_SIZE]
        assert entry.state == "S" and 0 in entry.sharers
        run_access(dsm, 1, PAGE_SIZE, write=True)
        entry = dsm.directory[PAGE_SIZE]
        assert entry.state == "M" and entry.owner == 1
