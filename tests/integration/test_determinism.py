"""Determinism regression: identical runs produce identical telemetry.

The engine never consults wall clock and breaks event-queue ties by
insertion order, so a run is a pure function of (workload, seed, config).
These tests pin that property at the observability layer: two identical
runs must agree on runtime, every counter, and the *byte-identical* trace
export -- any nondeterminism smuggled into instrumentation (dict ordering,
id()-keyed tracks, wall-clock timestamps) fails here.
"""

from repro.runner import RunnerConfig, run_system
from repro.workloads import UniformSharingWorkload


def _run(trace: bool):
    workload = UniformSharingWorkload(
        4,
        accesses_per_thread=300,
        read_ratio=0.3,
        sharing_ratio=0.7,
        shared_pages=200,
        private_pages_per_thread=64,
        seed=42,
        burst=4,
    )
    return run_system("mind", workload, 2, RunnerConfig(trace=trace))


def test_same_seed_yields_identical_run_and_trace():
    a = _run(trace=True)
    b = _run(trace=True)
    assert a.runtime_us == b.runtime_us
    assert a.total_accesses == b.total_accesses
    assert dict(a.stats.counters) == dict(b.stats.counters)
    assert a.stats.breakdowns == b.stats.breakdowns
    # Byte-identical trace output, both raw JSONL and the Chrome export.
    assert a.trace.to_jsonl() == b.trace.to_jsonl()
    assert len(a.trace) == len(b.trace)


def test_tracing_does_not_perturb_the_simulation():
    traced = _run(trace=True)
    untraced = _run(trace=False)
    assert traced.runtime_us == untraced.runtime_us
    # Telemetry-free counters agree; tracing must be observation-only.
    for key in ("remote_accesses", "invalidations_sent", "evictions"):
        assert traced.stats.counter(key) == untraced.stats.counter(key)
