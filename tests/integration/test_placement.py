"""Tests for sharing-aware thread placement (Section 8 extension)."""

import numpy as np
import pytest

from repro.placement import (
    affinity_placement,
    cross_blade_share_fraction,
    round_robin_placement,
    run_with_placement,
    sharing_affinity,
)
from repro.runner import RunnerConfig
from repro.workloads import TeamSharingWorkload


@pytest.fixture
def workload():
    return TeamSharingWorkload(8, accesses_per_thread=1200, team_size=4)


@pytest.fixture
def traces(workload):
    bases = [
        0x100000 + (1 << 32) * i for i in range(len(workload.region_specs()))
    ]
    return workload.all_traces(bases)


class TestAffinity:
    def test_matrix_symmetric_zero_diagonal(self, traces):
        affinity = sharing_affinity(traces)
        assert (affinity == affinity.T).all()
        assert (np.diag(affinity) == 0).all()

    def test_teammates_score_higher(self, workload, traces):
        affinity = sharing_affinity(traces)
        intra = affinity[0, 1]  # same team (threads 0-3)
        inter = affinity[0, 4]  # different team
        assert intra > 5 * inter

    def test_read_only_sharing_scores_zero(self):
        """Read-read sharing never invalidates; affinity must ignore it."""
        wl = TeamSharingWorkload(
            8, accesses_per_thread=800, team_size=4, team_write_ratio=0.0,
            global_fraction=0.0,
        )
        bases = [0x100000 + (1 << 32) * i for i in range(len(wl.region_specs()))]
        affinity = sharing_affinity(wl.all_traces(bases))
        assert affinity.max() == 0


class TestPlacement:
    def test_round_robin_shape(self):
        assert round_robin_placement(6, 2) == [0, 1, 0, 1, 0, 1]

    def test_affinity_placement_recovers_teams(self, traces):
        placement = affinity_placement(traces, num_blades=2, threads_per_blade=4)
        teams = [set(placement[0:4]), set(placement[4:8])]
        assert all(len(t) == 1 for t in teams), placement
        assert teams[0] != teams[1]

    def test_cross_share_fraction_bounds(self, traces):
        rr = round_robin_placement(8, 2)
        aff = affinity_placement(traces, 2, 4)
        rr_cross = cross_blade_share_fraction(traces, rr)
        aff_cross = cross_blade_share_fraction(traces, aff)
        assert 0.0 <= aff_cross < 0.2
        assert aff_cross < rr_cross <= 1.0

    def test_too_many_threads_rejected(self, traces):
        with pytest.raises(ValueError):
            affinity_placement(traces, num_blades=1, threads_per_blade=4)


class TestEndToEnd:
    def test_affinity_beats_round_robin_on_team_workload(self, workload):
        cfg = RunnerConfig(num_memory_blades=2, epoch_us=2_000.0)
        bases = [
            0x100000 + (1 << 32) * i
            for i in range(len(workload.region_specs()))
        ]
        traces = workload.all_traces(bases)
        rr = run_with_placement(
            workload, 2, round_robin_placement(8, 2), cfg
        )
        aff = run_with_placement(
            workload, 2, affinity_placement(traces, 2, 4), cfg
        )
        assert aff.runtime_us < rr.runtime_us
        assert aff.stats.counter("invalidations_sent") < (
            rr.stats.counter("invalidations_sent") / 2
        )

    def test_placement_preserves_results(self, workload):
        """Placement changes performance, never the work done."""
        cfg = RunnerConfig(num_memory_blades=2, epoch_us=2_000.0)
        bases = [
            0x100000 + (1 << 32) * i
            for i in range(len(workload.region_specs()))
        ]
        traces = workload.all_traces(bases)
        rr = run_with_placement(workload, 2, round_robin_placement(8, 2), cfg)
        aff = run_with_placement(workload, 2, affinity_placement(traces, 2, 4), cfg)
        assert rr.total_accesses == aff.total_accesses
