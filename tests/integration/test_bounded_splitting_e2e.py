"""End-to-end Bounded Splitting: real traffic drives real splits.

Unit tests drive the epoch controller with synthetic counters; here the
whole loop runs live: blades ping-pong a single hot page inside a large
region that also holds unrelated dirty pages, false invalidations
accumulate at the directory, the epoch fires, the region splits, and the
collateral damage stops.
"""

import pytest

from repro.sim.network import PAGE_SIZE

from conftest import small_cluster

KB64 = 64 * 1024


def make_cluster(epoch_us=500.0):
    return small_cluster(
        num_compute=2,
        cache_pages=256,
        enable_bounded_splitting=True,
        initial_region_size=KB64,
        epoch_us=epoch_us,
    )


def setup(cluster):
    ctl = cluster.controller
    task = ctl.sys_exec("e2e")
    base = ctl.sys_mmap(task.pid, 1 << 20)
    return task.pid, base


def ping_pong(cluster, pid, hot_va, rounds):
    b0, b1 = cluster.compute_blades
    for _ in range(rounds):
        cluster.run_process(b0.ensure_page(pid, hot_va, True))
        cluster.run_process(b1.ensure_page(pid, hot_va, True))


def test_hot_region_splits_under_real_traffic():
    cluster = make_cluster()
    pid, base = setup(cluster)
    b0, _b1 = cluster.compute_blades
    # Blade 0 dirties every other page of the hot 64 KB region: collateral.
    for i in range(1, 16, 2):
        cluster.run_process(b0.ensure_page(pid, base + i * PAGE_SIZE, True))
    # Cold neighbour regions keep the Eq. 1 threshold below the hot count.
    for i in range(16, 48):
        cluster.run_process(b0.ensure_page(pid, base + i * PAGE_SIZE, False))
    assert cluster.mmu.directory.find(base).size == KB64
    # Ping-pong page 0: every handoff falsely invalidates the dirty pages.
    ping_pong(cluster, pid, base, rounds=30)
    # Let several epochs fire.
    cluster.run(until=cluster.engine.now + 5_000)
    region = cluster.mmu.directory.find(base)
    assert region.size < KB64, "hot region should have been split"
    assert cluster.stats.counter("splits") >= 1
    # The first ping-pong handoff falsely invalidated the ~7 dirty
    # collateral pages (one-shot: they are gone afterwards).
    assert cluster.stats.counter("false_invalidations") >= 7


def test_splitting_reduces_false_invalidation_rate():
    """Collateral invalidations per ping-pong round drop once the hot page
    has been isolated into a smaller region."""
    cluster = make_cluster()
    pid, base = setup(cluster)
    b0, _b1 = cluster.compute_blades
    for i in range(1, 16, 2):
        cluster.run_process(b0.ensure_page(pid, base + i * PAGE_SIZE, True))
    for i in range(16, 48):
        cluster.run_process(b0.ensure_page(pid, base + i * PAGE_SIZE, False))
    ping_pong(cluster, pid, base, rounds=25)
    cluster.run(until=cluster.engine.now + 3_000)
    early = cluster.stats.counter("false_invalidations")
    # After splitting settles, the same traffic hurts far less.  (Pages
    # dirtied before the split were dropped by its invalidations, so the
    # hot page's region no longer contains dirty collateral.)
    ping_pong(cluster, pid, base, rounds=25)
    late = cluster.stats.counter("false_invalidations") - early
    assert late < 0.4 * early


def test_no_splits_without_false_invalidations():
    """A purely private workload never triggers splits."""
    cluster = make_cluster()
    pid, base = setup(cluster)
    b0, _b1 = cluster.compute_blades
    for i in range(64):
        cluster.run_process(b0.ensure_page(pid, base + i * PAGE_SIZE, True))
    cluster.run(until=cluster.engine.now + 3_000)
    assert cluster.stats.counter("splits") == 0


def test_directory_telemetry_series_grows():
    cluster = make_cluster(epoch_us=300.0)
    pid, base = setup(cluster)
    b0, _b1 = cluster.compute_blades
    cluster.run_process(b0.ensure_page(pid, base, True))
    cluster.run(until=cluster.engine.now + 2_000)
    series = cluster.stats.series("directory_entries")
    assert len(series) >= 5
    times = [t for t, _v in series]
    assert times == sorted(times)
