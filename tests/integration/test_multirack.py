"""Tests for the multi-rack extension (Section 8, "Scaling beyond a rack")."""

import pytest

from repro.api import SegmentationFault
from repro.core.vma import PermissionClass
from repro.multirack import MultiRackConfig, MultiRackFabric
from repro.sim.network import CONTROL_MSG_BYTES, PAGE_SIZE


@pytest.fixture
def fabric():
    return MultiRackFabric(
        MultiRackConfig(
            num_racks=2, compute_blades_per_rack=2, cache_capacity_pages=256
        )
    )


@pytest.fixture
def rig(fabric):
    pdid = fabric.spawn_process("app")
    buf0 = fabric.mmap(pdid, 1 << 16, rack=0)
    buf1 = fabric.mmap(pdid, 1 << 16, rack=1)
    return fabric, pdid, buf0, buf1


class TestPartitioning:
    def test_va_partitions_disjoint(self, rig):
        fabric, _pdid, buf0, buf1 = rig
        assert fabric.rack_of(buf0) == 0
        assert fabric.rack_of(buf1) == 1

    def test_least_loaded_rack_selection(self, fabric):
        pdid = fabric.spawn_process()
        racks = [fabric.rack_of(fabric.mmap(pdid, 1 << 16)) for _ in range(4)]
        assert sorted(set(racks)) == [0, 1]  # spread over both racks

    def test_out_of_fabric_va_rejected(self, rig):
        fabric, pdid, _b0, _b1 = rig
        blade = fabric.compute_blades[0]
        with pytest.raises(ValueError):
            fabric.run_process(blade.ensure_page(pdid, 1 << 45, False))


class TestCrossRackCoherence:
    def test_write_visible_across_racks(self, rig):
        fabric, pdid, _buf0, buf1 = rig
        b0 = fabric.compute_blades[0]  # rack 0
        b2 = fabric.compute_blades[2]  # rack 1 (home of buf1)
        fabric.run_process(b0.store_bytes(pdid, buf1, b"spine-crossing"))
        got = fabric.run_process(b2.load_bytes(pdid, buf1, 14))
        assert got == b"spine-crossing"

    def test_ownership_ping_pong_across_racks(self, rig):
        fabric, pdid, buf0, _buf1 = rig
        b0 = fabric.compute_blades[0]
        b2 = fabric.compute_blades[2]
        for i in range(6):
            writer = b0 if i % 2 == 0 else b2
            fabric.run_process(
                writer.store_bytes(pdid, buf0, bytes([i]) * 8)
            )
        final = fabric.run_process(b0.load_bytes(pdid, buf0, 8))
        assert final == bytes([5]) * 8
        assert fabric.stats.counter("invalidations_sent") >= 5

    def test_cross_rack_fault_pays_spine_latency(self, rig):
        # A read fault crosses the spine twice: the CONTROL request up to
        # the home switch and the PAGE reply back.  Each crossing pays a
        # forwarding pass at the blade's own rack plus two spine hops
        # (serialization at the oversubscribed rate + hop propagation),
        # so the unloaded premium is exactly derivable from the config.
        fabric, pdid, buf0, buf1 = rig
        b0 = fabric.compute_blades[0]
        t0 = fabric.engine.now
        fabric.run_process(b0.ensure_page(pdid, buf0, False))
        intra = fabric.engine.now - t0
        t0 = fabric.engine.now
        fabric.run_process(b0.ensure_page(pdid, buf1, False))
        cross = fabric.engine.now - t0
        expected_extra = fabric.config.spine_crossing_us(
            CONTROL_MSG_BYTES
        ) + fabric.config.spine_crossing_us(PAGE_SIZE)
        assert cross - intra == pytest.approx(expected_extra, rel=1e-9)

    def test_spine_premium_attributed_in_span_breakdown(self, rig):
        # The deferred spine time popped by the fault path must (a) equal
        # the measured intra/cross premium and (b) keep the fault_path
        # breakdown summing exactly to the recorded fault latencies.
        fabric, pdid, buf0, buf1 = rig
        b0 = fabric.compute_blades[0]
        fabric.run_process(b0.ensure_page(pdid, buf0, False))
        assert "spine" not in fabric.stats.breakdown("fault_path")
        fabric.run_process(b0.ensure_page(pdid, buf1, False))
        breakdown = fabric.stats.breakdown("fault_path")
        expected = fabric.config.spine_crossing_us(
            CONTROL_MSG_BYTES
        ) + fabric.config.spine_crossing_us(PAGE_SIZE)
        assert breakdown["spine"] == pytest.approx(expected, rel=1e-9)
        total_faults = sum(fabric.stats.latencies["fault"])
        assert sum(breakdown.values()) == pytest.approx(total_faults, rel=1e-9)

    def test_fault_locality_counters(self, rig):
        fabric, pdid, buf0, buf1 = rig
        b0 = fabric.compute_blades[0]
        fabric.run_process(b0.ensure_page(pdid, buf0, False))
        fabric.run_process(b0.ensure_page(pdid, buf1, False))
        assert fabric.stats.counter("intra_rack_faults") == 1
        assert fabric.stats.counter("cross_rack_faults") == 1

    def test_directory_lives_at_home_rack(self, rig):
        fabric, pdid, _buf0, buf1 = rig
        b0 = fabric.compute_blades[0]
        fabric.run_process(b0.ensure_page(pdid, buf1, True))
        assert fabric.racks[1].directory.find(buf1) is not None
        assert fabric.racks[0].directory.find(buf1) is None

    def test_cross_rack_flush_lands_at_home_memory(self, rig):
        """A dirty page written in rack 0 and stolen by rack 1's blade must
        be flushed back to its *home* rack's memory blade."""
        fabric, pdid, _buf0, buf1 = rig
        b0 = fabric.compute_blades[0]  # rack 0 writes rack-1-homed data
        b3 = fabric.compute_blades[3]  # rack 1 steals it
        fabric.run_process(b0.store_bytes(pdid, buf1, b"homebound"))
        fabric.run_process(b3.store_bytes(pdid, buf1, b"stolen!!!"))
        fabric.run_process(
            fabric.compute_blades[1].load_bytes(pdid, buf1, 9)
        )  # third party reads through memory
        got = fabric.run_process(fabric.compute_blades[1].load_bytes(pdid, buf1, 9))
        assert got == b"stolen!!!"


class TestIsolation:
    def test_pdid_isolation_across_racks(self, fabric):
        a = fabric.spawn_process("a")
        b = fabric.spawn_process("b")
        buf = fabric.mmap(a, PAGE_SIZE, rack=1)
        intruder = fabric.compute_blades[0]
        with pytest.raises(SegmentationFault):
            fabric.run_process(intruder.load_bytes(b, buf, 4))

    def test_read_only_enforced_cross_rack(self, fabric):
        pdid = fabric.spawn_process()
        buf = fabric.mmap(pdid, PAGE_SIZE, rack=1, perm=PermissionClass.READ_ONLY)
        blade = fabric.compute_blades[0]
        fabric.run_process(blade.load_bytes(pdid, buf, 4))  # reads fine
        with pytest.raises(SegmentationFault):
            fabric.run_process(blade.store_bytes(pdid, buf, b"no"))


def test_three_racks_all_pairs():
    fabric = MultiRackFabric(
        MultiRackConfig(num_racks=3, compute_blades_per_rack=1,
                        cache_capacity_pages=128)
    )
    pdid = fabric.spawn_process()
    bufs = [fabric.mmap(pdid, PAGE_SIZE, rack=r) for r in range(3)]
    blades = fabric.compute_blades
    for writer in range(3):
        for target_buf in bufs:
            fabric.run_process(
                blades[writer].store_bytes(
                    pdid, target_buf, f"w{writer}".encode()
                )
            )
    # Last writer everywhere was blade 2.
    for buf in bufs:
        got = fabric.run_process(blades[0].load_bytes(pdid, buf, 2))
        assert got == b"w2"
