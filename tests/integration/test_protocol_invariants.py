"""Model-based protocol invariant checks.

After *any* interleaving of reads and writes, the global state of the rack
must satisfy the MSI/MOESI safety invariants.  Hypothesis drives random op
sequences; after every operation we sweep all blades and the switch
directory and assert:

- **Single writer**: a page is writable in at most one blade's cache, and
  only when its region is Modified with that blade as owner.
- **Directory soundness**: any blade caching a page of a region appears in
  that region's sharer list (or is its owner).
- **Dirty data locatable**: a dirty cached page implies its region is in a
  dirty-capable state (M/O) at that owner, or a write-back is in flight.
- **PTE/cache agreement**: a PTE for a page implies the page is resident.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.directory import CoherenceState
from repro.sim.network import PAGE_SIZE

from conftest import small_cluster

I, S, M, O = (
    CoherenceState.INVALID,
    CoherenceState.SHARED,
    CoherenceState.MODIFIED,
    CoherenceState.OWNED,
)

ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),   # blade
        st.integers(0, 7),   # page
        st.booleans(),       # write?
    ),
    min_size=1,
    max_size=30,
)


def check_invariants(cluster, base, num_pages):
    directory = cluster.mmu.directory
    for page_idx in range(num_pages):
        va = base + page_idx * PAGE_SIZE
        region = directory.find(va)
        holders = []
        writable_holders = []
        for blade in cluster.compute_blades:
            page = blade.cache.peek(va)
            if page is None:
                continue
            holders.append(blade)
            if page.writable:
                writable_holders.append(blade)
            # PTE/cache agreement: some domain maps the resident page.
            assert va in blade.ptes, (
                f"page {va:#x} resident on blade {blade.blade_id} w/o PTE"
            )
        # Single writer, and only the region's owner.
        assert len(writable_holders) <= 1, f"page {va:#x} writable twice"
        if writable_holders:
            assert region is not None
            assert region.state is M, (
                f"writable page {va:#x} but region state {region.state}"
            )
            assert region.owner == writable_holders[0].port.port_id
        # Directory soundness: every holder is known to the directory.
        if holders:
            assert region is not None, f"page {va:#x} cached w/o region"
            for blade in holders:
                pid = blade.port.port_id
                assert pid in region.sharers or region.owner == pid, (
                    f"blade {blade.blade_id} caches {va:#x} but is not "
                    f"tracked by region {region.base:#x} ({region.state})"
                )
        # Dirty data locatable.
        for blade in holders:
            page = blade.cache.peek(va)
            if page.dirty:
                assert region.state in (M, O), (
                    f"dirty page {va:#x} in region state {region.state}"
                )


def _run_ops(protocol, ops):
    cluster = small_cluster(
        num_compute=3, cache_pages=16, protocol=protocol, directory_capacity=64
    )
    ctl = cluster.controller
    task = ctl.sys_exec("inv")
    base = ctl.sys_mmap(task.pid, 8 * PAGE_SIZE)
    for blade_idx, page_idx, write in ops:
        blade = cluster.compute_blades[blade_idx]
        va = base + page_idx * PAGE_SIZE
        cluster.run_process(blade.ensure_page(task.pid, va, write))
        check_invariants(cluster, base, 8)
    return cluster


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_msi_invariants(ops):
    _run_ops("msi", ops)


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_moesi_invariants(ops):
    _run_ops("moesi", ops)


@given(ops=ops_strategy)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_invariants_hold_under_concurrency(ops):
    """Same invariants when all ops run concurrently instead of serially
    (checked only at quiescence -- transients are serialized per region)."""
    cluster = small_cluster(num_compute=3, cache_pages=16, directory_capacity=64)
    ctl = cluster.controller
    task = ctl.sys_exec("inv")
    base = ctl.sys_mmap(task.pid, 8 * PAGE_SIZE)
    gens = [
        cluster.compute_blades[b].ensure_page(
            task.pid, base + p * PAGE_SIZE, w
        )
        for b, p, w in ops
    ]
    cluster.run_all(gens)
    cluster.run(until=cluster.engine.now + 1_000)  # drain async flushes
    check_invariants(cluster, base, 8)
