"""Integration tests for the cross-system workload runner."""

import pytest

from repro.runner import RunnerConfig, SYSTEMS, run_system, scaling_sweep
from repro.workloads import TensorFlowLikeWorkload, UniformSharingWorkload


@pytest.fixture
def cfg():
    return RunnerConfig(num_memory_blades=2, epoch_us=2_000.0)


def small_wl(num_threads=4):
    return UniformSharingWorkload(
        num_threads,
        accesses_per_thread=300,
        shared_pages=256,
        private_pages_per_thread=64,
    )


class TestDispatch:
    @pytest.mark.parametrize("system", ["mind", "mind-pso", "mind-pso+", "mind-mesi", "gam"])
    def test_every_system_runs(self, system, cfg):
        result = run_system(system, small_wl(), num_blades=2, config=cfg)
        assert result.runtime_us > 0
        assert result.total_accesses == 4 * 300

    def test_fastswap_single_blade(self, cfg):
        result = run_system("fastswap", small_wl(), num_blades=1, config=cfg)
        assert result.system == "FastSwap"

    def test_unknown_system_rejected(self, cfg):
        with pytest.raises(ValueError):
            run_system("nonsense", small_wl(), 1, cfg)

    def test_system_names_recorded(self, cfg):
        assert run_system("mind-pso", small_wl(), 1, cfg).system == "MIND-PSO"
        assert run_system("mind-pso+", small_wl(), 1, cfg).system == "MIND-PSO+"

    def test_systems_constant_lists_all(self):
        assert set(SYSTEMS) == {
            "mind", "mind-pso", "mind-pso+", "mind-mesi", "mind-moesi",
            "gam", "fastswap",
        }


class TestSmokeAllSystems:
    """One pass over every registered system, checking RunResult invariants.

    This is the cheap line of defense for new systems: anything added to
    ``SYSTEMS`` is automatically held to the bookkeeping contract that the
    sweep engine's metric extraction relies on.
    """

    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_runresult_invariants(self, system, cfg):
        num_blades = 1 if system == "fastswap" else 2
        wl = small_wl()
        result = run_system(system, wl, num_blades=num_blades, config=cfg)

        assert result.runtime_us > 0
        assert result.total_accesses == wl.num_threads * 300
        assert result.throughput_iops == pytest.approx(
            result.total_accesses / (result.runtime_us * 1e-6)
        )
        assert all(v >= 0 for v in result.stats.counters.values())

        if system.startswith("mind"):
            # Every remote access is one coherence transition and one
            # recorded fault latency -- the three books must balance.
            remote = result.stats.counters["remote_accesses"]
            transitions = sum(
                count
                for name, count in result.stats.counters.items()
                if name.startswith("transition:")
            )
            assert remote == transitions
            assert remote == len(result.stats.latencies["fault"])
            # The span breakdown must reconstruct end-to-end fault latency.
            assert result.report().fault_breakdown_error < 1e-6
        else:
            # gam/fastswap have no switch fault path: no fault latencies.
            assert "fault" not in result.stats.latencies


class TestDeterminism:
    def test_same_run_same_runtime(self, cfg):
        a = run_system("mind", small_wl(), 2, cfg)
        b = run_system("mind", small_wl(), 2, cfg)
        assert a.runtime_us == b.runtime_us
        assert dict(a.stats.counters) == dict(b.stats.counters)

    def test_identical_traces_across_systems(self, cfg):
        """The PIN-trace methodology: every system replays identical
        access streams (same total, same write mix)."""
        wl = small_wl()
        bases = [0x100000 + (1 << 30) * i for i in range(len(wl.region_specs()))]
        t1 = wl.thread_trace(0, bases)
        t2 = wl.thread_trace(0, bases)
        assert (t1.vas == t2.vas).all() and (t1.writes == t2.writes).all()


class TestScalingSweep:
    def test_sweep_runs_each_point(self, cfg):
        results = scaling_sweep(
            "mind",
            lambda n: small_wl(n),
            blade_counts=[1, 2],
            threads_per_blade=2,
            config=cfg,
        )
        assert set(results) == {1, 2}
        assert results[1].num_threads == 2
        assert results[2].num_threads == 4

    def test_pso_never_slower_than_tso_on_write_heavy(self, cfg):
        wl_factory = lambda n: UniformSharingWorkload(
            n, accesses_per_thread=300, read_ratio=0.0, sharing_ratio=0.2,
            shared_pages=256, private_pages_per_thread=64,
        )
        tso = run_system("mind", wl_factory(4), 2, cfg)
        pso = run_system("mind-pso", wl_factory(4), 2, cfg)
        assert pso.runtime_us <= tso.runtime_us * 1.05


class TestEpochCompression:
    def test_bounded_splitting_active_during_replay(self):
        cfg = RunnerConfig(num_memory_blades=2, epoch_us=300.0)
        wl = TensorFlowLikeWorkload(4, accesses_per_thread=8000)
        result = run_system("mind", wl, 2, cfg)
        # With compressed epochs a multi-ms run records directory telemetry.
        assert len(result.stats.series("directory_entries")) >= 2
