"""Live switch fail-over *inside* the simulation (Section 4.4, end to end).

The FailoverOrchestrator crashes the primary switch while an application is
mid-workload: the coherence gate closes, the backup's tables are rebuilt
from the continuously-captured control-plane replica, blades are quiesced
(dirty pages flushed to the memory blades), and service resumes on the
rebuilt plane.  These tests verify the full loop: the memory image survives
byte-for-byte, the unavailability window is finite and bounded by the cost
model, in-flight transactions are re-issued rather than lost, and the
directory re-warms from all-Invalid.
"""

import pytest

from repro.faults import FailoverConfig, FaultPlan
from repro.sim.network import PAGE_SIZE

from conftest import small_cluster


def _store(cluster, blade_idx, pid, va, payload):
    cluster.run_process(
        cluster.compute_blades[blade_idx].store_bytes(pid, va, payload)
    )


def test_workload_survives_in_sim_switch_failover():
    cluster = small_cluster(num_compute=2, num_memory=2, cache_pages=64)
    ctl = cluster.controller
    task = ctl.sys_exec("survivor")
    bufs = [ctl.sys_mmap(task.pid, 4 * PAGE_SIZE) for _ in range(4)]
    payloads = {buf: f"state-{i}".encode() for i, buf in enumerate(bufs)}
    for i, buf in enumerate(bufs):
        _store(cluster, i % 2, task.pid, buf, payloads[buf])

    # Arm fail-over *after* the metadata exists; the replicator captures
    # immediately and then re-captures on every metadata change.
    failover = cluster.enable_failover()
    assert not failover.replicator.stale()

    # Crash mid-workload: two threads hammer shared pages while the
    # primary dies underneath them.
    crash_at = cluster.engine.now + 200.0
    cluster.inject_faults(FaultPlan(seed=1).switch_crash(at_us=crash_at))

    # Both blades write the same pages: the ownership ping-pong keeps
    # coherence traffic flowing across the crash.
    def worker(blade):
        for i in range(300):
            buf = bufs[i % len(bufs)]
            yield from blade.ensure_page(
                task.pid, buf + (i % 4) * PAGE_SIZE, write=(i % 2 == 0)
            )

    cluster.run_all([worker(b) for b in cluster.compute_blades])

    # The crash actually happened, recovery completed, service resumed.
    assert failover.crashes == 1
    assert len(failover.outage_windows) == 1
    start, end = failover.outage_windows[0]
    assert start == pytest.approx(crash_at)
    outage = end - start
    assert outage > 0
    # Bounded: detection + rebuild + rule installs + quiesce; generous cap.
    cfg = failover.config
    assert outage < cfg.detection_us + cfg.rebuild_base_us + 10_000
    assert cluster.stats.counter("failovers_completed") == 1
    assert cluster.stats.gauges["unavailability_us"] == pytest.approx(outage)
    # The coherence gate is open again.
    assert cluster.mmu.coherence._outage is None

    # Every byte of pre-crash application state survived the fail-over:
    # the quiesce flushed dirty pages, memory blades held ground truth,
    # and the rebuilt translation/protection tables still reach it.
    for i, buf in enumerate(bufs):
        data = cluster.run_process(
            cluster.compute_blades[i % 2].load_bytes(
                task.pid, buf, len(payloads[buf])
            )
        )
        assert data == payloads[buf]

    # Coherence still works across blades on the rebuilt plane.
    _store(cluster, 0, task.pid, bufs[0], b"post-failover")
    got = cluster.run_process(
        cluster.compute_blades[1].load_bytes(task.pid, bufs[0], 13)
    )
    assert got == b"post-failover"

    # The directory was rebuilt all-Invalid and re-warmed via re-faults.
    assert cluster.mmu.directory is not None
    assert len(cluster.mmu.directory) >= 1
    assert cluster.mmu.coherence.directory is cluster.mmu.directory


def test_inflight_transactions_reissued_not_lost():
    cluster = small_cluster(num_compute=2, num_memory=1, cache_pages=64)
    ctl = cluster.controller
    task = ctl.sys_exec("inflight")
    buf = ctl.sys_mmap(task.pid, 64 * PAGE_SIZE)
    cluster.enable_failover()
    # Crash at a time that lands mid-transaction (faults take ~10 us).
    cluster.inject_faults(FaultPlan(seed=2).switch_crash(at_us=105.0))

    def worker(blade):
        for i in range(200):
            yield from blade.ensure_page(
                task.pid, buf + (i % 32) * PAGE_SIZE, write=(i % 3 == 0)
            )

    cluster.run_all([worker(b) for b in cluster.compute_blades])
    # Transactions in flight at the crash came back stale and were
    # transparently re-issued by the blades -- never dropped or hung.
    assert cluster.stats.counter("stale_transactions") >= 1
    assert cluster.stats.counter("faults_reissued") == cluster.stats.counter(
        "stale_transactions"
    )
    assert cluster.stats.counter("failovers_completed") == 1


def test_metadata_changes_keep_backup_fresh():
    cluster = small_cluster(num_compute=2, num_memory=1)
    failover = cluster.enable_failover()
    ctl = cluster.controller
    v0 = failover.replicator.snapshot.version
    task = ctl.sys_exec("meta")
    ctl.sys_mmap(task.pid, 8 * PAGE_SIZE)
    # Replication rides the metadata path: the snapshot is never stale.
    assert failover.replicator.snapshot.version == ctl.version
    assert failover.replicator.snapshot.version > v0
    assert not failover.replicator.stale()


def test_failover_restores_region_size_bounds():
    cluster = small_cluster(
        num_compute=2,
        num_memory=1,
        initial_region_size=8 * PAGE_SIZE,
        max_region_size=64 * PAGE_SIZE,
    )
    ctl = cluster.controller
    task = ctl.sys_exec("bounds")
    buf = ctl.sys_mmap(task.pid, 16 * PAGE_SIZE)
    cluster.enable_failover()
    cluster.inject_faults(FaultPlan().switch_crash(at_us=50.0))

    def worker(blade):
        for i in range(100):
            yield from blade.ensure_page(task.pid, buf + (i % 16) * PAGE_SIZE, False)

    cluster.run_all([worker(cluster.compute_blades[0])])
    # Bounded Splitting policy state survives the fail-over (satellite of
    # the snapshot fix): the rebuilt directory keeps the primary's bounds.
    assert cluster.mmu.directory.initial_region_size == 8 * PAGE_SIZE
    assert cluster.mmu.directory.max_region_size == 64 * PAGE_SIZE


def test_degraded_phase_latency_is_attributed():
    cluster = small_cluster(num_compute=2, num_memory=1, cache_pages=32)
    ctl = cluster.controller
    task = ctl.sys_exec("phases")
    buf = ctl.sys_mmap(task.pid, 64 * PAGE_SIZE)
    cluster.enable_failover(FailoverConfig(degraded_window_us=500.0))
    cluster.inject_faults(FaultPlan().switch_crash(at_us=400.0))

    def worker(blade):
        for i in range(400):
            yield from blade.ensure_page(
                task.pid, buf + (i % 48) * PAGE_SIZE, write=(i % 2 == 0)
            )

    cluster.run_all([worker(b) for b in cluster.compute_blades])
    lat = cluster.stats.latencies
    assert lat.get("fault:phase:pre")
    assert lat.get("fault:phase:degraded")
    assert lat.get("fault:phase:post")
    # Degraded faults absorbed the outage window: their max dwarfs pre.
    assert max(lat["fault:phase:degraded"]) > max(lat["fault:phase:pre"])
