"""Live switch fail-over: a workload survives a primary-switch loss.

Section 4.4's full story, end to end: run an application, snapshot the
control plane, "lose" the switch (build a brand-new data plane on backup
hardware), re-attach fresh blades, and verify the application's memory
image -- held by the surviving memory blades -- is fully reachable and
correct through the rebuilt tables.
"""

import pytest

from repro.blades.compute import ComputeBlade
from repro.core.coherence import CoherenceProtocol
from repro.core.failures import ControlPlaneReplicator, rebuild_data_plane
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.stats import StatsCollector
from repro.switchsim.multicast import MulticastEngine
from repro.switchsim.pipeline import SwitchPipeline
from repro.switchsim.sram import RegisterArray
from repro.switchsim.tcam import Tcam
from repro.sim.network import PAGE_SIZE

from conftest import small_cluster


def test_workload_survives_switch_failover():
    # --- before the failure: a live application writes its state ---
    cluster = small_cluster(num_compute=2, num_memory=2, cache_pages=64)
    ctl = cluster.controller
    task = ctl.sys_exec("survivor")
    bufs = [ctl.sys_mmap(task.pid, 4 * PAGE_SIZE) for _ in range(4)]
    payloads = {}
    for i, buf in enumerate(bufs):
        payloads[buf] = f"state-{i}".encode()
        cluster.run_process(
            cluster.compute_blades[i % 2].store_bytes(
                task.pid, buf, payloads[buf]
            )
        )
    replicator = ControlPlaneReplicator(ctl)
    snapshot = replicator.capture()

    # Blades flush their dirty pages before the switch swap (in practice
    # the reset protocol forces this; here we emulate the quiesce).
    for blade in cluster.compute_blades:
        for buf in bufs:
            page = blade.cache.peek(buf)
            if page is not None and page.dirty:
                xlate = cluster.mmu.address_space.translate(buf)
                cluster.memory_blades[xlate.blade_id].write_page(
                    xlate.pa, bytes(page.data)
                )

    # --- the failure: a new switch, programmed from the snapshot ---
    backup = rebuild_data_plane(
        snapshot,
        xlate_tcam=Tcam(1024),
        protection_tcam=Tcam(1024),
        directory_sram=RegisterArray(256),
    )
    engine = cluster.engine  # memory blades live on; reuse their network
    pipeline = SwitchPipeline(engine, cluster.network.config)
    coherence = CoherenceProtocol(
        engine=engine,
        network=cluster.network,
        pipeline=pipeline,
        multicast=MulticastEngine(),
        directory=backup.directory,
        address_space=backup.address_space,
        protection=backup.protection,
        stt=cluster.mmu.coherence.stt,
        stats=StatsCollector(),
    )
    for blade in cluster.memory_blades:
        coherence.register_memory_blade(blade.blade_id, blade)

    # Fresh compute blades attach to the rebuilt switch (cold caches).
    new_blades = [
        ComputeBlade(
            blade_id=10 + i,
            engine=engine,
            network=cluster.network,
            datapath=coherence,
            cache_capacity_pages=64,
            stats=StatsCollector(),
        )
        for i in range(2)
    ]

    # --- after: every byte of application state is reachable ---
    for i, buf in enumerate(bufs):
        data = engine.run_process(
            new_blades[i % 2].load_bytes(task.pid, buf, len(payloads[buf]))
        )
        assert data == payloads[buf]
    # Coherence works on the rebuilt switch too.
    engine.run_process(new_blades[0].store_bytes(task.pid, bufs[0], b"post-failover"))
    got = engine.run_process(new_blades[1].load_bytes(task.pid, bufs[0], 13))
    assert got == b"post-failover"
    # Directory re-warmed from cold.
    assert len(backup.directory) >= 1
