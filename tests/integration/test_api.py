"""End-to-end tests of the public API (repro.api)."""

import pytest

from repro.api import MindSystem, PermissionClass, SegmentationFault
from repro.core.mmu import MindConfig
from repro.sim.network import PAGE_SIZE


@pytest.fixture
def system():
    return MindSystem(
        num_compute_blades=2,
        num_memory_blades=2,
        cache_capacity_pages=256,
        mind_config=MindConfig(
            directory_capacity=512,
            memory_blade_capacity=1 << 26,
            enable_bounded_splitting=False,
        ),
    )


class TestLifecycle:
    def test_spawn_process(self, system):
        proc = system.spawn_process("app")
        assert proc.pid >= 1000
        assert proc.name == "app"

    def test_threads_placed_round_robin(self, system):
        proc = system.spawn_process()
        t0, t1, t2 = (proc.spawn_thread() for _ in range(3))
        assert [t0.blade_id, t1.blade_id, t2.blade_id] == [0, 1, 0]

    def test_exit_cleans_up(self, system):
        proc = system.spawn_process()
        proc.mmap(PAGE_SIZE)
        proc.exit()
        with pytest.raises(Exception):
            proc.mmap(PAGE_SIZE)


class TestSharedMemory:
    def test_cross_blade_visibility(self, system):
        proc = system.spawn_process()
        buf = proc.mmap(1 << 16)
        t0, t1 = proc.spawn_thread(), proc.spawn_thread()
        t0.write(buf, b"written-on-blade-0")
        assert t1.read(buf, 18) == b"written-on-blade-0"

    def test_write_after_write_across_blades(self, system):
        proc = system.spawn_process()
        buf = proc.mmap(1 << 16)
        t0, t1 = proc.spawn_thread(), proc.spawn_thread()
        t0.write(buf, b"first")
        t1.write(buf, b"second")
        assert t0.read(buf, 6) == b"second"

    def test_interleaved_offsets(self, system):
        proc = system.spawn_process()
        buf = proc.mmap(1 << 16)
        t0, t1 = proc.spawn_thread(), proc.spawn_thread()
        t0.write(buf + 0, b"AAAA")
        t1.write(buf + 4, b"BBBB")
        assert t0.read(buf, 8) == b"AAAABBBB"

    def test_page_spanning_write(self, system):
        proc = system.spawn_process()
        buf = proc.mmap(1 << 16)
        t0 = proc.spawn_thread()
        payload = b"x" * (2 * PAGE_SIZE + 100)
        t0.write(buf + PAGE_SIZE - 50, payload)
        assert t0.read(buf + PAGE_SIZE - 50, len(payload)) == payload

    def test_touch_prefaults(self, system):
        proc = system.spawn_process()
        buf = proc.mmap(PAGE_SIZE)
        t0 = proc.spawn_thread()
        t0.touch(buf)
        assert t0.blade.cache.peek(buf) is not None

    def test_run_concurrently(self, system):
        proc = system.spawn_process()
        buf = proc.mmap(1 << 16)
        t0, t1 = proc.spawn_thread(), proc.spawn_thread()
        results = system.run_concurrently(
            [t0.store_gen(buf, b"zero"), t1.store_gen(buf + PAGE_SIZE, b"one")]
        )
        assert len(results) == 2
        assert t1.read(buf, 4) == b"zero"


class TestProtectionSemantics:
    def test_processes_isolated(self, system):
        a = system.spawn_process("a")
        b = system.spawn_process("b")
        buf = a.mmap(PAGE_SIZE)
        ta, tb = a.spawn_thread(), b.spawn_thread()
        ta.write(buf, b"secret")
        with pytest.raises(SegmentationFault):
            tb.read(buf, 6)

    def test_mprotect_read_only(self, system):
        proc = system.spawn_process()
        buf = proc.mmap(PAGE_SIZE)
        t = proc.spawn_thread()
        t.write(buf, b"data")
        proc.mprotect(buf, PermissionClass.READ_ONLY)
        with pytest.raises(SegmentationFault):
            t.write(buf, b"more")

    def test_mprotect_preserves_dirty_data(self, system):
        """Write-protecting a range must not lose the dirty bytes that
        were cached when the permission changed."""
        proc = system.spawn_process()
        buf = proc.mmap(PAGE_SIZE)
        t = proc.spawn_thread()
        t.write(buf, b"precious")
        proc.mprotect(buf, PermissionClass.READ_ONLY)
        assert t.read(buf, 8) == b"precious"

    def test_munmap_revokes(self, system):
        proc = system.spawn_process()
        buf = proc.mmap(PAGE_SIZE)
        t = proc.spawn_thread()
        t.write(buf, b"data")
        proc.munmap(buf)
        with pytest.raises(SegmentationFault):
            t.read(buf, 4)

    def test_grant_domain_capability_style(self, system):
        server = system.spawn_process("server")
        client = system.spawn_process("client")
        shared = server.mmap(PAGE_SIZE)
        server.grant_domain(shared, client.pid, PermissionClass.READ_ONLY)
        ts, tc = server.spawn_thread(), client.spawn_thread()
        ts.write(shared, b"published")
        assert tc.read(shared, 9) == b"published"
        with pytest.raises(SegmentationFault):
            tc.write(shared, b"nope")


class TestElasticity:
    def test_adding_threads_mid_run(self, system):
        """The transparent-elasticity story: scale compute without any
        change to the memory image."""
        proc = system.spawn_process()
        buf = proc.mmap(1 << 16)
        t0 = proc.spawn_thread()
        t0.write(buf, b"before-scale-out")
        t_new = proc.spawn_thread()  # lands on the other blade
        assert t_new.blade_id != t0.blade_id
        assert t_new.read(buf, 16) == b"before-scale-out"

    def test_many_threads_hammer_one_counter(self, system):
        """A shared counter incremented from both blades, serialized by
        coherence: no lost updates when increments are interleaved."""
        proc = system.spawn_process()
        buf = proc.mmap(PAGE_SIZE)
        threads = [proc.spawn_thread() for _ in range(4)]
        value = 0
        for round_ in range(3):
            for t in threads:
                raw = t.read(buf, 4)
                value = int.from_bytes(raw, "little") + 1
                t.write(buf, value.to_bytes(4, "little"))
        final = int.from_bytes(threads[0].read(buf, 4), "little")
        assert final == 12

    def test_stats_observable(self, system):
        proc = system.spawn_process()
        buf = proc.mmap(PAGE_SIZE)
        t0 = proc.spawn_thread()
        t0.write(buf, b"x")
        assert system.stats.counter("remote_accesses") >= 1
        assert system.now_us > 0
