"""Randomized coherence-correctness checks.

The strongest evidence the protocol is right: replay random interleavings
of writes and reads across blades against a sequential reference model and
require identical observed values.  Because our blocking API serializes
each operation to completion, the system must behave sequentially
consistent at this granularity -- any stale read is a coherence bug.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import MindSystem
from repro.core.mmu import MindConfig
from repro.sim.network import PAGE_SIZE


def fresh_system(num_blades=3, cache_pages=8, directory_capacity=512):
    return MindSystem(
        num_compute_blades=num_blades,
        num_memory_blades=2,
        cache_capacity_pages=cache_pages,
        mind_config=MindConfig(
            directory_capacity=directory_capacity,
            memory_blade_capacity=1 << 26,
            enable_bounded_splitting=False,
        ),
    )


# One op: (thread index 0-2, page index 0-5, is_write, value 0-255)
ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.integers(0, 5),
        st.booleans(),
        st.integers(0, 255),
    ),
    min_size=1,
    max_size=40,
)


@given(ops=ops_strategy)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_sequential_consistency_of_blocking_ops(ops):
    """Random cross-blade op sequences read exactly what a flat reference
    dict says they should -- with a cache so small every op churns."""
    system = fresh_system()
    proc = system.spawn_process()
    buf = proc.mmap(1 << 16)
    threads = [proc.spawn_thread() for _ in range(3)]
    reference = {}
    for tid, page, is_write, value in ops:
        va = buf + page * PAGE_SIZE + 7  # off-alignment on purpose
        if is_write:
            threads[tid].write(va, bytes([value]))
            reference[page] = value
        else:
            got = threads[tid].read(va, 1)[0]
            assert got == reference.get(page, 0)


@given(ops=ops_strategy)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_holds_under_directory_pressure(ops):
    """Same property with a 4-slot directory: capacity evictions and
    forced merges must never corrupt data."""
    system = fresh_system(directory_capacity=4)
    proc = system.spawn_process()
    buf = proc.mmap(1 << 19)
    threads = [proc.spawn_thread() for _ in range(3)]
    reference = {}
    for tid, page, is_write, value in ops:
        va = buf + page * 16 * PAGE_SIZE  # spread across 16K regions
        if is_write:
            threads[tid].write(va, bytes([value]))
            reference[page] = value
        else:
            got = threads[tid].read(va, 1)[0]
            assert got == reference.get(page, 0)


def test_concurrent_disjoint_writers_all_visible():
    """N threads write disjoint pages concurrently; all bytes land."""
    system = fresh_system(num_blades=3, cache_pages=64)
    proc = system.spawn_process()
    buf = proc.mmap(1 << 16)
    threads = [proc.spawn_thread() for _ in range(3)]
    gens = [
        t.store_gen(buf + i * PAGE_SIZE, bytes([i + 1]) * 64)
        for i, t in enumerate(threads)
    ]
    system.run_concurrently(gens)
    reader = proc.spawn_thread()
    for i in range(3):
        assert reader.read(buf + i * PAGE_SIZE, 64) == bytes([i + 1]) * 64


def test_concurrent_same_page_last_writer_wins_atomically():
    """Concurrent whole-slot writes to one page: the final value is one of
    the written values, never a byte-level mix."""
    system = fresh_system(num_blades=3)
    proc = system.spawn_process()
    buf = proc.mmap(PAGE_SIZE)
    threads = [proc.spawn_thread() for _ in range(3)]
    gens = [t.store_gen(buf, bytes([i + 1]) * 32) for i, t in enumerate(threads)]
    system.run_concurrently(gens)
    final = threads[0].read(buf, 32)
    assert final in [bytes([i + 1]) * 32 for i in range(3)]


def test_ping_pong_many_rounds():
    """Two blades alternately increment a shared counter 50 times."""
    system = fresh_system(num_blades=2)
    proc = system.spawn_process()
    buf = proc.mmap(PAGE_SIZE)
    a, b = proc.spawn_thread(), proc.spawn_thread()
    for i in range(50):
        t = a if i % 2 == 0 else b
        val = int.from_bytes(t.read(buf, 8), "little")
        t.write(buf, (val + 1).to_bytes(8, "little"))
    assert int.from_bytes(a.read(buf, 8), "little") == 50
    # Plenty of ownership handoffs happened.
    assert system.stats.counter("invalidations_sent") >= 40
