"""Integration tests for the MindKvs application on the public API."""

import pytest

from repro.api import MindSystem
from repro.core.mmu import MindConfig
from repro.workloads.kvs import MindKvs


@pytest.fixture
def system():
    return MindSystem(
        num_compute_blades=2,
        num_memory_blades=2,
        cache_capacity_pages=64,
        mind_config=MindConfig(
            directory_capacity=512,
            memory_blade_capacity=1 << 26,
            enable_bounded_splitting=False,
        ),
    )


@pytest.fixture
def kvs_setup(system):
    proc = system.spawn_process("kvs")
    kvs = MindKvs(proc, num_slots=256)
    t0, t1 = proc.spawn_thread(), proc.spawn_thread()
    return system, kvs, t0, t1


def test_put_get_same_thread(kvs_setup):
    _sys, kvs, t0, _t1 = kvs_setup
    kvs.put(t0, b"key", b"value")
    assert kvs.get(t0, b"key") == b"value"


def test_put_on_one_blade_get_on_other(kvs_setup):
    """The paper's elasticity story: any blade serves any key."""
    _sys, kvs, t0, t1 = kvs_setup
    kvs.put(t0, b"cross", b"blade")
    assert t0.blade_id != t1.blade_id
    assert kvs.get(t1, b"cross") == b"blade"


def test_update_visible_across_blades(kvs_setup):
    _sys, kvs, t0, t1 = kvs_setup
    kvs.put(t0, b"k", b"v1")
    kvs.put(t1, b"k", b"v2")
    assert kvs.get(t0, b"k") == b"v2"


def test_missing_key(kvs_setup):
    _sys, kvs, t0, _t1 = kvs_setup
    assert kvs.get(t0, b"nope") is None


def test_delete(kvs_setup):
    _sys, kvs, t0, t1 = kvs_setup
    kvs.put(t0, b"gone", b"soon")
    assert kvs.delete(t1, b"gone")
    assert kvs.get(t0, b"gone") is None
    assert not kvs.delete(t0, b"gone")


def test_tombstone_reuse_and_probe_integrity(kvs_setup):
    """Colliding keys probe past tombstones correctly."""
    _sys, kvs, t0, _t1 = kvs_setup
    keys = [f"key{i}".encode() for i in range(20)]
    for k in keys:
        kvs.put(t0, k, b"v-" + k)
    kvs.delete(t0, keys[3])
    kvs.delete(t0, keys[7])
    for i, k in enumerate(keys):
        expect = None if i in (3, 7) else b"v-" + k
        assert kvs.get(t0, k) == expect
    kvs.put(t0, b"newkey", b"newval")  # may land in a tombstone
    assert kvs.get(t0, b"newkey") == b"newval"


def test_many_keys_across_blades(kvs_setup):
    _sys, kvs, t0, t1 = kvs_setup
    for i in range(50):
        writer = t0 if i % 2 == 0 else t1
        kvs.put(writer, f"k{i}".encode(), f"value-{i}".encode())
    for i in range(50):
        reader = t1 if i % 2 == 0 else t0
        assert kvs.get(reader, f"k{i}".encode()) == f"value-{i}".encode()


def test_oversized_value_rejected(kvs_setup):
    _sys, kvs, t0, _t1 = kvs_setup
    with pytest.raises(ValueError):
        kvs.put(t0, b"k", b"x" * 300)


def test_table_full(system):
    proc = system.spawn_process("tiny")
    kvs = MindKvs(proc, num_slots=4)
    t = proc.spawn_thread()
    for i in range(4):
        kvs.put(t, f"k{i}".encode(), b"v")
    with pytest.raises(RuntimeError):
        kvs.put(t, b"overflow", b"v")


def test_update_in_place_does_not_consume_slots(system):
    proc = system.spawn_process("tiny")
    kvs = MindKvs(proc, num_slots=4)
    t = proc.spawn_thread()
    for _ in range(10):
        kvs.put(t, b"same", b"v")
    for i in range(3):
        kvs.put(t, f"k{i}".encode(), b"v")  # still fits
