"""End-to-end observability: traces span subsystems, CLI report works."""

import json

import pytest

from repro.__main__ import main
from repro.api import MindSystem
from repro.runner import RunnerConfig, run_system
from repro.workloads import UniformSharingWorkload


@pytest.fixture(scope="module")
def traced_result():
    workload = UniformSharingWorkload(
        4,
        accesses_per_thread=400,
        read_ratio=0.4,
        sharing_ratio=0.6,
        shared_pages=300,
        private_pages_per_thread=64,
        seed=11,
        burst=4,
    )
    return run_system("mind", workload, 2, RunnerConfig(trace=True))


def test_trace_covers_at_least_three_subsystems(traced_result):
    cats = set(traced_result.trace.categories())
    assert {"blade", "switch", "coherence"} <= cats


def test_chrome_trace_export_loads(tmp_path, traced_result):
    path = tmp_path / "trace.json"
    traced_result.trace.write_chrome_trace(str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert len(events) > 100
    cats = {e["cat"] for e in events if "cat" in e}
    assert {"blade", "switch", "coherence"} <= cats
    # Every event carries the fields chrome://tracing requires
    # (metadata "M" events legitimately have no timestamp).
    for ev in events:
        assert {"name", "ph", "pid", "tid"} <= set(ev)
        if ev["ph"] != "M":
            assert "ts" in ev
        if ev["ph"] == "X":
            assert "dur" in ev


def test_span_components_sum_to_fault_latency(traced_result):
    stats = traced_result.stats
    span_sum = sum(stats.breakdown("fault_path").values())
    e2e = sum(stats.latencies["fault"])
    assert e2e > 0
    assert abs(span_sum - e2e) / e2e < 0.05


def test_timestamps_are_simulated_not_wall_clock(traced_result):
    # All record timestamps lie within the simulated run window.
    for ts, dur, _ph, _cat, _name, _tid, _args in traced_result.trace.records():
        assert 0.0 <= ts <= traced_result.runtime_us + 1e-9
        assert ts + dur <= traced_result.runtime_us + 1e-9


def test_api_tracing_and_telemetry():
    system = MindSystem(num_compute_blades=2, num_memory_blades=1, trace=True)
    proc = system.spawn_process("obs")
    buf = proc.mmap(1 << 16)
    t0, t1 = proc.spawn_thread(), proc.spawn_thread()
    t0.write(buf, b"x")
    t1.read(buf, 1)
    system.capture_telemetry()
    assert len(system.tracer) > 0
    assert system.stats.counter("pipeline_passes") > 0
    assert any(k.startswith("utilization:") for k in system.stats.gauges)


def test_report_cli_text_and_exports(tmp_path, capsys):
    trace_path = tmp_path / "chrome.json"
    jsonl_path = tmp_path / "trace.jsonl"
    rc = main(
        [
            "report",
            "--blades",
            "2",
            "--accesses",
            "200",
            "--shared-pages",
            "100",
            "--trace-out",
            str(trace_path),
            "--jsonl-out",
            str(jsonl_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "fault-path breakdown" in out
    assert json.loads(trace_path.read_text())["traceEvents"]
    lines = jsonl_path.read_text().strip().splitlines()
    assert lines and all(json.loads(line) for line in lines)


def test_report_cli_json(capsys):
    rc = main(["report", "--blades", "2", "--accesses", "150", "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["fault_breakdown_error"] < 0.05
    assert doc["meta"]["num_blades"] == 2
