"""Rack-scale sanity: larger configurations the 32-port switch supports."""

import pytest

from repro.cluster import ClusterConfig, MindCluster
from repro.core.mmu import MindConfig
from repro.sim.network import PAGE_SIZE


def big_rack(num_compute=16, num_memory=8):
    return MindCluster(
        ClusterConfig(
            num_compute_blades=num_compute,
            num_memory_blades=num_memory,
            cache_capacity_pages=64,
            mind=MindConfig(
                directory_capacity=4096,
                memory_blade_capacity=1 << 26,
                enable_bounded_splitting=False,
            ),
        )
    )


def test_sixteen_compute_eight_memory_rack():
    cluster = big_rack()
    assert len(cluster.network.ports) == 24  # fits the 32-port Wedge
    ctl = cluster.controller
    task = ctl.sys_exec("big")
    base = ctl.sys_mmap(task.pid, 1 << 20)
    # Every blade writes its own page; every blade reads a neighbour's.
    gens = [
        blade.store_bytes(task.pid, base + i * PAGE_SIZE, bytes([i]))
        for i, blade in enumerate(cluster.compute_blades)
    ]
    cluster.run_all(gens)
    gens = []
    for i, blade in enumerate(cluster.compute_blades):
        neighbour = (i + 1) % 16
        gens.append(blade.load_bytes(task.pid, base + neighbour * PAGE_SIZE, 1))
    results = cluster.run_all(gens)
    for i, data in enumerate(results):
        assert data == bytes([(i + 1) % 16])


def test_allocations_spread_over_eight_memory_blades():
    cluster = big_rack()
    ctl = cluster.controller
    task = ctl.sys_exec("spread")
    blades_used = set()
    for _ in range(16):
        base = ctl.sys_mmap(task.pid, 1 << 16)
        blades_used.add(cluster.mmu.address_space.translate(base).blade_id)
    assert blades_used == set(range(8))
    assert cluster.mmu.allocator.jain_fairness() > 0.99


def test_full_sharer_fanout_invalidation():
    """A write to a page shared by 15 other blades invalidates all 15."""
    cluster = big_rack()
    ctl = cluster.controller
    task = ctl.sys_exec("fanout")
    base = ctl.sys_mmap(task.pid, PAGE_SIZE)
    for blade in cluster.compute_blades:
        cluster.run_process(blade.ensure_page(task.pid, base, False))
    writer = cluster.compute_blades[0]
    cluster.run_process(writer.ensure_page(task.pid, base, True))
    assert cluster.stats.counter("invalidations_sent") == 15
    for blade in cluster.compute_blades[1:]:
        assert blade.cache.peek(base) is None
    region = cluster.mmu.directory.find(base)
    assert region.owner == writer.port.port_id
