"""Configuration propagation and edge cases of the public API."""

import pytest

from repro.api import MindSystem
from repro.core.mmu import MindConfig
from repro.sim.network import NetworkConfig, PAGE_SIZE


def test_network_config_propagates():
    slow = NetworkConfig(link_propagation_us=10.0)
    system = MindSystem(
        num_compute_blades=2,
        num_memory_blades=1,
        cache_capacity_pages=64,
        network_config=slow,
        mind_config=MindConfig(
            memory_blade_capacity=1 << 26, enable_bounded_splitting=False
        ),
    )
    proc = system.spawn_process()
    buf = proc.mmap(PAGE_SIZE)
    t = proc.spawn_thread()
    t.touch(buf)
    # 4 one-way traversals at 10 us each dominate: far above the ~9.75 us
    # default-config fetch.
    assert system.stats.mean_latency("fault:I->S") > 40.0


def test_store_data_disabled_zero_fills():
    system = MindSystem(
        num_compute_blades=1,
        num_memory_blades=1,
        cache_capacity_pages=64,
        store_data=False,
        mind_config=MindConfig(
            memory_blade_capacity=1 << 26, enable_bounded_splitting=False
        ),
    )
    proc = system.spawn_process()
    buf = proc.mmap(PAGE_SIZE)
    t = proc.spawn_thread()
    t.write(buf, b"ignored")
    assert t.read(buf, 7) == bytes(7)  # payloads disabled: zero reads


def test_mind_config_protocol_reaches_switch():
    system = MindSystem(
        num_compute_blades=1,
        num_memory_blades=1,
        cache_capacity_pages=64,
        mind_config=MindConfig(
            protocol="moesi",
            memory_blade_capacity=1 << 26,
            enable_bounded_splitting=False,
        ),
    )
    from repro.core.directory import CoherenceState
    from repro.core.stt import RequesterRole
    from repro.switchsim.packets import AccessType

    stt = system.cluster.mmu.coherence.stt
    key = (CoherenceState.OWNED, AccessType.READ, RequesterRole.OWNER)
    assert key in stt


def test_default_cache_matches_paper():
    from repro.cluster import ClusterConfig

    # 512 MB of 4 KB pages, the paper's partial-disaggregation cache.
    assert ClusterConfig().cache_capacity_pages == 131_072


def test_thread_ids_unique_across_processes():
    system = MindSystem(
        num_compute_blades=2,
        num_memory_blades=1,
        cache_capacity_pages=64,
        mind_config=MindConfig(
            memory_blade_capacity=1 << 26, enable_bounded_splitting=False
        ),
    )
    a, b = system.spawn_process("a"), system.spawn_process("b")
    tids = [p.spawn_thread().tid for p in (a, b, a, b)]
    assert len(set(tids)) == 4


def test_run_trace_gen_on_thread():
    system = MindSystem(
        num_compute_blades=2,
        num_memory_blades=1,
        cache_capacity_pages=64,
        mind_config=MindConfig(
            memory_blade_capacity=1 << 26, enable_bounded_splitting=False
        ),
    )
    proc = system.spawn_process()
    buf = proc.mmap(8 * PAGE_SIZE)
    t0, t1 = proc.spawn_thread(), proc.spawn_thread()
    trace0 = [(buf + (i % 4) * PAGE_SIZE, i % 3 == 0) for i in range(50)]
    trace1 = [(buf + (i % 4) * PAGE_SIZE, i % 5 == 0) for i in range(50)]
    counts = system.run_concurrently(
        [t0.run_trace_gen(trace0), t1.run_trace_gen(trace1)]
    )
    assert counts == [50, 50]
