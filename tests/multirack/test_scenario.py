"""The multirack scenario driver and its sweep integration.

The contract the CI smoke leans on: a scenario point is a pure function
of its config, so the ``multirack-quick`` preset produces the same bytes
serially, under spawned workers, and across repeated runs.
"""

import pytest

from repro.faults import FaultPlan
from repro.multirack import (
    MultiRackScenarioConfig,
    config_from_params,
    run_multirack,
)
from repro.sweep import SweepSpec, execute_point, run_sweep
from repro.sweep.engine import extract_metrics

QUICK = dict(
    racks=2,
    compute_blades_per_rack=2,
    accesses_per_thread=80,
    pages_per_rack=64,
    cache_capacity_pages=128,
)

GRID = (
    "system=mind;workload=multirack;blades=2;threads_per_blade=1;"
    "racks=1,2;cross_fraction=0.3;accesses_per_thread=60;"
    "pages_per_rack=64;read_ratio=0.7;cache_capacity_pages=128"
)


class TestScenarioDeterminism:
    def test_repeat_runs_are_identical(self):
        a = run_multirack(MultiRackScenarioConfig(**QUICK))
        b = run_multirack(MultiRackScenarioConfig(**QUICK))
        assert extract_metrics(a) == extract_metrics(b)
        assert a.runtime_us == b.runtime_us

    def test_open_loop_repeat_runs_are_identical(self):
        config = MultiRackScenarioConfig(
            arrival_process="poisson", arrival_rate_per_thread=0.01, **QUICK
        )
        a = run_multirack(config)
        b = run_multirack(config)
        assert extract_metrics(a) == extract_metrics(b)

    def test_seed_changes_the_run(self):
        a = run_multirack(MultiRackScenarioConfig(seed=1, **QUICK))
        b = run_multirack(MultiRackScenarioConfig(seed=2, **QUICK))
        assert extract_metrics(a) != extract_metrics(b)

    def test_scenario_exposes_the_crossover_metrics(self):
        result = run_multirack(MultiRackScenarioConfig(**QUICK))
        metrics = extract_metrics(result)
        assert metrics["counter:intra_rack_faults"] > 0
        assert metrics["counter:cross_rack_faults"] > 0
        assert (
            metrics["latency:fault:cross:p50"]
            > metrics["latency:fault:intra:p50"]
        )
        assert metrics["gauge:tier:spine:bytes"] > 0


class TestConfigFromParams:
    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="unknown multirack scenario"):
            config_from_params({"rakcs": 4})

    def test_overrides_win(self):
        config = config_from_params({"racks": 2}, seed=7)
        assert config.racks == 2
        assert config.seed == 7


class TestSweepIntegration:
    def test_jobs_do_not_change_the_bytes(self):
        spec = SweepSpec.from_grids([GRID], seeds=[1])
        serial = run_sweep(spec, jobs=1).to_json_text()
        spawned = run_sweep(spec, jobs=2).to_json_text()
        assert serial == spawned

    def test_structural_axes_map_to_the_scenario(self):
        spec = SweepSpec.from_grids([GRID], seeds=[1])
        points = spec.points()
        assert len(points) == 2
        record = execute_point(points[1])  # racks=2
        assert record.metrics["counter:cross_rack_faults"] > 0
        # blades axis means compute blades per rack: 2 racks x 2 blades.
        assert record.metrics["total_accesses"] == 4 * 60

    def test_external_fault_plan_rejected(self):
        (point, _) = SweepSpec.from_grids([GRID], seeds=[1]).points()
        with pytest.raises(ValueError, match="fault schedule"):
            execute_point(point, fault_plan=FaultPlan(seed=1))

    def test_trace_rejected(self):
        (point, _) = SweepSpec.from_grids([GRID], seeds=[1]).points()
        with pytest.raises(ValueError, match="trace"):
            execute_point(point, with_trace=True)

    def test_non_mind_system_rejected_by_the_grid(self):
        with pytest.raises(ValueError, match="topology workload"):
            SweepSpec.from_grids(
                [GRID.replace("system=mind", "system=gam")], seeds=[1]
            ).points()
