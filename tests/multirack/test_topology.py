"""The topology graph: VA sharding, spine links, proxy ports, capacity."""

import pytest

from repro.multirack import (
    MultiRackConfig,
    MultiRackFabric,
    RackCapacityError,
    ShardMap,
)
from repro.sim.network import PAGE_SIZE


class TestShardMap:
    def test_range_partitioned_homing(self):
        shard = ShardMap(num_racks=4, rack_span=1 << 20)
        assert shard.home_rack(0) == 0
        assert shard.home_rack((1 << 20) - 1) == 0
        assert shard.home_rack(1 << 20) == 1
        assert shard.home_rack(3 * (1 << 20) + 5) == 3

    def test_rack_range_tiles_the_space(self):
        shard = ShardMap(num_racks=3, rack_span=1 << 20)
        for r in range(3):
            base, span = shard.rack_range(r)
            assert base == r * (1 << 20)
            assert span == 1 << 20
            assert shard.home_rack(base) == r
            assert shard.home_rack(base + span - 1) == r

    def test_out_of_range_va_rejected(self):
        shard = ShardMap(num_racks=2, rack_span=1 << 20)
        with pytest.raises(ValueError):
            shard.home_rack(2 << 20)
        with pytest.raises(ValueError):
            shard.home_rack(-1)


class TestCapacityValidation:
    def test_memory_blades_over_slice_capacity_raises_typed_error(self):
        # Regression: the VA shard spans max_memory_blades_per_rack blade
        # capacities.  More memory blades than that used to be silently
        # unreachable (the allocator would place pages past the slice);
        # now it is a configuration error.
        config = MultiRackConfig(memory_blades_per_rack=9)
        assert config.max_memory_blades_per_rack == 8
        with pytest.raises(RackCapacityError):
            config.validate()
        with pytest.raises(RackCapacityError):
            MultiRackFabric(config)

    def test_capacity_error_is_a_value_error(self):
        assert issubclass(RackCapacityError, ValueError)

    def test_max_blades_per_rack_is_fine(self):
        MultiRackConfig(
            max_memory_blades_per_rack=2, memory_blades_per_rack=2
        ).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_racks": 0},
            {"compute_blades_per_rack": 0},
            {"memory_blades_per_rack": 0},
            {"oversubscription": 0.0},
        ],
    )
    def test_degenerate_shapes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MultiRackConfig(**kwargs).validate()


class TestSpineLinks:
    def test_oversubscribed_bandwidth_derivation(self):
        config = MultiRackConfig(
            compute_blades_per_rack=8, oversubscription=4.0
        )
        spine = config.spine_link_config()
        edge = config.network
        assert spine.link_bandwidth_gbps == pytest.approx(
            edge.link_bandwidth_gbps * 8 / 4.0
        )
        assert spine.link_propagation_us == pytest.approx(
            config.spine_extra_us / 2.0
        )

    def test_spine_crossing_cost_model(self):
        config = MultiRackConfig()
        spine = config.spine_link_config()
        expected = config.network.switch_pipeline_us + 2 * (
            config.spine_hop_us + spine.serialization_us(PAGE_SIZE)
        )
        assert config.spine_crossing_us(PAGE_SIZE) == pytest.approx(expected)

    def test_every_rack_gets_uplink_and_downlink(self):
        fabric = MultiRackFabric(MultiRackConfig(num_racks=3))
        for r, node in enumerate(fabric.topology.racks):
            assert node.uplink.name == f"rack{r}->spine"
            assert node.downlink.name == f"spine->rack{r}"
            assert node.uplink.bytes_carried == 0


class TestSpineProxies:
    def test_proxies_are_lazy(self):
        fabric = MultiRackFabric(
            MultiRackConfig(num_racks=3, compute_blades_per_rack=1)
        )
        pdid = fabric.spawn_process()
        buf1 = fabric.mmap(pdid, PAGE_SIZE, rack=1)
        router0 = fabric.routers[0]
        # Before any cross-rack traffic: only the home-rack real port.
        assert set(router0.ports) == {0}
        fabric.run_process(
            fabric.compute_blades[0].ensure_page(pdid, buf1, False)
        )
        # The touched pair got a proxy; the untouched rack 2 did not.
        assert set(router0.ports) == {0, 1}

    def test_proxy_keeps_the_real_port_identity(self):
        fabric = MultiRackFabric(
            MultiRackConfig(num_racks=2, compute_blades_per_rack=1)
        )
        router = fabric.routers[0]
        proxy = router.port_for(1)
        real = router.port_for(0)
        # Same port_id: the home switch's directory sees one sharer,
        # whichever side of the spine it is reached from.
        assert proxy.port_id == real.port_id
        assert proxy is not real

    def test_port_ids_globally_unique_across_racks(self):
        fabric = MultiRackFabric(
            MultiRackConfig(num_racks=4, compute_blades_per_rack=8)
        )
        ids = [b.port.port_id for b in fabric.compute_blades]
        assert len(ids) == len(set(ids))


class TestTierAccounting:
    def test_tiers_start_quiet(self):
        fabric = MultiRackFabric(MultiRackConfig())
        acct = fabric.topology.tier_accounting()
        assert acct["edge_bytes"] == 0
        assert acct["spine_bytes"] == 0
        assert acct["spine_forwards"] == 0

    def test_cross_rack_traffic_lands_in_both_tiers(self):
        fabric = MultiRackFabric(MultiRackConfig())
        pdid = fabric.spawn_process()
        buf1 = fabric.mmap(pdid, PAGE_SIZE, rack=1)
        fabric.run_process(
            fabric.compute_blades[0].ensure_page(pdid, buf1, False)
        )
        acct = fabric.topology.tier_accounting()
        assert acct["spine_bytes"] > 0
        assert acct["edge_bytes"] > acct["spine_bytes"] / 2
        assert acct["spine_forwards"] >= 2  # request + reply forwarding
