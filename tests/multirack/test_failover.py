"""Per-rack fail-over: one rack's switch dies, the others keep serving."""

import pytest

from repro.faults import FailoverConfig
from repro.multirack import MultiRackConfig, MultiRackFabric
from repro.sim.network import PAGE_SIZE

QUICK_FAILOVER = dict(
    detection_us=200.0, rebuild_base_us=50.0, degraded_window_us=500.0
)


@pytest.fixture
def rig():
    fabric = MultiRackFabric(
        MultiRackConfig(num_racks=2, compute_blades_per_rack=2)
    )
    pdid = fabric.spawn_process("survivor")
    buf0 = fabric.mmap(pdid, 8 * PAGE_SIZE, rack=0)
    buf1 = fabric.mmap(pdid, 8 * PAGE_SIZE, rack=1)
    return fabric, pdid, buf0, buf1


def _hammer(fabric, blade, pdid, base, n=150):
    # Paced so the worker's lifetime spans the whole crash-and-recover
    # sequence (cached re-touches are otherwise free and the engine would
    # stop before the rebuilt plane comes up).
    for i in range(n):
        yield 10.0
        yield from blade.ensure_page(
            pdid, base + (i % 8) * PAGE_SIZE, write=(i % 2 == 0)
        )


def _timed_probe(fabric, blade, pdid, va, at_us, out, key):
    if at_us > fabric.engine.now:
        yield at_us - fabric.engine.now
    t0 = fabric.engine.now
    yield from blade.ensure_page(pdid, va, False)
    out[key] = fabric.engine.now - t0


class TestRackFailover:
    def test_other_racks_keep_serving_through_the_outage(self, rig):
        fabric, pdid, buf0, buf1 = rig
        orch = fabric.enable_rack_failover(0, FailoverConfig(**QUICK_FAILOVER))
        orch.crash_at(300.0)
        b0 = fabric.compute_blades[0]  # rack 0: rides through the crash
        b2 = fabric.compute_blades[2]  # rack 1: must not notice
        probes = {}
        fabric.run_all(
            [
                _hammer(fabric, b0, pdid, buf0),
                # Mid-outage (crash at 300, detection alone is 200 us): a
                # rack-1-homed fault on a rack-1 blade completes at normal
                # latency because only rack 0's gate is closed.
                _timed_probe(
                    fabric, b2, pdid, buf1 + PAGE_SIZE, 400.0, probes, "r1"
                ),
                _timed_probe(
                    fabric, b2, pdid, buf1 + 2 * PAGE_SIZE, 450.0, probes, "r1b"
                ),
            ]
        )
        assert orch.crashes == 1
        (start, end) = orch.outage_windows[0]
        assert start == pytest.approx(300.0)
        assert probes["r1"] < 100.0
        assert probes["r1b"] < 100.0
        # Sanity: the probes really did land inside the outage window.
        assert start < 400.0 < end

    def test_crashed_rack_recovers_and_serves_again(self, rig):
        fabric, pdid, buf0, _buf1 = rig
        orch = fabric.enable_rack_failover(0, FailoverConfig(**QUICK_FAILOVER))
        b0, b1 = fabric.compute_blades[0], fabric.compute_blades[1]
        fabric.run_process(b0.store_bytes(pdid, buf0, b"pre-crash"))
        orch.crash_at(fabric.engine.now + 100.0)
        fabric.run_all([_hammer(fabric, b0, pdid, buf0)])
        assert fabric.stats.counter("failovers_completed") == 1
        # Pre-crash state survived the rack-0 quiesce + rebuild.
        got = fabric.run_process(b1.load_bytes(pdid, buf0, 9))
        assert got == b"pre-crash"

    def test_quiesce_is_range_limited_to_the_crashed_rack(self, rig):
        fabric, pdid, buf0, buf1 = rig
        orch = fabric.enable_rack_failover(0, FailoverConfig(**QUICK_FAILOVER))
        b2 = fabric.compute_blades[2]  # rack 1 blade
        # b2 caches one page from each rack before the crash.
        fabric.run_process(b2.ensure_page(pdid, buf0, False))
        fabric.run_process(b2.ensure_page(pdid, buf1, False))
        orch.crash_at(fabric.engine.now + 50.0)
        fabric.run_all(
            [_hammer(fabric, fabric.compute_blades[0], pdid, buf0)]
        )
        assert fabric.stats.counter("failovers_completed") == 1
        intra = fabric.stats.counter("intra_rack_faults")
        cross = fabric.stats.counter("cross_rack_faults")
        # The rack-1-homed page survived the quiesce: re-touching it is a
        # cache hit, no new fault.
        fabric.run_process(b2.ensure_page(pdid, buf1, False))
        assert fabric.stats.counter("intra_rack_faults") == intra
        # The rack-0-homed page was dropped by the range-limited quiesce:
        # re-touching it re-faults across the spine.
        fabric.run_process(b2.ensure_page(pdid, buf0, False))
        assert fabric.stats.counter("cross_rack_faults") == cross + 1

    def test_quiesce_range_is_the_rack_va_slice(self, rig):
        fabric, _pdid, _buf0, _buf1 = rig
        for r, node in enumerate(fabric.topology.racks):
            assert node.cluster.quiesce_range == fabric.shard.rack_range(r)
