"""Parallel-in-time multirack execution: byte-identity with the serial
runner, planner conservatism, and the serial fallback."""

import json

from repro.multirack import MultiRackScenarioConfig, run_multirack
from repro.multirack.parallel import (
    plan_components,
    rack_parallelism,
    run_multirack_auto,
    run_multirack_parallel,
    set_rack_parallelism,
)
from repro.sweep.engine import extract_metrics


def _doc_bytes(result) -> str:
    """A run digested exactly as sweep documents record it."""
    return json.dumps(extract_metrics(result), sort_keys=True)


def _independent_config(**overrides) -> MultiRackScenarioConfig:
    base = dict(
        racks=2,
        compute_blades_per_rack=2,
        threads_per_blade=2,
        accesses_per_thread=150,
        cross_fraction=0.0,
        pages_per_rack=128,
        cache_capacity_pages=64,
        seed=3,
    )
    base.update(overrides)
    return MultiRackScenarioConfig(**base)


# -- planning ----------------------------------------------------------------


def test_plan_zero_cross_splits_per_rack():
    assert plan_components(_independent_config()) == [(0,), (1,)]
    assert plan_components(_independent_config(racks=3)) == [(0,), (1,), (2,)]


def test_plan_falls_back_when_racks_couple():
    # cross traffic connects everything into one component -> serial.
    assert plan_components(_independent_config(cross_fraction=0.5)) is None


def test_plan_falls_back_on_out_of_band_coupling():
    assert plan_components(_independent_config(racks=1)) is None
    assert plan_components(_independent_config(telemetry=True)) is None
    assert (
        plan_components(_independent_config(allocator="buddy")) is None
    )


# -- byte-identity -----------------------------------------------------------


def test_parallel_merge_is_byte_identical_in_process():
    """workers=1 runs components one at a time in-process through the full
    partial/merge machinery -- the pure merge-correctness check."""
    config = _independent_config()
    serial = run_multirack(config)
    parallel = run_multirack_parallel(config, workers=1)
    assert _doc_bytes(parallel) == _doc_bytes(serial)
    assert parallel.runtime_us == serial.runtime_us
    assert parallel.total_accesses == serial.total_accesses
    assert parallel.num_blades == serial.num_blades
    assert parallel.num_threads == serial.num_threads


def test_parallel_merge_is_byte_identical_across_processes():
    """workers=2 fans components out to spawned workers; the document must
    not depend on which process simulated which rack."""
    config = _independent_config(seed=5)
    serial = run_multirack(config)
    parallel = run_multirack_parallel(config, workers=2)
    assert _doc_bytes(parallel) == _doc_bytes(serial)


def test_parallel_open_loop_byte_identical():
    config = _independent_config(
        racks=3,
        compute_blades_per_rack=1,
        threads_per_blade=1,
        accesses_per_thread=100,
        arrival_process="poisson",
        arrival_rate_per_thread=0.05,
        seed=7,
    )
    serial = run_multirack(config)
    parallel = run_multirack_parallel(config, workers=1)
    assert _doc_bytes(parallel) == _doc_bytes(serial)


def test_coupled_point_falls_back_to_serial():
    config = _independent_config(cross_fraction=0.5, seed=1)
    serial = run_multirack(config)
    parallel = run_multirack_parallel(config, workers=2)
    assert _doc_bytes(parallel) == _doc_bytes(serial)


# -- the process-wide toggle -------------------------------------------------


def test_auto_dispatch_follows_toggle():
    config = _independent_config()
    assert rack_parallelism() is None
    baseline = _doc_bytes(run_multirack_auto(config))  # serial by default
    set_rack_parallelism(1)
    try:
        assert rack_parallelism() == 1
        assert _doc_bytes(run_multirack_auto(config)) == baseline
    finally:
        set_rack_parallelism(None)
    assert rack_parallelism() is None
