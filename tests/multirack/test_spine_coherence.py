"""Cross-rack coherence traffic actually rides the spine ports."""

import pytest

from repro.multirack import MultiRackConfig, MultiRackFabric
from repro.sim.network import PAGE_SIZE


@pytest.fixture
def fabric():
    return MultiRackFabric(
        MultiRackConfig(num_racks=2, compute_blades_per_rack=2)
    )


@pytest.fixture
def rig(fabric):
    pdid = fabric.spawn_process("spine")
    buf1 = fabric.mmap(pdid, 4 * PAGE_SIZE, rack=1)
    return fabric, pdid, buf1


class TestCrossRackInvalidation:
    def test_invalidating_a_remote_sharer_crosses_the_spine(self, rig):
        fabric, pdid, buf1 = rig
        remote = fabric.compute_blades[0]  # rack 0, sharer via the spine
        home = fabric.compute_blades[2]  # rack 1, local to the directory
        fabric.run_process(remote.ensure_page(pdid, buf1, False))
        spine_before = fabric.topology.tier_accounting()["spine_bytes"]
        inval_before = fabric.stats.counter("invalidations_sent")
        # The home-rack write must invalidate the rack-0 sharer, and the
        # invalidation has nowhere to go but over the spine proxy.
        fabric.run_process(home.ensure_page(pdid, buf1, True))
        assert fabric.stats.counter("invalidations_sent") > inval_before
        spine_after = fabric.topology.tier_accounting()["spine_bytes"]
        assert spine_after > spine_before

    def test_invalidated_remote_sharer_refaults(self, rig):
        fabric, pdid, buf1 = rig
        remote = fabric.compute_blades[0]
        home = fabric.compute_blades[2]
        fabric.run_process(remote.ensure_page(pdid, buf1, False))
        fabric.run_process(home.ensure_page(pdid, buf1, True))
        cross_before = fabric.stats.counter("cross_rack_faults")
        # The sharer really was dropped: touching the page again is a
        # fresh cross-rack fault, not a cache hit.
        fabric.run_process(remote.ensure_page(pdid, buf1, False))
        assert fabric.stats.counter("cross_rack_faults") == cross_before + 1

    def test_uplinks_and_downlinks_both_carry(self, rig):
        fabric, pdid, buf1 = rig
        remote = fabric.compute_blades[0]
        fabric.run_process(remote.ensure_page(pdid, buf1, False))
        node0 = fabric.topology.racks[0]
        node1 = fabric.topology.racks[1]
        # Request: rack0 uplink -> rack1 downlink.  Reply: rack1 uplink ->
        # rack0 downlink.  All four segments of the round trip carried.
        assert node0.uplink.bytes_carried > 0
        assert node1.downlink.bytes_carried > 0
        assert node1.uplink.bytes_carried > 0
        assert node0.downlink.bytes_carried > 0

    def test_intra_rack_traffic_stays_off_the_spine(self, fabric):
        pdid = fabric.spawn_process()
        buf0 = fabric.mmap(pdid, 4 * PAGE_SIZE, rack=0)
        b0, b1 = fabric.compute_blades[0], fabric.compute_blades[1]
        fabric.run_process(b0.ensure_page(pdid, buf0, True))
        fabric.run_process(b1.ensure_page(pdid, buf0, True))  # steal + inval
        acct = fabric.topology.tier_accounting()
        assert acct["spine_bytes"] == 0
        assert acct["spine_forwards"] == 0
        assert acct["edge_bytes"] > 0


class TestFabricTelemetry:
    def test_capture_aggregates_across_racks(self, rig):
        fabric, pdid, buf1 = rig
        buf0 = fabric.mmap(pdid, 4 * PAGE_SIZE, rack=0)
        fabric.run_process(fabric.compute_blades[0].ensure_page(pdid, buf0, True))
        fabric.run_process(fabric.compute_blades[0].ensure_page(pdid, buf1, True))
        fabric.capture_telemetry()
        stats = fabric.stats
        # Both racks hold directory entries; the fabric view sums them.
        assert stats.counter("directory_final") == sum(
            len(m.directory) for m in fabric.racks
        )
        assert stats.counter("directory_final") >= 2
        assert stats.gauges["tier:spine:bytes"] > 0
        assert stats.gauges["tier:edge:bytes"] > 0
        assert 0.0 <= stats.gauges["tier:spine:utilization_max"] <= 1.0
        assert stats.counter("spine_forwards") > 0

    def test_capture_is_idempotent(self, rig):
        fabric, pdid, buf1 = rig
        fabric.run_process(fabric.compute_blades[0].ensure_page(pdid, buf1, False))
        fabric.capture_telemetry()
        first = dict(fabric.stats.counters)
        fabric.capture_telemetry()
        assert dict(fabric.stats.counters) == first
