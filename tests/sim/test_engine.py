"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import AllOf, Engine, Event, Resource, SimulationError


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_schedule_runs_in_time_order():
    engine = Engine()
    order = []
    engine.schedule(5.0, lambda: order.append("b"))
    engine.schedule(1.0, lambda: order.append("a"))
    engine.schedule(9.0, lambda: order.append("c"))
    engine.run()
    assert order == ["a", "b", "c"]
    assert engine.now == 9.0


def test_schedule_ties_break_by_insertion_order():
    engine = Engine()
    order = []
    for tag in ("first", "second", "third"):
        engine.schedule(1.0, order.append, tag)
    engine.run()
    assert order == ["first", "second", "third"]


def test_schedule_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1.0, lambda: None)


def test_run_until_stops_clock_early():
    engine = Engine()
    engine.schedule(10.0, lambda: None)
    assert engine.run(until=5.0) == 5.0
    assert engine.now == 5.0


def test_process_timeout_advances_clock():
    engine = Engine()

    def proc():
        yield 3.5
        yield 1.5
        return "done"

    assert engine.run_process(proc()) == "done"
    assert engine.now == 5.0


def test_process_zero_timeout_allowed():
    engine = Engine()

    def proc():
        yield 0
        return engine.now

    assert engine.run_process(proc()) == 0.0


def test_process_negative_timeout_rejected():
    engine = Engine()

    def proc():
        yield -1.0

    with pytest.raises(SimulationError):
        engine.run_process(proc())


def test_process_bad_yield_rejected():
    engine = Engine()

    def proc():
        yield "nonsense"

    with pytest.raises(SimulationError):
        engine.run_process(proc())


def test_event_wakes_waiting_process_with_value():
    engine = Engine()
    ev = engine.event()

    def waiter():
        value = yield ev
        return value

    proc = engine.process(waiter())
    engine.schedule(7.0, ev.succeed, 42)
    engine.run()
    assert proc.value == 42
    assert engine.now == 7.0


def test_event_double_succeed_rejected():
    engine = Engine()
    ev = engine.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_callback_after_trigger_fires_immediately():
    engine = Engine()
    ev = engine.event()
    ev.succeed("x")
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    engine.run()
    assert seen == ["x"]


def test_multiple_waiters_all_resume():
    engine = Engine()
    ev = engine.event()
    results = []

    def waiter(tag):
        value = yield ev
        results.append((tag, value))

    for tag in ("a", "b", "c"):
        engine.process(waiter(tag))
    engine.schedule(1.0, ev.succeed, "v")
    engine.run()
    assert results == [("a", "v"), ("b", "v"), ("c", "v")]


def test_all_of_waits_for_every_event():
    engine = Engine()
    e1, e2 = engine.event(), engine.event()
    barrier = engine.all_of([e1, e2])
    engine.schedule(3.0, e1.succeed, 1)
    engine.schedule(8.0, e2.succeed, 2)

    def waiter():
        values = yield barrier
        return values

    proc = engine.process(waiter())
    engine.run()
    assert proc.value == [1, 2]
    assert engine.now == 8.0


def test_all_of_empty_fires_immediately():
    engine = Engine()
    barrier = engine.all_of([])
    assert barrier.triggered
    assert barrier.value == []


def test_all_of_with_pretriggered_events():
    engine = Engine()
    e1 = engine.event()
    e1.succeed("early")
    e2 = engine.event()
    barrier = engine.all_of([e1, e2])
    engine.schedule(1.0, e2.succeed, "late")
    engine.run()
    assert barrier.triggered
    assert barrier.value == ["early", "late"]


def test_process_join_returns_child_value():
    engine = Engine()

    def child():
        yield 2.0
        return "child-result"

    def parent():
        result = yield engine.process(child())
        return result

    assert engine.run_process(parent()) == "child-result"


def test_nested_process_joins_accumulate_time():
    engine = Engine()

    def leaf():
        yield 1.0

    def mid():
        yield engine.process(leaf())
        yield engine.process(leaf())

    def root():
        yield engine.process(mid())
        yield engine.process(mid())

    engine.run_process(root())
    assert engine.now == 4.0


def test_timeout_event_value():
    engine = Engine()
    ev = engine.timeout(5.0, "val")

    def waiter():
        return (yield ev)

    assert engine.run_process(waiter()) == "val"
    assert engine.now == 5.0


def test_run_until_complete_leaves_background_work_queued():
    engine = Engine()
    ticks = []

    def ticker():
        while True:
            yield 10.0
            ticks.append(engine.now)

    engine.process(ticker())

    def short():
        yield 25.0
        return "done"

    assert engine.run_process(short()) == "done"
    # The ticker ticked at 10 and 20 but was not drained past 25.
    assert ticks == [10.0, 20.0]
    assert engine.now == 25.0


def test_run_until_complete_deadlock_detected():
    engine = Engine()
    ev = engine.event()  # never fires

    def stuck():
        yield ev

    with pytest.raises(SimulationError):
        engine.run_process(stuck())


def test_determinism_same_schedule_same_result():
    def build_and_run():
        engine = Engine()
        log = []

        def worker(tag, delay):
            yield delay
            log.append((tag, engine.now))
            yield delay
            log.append((tag, engine.now))

        for i in range(5):
            engine.process(worker(i, 1.0 + i * 0.1))
        engine.run()
        return log

    assert build_and_run() == build_and_run()


class TestResource:
    def test_acquire_when_free_is_instant(self):
        engine = Engine()
        res = Resource(engine, capacity=1)

        def proc():
            ev = res.acquire()
            delay = yield ev
            return delay

        assert engine.run_process(proc()) == 0.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Resource(Engine(), capacity=0)

    def test_queueing_delay_reported(self):
        engine = Engine()
        res = Resource(engine, capacity=1)
        delays = []

        def holder():
            yield res.acquire()
            yield 10.0
            res.release()

        def waiter():
            ev = res.acquire()
            delay = yield ev
            delays.append(delay)
            res.release()

        engine.process(holder())
        engine.process(waiter())
        engine.run()
        assert delays == [10.0]

    def test_fifo_ordering(self):
        engine = Engine()
        res = Resource(engine, capacity=1)
        order = []

        def user(tag):
            yield res.acquire()
            order.append(tag)
            yield 1.0
            res.release()

        for tag in ("a", "b", "c"):
            engine.process(user(tag))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_multi_server_capacity(self):
        engine = Engine()
        res = Resource(engine, capacity=2)
        finish_times = []

        def user():
            yield res.acquire()
            yield 10.0
            res.release()
            finish_times.append(engine.now)

        for _ in range(4):
            engine.process(user())
        engine.run()
        # Two run immediately, two queue: done at 10 and 20.
        assert finish_times == [10.0, 10.0, 20.0, 20.0]

    def test_release_without_acquire_rejected(self):
        engine = Engine()
        res = Resource(engine, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_utilization_accounting(self):
        engine = Engine()
        res = Resource(engine, capacity=1)

        def user():
            yield res.acquire()
            yield 5.0
            res.release()
            yield 5.0

        engine.run_process(user())
        assert res.utilization() == pytest.approx(0.5)

    def test_queue_length_and_in_use(self):
        engine = Engine()
        res = Resource(engine, capacity=1)
        res.acquire()
        assert res.in_use == 1
        res.acquire()
        assert res.queue_length == 1


def test_run_until_leaves_future_events_queued():
    engine = Engine()
    fired = []
    engine.schedule(2.0, fired.append, "early")
    engine.schedule(8.0, fired.append, "late")
    assert engine.run(until=5.0) == 5.0
    assert fired == ["early"]
    assert engine.pending_timer_count() == 1  # the t=8 event survives the pause
    # Resuming picks the queued event back up and drains it.
    assert engine.run() == 8.0
    assert fired == ["early", "late"]


def test_run_until_exactly_at_event_time_runs_it():
    engine = Engine()
    fired = []
    engine.schedule(5.0, fired.append, "on-time")
    engine.run(until=5.0)
    assert fired == ["on-time"]


class TestResourceAccounting:
    def test_multi_server_utilization_is_fraction_of_capacity(self):
        engine = Engine()
        res = Resource(engine, capacity=2)

        def user(hold):
            def gen():
                yield res.acquire()
                yield hold
                res.release()

            return gen()

        engine.process(user(10.0))
        engine.process(user(5.0))
        engine.run()
        # busy integral = 2 servers * 5us + 1 server * 5us = 15 server-us
        # over 10us * 2 capacity = 20 server-us.
        assert res.utilization() == pytest.approx(0.75)

    def test_utilization_before_time_advances_is_zero(self):
        engine = Engine()
        res = Resource(engine, capacity=1)
        res.acquire()
        assert res.utilization() == 0.0

    def test_queue_length_tracks_full_lifecycle(self):
        engine = Engine()
        res = Resource(engine, capacity=1)
        depths = []

        def holder():
            yield res.acquire()
            yield 4.0
            res.release()

        def waiter():
            yield 1.0
            depths.append(res.queue_length)  # before queueing
            ev = res.acquire()
            depths.append(res.queue_length)  # queued
            yield ev
            depths.append(res.queue_length)  # granted
            res.release()

        engine.process(holder())
        engine.process(waiter())
        engine.run()
        assert depths == [0, 1, 0]
        assert res.in_use == 0

    def test_wait_accounting_accumulates_queueing_delay(self):
        engine = Engine()
        res = Resource(engine, capacity=1, name="lock")

        def holder():
            yield res.acquire()
            yield 6.0
            res.release()

        def waiter():
            yield 2.0
            ev = res.acquire()
            yield ev
            res.release()

        engine.process(holder())
        engine.process(waiter())
        engine.run()
        assert res.total_wait_us == pytest.approx(4.0)
        assert res.waits == 1
        assert res.grants == 2

    def test_named_resources_register_with_engine(self):
        engine = Engine()
        named = Resource(engine, capacity=1, name="kernel")
        Resource(engine, capacity=1)  # anonymous: not registered
        assert engine.resources == [named]

    def test_contended_fifo_grant_order_with_many_waiters(self):
        engine = Engine()
        res = Resource(engine, capacity=1)
        order = []

        def user(tag):
            def gen():
                yield res.acquire()
                order.append(tag)
                yield 1.0
                res.release()

            return gen()

        for tag in range(20):
            engine.process(user(tag))
        engine.run()
        assert order == list(range(20))
