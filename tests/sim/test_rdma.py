"""Unit tests for the one-sided RDMA verb model."""

import pytest

from repro.sim.engine import Engine
from repro.sim.network import CONTROL_MSG_BYTES, Network, NetworkConfig, PAGE_SIZE
from repro.sim.rdma import RdmaQp, one_sided_read, one_sided_write


@pytest.fixture
def rig():
    engine = Engine()
    network = Network(engine)
    compute = network.attach("compute")
    memory = network.attach("memory")
    return engine, network, compute, memory


def test_qp_post_request_charges_verb_and_uplink(rig):
    engine, network, compute, _memory = rig
    qp = RdmaQp(engine, network, compute)
    engine.run_process(qp.post_request())
    cfg = network.config
    expected = (
        cfg.rdma_verb_overhead_us
        + cfg.serialization_us(CONTROL_MSG_BYTES)
        + cfg.link_propagation_us
    )
    assert engine.now == pytest.approx(expected)


def test_qp_receive_response_page(rig):
    engine, network, compute, _memory = rig
    qp = RdmaQp(engine, network, compute)
    engine.run_process(qp.receive_response(PAGE_SIZE))
    cfg = network.config
    expected = (
        cfg.serialization_us(PAGE_SIZE)
        + cfg.link_propagation_us
        + cfg.rdma_verb_overhead_us
    )
    assert engine.now == pytest.approx(expected)


def test_one_sided_read_leg_latency(rig):
    engine, network, _compute, memory = rig
    cfg = network.config
    engine.run_process(one_sided_read(engine, cfg, memory, PAGE_SIZE))
    expected = (
        cfg.serialization_us(CONTROL_MSG_BYTES)
        + cfg.link_propagation_us
        + cfg.memory_service_us
        + cfg.dram_access_us
        + cfg.serialization_us(PAGE_SIZE)
        + cfg.link_propagation_us
    )
    assert engine.now == pytest.approx(expected)


def test_one_sided_write_leg_latency(rig):
    engine, network, _compute, memory = rig
    cfg = network.config
    engine.run_process(one_sided_write(engine, cfg, memory, PAGE_SIZE))
    # The page travels down; only a small ACK comes back.
    expected = (
        cfg.serialization_us(PAGE_SIZE)
        + cfg.link_propagation_us
        + cfg.memory_service_us
        + cfg.dram_access_us
        + cfg.serialization_us(CONTROL_MSG_BYTES)
        + cfg.link_propagation_us
    )
    assert engine.now == pytest.approx(expected)


def test_read_and_write_legs_are_symmetric(rig):
    engine, network, _compute, memory = rig
    cfg = network.config
    e1 = Engine()
    n1 = Network(e1)
    m1 = n1.attach("m")
    e1.run_process(one_sided_read(e1, cfg, m1, PAGE_SIZE))
    e2 = Engine()
    n2 = Network(e2)
    m2 = n2.attach("m")
    e2.run_process(one_sided_write(e2, cfg, m2, PAGE_SIZE))
    assert e1.now == pytest.approx(e2.now)
