"""Timeout/retry semantics of the reliable RDMA verbs (Section 4.4)."""

import pytest

from repro.sim.engine import Engine
from repro.sim.network import CONTROL_MSG_BYTES, LinkFault, Network
from repro.sim.rdma import BackoffPolicy, RdmaQp, RdmaTimeoutError
from repro.sim.rng import make_rng


class ScriptedRng:
    """Deterministic stand-in: returns scripted uniform draws."""

    def __init__(self, draws):
        self._draws = list(draws)

    def random(self):
        return self._draws.pop(0) if self._draws else 1.0


@pytest.fixture
def rig():
    engine = Engine()
    network = Network(engine)
    compute = network.attach("compute")
    return engine, network, compute


class TestBackoffPolicy:
    def test_schedule_is_exponential_and_capped(self):
        policy = BackoffPolicy(
            base_timeout_us=50.0, multiplier=2.0, max_retries=6,
            max_timeout_us=400.0,
        )
        assert policy.schedule() == [50.0, 100.0, 200.0, 400.0, 400.0, 400.0]

    def test_timeout_grows_per_attempt(self):
        policy = BackoffPolicy(base_timeout_us=100.0, multiplier=2.0)
        assert policy.timeout_us(0) == 100.0
        assert policy.timeout_us(1) == 200.0
        assert policy.timeout_us(2) == 400.0

    def test_jittered_schedule_is_seed_deterministic(self):
        policy = BackoffPolicy(jitter_frac=0.25)
        a = policy.schedule(rng=make_rng(42))
        b = policy.schedule(rng=make_rng(42))
        c = policy.schedule(rng=make_rng(43))
        assert a == b
        assert a != c
        # Jitter only ever lengthens the wait (never below the base curve).
        for jittered, base in zip(a, policy.schedule()):
            assert base <= jittered <= base * 1.25

    def test_unjittered_schedule_ignores_rng(self):
        policy = BackoffPolicy()
        assert policy.schedule(rng=make_rng(1)) == policy.schedule()


class TestReliableVerbs:
    def test_clean_link_takes_one_attempt(self, rig):
        engine, network, compute = rig
        qp = RdmaQp(engine, network, compute)
        retries = engine.run_process(qp.reliable_post())
        assert retries == 0
        assert qp.retransmissions == 0
        assert qp.timeouts == 0

    def test_lossy_link_is_retransmitted(self, rig):
        engine, network, compute = rig
        # Drop the first two attempts, deliver the third.
        compute.to_switch.install_fault(
            LinkFault(0.0, 1e12, drop_prob=0.5,
                      rng=ScriptedRng([0.1, 0.1, 0.9]))
        )
        policy = BackoffPolicy(base_timeout_us=50.0, max_retries=5)
        qp = RdmaQp(engine, network, compute, backoff=policy)
        retries = engine.run_process(qp.reliable_post())
        assert retries == 2
        assert qp.retransmissions == 2
        assert qp.timeouts == 0
        cfg = network.config
        # Elapsed covers three serializations + the 50us and 100us waits.
        per_attempt = cfg.rdma_verb_overhead_us + cfg.serialization_us(
            CONTROL_MSG_BYTES
        )
        expected_min = 3 * per_attempt + 50.0 + 100.0
        assert engine.now >= expected_min

    def test_exhausted_budget_raises_typed_error(self, rig):
        engine, network, compute = rig
        compute.from_switch.install_fault(
            LinkFault(0.0, 1e12, drop_prob=1.0, rng=ScriptedRng([0.0] * 10))
        )
        policy = BackoffPolicy(base_timeout_us=10.0, max_retries=2)
        qp = RdmaQp(engine, network, compute, backoff=policy)
        with pytest.raises(RdmaTimeoutError) as exc:
            engine.run_process(qp.reliable_receive(4096))
        assert exc.value.verb == "receive"
        assert exc.value.attempts == 3
        assert qp.retransmissions == 2
        assert qp.timeouts == 1

    def test_retry_schedule_is_deterministic_per_seed(self, rig):
        """Two same-seed runs produce identical completion times."""

        def run_once(seed):
            engine = Engine()
            network = Network(engine)
            compute = network.attach("compute")
            compute.to_switch.install_fault(
                LinkFault(0.0, 1e12, drop_prob=0.3, rng=make_rng(seed))
            )
            qp = RdmaQp(
                engine,
                network,
                compute,
                backoff=BackoffPolicy(jitter_frac=0.2),
                rng=make_rng(seed + 1),
            )
            for _ in range(20):
                engine.run_process(qp.reliable_post())
            return engine.now, qp.retransmissions

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)
