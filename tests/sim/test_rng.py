"""Unit tests for seeded randomness and the bounded Zipfian sampler."""

import numpy as np
import pytest

from repro.sim.rng import ZipfianSampler, derive_rng, make_rng, scrambled


def test_make_rng_deterministic():
    a = make_rng(42).integers(0, 1000, size=10)
    b = make_rng(42).integers(0, 1000, size=10)
    assert (a == b).all()


def test_make_rng_different_seeds_differ():
    a = make_rng(1).integers(0, 10**9)
    b = make_rng(2).integers(0, 10**9)
    assert a != b


def test_derive_rng_streams_independent():
    parent = make_rng(7)
    c1 = derive_rng(parent, 0)
    parent2 = make_rng(7)
    c2 = derive_rng(parent2, 1)
    assert c1.integers(0, 10**9) != c2.integers(0, 10**9)


class TestZipfianSampler:
    def test_samples_within_bounds(self):
        sampler = ZipfianSampler(100, seed=1)
        samples = sampler.sample(10_000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_rank_zero_is_hottest(self):
        sampler = ZipfianSampler(1000, theta=0.99, seed=1)
        samples = sampler.sample(50_000)
        counts = np.bincount(samples, minlength=1000)
        assert counts[0] == counts.max()

    def test_skew_increases_with_theta(self):
        flat = ZipfianSampler(100, theta=0.0, seed=1).sample(20_000)
        skewed = ZipfianSampler(100, theta=1.2, seed=1).sample(20_000)
        top_flat = (flat == 0).mean()
        top_skewed = (skewed == 0).mean()
        assert top_skewed > 3 * top_flat

    def test_theta_zero_is_uniform(self):
        samples = ZipfianSampler(10, theta=0.0, seed=3).sample(100_000)
        counts = np.bincount(samples, minlength=10)
        assert counts.min() > 0.8 * counts.mean()

    def test_deterministic_given_seed(self):
        a = ZipfianSampler(50, seed=9).sample(100)
        b = ZipfianSampler(50, seed=9).sample(100)
        assert (a == b).all()

    def test_sample_one(self):
        sampler = ZipfianSampler(10, seed=0)
        assert 0 <= sampler.sample_one() < 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianSampler(0)
        with pytest.raises(ValueError):
            ZipfianSampler(10, theta=-1.0)


def test_scrambled_is_permutation_like():
    keys = np.arange(1000)
    out = scrambled(keys, 1000)
    assert out.min() >= 0
    assert out.max() < 1000
    # The multiplicative hash must spread the head of the distribution.
    head = scrambled(np.arange(10), 1000)
    assert len(np.unique(head)) == 10
    assert head.std() > 50
