"""The calendar-queue timer core: the rotating bucket wheel, the
overflow heap behind its horizon, and the exact (time, seq) total order
they must jointly preserve.

The contract under test is the one the whole unobservability story rests
on: the wheel is *only* a faster container for the same totally-ordered
timer set a single heap would hold.  Entries with equal timestamps fire
in insertion order no matter which structure (cursor bucket, future
bucket, overflow heap) they happened to land in, ``run(until=...)``
behaves identically whether the limit falls inside or exactly on a
bucket edge, and the event freelist keeps recycling through the new pop
path.
"""

from repro.sim.engine import (
    DEFAULT_BUCKET_WIDTH_US,
    WHEEL_SLOTS,
    Engine,
)

#: simulated horizon of a fresh engine's wheel: timers at or beyond this
#: timestamp start life in the overflow heap.
HORIZON_US = WHEEL_SLOTS * DEFAULT_BUCKET_WIDTH_US


class TestSameTimestampFifo:
    def test_fifo_preserved_across_wheel_and_overflow(self):
        # Four callbacks share one wake timestamp but are inserted into
        # different structures: the first two land beyond the horizon
        # (overflow heap), then the clock advances so the horizon slides
        # past the timestamp and the last two land in a wheel bucket.
        # Execution must still follow pure insertion order.
        engine = Engine()
        order = []
        engine.schedule(HORIZON_US, order.append, "overflow-0")
        engine.schedule(HORIZON_US, order.append, "overflow-1")
        engine.schedule(100.0, order.append, "advance")
        engine.run(until=100.0)
        assert engine.now == 100.0
        engine.schedule(HORIZON_US - engine.now, order.append, "wheel-2")
        engine.schedule(HORIZON_US - engine.now, order.append, "wheel-3")
        engine.run()
        assert order == [
            "advance", "overflow-0", "overflow-1", "wheel-2", "wheel-3",
        ]
        assert engine.now == HORIZON_US

    def test_fifo_on_a_shared_bucket_boundary(self):
        # A timestamp exactly on a bucket edge belongs to exactly one
        # bucket; interleaving it with same-instant zero-delay work and a
        # neighbouring-bucket timer must reproduce single-queue order.
        engine = Engine()
        edge = 3 * DEFAULT_BUCKET_WIDTH_US
        order = []

        def proc():
            yield edge  # wake exactly on the edge
            order.append("sleeper")
            engine.schedule(0.0, order.append, "ready-after")

        engine.schedule(edge, order.append, "timer-first")
        engine.process(proc())
        engine.schedule(edge + DEFAULT_BUCKET_WIDTH_US, order.append, "next-bucket")
        engine.run()
        assert order == ["timer-first", "sleeper", "ready-after", "next-bucket"]


class TestOverflowRejoinsWheel:
    def test_far_future_timer_fires_exactly_without_sweeping(self):
        # A timer 50k buckets past the horizon must fire at its exact
        # timestamp, and the cursor must jump there rather than rotate
        # through every empty bucket in between.
        engine = Engine()
        fired = []
        engine.schedule(100_000.0, lambda: fired.append(engine.now))
        engine.schedule(1.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [1.0, 100_000.0]
        assert engine.calendar_rotations < 1_000  # jumped, not swept

    def test_overflow_interleaves_with_swept_buckets(self):
        # As a sleeper walks the cursor across the original horizon, an
        # overflow timer due inside a swept bucket's window must be
        # pulled into that bucket and fire in correct global order.
        engine = Engine()
        events = []
        far = HORIZON_US + 3.0
        engine.schedule(far, lambda: events.append(("far", engine.now)))

        def walker():
            for _ in range(300):  # 300 x 2us strides past the horizon
                yield DEFAULT_BUCKET_WIDTH_US
            events.append(("walker-done", engine.now))

        engine.process(walker())
        engine.run()
        assert ("far", far) in events
        # The walker's stride at far's bucket ran in timestamp order.
        walker_done = events.index(("walker-done", 600.0))
        assert events.index(("far", far)) < walker_done


class TestRunUntilBucketEdge:
    def test_stops_exactly_on_the_edge_and_resumes(self):
        # until= exactly on a bucket boundary: a timer at the boundary is
        # <= until so it runs; the next bucket's timer stays parked, and
        # a later run() picks it up at its own timestamp.
        engine = Engine()
        edge = 3 * DEFAULT_BUCKET_WIDTH_US
        hits = []
        engine.schedule(edge, hits.append, "at-edge")
        engine.schedule(edge + DEFAULT_BUCKET_WIDTH_US, hits.append, "later")
        assert engine.run(until=edge) == edge
        assert hits == ["at-edge"]
        assert engine.now == edge
        assert engine.pending_timer_count() == 1
        engine.run()
        assert hits == ["at-edge", "later"]
        assert engine.now == edge + DEFAULT_BUCKET_WIDTH_US

    def test_until_on_horizon_leaves_overflow_untouched(self):
        # Stopping exactly at the wheel horizon: the overflow-resident
        # timer at that very timestamp is *not* past the limit, so it
        # runs; one strictly later stays pending.
        engine = Engine()
        hits = []
        engine.schedule(HORIZON_US, hits.append, "at-horizon")
        engine.schedule(HORIZON_US + 1.0, hits.append, "beyond")
        assert engine.run(until=HORIZON_US) == HORIZON_US
        assert hits == ["at-horizon"]
        assert engine.pending_timer_count() == 1
        engine.run()
        assert hits == ["at-horizon", "beyond"]


class TestFreelistUnderCalendarPops:
    def test_timeout_events_recycle_through_timer_pops(self):
        # Positive-delay timeouts park in the calendar (delay > bucket
        # width, so consecutive waits land in different buckets); the one
        # pooled Event must be reused for every cycle, and the pops must
        # actually flow through the calendar pop path.
        engine = Engine()
        ids = set()

        def pin():
            # A competitor due earlier keeps the sleeper off the inline
            # clock-advance path, forcing real calendar traffic.
            for _ in range(90):
                yield 1.5

        def proc():
            for _ in range(40):
                ev = engine.timeout(3.0, value="tick")
                ids.add(id(ev))
                got = yield ev
                assert got == "tick"

        engine.process(pin())
        engine.process(proc())
        engine.run()
        assert len(ids) == 1  # one pooled event served all 40 waits
        assert engine._event_pool  # ... and went back to the freelist
        assert engine._timer_pops >= 40
        assert engine.calendar_rotations > 0


class TestWidthAdaptation:
    def test_rebuild_keeps_order_and_counts(self):
        # Two processes ping-ponging sub-bucket delays push enough timer
        # pops to trigger width adaptation; the rebuild must be invisible
        # (strict alternation preserved) and counted.
        engine = Engine()
        order = []

        def proc(tag):
            for _ in range(2_600):
                yield 0.1
                order.append(tag)

        engine.process(proc("a"))
        engine.process(proc("b"))
        engine.run()
        assert engine.calendar_rebuilds >= 1
        assert order[:4] == ["a", "b", "a", "b"]
        assert order == ["a", "b"] * 2_600
