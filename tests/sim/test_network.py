"""Unit tests for the rack network model."""

import pytest

from repro.sim.engine import Engine
from repro.sim.network import (
    CONTROL_MSG_BYTES,
    Link,
    Network,
    NetworkConfig,
    PAGE_SIZE,
)


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def config():
    return NetworkConfig()


def test_serialization_time_scales_with_size(config):
    assert config.serialization_us(PAGE_SIZE) == pytest.approx(
        2 * config.serialization_us(PAGE_SIZE // 2)
    )


def test_serialization_100gbps_page(config):
    # 4 KB at 100 Gbps = 32768 bits / 100e3 bits-per-us.
    assert config.page_serialization_us() == pytest.approx(0.32768)


def test_link_transfer_time(engine, config):
    link = Link(engine, config, "test")
    engine.run_process(link.transfer(PAGE_SIZE))
    expected = config.serialization_us(PAGE_SIZE) + config.link_propagation_us
    assert engine.now == pytest.approx(expected)


def test_link_transfers_serialize(engine, config):
    """Two page transfers on one link: serialization is FIFO; propagation
    of the second overlaps nothing (starts after its serialization)."""
    link = Link(engine, config, "test")
    done = []

    def send():
        yield engine.process(link.transfer(PAGE_SIZE))
        done.append(engine.now)

    engine.process(send())
    engine.process(send())
    engine.run()
    ser = config.serialization_us(PAGE_SIZE)
    prop = config.link_propagation_us
    assert done[0] == pytest.approx(ser + prop)
    assert done[1] == pytest.approx(2 * ser + prop)


def test_link_counts_bytes(engine, config):
    link = Link(engine, config, "test")
    engine.run_process(link.transfer(100))
    engine.run_process(link.transfer(200))
    assert link.bytes_carried == 300


def test_control_message_is_cheap(engine, config):
    link = Link(engine, config, "test")
    engine.run_process(link.transfer(CONTROL_MSG_BYTES))
    assert engine.now < config.link_propagation_us + 0.01


def test_network_attach_unique_names(engine):
    net = Network(engine)
    net.attach("a")
    with pytest.raises(ValueError):
        net.attach("a")


def test_network_port_ids_sequential(engine):
    net = Network(engine)
    ports = [net.attach(f"blade{i}") for i in range(4)]
    assert [p.port_id for p in ports] == [0, 1, 2, 3]


def test_network_port_lookup(engine):
    net = Network(engine)
    port = net.attach("x")
    assert net.port("x") is port


def test_full_duplex_links_independent(engine, config):
    """Up and down links of a port carry traffic concurrently."""
    net = Network(engine, config)
    port = net.attach("blade")
    done = []

    def up():
        yield engine.process(port.to_switch.transfer(PAGE_SIZE))
        done.append(("up", engine.now))

    def down():
        yield engine.process(port.from_switch.transfer(PAGE_SIZE))
        done.append(("down", engine.now))

    engine.process(up())
    engine.process(down())
    engine.run()
    expected = config.serialization_us(PAGE_SIZE) + config.link_propagation_us
    assert done[0][1] == pytest.approx(expected)
    assert done[1][1] == pytest.approx(expected)


def test_total_bytes_across_ports(engine):
    net = Network(engine)
    a, b = net.attach("a"), net.attach("b")
    engine.run_process(a.to_switch.transfer(100))
    engine.run_process(b.from_switch.transfer(50))
    assert net.total_bytes() == 150


def test_config_latency_budget_is_sane(config):
    """The one-way fetch path must land near the paper's 9 us point."""
    one_way = (
        config.rdma_verb_overhead_us
        + config.serialization_us(CONTROL_MSG_BYTES)
        + 2 * config.link_propagation_us  # to switch, to memory blade
        + config.switch_pipeline_us
        + config.memory_service_us
        + config.dram_access_us
        + config.serialization_us(PAGE_SIZE) * 2
        + config.link_propagation_us * 2  # back through the switch
        + config.switch_pipeline_us
        + config.rdma_verb_overhead_us
    )
    assert 7.0 < one_way < 11.0
