"""The kernel fast paths: inline continuations, the ready deque, the
event freelist, and subtask fusion.

Every fast path is *unobservable* by design -- it may only fire when the
result is identical to the scheduler round-trip it replaces -- so these
tests pin both sides: the optimization actually engages (counters move)
and the simulated behaviour is exactly the slow path's.
"""

import json
from pathlib import Path

import pytest

from repro.sim.engine import (
    EVENT_POOL_CAPACITY,
    MAX_INLINE_CONTINUATIONS,
    Engine,
    Resource,
)


class TestInlineContinuations:
    def test_zero_delay_chain_completes_correctly(self):
        engine = Engine()

        def proc():
            for _ in range(10_000):
                yield 0
            return "done"

        assert engine.run_process(proc()) == "done"
        assert engine.now == 0.0
        assert engine.inline_continuations > 0

    def test_depth_bound_forces_scheduler_round_trips(self):
        # The inline budget caps how many waits one dispatch may absorb:
        # a chain of N zero-delay yields must surface to the scheduler at
        # least every MAX_INLINE_CONTINUATIONS steps (bounded stack/starvation).
        engine = Engine()
        n = 10 * (MAX_INLINE_CONTINUATIONS + 1)

        def proc():
            for _ in range(n):
                yield 0

        engine.run_process(proc())
        assert engine.inline_continuations < n
        assert engine.events_executed >= n // (MAX_INLINE_CONTINUATIONS + 1)

    def test_inline_never_overtakes_work_due_now(self):
        # A triggered event may only be continued inline when nothing else
        # is due at the current instant; otherwise that work would be
        # (unobservably for the waiter, observably for everyone else)
        # starved.  Two processes ping-ponging zero delays must interleave
        # exactly as the plain scheduler would interleave them.
        engine = Engine()
        order = []

        def proc(tag):
            for step in range(3):
                order.append((tag, step))
                yield 0

        engine.process(proc("a"))
        engine.process(proc("b"))
        engine.run()
        assert order == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2),
        ]

    def test_already_triggered_event_resumes_with_value(self):
        engine = Engine()
        ev = engine.event()
        ev.succeed("payload")

        def proc():
            got = yield ev
            return got

        assert engine.run_process(proc()) == "payload"


class TestEventFreelist:
    def test_uncontended_acquire_events_are_recycled(self):
        # An uncontended acquire is granted synchronously, so its event is
        # consumed inline and goes straight back to the freelist; fifty
        # acquire/release cycles must churn the same pooled object, not
        # allocate fifty events.
        engine = Engine()
        resource = Resource(engine, capacity=1)
        event_ids = set()

        def proc():
            for _ in range(50):
                grant = resource.acquire()
                event_ids.add(id(grant))
                wait = yield grant
                assert wait == 0.0
                yield 1.0
                resource.release()

        engine.run_process(proc())
        assert engine._event_pool  # the event came back to the pool
        assert len(event_ids) == 1  # ... and was reused every cycle

    def test_reuse_after_succeed_delivers_fresh_values(self):
        # A recycled Event must come back blank: a stale .value or
        # .triggered from its previous life would corrupt the next wait.
        engine = Engine()
        resource = Resource(engine, capacity=1)
        seen = []

        def proc():
            # Prime the pool with a consumed grant event...
            yield resource.acquire()
            resource.release()
            # ... which the timeouts below will pop and reuse.
            seen.append((yield engine.timeout(1.0, value="first")))
            seen.append((yield engine.timeout(1.0)))  # default None payload

        engine.run_process(proc())
        assert seen == ["first", None]

    def test_pool_is_bounded(self):
        engine = Engine()
        for _ in range(EVENT_POOL_CAPACITY + 50):
            ev = engine._pooled_event()
            ev._pooled = True
            engine._recycle(ev)
        assert len(engine._event_pool) <= EVENT_POOL_CAPACITY

    def test_resource_acquire_uses_pool_safely(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        waits = []

        def worker(tag):
            wait = yield resource.acquire()
            waits.append((tag, wait))
            yield 2.0
            resource.release()

        for tag in ("a", "b", "c"):
            engine.process(worker(tag))
        engine.run()
        # FIFO grants with correct queueing delays, through recycled events.
        assert waits == [("a", 0.0), ("b", 2.0), ("c", 4.0)]


class TestReadyDeque:
    def test_zero_delay_interleaves_with_due_heap_entries(self):
        # Zero-delay schedules bypass the heap but must still execute in
        # global insertion order relative to heap entries due at the same
        # instant.
        engine = Engine()
        order = []
        engine.schedule(0.0, order.append, "ready-1")
        engine.schedule(0.0, order.append, "ready-2")
        engine.run()
        assert order == ["ready-1", "ready-2"]

    def test_succeed_at_now_never_reorders_callbacks(self):
        engine = Engine()
        order = []
        ev = engine.event()
        ev.add_callback(lambda e: order.append("first-waiter"))
        ev.add_callback(lambda e: order.append("second-waiter"))
        engine.schedule(0.0, lambda: (ev.succeed(), order.append("trigger"))[1])
        engine.run()
        assert order == ["trigger", "first-waiter", "second-waiter"]


class TestInlineClockAdvance:
    def test_sole_actor_advances_clock_without_heap(self):
        # A lone process sleeping repeatedly is always the globally next
        # event, so the kernel advances the clock in place.
        engine = Engine()

        def proc():
            for _ in range(30):
                yield 2.5
            return engine.now

        assert engine.run_process(proc()) == 75.0
        assert engine.now == 75.0
        assert engine.inline_clock_advances > 0

    def test_never_advances_past_an_earlier_heap_entry(self):
        # A sleeper may only jump ahead when every heap entry is strictly
        # later; an event due sooner must run first, at its own timestamp.
        engine = Engine()
        times = []

        def sleeper():
            yield 10.0
            times.append(("sleeper", engine.now))

        def early():
            yield 4.0
            times.append(("early", engine.now))

        engine.process(sleeper())
        engine.process(early())
        engine.run()
        assert times == [("early", 4.0), ("sleeper", 10.0)]

    def test_respects_run_until_limit(self):
        # run(until=...) leaves later wake-ups parked in the heap; the
        # fast path must not carry a process past the limit.
        engine = Engine()
        reached = []

        def proc():
            for _ in range(10):
                yield 3.0
                reached.append(engine.now)

        engine.process(proc())
        assert engine.run(until=7.5) == 7.5
        assert reached == [3.0, 6.0]
        # ... and a later run() resumes exactly where the limit cut in.
        engine.run()
        assert reached[-1] == 30.0

    def test_timestamps_match_heap_path_bit_for_bit(self):
        # The advance stores now + delay exactly as the heap entry would
        # have, so accumulated float error is identical on both paths.
        fast = Engine()
        slow = Engine()

        def proc(engine, log):
            for _ in range(100):
                yield 0.1
                log.append(engine.now)

        fast_log, slow_log = [], []
        fast.process(proc(fast, fast_log))
        # Pin a competing process in the slow engine so every wait parks
        # in the heap (the guard sees an entry due before the wake-up).
        def pin(engine):
            for _ in range(200):
                yield 0.05

        slow.process(pin(slow))
        slow.process(proc(slow, slow_log))
        fast.run()
        slow.run()
        assert fast.inline_clock_advances > 0
        assert fast_log == slow_log


class TestSubtaskFusion:
    def test_fuses_when_idle_and_returns_child_result(self):
        engine = Engine()

        def child():
            yield 1.0
            return "child-result"

        def parent():
            got = yield from engine.subtask(child())
            return got

        assert engine.run_process(parent()) == "child-result"
        assert engine.now == 1.0
        assert engine.subtasks_fused == 1

    def test_falls_back_to_process_when_work_is_due(self):
        engine = Engine()
        order = []

        def child(tag):
            order.append(tag)
            yield 1.0

        def parent():
            # Sibling work due now: fusing would run the child's first
            # step ahead of it, so subtask must spawn a real process.
            engine.schedule(0.0, order.append, "sibling")
            yield from engine.subtask(child("child"))

        engine.run_process(parent())
        assert order == ["sibling", "child"]
        assert engine.subtasks_fused == 0

    def test_falls_back_when_tracing(self):
        class _Tracer:
            enabled = True

        engine = Engine()

        def child():
            yield 1.0
            return 42

        def parent():
            return (yield from engine.subtask(child()))

        engine.tracer = _Tracer()
        gen = engine.subtask((x for x in ()))
        # Not fused: subtask handed back a spawn-join wrapper, not the
        # child generator itself.
        assert engine.subtasks_fused == 0
        gen.close()


class TestKernelStats:
    def test_counters_are_exported(self):
        engine = Engine()

        def proc():
            yield 0
            yield from engine.subtask(iter_child())

        def iter_child():
            yield 1.0

        engine.run_process(proc())
        stats = engine.kernel_stats()
        assert stats["events_executed"] == engine.events_executed
        assert stats["inline_continuations"] == engine.inline_continuations
        assert stats["subtasks_fused"] == engine.subtasks_fused
        assert stats["processes_started"] >= 1


class TestBenchSpeedDocument:
    """The checked-in speed baseline must advertise every kernel fast
    path: a counter that silently vanished from the document is a fast
    path CI stopped watching."""

    @staticmethod
    def _doc():
        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "BENCH_speed.json"
        )
        return json.loads(path.read_text())

    def test_kernel_totals_match_engine_counters(self):
        doc = self._doc()
        assert doc["schema"] == "repro.profile/v1"
        # The document's totals and a live engine's kernel_stats() must
        # name the same counters -- adding a counter without re-blessing
        # (or re-blessing with a stale kernel) trips here.
        assert set(doc["kernel_totals"]) == set(Engine().kernel_stats())

    def test_calendar_and_batch_counters_are_live(self):
        totals = self._doc()["kernel_totals"]
        for key in ("calendar_rotations", "calendar_rebuilds", "batched_retires"):
            assert key in totals
        # ci-quick exercises both the wheel and the batched replay path.
        assert totals["calendar_rotations"] > 0
        assert totals["batched_retires"] > 0
        assert totals["events_executed"] > 0

    def test_subsystem_attribution_is_recorded(self):
        doc = self._doc()
        assert set(doc["subsystems"]) == {
            "scheduler", "replay", "protocol", "other",
        }
        total = sum(doc["subsystems"].values())
        assert 0.99 <= total <= 1.01


def test_negative_yield_still_rejected():
    engine = Engine()

    def proc():
        yield -1.0

    with pytest.raises(Exception):
        engine.run_process(proc())
