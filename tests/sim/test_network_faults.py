"""Link-level fault windows and truthful accounting under aborted transfers."""

import pytest

from repro.sim.engine import Engine
from repro.sim.network import LinkFault, Network
from repro.sim.rng import make_rng


class AlwaysDrop:
    def random(self):
        return 0.0


class NeverDrop:
    def random(self):
        return 1.0


@pytest.fixture
def rig():
    engine = Engine()
    network = Network(engine)
    port = network.attach("compute")
    return engine, network, port


def test_transfer_outside_window_is_unaffected(rig):
    engine, network, port = rig
    port.to_switch.install_fault(
        LinkFault(1_000.0, 2_000.0, drop_prob=1.0, rng=AlwaysDrop())
    )
    delivered = engine.run_process(port.to_switch.transfer(4096))
    assert delivered is True
    assert port.to_switch.packets_dropped == 0


def test_drop_inside_window_returns_false(rig):
    engine, network, port = rig
    port.to_switch.install_fault(
        LinkFault(0.0, 1e9, drop_prob=1.0, rng=AlwaysDrop())
    )
    delivered = engine.run_process(port.to_switch.transfer(4096))
    assert delivered is False
    assert port.to_switch.packets_dropped == 1
    assert port.to_switch.bytes_dropped == 4096


def test_aborted_transfer_still_accounts_bytes_and_busy_time(rig):
    """Satellite: a dropped packet occupied the wire during serialization,
    so utilization() and Network.total_bytes() must include it."""
    engine, network, port = rig
    link = port.to_switch
    link.install_fault(LinkFault(0.0, 1e9, drop_prob=1.0, rng=AlwaysDrop()))
    engine.run_process(link.transfer(1 << 20))
    assert link.bytes_carried == 1 << 20
    assert network.total_bytes() == 1 << 20
    assert network.total_bytes_dropped() == 1 << 20
    assert link.utilization() > 0.0


def test_delay_spike_inflates_propagation(rig):
    engine, network, port = rig
    cfg = network.config
    base = engine.run_process(port.to_switch.transfer(4096))
    t_clean = engine.now
    port.to_switch.install_fault(LinkFault(0.0, 1e9, extra_delay_us=25.0))
    assert base is True
    delivered = engine.run_process(port.to_switch.transfer(4096))
    assert delivered is True
    spike_elapsed = engine.now - t_clean
    assert spike_elapsed == pytest.approx(
        cfg.serialization_us(4096) + cfg.link_propagation_us + 25.0
    )


def test_lossy_fault_requires_rng(rig):
    _engine, _network, port = rig
    with pytest.raises(ValueError):
        port.to_switch.install_fault(LinkFault(0.0, 1.0, drop_prob=0.5))


def test_delay_only_fault_needs_no_rng(rig):
    _engine, _network, port = rig
    port.to_switch.install_fault(LinkFault(0.0, 1.0, extra_delay_us=5.0))
    assert port.to_switch._faults


def test_clear_faults_restores_clean_link(rig):
    engine, network, port = rig
    port.to_switch.install_fault(
        LinkFault(0.0, 1e9, drop_prob=1.0, rng=AlwaysDrop())
    )
    assert engine.run_process(port.to_switch.transfer(64)) is False
    port.to_switch.clear_faults()
    assert engine.run_process(port.to_switch.transfer(64)) is True


def test_network_links_iterator_filters(rig):
    engine, network, port = rig
    network.attach("mem0")
    both = list(network.links())
    assert len(both) == 4
    up = list(network.links(direction="to_switch"))
    assert len(up) == 2
    assert all(l.name.endswith("->switch") for l in up)
    one = list(network.links(port_name="compute", direction="from_switch"))
    assert len(one) == 1
    with pytest.raises(ValueError):
        list(network.links(direction="sideways"))


def test_port_packets_dropped_sums_both_directions(rig):
    engine, network, port = rig
    for link in port.links:
        link.install_fault(LinkFault(0.0, 1e9, drop_prob=1.0, rng=AlwaysDrop()))
    engine.run_process(port.to_switch.transfer(64))
    engine.run_process(port.from_switch.transfer(64))
    assert port.packets_dropped() == 2
    assert network.total_packets_dropped() == 2


def test_seeded_drop_sequence_is_reproducible(rig):
    def run(seed):
        engine = Engine()
        network = Network(engine)
        port = network.attach("compute")
        port.to_switch.install_fault(
            LinkFault(0.0, 1e9, drop_prob=0.5, rng=make_rng(seed))
        )
        return [
            engine.run_process(port.to_switch.transfer(64)) for _ in range(32)
        ]

    assert run(3) == run(3)
    assert run(3) != run(4)
