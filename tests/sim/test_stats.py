"""Unit tests for metric collection and run results."""

import pytest

from repro.sim.stats import LatencySummary, RunResult, StatsCollector


def test_counters_accumulate():
    stats = StatsCollector()
    stats.incr("x")
    stats.incr("x", 4)
    assert stats.counter("x") == 5
    assert stats.counter("missing") == 0


def test_latency_summary():
    stats = StatsCollector()
    for v in (1.0, 2.0, 3.0, 4.0, 100.0):
        stats.record_latency("fault", v)
    summary = stats.latency_summary("fault")
    assert summary.count == 5
    assert summary.mean == pytest.approx(22.0)
    assert summary.p50 == pytest.approx(3.0)
    assert summary.max == 100.0


def test_latency_summary_empty():
    summary = LatencySummary.of([])
    assert summary.count == 0
    assert summary.mean == 0.0


def test_mean_latency_shortcut():
    stats = StatsCollector()
    stats.record_latency("a", 2.0)
    stats.record_latency("a", 4.0)
    assert stats.mean_latency("a") == pytest.approx(3.0)


def test_timeseries_points():
    stats = StatsCollector()
    stats.record_point("entries", 1.0, 10)
    stats.record_point("entries", 2.0, 20)
    assert stats.series("entries") == [(1.0, 10), (2.0, 20)]
    assert stats.series("missing") == []


def test_breakdown_accumulates():
    stats = StatsCollector()
    stats.add_breakdown("inv", "tlb", 3.0)
    stats.add_breakdown("inv", "tlb", 2.0)
    stats.add_breakdown("inv", "queue", 1.0)
    assert stats.breakdown("inv") == {"tlb": 5.0, "queue": 1.0}


def test_merge_combines_everything():
    a, b = StatsCollector(), StatsCollector()
    a.incr("c", 1)
    b.incr("c", 2)
    a.record_latency("l", 1.0)
    b.record_latency("l", 3.0)
    b.record_point("s", 1.0, 1.0)
    b.add_breakdown("bd", "x", 2.0)
    a.merge(b)
    assert a.counter("c") == 3
    assert a.mean_latency("l") == pytest.approx(2.0)
    assert a.series("s") == [(1.0, 1.0)]
    assert a.breakdown("bd") == {"x": 2.0}


def _result(runtime_us=1000.0, total=100):
    return RunResult(
        system="MIND",
        workload="test",
        num_blades=1,
        num_threads=1,
        runtime_us=runtime_us,
        total_accesses=total,
    )


def test_throughput_iops():
    r = _result(runtime_us=1_000_000.0, total=500)
    assert r.throughput_iops == pytest.approx(500.0)


def test_throughput_zero_runtime():
    assert _result(runtime_us=0.0).throughput_iops == 0.0


def test_performance_is_inverse_runtime():
    assert _result(runtime_us=4.0).performance == pytest.approx(0.25)


def test_normalized_to_baseline():
    fast = _result(runtime_us=500.0)
    slow = _result(runtime_us=1000.0)
    assert fast.normalized_to(slow) == pytest.approx(2.0)
    assert slow.normalized_to(slow) == pytest.approx(1.0)


def test_fraction_of_accesses():
    r = _result(total=200)
    r.stats.incr("invalidations_sent", 50)
    assert r.fraction_of_accesses("invalidations_sent") == pytest.approx(0.25)
    assert _result(total=0).fraction_of_accesses("x") == 0.0


def test_breakdowns_and_gauges_pickle():
    import pickle

    stats = StatsCollector()
    stats.add_breakdown("fault_path", "fetch", 4.5)
    stats.add_breakdown("fault_path", "fetch", 0.5)
    stats.set_gauge("utilization:link:up0", 0.25)
    clone = pickle.loads(pickle.dumps(stats))
    assert clone.breakdowns == {"fault_path": {"fetch": 5.0}}
    assert clone.gauges == {"utilization:link:up0": 0.25}


def test_merge_combines_breakdowns_and_gauges():
    a = StatsCollector()
    a.add_breakdown("txn", "x", 1.0)
    a.set_gauge("g", 1.0)
    b = StatsCollector()
    b.add_breakdown("txn", "x", 2.0)
    b.add_breakdown("txn", "y", 3.0)
    b.set_gauge("g", 9.0)
    a.merge(b)
    assert a.breakdown("txn") == {"x": 3.0, "y": 3.0}
    assert a.gauges["g"] == 9.0  # gauges are last-writer-wins
