"""FaultInjector: arming a plan against a live cluster."""

import pytest

from repro.faults import FaultInjector, FaultPlan

from conftest import small_cluster


def _sleep(duration_us):
    yield duration_us


def test_link_windows_install_on_matching_links():
    cluster = small_cluster(num_compute=2, num_memory=2)
    plan = FaultPlan(seed=3).packet_loss(
        0, 1_000, 0.5, port="compute0", direction="to_switch"
    )
    cluster.inject_faults(plan)
    for link in cluster.network.links():
        armed = bool(link._faults)
        expected = link is cluster.network.port("compute0").to_switch
        assert armed == expected


def test_unfiltered_window_covers_every_link():
    cluster = small_cluster(num_compute=2, num_memory=1)
    cluster.inject_faults(FaultPlan(seed=3).delay_spike(0, 1_000, 5.0))
    assert all(link._faults for link in cluster.network.links())


def test_start_is_idempotent():
    cluster = small_cluster(num_compute=1, num_memory=1)
    injector = cluster.inject_faults(FaultPlan().delay_spike(0, 10, 1.0))
    assert injector.events_armed == 1
    injector.start()
    assert injector.events_armed == 1
    link = cluster.network.port("compute0").to_switch
    assert len(link._faults) == 1


def test_injector_validates_the_plan():
    cluster = small_cluster(num_compute=1, num_memory=1)
    with pytest.raises(ValueError):
        FaultInjector(cluster, FaultPlan().packet_loss(0, 10, 1.5))


def test_blade_slowdown_window_toggles_and_restores():
    cluster = small_cluster(num_compute=1, num_memory=2)
    blade = cluster.memory_blades[1]
    cluster.inject_faults(FaultPlan().blade_slow(1, 100, 200, factor=3.0))
    assert blade.slow_factor == 1.0
    cluster.run_process(_sleep(150))
    assert blade.slow_factor == 3.0
    cluster.run_process(_sleep(100))
    assert blade.slow_factor == 1.0
    assert cluster.stats.counter("blade_slowdowns") == 1


def test_blade_outage_pauses_then_resumes():
    cluster = small_cluster(num_compute=1, num_memory=1)
    blade = cluster.memory_blades[0]
    cluster.inject_faults(FaultPlan().blade_crash(0, 50, 150))
    cluster.run_process(_sleep(100))
    assert not blade.available
    cluster.run_process(_sleep(100))
    assert blade.available
    assert cluster.stats.counter("blade_outages") == 1


def test_cpu_stall_occupies_control_cpu():
    cluster = small_cluster(num_compute=1, num_memory=1)
    cluster.inject_faults(FaultPlan().cpu_stall(at_us=20, duration_us=80))
    cluster.run_process(_sleep(200))
    assert cluster.mmu.control_cpu.stalls == 1
    assert cluster.mmu.control_cpu.stall_us == pytest.approx(80.0)
    cluster.capture_telemetry()
    assert cluster.stats.counter("control_cpu_stalls") == 1
    assert cluster.stats.gauges["control_cpu_stall_us"] == pytest.approx(80.0)


def test_switch_crash_event_arms_failover():
    cluster = small_cluster(num_compute=1, num_memory=1)
    assert cluster.failover is None
    cluster.inject_faults(FaultPlan().switch_crash(at_us=1_000))
    assert cluster.failover is not None


def test_same_seed_same_link_drop_decisions():
    """The per-link child stream depends only on (seed, event, link)."""

    def drops(seed):
        cluster = small_cluster(num_compute=2, num_memory=1)
        cluster.inject_faults(FaultPlan(seed=seed).packet_loss(0, 1e9, 0.5))
        link = cluster.network.port("compute1").to_switch
        return [
            cluster.run_process(link.transfer(64)) for _ in range(64)
        ]

    assert drops(11) == drops(11)
    assert drops(11) != drops(12)
