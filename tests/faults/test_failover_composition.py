"""Fail-over composed with concurrent control-plane activity.

Regression tests for two composition gaps:

* metadata that mutates *while* the backup switch installs its tables
  (an elastic pool placing a thread, a live mmap) must trigger a
  catch-up rebuild instead of being silently dropped;
* capability-style ``grant_domain`` sessions must survive the rebuild --
  the replicated snapshot has to carry the full protection grant list,
  not just each task's own vmas.
"""

from repro.api import MindSystem
from repro.core.protection import PermissionClass
from repro.faults import FaultPlan
from repro.sim.network import PAGE_SIZE


def crash_plan(at_us: float) -> FaultPlan:
    return FaultPlan(seed=1).switch_crash(at_us=at_us)


class TestCatchupRebuild:
    def test_mmap_during_rebuild_triggers_catchup(self):
        system = MindSystem(num_compute_blades=2)
        proc = system.spawn_process("srv")
        base = proc.mmap(PAGE_SIZE * 8)
        system.inject_faults(crash_plan(at_us=1_000.0))
        thread = proc.spawn_thread()

        def mutate():
            # Crash at 1000, detection 500, snapshot read at ~1500: land
            # the mmap inside the table-install window that follows.
            yield 1_600.0
            proc.mmap(PAGE_SIZE * 4)

        def touch():
            yield from thread.store_gen(base, b"before")
            yield 6_000.0
            yield from thread.store_gen(base + PAGE_SIZE, b"after")

        system.run_concurrently([mutate(), touch()])
        stats = system.stats
        assert stats.counter("failover_rules_installed") > 0
        assert stats.counter("failover_catchup_rebuilds") >= 1

    def test_quiet_rebuild_needs_no_catchup(self):
        system = MindSystem(num_compute_blades=2)
        proc = system.spawn_process("srv")
        base = proc.mmap(PAGE_SIZE * 8)
        system.inject_faults(crash_plan(at_us=1_000.0))
        thread = proc.spawn_thread()

        def touch():
            yield from thread.store_gen(base, b"before")
            yield 6_000.0
            yield from thread.store_gen(base + PAGE_SIZE, b"after")

        system.run_concurrently([touch()])
        stats = system.stats
        assert stats.counter("failover_rules_installed") > 0
        assert stats.counter("failover_catchup_rebuilds") == 0

    def test_mmap_after_rebuild_is_usable(self):
        # The catch-up path must leave a coherent plane behind: a region
        # mapped during the rebuild is readable once service resumes.
        system = MindSystem(num_compute_blades=2)
        proc = system.spawn_process("srv")
        proc.mmap(PAGE_SIZE * 8)
        system.inject_faults(crash_plan(at_us=1_000.0))
        thread = proc.spawn_thread()
        late: dict = {}

        def mutate():
            yield 1_600.0
            late["base"] = proc.mmap(PAGE_SIZE * 4)

        def touch():
            yield 6_000.0
            yield from thread.store_gen(late["base"], b"fresh")
            data = yield from thread.load_gen(late["base"], 5)
            late["data"] = data

        system.run_concurrently([mutate(), touch()])
        assert late["data"] == b"fresh"


class TestGrantsSurviveFailover:
    def test_session_domain_usable_after_switch_crash(self):
        system = MindSystem(num_compute_blades=2)
        proc = system.spawn_process("srv")
        base = proc.mmap(PAGE_SIZE * 4)
        proc.grant_domain(base, pdid=777, perm=PermissionClass.READ_WRITE)
        system.inject_faults(crash_plan(at_us=500.0))
        thread = proc.spawn_thread()
        blade = system.cluster.compute_blade(thread.blade_id)
        seen: dict = {}

        def touch():
            yield from blade.store_bytes(777, base, b"pre-crash")
            yield 6_000.0
            # Pre-fix this raised SegmentationFault: the rebuilt plane
            # derived protection from task vmas only, dropping the grant.
            yield from blade.store_bytes(777, base + 64, b"post-crash")
            data = yield from blade.load_bytes(777, base, 9)
            seen["data"] = data

        system.run_concurrently([touch()])
        assert seen["data"] == b"pre-crash"
        assert system.stats.counter("failover_rules_installed") > 0

    def test_revoked_domain_stays_revoked_after_failover(self):
        import pytest

        from repro.blades.compute import SegmentationFault

        system = MindSystem(num_compute_blades=2)
        proc = system.spawn_process("srv")
        base = proc.mmap(PAGE_SIZE * 4)
        proc.grant_domain(base, pdid=777, perm=PermissionClass.READ_WRITE)
        proc.revoke_domain(base, 777)
        system.inject_faults(crash_plan(at_us=500.0))
        thread = proc.spawn_thread()
        blade = system.cluster.compute_blade(thread.blade_id)

        def touch():
            yield 6_000.0
            yield from blade.store_bytes(777, base, b"nope")

        with pytest.raises(SegmentationFault):
            system.run_concurrently([touch()])
