"""FaultPlan construction, validation, and introspection."""

import pytest

from repro.faults import FaultPlan
from repro.faults.plan import (
    BladeOutage,
    BladeSlowdown,
    ControlCpuStall,
    FaultEventError,
    FaultOverlapError,
    FaultPlanError,
    LinkLossWindow,
    SwitchCrash,
)


def test_builders_chain_and_accumulate():
    plan = (
        FaultPlan(seed=9)
        .switch_crash(at_us=5_000)
        .packet_loss(1_000, 2_000, prob=0.01, port="compute0")
        .delay_spike(3_000, 4_000, extra_delay_us=10.0)
        .blade_slow(0, 100, 200, factor=3.0)
        .blade_crash(1, 500, 600)
        .cpu_stall(700, 50)
    )
    assert plan.seed == 9
    kinds = [type(e) for e in plan.events]
    assert kinds == [
        SwitchCrash,
        LinkLossWindow,
        LinkLossWindow,
        BladeSlowdown,
        BladeOutage,
        ControlCpuStall,
    ]
    assert plan.validate() is plan
    assert plan.needs_failover


def test_needs_failover_only_for_switch_crash():
    assert not FaultPlan().packet_loss(0, 10, 0.5).needs_failover
    assert FaultPlan().switch_crash(5).needs_failover


@pytest.mark.parametrize(
    "bad_plan",
    [
        FaultPlan().switch_crash(-1),
        FaultPlan().packet_loss(10, 10, 0.5),      # empty window
        FaultPlan().packet_loss(20, 10, 0.5),      # inverted window
        FaultPlan().packet_loss(0, 10, 1.0),       # prob must be < 1
        FaultPlan().packet_loss(0, 10, -0.1),      # negative prob
        FaultPlan().delay_spike(0, 10, -5.0),      # negative delay
        FaultPlan().blade_slow(0, 5, 5),           # empty window
        FaultPlan().blade_slow(0, 0, 10, 0.5),     # speedup, not slowdown
        FaultPlan().blade_crash(0, 10, 5),         # inverted window
        FaultPlan().cpu_stall(0, 0),               # zero duration
        FaultPlan().cpu_stall(-1, 10),             # negative start
    ],
)
def test_validate_rejects_malformed_plans(bad_plan):
    with pytest.raises(FaultEventError):
        bad_plan.validate()


def test_plan_errors_are_value_errors():
    """Typed errors stay catchable as the historical ValueError."""
    assert issubclass(FaultPlanError, ValueError)
    assert issubclass(FaultEventError, FaultPlanError)
    assert issubclass(FaultOverlapError, FaultPlanError)


@pytest.mark.parametrize(
    "bad_plan",
    [
        # One backup switch: a second crash has nothing to fail over to.
        FaultPlan().switch_crash(100).switch_crash(9_000),
        # A paused blade cannot also be "serving slowly".
        FaultPlan().blade_crash(0, 100, 500).blade_slow(0, 300, 800),
        # Same-kind blade windows overlapping on one blade.
        FaultPlan().blade_crash(1, 0, 200).blade_crash(1, 100, 300),
        FaultPlan().blade_slow(2, 0, 200).blade_slow(2, 199, 400),
        # Two loss windows hitting the same links at once.
        FaultPlan().packet_loss(0, 1_000, 0.1).packet_loss(500, 2_000, 0.2),
        # All-links loss overlaps a port-scoped loss (None covers it).
        FaultPlan()
        .packet_loss(0, 1_000, 0.1)
        .packet_loss(500, 2_000, 0.2, port="compute0"),
        # Two delay spikes on the same direction of the same port.
        FaultPlan()
        .delay_spike(0, 1_000, 5.0, port="mem0", direction="to_switch")
        .delay_spike(900, 2_000, 3.0, port="mem0", direction="to_switch"),
        # Overlapping control-CPU stalls.
        FaultPlan().cpu_stall(100, 500).cpu_stall(400, 100),
    ],
)
def test_validate_rejects_contradictory_overlaps(bad_plan):
    with pytest.raises(FaultOverlapError):
        bad_plan.validate()


@pytest.mark.parametrize(
    "ok_plan",
    [
        # Different blades may fault concurrently.
        FaultPlan().blade_crash(0, 100, 500).blade_slow(1, 300, 800),
        # Same blade, back-to-back windows (half-open: no overlap).
        FaultPlan().blade_crash(0, 100, 500).blade_slow(0, 500, 800),
        # Loss overlapping *delay* on the same link composes fine.
        FaultPlan().packet_loss(0, 1_000, 0.1).delay_spike(500, 2_000, 5.0),
        # Same-kind windows on disjoint ports or opposite directions.
        FaultPlan()
        .packet_loss(0, 1_000, 0.1, port="compute0")
        .packet_loss(500, 2_000, 0.2, port="mem0"),
        FaultPlan()
        .packet_loss(0, 1_000, 0.1, direction="to_switch")
        .packet_loss(500, 2_000, 0.2, direction="from_switch"),
        # A crash during a loss window: different targets, the chaos case.
        FaultPlan().switch_crash(3_000).packet_loss(500, 6_000, 0.01),
    ],
)
def test_validate_allows_composable_plans(ok_plan):
    assert ok_plan.validate() is ok_plan


def test_validate_rejects_unknown_direction():
    plan = FaultPlan()
    plan.events.append(LinkLossWindow(0, 10, drop_prob=0.1, direction="up"))
    with pytest.raises(ValueError):
        plan.validate()


def test_describe_orders_by_time():
    plan = (
        FaultPlan()
        .switch_crash(at_us=500)
        .packet_loss(100, 900, prob=0.02)
        .cpu_stall(50, 10)
    )
    lines = plan.describe()
    assert "cpu" in lines[0].lower()
    assert "loss" in lines[1].lower()
    assert "crash" in lines[2].lower()


def test_describe_renders_merged_per_target_timeline():
    plan = (
        FaultPlan()
        .switch_crash(at_us=500)
        .packet_loss(100, 900, prob=0.02)
        .blade_slow(0, 100, 200, factor=3.0)
        .blade_crash(0, 600, 700)
    )
    lines = plan.describe()
    start = lines.index("per-target timeline:")
    targets = [ln.strip() for ln in lines[start + 1:]]
    # Switch first, then links, then blades -- propagation order.
    assert targets[0].startswith("switch:")
    assert targets[1].startswith("links[all/both]:")
    # Both mem0 windows merged onto one line, in time order.
    assert targets[2].startswith("mem0:")
    assert targets[2].index("slow") < targets[2].index("paused")


def test_target_timeline_groups_by_target():
    plan = FaultPlan().blade_slow(1, 0, 10).blade_crash(1, 20, 30).cpu_stall(5, 1)
    timeline = plan.target_timeline()
    assert list(timeline) == ["mem1", "control-cpu"]
    assert [type(e) for e in timeline["mem1"]] == [BladeSlowdown, BladeOutage]


def test_plans_are_plain_data():
    """Building a plan touches no simulator state (reusable across runs)."""
    plan = FaultPlan(seed=1).packet_loss(0, 100, 0.5)
    window = plan.events[0]
    assert window.drop_prob == 0.5
    # Frozen event dataclasses: a plan cannot be mutated mid-run.
    with pytest.raises(Exception):
        window.drop_prob = 0.9
