"""FaultPlan construction, validation, and introspection."""

import pytest

from repro.faults import FaultPlan
from repro.faults.plan import (
    BladeOutage,
    BladeSlowdown,
    ControlCpuStall,
    LinkLossWindow,
    SwitchCrash,
)


def test_builders_chain_and_accumulate():
    plan = (
        FaultPlan(seed=9)
        .switch_crash(at_us=5_000)
        .packet_loss(1_000, 2_000, prob=0.01, port="compute0")
        .delay_spike(3_000, 4_000, extra_delay_us=10.0)
        .blade_slow(0, 100, 200, factor=3.0)
        .blade_crash(1, 500, 600)
        .cpu_stall(700, 50)
    )
    assert plan.seed == 9
    kinds = [type(e) for e in plan.events]
    assert kinds == [
        SwitchCrash,
        LinkLossWindow,
        LinkLossWindow,
        BladeSlowdown,
        BladeOutage,
        ControlCpuStall,
    ]
    assert plan.validate() is plan
    assert plan.needs_failover


def test_needs_failover_only_for_switch_crash():
    assert not FaultPlan().packet_loss(0, 10, 0.5).needs_failover
    assert FaultPlan().switch_crash(5).needs_failover


@pytest.mark.parametrize(
    "bad_plan",
    [
        FaultPlan().switch_crash(-1),
        FaultPlan().packet_loss(10, 10, 0.5),      # empty window
        FaultPlan().packet_loss(20, 10, 0.5),      # inverted window
        FaultPlan().packet_loss(0, 10, 1.0),       # prob must be < 1
        FaultPlan().packet_loss(0, 10, -0.1),      # negative prob
        FaultPlan().delay_spike(0, 10, -5.0),      # negative delay
        FaultPlan().blade_slow(0, 5, 5),           # empty window
        FaultPlan().blade_slow(0, 0, 10, 0.5),     # speedup, not slowdown
        FaultPlan().blade_crash(0, 10, 5),         # inverted window
        FaultPlan().cpu_stall(0, 0),               # zero duration
        FaultPlan().cpu_stall(-1, 10),             # negative start
    ],
)
def test_validate_rejects_malformed_plans(bad_plan):
    with pytest.raises(ValueError):
        bad_plan.validate()


def test_validate_rejects_unknown_direction():
    plan = FaultPlan()
    plan.events.append(LinkLossWindow(0, 10, drop_prob=0.1, direction="up"))
    with pytest.raises(ValueError):
        plan.validate()


def test_describe_orders_by_time():
    plan = (
        FaultPlan()
        .switch_crash(at_us=500)
        .packet_loss(100, 900, prob=0.02)
        .cpu_stall(50, 10)
    )
    lines = plan.describe()
    assert len(lines) == 3
    assert "cpu" in lines[0].lower()
    assert "loss" in lines[1].lower()
    assert "crash" in lines[2].lower()


def test_plans_are_plain_data():
    """Building a plan touches no simulator state (reusable across runs)."""
    plan = FaultPlan(seed=1).packet_loss(0, 100, 0.5)
    window = plan.events[0]
    assert window.drop_prob == 0.5
    # Frozen event dataclasses: a plan cannot be mutated mid-run.
    with pytest.raises(Exception):
        window.drop_prob = 0.9
