"""End-to-end chaos runs: determinism and the availability report.

Satellite acceptance: the seeded demo scenario (switch crash + 1% loss
while a workload runs) must complete with a finite unavailability window,
post-recovery p99 close to steady-state, and -- crucially -- two runs of
the same plan/seed must produce *byte-identical* event traces.
"""

import pytest

from repro.faults import FaultPlan
from repro.obs.report import RunReport
from repro.runner import RunnerConfig, run_on_mind
from repro.workloads import UniformSharingWorkload


def _workload():
    return UniformSharingWorkload(
        8,
        accesses_per_thread=1_200,
        read_ratio=0.5,
        sharing_ratio=0.5,
        shared_pages=200,
        private_pages_per_thread=64,
        seed=1,
        burst=4,
    )


def _chaos_plan(seed=7):
    return (
        FaultPlan(seed=seed)
        .switch_crash(at_us=3_000)
        .packet_loss(500, 6_000, prob=0.01)
    )


def _run(plan):
    return run_on_mind(
        _workload(), 4, RunnerConfig(trace=True, fault_plan=plan)
    )


@pytest.fixture(scope="module")
def chaos_result():
    return _run(_chaos_plan())


def test_chaos_run_completes_with_finite_unavailability(chaos_result):
    stats = chaos_result.stats
    assert stats.counter("switch_crashes") == 1
    assert stats.counter("failovers_completed") == 1
    outage = stats.gauges["unavailability_us"]
    assert 0 < outage < chaos_result.runtime_us
    # Packet loss actually bit, and retransmission rode it out.
    assert stats.counter("link_packets_dropped") >= 1
    assert stats.counter("retransmissions") >= 1


def test_availability_report_section(chaos_result):
    report = RunReport.from_result(chaos_result)
    avail = report.availability
    assert avail["switch_crashes"] == 1
    assert avail["unavailability_us"] > 0
    assert avail["refault_storm_depth"] >= 1
    assert set(avail["phase_p99_us"]) == {"pre", "degraded", "post"}
    # Post-recovery p99 returns to steady state: no more than 10% worse
    # than pre-fault (acceptance bound; better-than-pre is fine, the pre
    # window still includes some cold-cache warmup).
    assert avail["post_vs_pre_p99"] <= 1.10
    # The section round-trips through JSON and the text rendering.
    assert report.to_json()["availability"]["switch_crashes"] == 1
    assert "availability" in report.render()


def test_same_seed_runs_are_byte_identical():
    a = _run(_chaos_plan(seed=7))
    b = _run(_chaos_plan(seed=7))
    assert a.trace.to_jsonl() == b.trace.to_jsonl()
    assert a.runtime_us == b.runtime_us
    assert a.stats.counters == b.stats.counters


def test_different_fault_seed_changes_the_run():
    a = _run(_chaos_plan(seed=7))
    b = _run(_chaos_plan(seed=8))
    # Same workload, same fault windows -- only the per-packet drop rolls
    # differ, and that is enough to diverge the trace.
    assert a.trace.to_jsonl() != b.trace.to_jsonl()


def _triple_plan(seed=7):
    """The full chaos palette in one run: switch crash mid-loss-window
    plus a memory-blade outage after the fail-over settles."""
    return (
        FaultPlan(seed=seed)
        .switch_crash(at_us=3_000)
        .packet_loss(500, 6_000, prob=0.01)
        .blade_crash(0, 5_000, 5_800)
    )


def _small_triple_plan():
    """Triple-fault plan scaled down to the sweep-point run length."""
    return (
        FaultPlan(seed=7)
        .switch_crash(at_us=800)
        .packet_loss(100, 1_500, prob=0.02)
        .blade_crash(0, 1_600, 1_900)
    )


class TestTripleFaultDeterminism:
    def test_all_three_faults_fire(self):
        stats = _run(_triple_plan()).stats
        assert stats.counter("switch_crashes") == 1
        assert stats.counter("link_packets_dropped") >= 1
        assert stats.counter("blade_outages") == 1

    def test_byte_identical_across_reruns(self):
        a = _run(_triple_plan())
        b = _run(_triple_plan())
        assert a.trace.to_jsonl() == b.trace.to_jsonl()
        assert a.runtime_us == b.runtime_us
        assert a.stats.counters == b.stats.counters

    def test_byte_identical_across_jobs(self):
        # A spawned sweep worker must replay the triple-fault point to
        # the very same bytes the parent process produces.
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from repro.sweep import SweepSpec, execute_point

        grid = (
            "system=mind;workload=uniform;blades=2;threads_per_blade=2;"
            "accesses_per_thread=400;shared_pages=64;"
            "private_pages_per_thread=32;num_memory_blades=2;epoch_us=2000"
        )
        (point,) = SweepSpec.from_grids([grid], seeds=[1]).points()
        local = execute_point(
            point, fault_plan=_small_triple_plan(), with_trace=True
        )

        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            remote = pool.submit(
                execute_point, point, _small_triple_plan(), True
            ).result()

        assert remote.trace_jsonl == local.trace_jsonl
        assert remote.metrics == local.metrics


def test_loss_only_plan_needs_no_failover():
    plan = FaultPlan(seed=3).packet_loss(100, 2_000, prob=0.02)
    result = run_on_mind(_workload(), 4, RunnerConfig(fault_plan=plan))
    stats = result.stats
    assert stats.counter("switch_crashes") == 0
    assert stats.counter("link_packets_dropped") >= 1
    assert "unavailability_us" not in stats.gauges
    # Loss still surfaces an availability section (drops are a marker).
    report = RunReport.from_result(result)
    assert report.availability["link_packets_dropped"] >= 1
