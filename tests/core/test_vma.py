"""Unit tests for vmas, permission classes and alignment helpers."""

import pytest

from repro.core.vma import (
    PermissionClass,
    Vma,
    align_down,
    align_up,
    round_up_pow2,
)


class TestPermissionClass:
    def test_read_only(self):
        assert PermissionClass.READ_ONLY.allows_read()
        assert not PermissionClass.READ_ONLY.allows_write()

    def test_read_write(self):
        assert PermissionClass.READ_WRITE.allows_read()
        assert PermissionClass.READ_WRITE.allows_write()

    def test_none(self):
        assert not PermissionClass.NONE.allows_read()
        assert not PermissionClass.NONE.allows_write()


class TestAlignment:
    def test_align_down(self):
        assert align_down(0x1234, 0x1000) == 0x1000
        assert align_down(0x1000, 0x1000) == 0x1000

    def test_align_up(self):
        assert align_up(0x1234, 0x1000) == 0x2000
        assert align_up(0x1000, 0x1000) == 0x1000

    def test_round_up_pow2(self):
        assert round_up_pow2(1) == 1
        assert round_up_pow2(3) == 4
        assert round_up_pow2(4096) == 4096
        assert round_up_pow2(4097) == 8192

    def test_round_up_pow2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            round_up_pow2(0)


class TestVma:
    def test_end_and_contains(self):
        vma = Vma(0x1000, 0x2000, pdid=1)
        assert vma.end == 0x3000
        assert vma.contains(0x1000)
        assert vma.contains(0x2FFF)
        assert not vma.contains(0x3000)
        assert not vma.contains(0xFFF)

    def test_num_pages_unaligned(self):
        vma = Vma(0x100, 0x100, pdid=1)
        assert vma.num_pages == 1
        vma2 = Vma(0xF00, 0x200, pdid=1)  # straddles a page boundary
        assert vma2.num_pages == 2

    def test_overlaps(self):
        a = Vma(0x1000, 0x1000, pdid=1)
        b = Vma(0x1800, 0x1000, pdid=1)
        c = Vma(0x2000, 0x1000, pdid=1)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_with_perm(self):
        vma = Vma(0x1000, 0x1000, pdid=1, perm=PermissionClass.READ_WRITE)
        ro = vma.with_perm(PermissionClass.READ_ONLY)
        assert ro.perm is PermissionClass.READ_ONLY
        assert ro.base == vma.base and ro.pdid == vma.pdid

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Vma(-1, 10, pdid=1)
        with pytest.raises(ValueError):
            Vma(0, 0, pdid=1)
