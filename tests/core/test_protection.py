"""Unit tests for domain-based memory protection."""

import pytest

from repro.core.protection import PDID_WIDTH, ProtectionTable, pack_key
from repro.core.vma import PermissionClass, Vma
from repro.switchsim.packets import AccessType, PacketVerdict
from repro.switchsim.tcam import Tcam, TcamFullError, VA_WIDTH

RW = PermissionClass.READ_WRITE
RO = PermissionClass.READ_ONLY


@pytest.fixture
def table():
    return ProtectionTable(Tcam(256))


def grant(table, pdid, base, length, perm=RW):
    return table.grant(pdid, Vma(base, length, pdid, perm), perm)


class TestPackKey:
    def test_pdid_in_high_bits(self):
        key = pack_key(3, 0x1234)
        assert key >> VA_WIDTH == 3
        assert key & ((1 << VA_WIDTH) - 1) == 0x1234

    def test_bounds(self):
        with pytest.raises(ValueError):
            pack_key(1 << PDID_WIDTH, 0)
        with pytest.raises(ValueError):
            pack_key(0, 1 << VA_WIDTH)


class TestGrantCheck:
    def test_allow_within_vma(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000)
        assert table.check(1, 0x10800, AccessType.READ) is PacketVerdict.ALLOW
        assert table.check(1, 0x10800, AccessType.WRITE) is PacketVerdict.ALLOW

    def test_reject_outside_vma(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000)
        assert (
            table.check(1, 0x11000, AccessType.READ)
            is PacketVerdict.REJECT_NO_ENTRY
        )

    def test_reject_other_domain(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000)
        assert (
            table.check(2, 0x10000, AccessType.READ)
            is PacketVerdict.REJECT_NO_ENTRY
        )

    def test_read_only_rejects_write(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000, perm=RO)
        assert table.check(1, 0x10000, AccessType.READ) is PacketVerdict.ALLOW
        assert (
            table.check(1, 0x10000, AccessType.WRITE)
            is PacketVerdict.REJECT_PERMISSION
        )

    def test_none_rejects_everything(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000, perm=PermissionClass.NONE)
        assert (
            table.check(1, 0x10000, AccessType.READ)
            is PacketVerdict.REJECT_PERMISSION
        )

    def test_pow2_vma_is_single_entry(self, table):
        n = grant(table, pdid=1, base=0x10000, length=0x10000)
        assert n == 1

    def test_arbitrary_vma_splits_bounded(self, table):
        import math

        length = 0x7000  # not a power of two
        n = grant(table, pdid=1, base=0x10000, length=length)
        assert n <= 2 * math.ceil(math.log2(length))
        # Every page of the vma is still covered.
        for off in range(0, length, 0x1000):
            assert table.check(1, 0x10000 + off, AccessType.READ) is PacketVerdict.ALLOW

    def test_two_domains_same_region(self, table):
        """Capability-style: one vma shared read-write/read-only."""
        grant(table, pdid=1, base=0x10000, length=0x1000, perm=RW)
        table.grant(2, Vma(0x10000, 0x1000, 2, RO), RO)
        assert table.check(1, 0x10000, AccessType.WRITE) is PacketVerdict.ALLOW
        assert (
            table.check(2, 0x10000, AccessType.WRITE)
            is PacketVerdict.REJECT_PERMISSION
        )
        assert table.check(2, 0x10000, AccessType.READ) is PacketVerdict.ALLOW

    def test_duplicate_grant_rejected(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000)
        with pytest.raises(ValueError):
            grant(table, pdid=1, base=0x10000, length=0x1000)


class TestRevokeChange:
    def test_revoke_removes_access(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000)
        table.revoke(1, 0x10000)
        assert (
            table.check(1, 0x10000, AccessType.READ)
            is PacketVerdict.REJECT_NO_ENTRY
        )
        assert len(table) == 0

    def test_revoke_unknown_rejected(self, table):
        with pytest.raises(KeyError):
            table.revoke(1, 0x999)

    def test_revoke_only_named_domain(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000)
        table.grant(2, Vma(0x10000, 0x1000, 2, RO), RO)
        table.revoke(2, 0x10000)
        assert table.check(1, 0x10000, AccessType.READ) is PacketVerdict.ALLOW
        assert (
            table.check(2, 0x10000, AccessType.READ)
            is PacketVerdict.REJECT_NO_ENTRY
        )

    def test_change_permission(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000, perm=RW)
        table.change(1, Vma(0x10000, 0x1000, 1, RO), RO)
        assert (
            table.check(1, 0x10000, AccessType.WRITE)
            is PacketVerdict.REJECT_PERMISSION
        )


class TestCoalescing:
    def test_adjacent_same_domain_same_perm_coalesce(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000)
        before = len(table)
        grant(table, pdid=1, base=0x11000, length=0x1000)
        # Buddies with equal <pdid, perm> merge into one entry.
        assert len(table) <= before + 1 - 1 + 1  # merged down
        assert len(table) == 1
        assert table.check(1, 0x11800, AccessType.WRITE) is PacketVerdict.ALLOW

    def test_different_perms_do_not_coalesce(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000, perm=RW)
        grant(table, pdid=1, base=0x11000, length=0x1000, perm=RO)
        assert len(table) == 2

    def test_different_domains_do_not_coalesce(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000)
        grant(table, pdid=2, base=0x11000, length=0x1000)
        assert len(table) == 2

    def test_revoke_after_coalesce_removes_coverage(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000)
        grant(table, pdid=1, base=0x11000, length=0x1000)
        table.revoke(1, 0x10000)
        # The merged entry covered both grants; revoking the first removes
        # it (the control plane re-grants survivors in practice).
        assert (
            table.check(1, 0x10000, AccessType.READ)
            is PacketVerdict.REJECT_NO_ENTRY
        )


class TestAccounting:
    def test_check_and_rejection_counters(self, table):
        grant(table, pdid=1, base=0x10000, length=0x1000)
        table.check(1, 0x10000, AccessType.READ)
        table.check(1, 0x99000, AccessType.READ)
        assert table.checks == 2
        assert table.rejections == 1

    def test_capacity_pressure_raises(self):
        table = ProtectionTable(Tcam(2))
        table.grant(1, Vma(0x0, 0x1000, 1, RW), RW)
        table.grant(2, Vma(0x1000, 0x1000, 2, RW), RW)
        with pytest.raises(TcamFullError):
            table.grant(3, Vma(0x2000, 0x1000, 3, RW), RW)
