"""Tests for the Bounded Splitting algorithm (Section 5)."""

import math

import pytest

from repro.core.bounded_splitting import (
    BoundedSplittingConfig,
    BoundedSplittingController,
    worst_case_subregions,
)
from repro.core.txn import PendingTransactionTable
from repro.core.directory import CoherenceState, RegionDirectory
from repro.sim.engine import Engine
from repro.sim.network import PAGE_SIZE
from repro.switchsim.control_cpu import ControlCpu
from repro.sim.stats import StatsCollector
from repro.switchsim.sram import RegisterArray

KB16 = 16 * 1024
MB2 = 2 * 1024 * 1024


def make_controller(capacity=256, initial=KB16, maximum=MB2, **cfg_kwargs):
    engine = Engine()
    stats = StatsCollector()
    directory = RegionDirectory(
        RegisterArray(capacity), initial_region_size=initial, max_region_size=maximum
    )
    controller = BoundedSplittingController(
        engine=engine,
        directory=directory,
        pending=PendingTransactionTable(engine, stats),
        control_cpu=ControlCpu(engine),
        stats=stats,
        config=BoundedSplittingConfig(**cfg_kwargs),
    )
    return engine, directory, controller


class TestTheorem51:
    """The worst-case bound S = (ceil(f/t) - 1) * (1 + log2 M)."""

    def test_below_threshold_single_region(self):
        assert worst_case_subregions(f=5, t=10.0, region_size=MB2) == 1

    def test_case_two(self):
        # t < f <= 2t: S = 1 + log2(M/4K pages... levels)
        levels = 1 + int(math.log2(MB2 // PAGE_SIZE))
        assert worst_case_subregions(f=15, t=10.0, region_size=MB2) == levels

    def test_case_three(self):
        levels = 1 + int(math.log2(MB2 // PAGE_SIZE))
        assert worst_case_subregions(f=35, t=10.0, region_size=MB2) == 3 * levels

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            worst_case_subregions(1, 0.0, MB2)

    def test_empirical_splits_respect_bound(self):
        """Drive epochs with a synthetic false-invalidation pattern and
        verify the region count never exceeds Theorem 5.1's bound."""
        engine, directory, controller = make_controller(
            capacity=4096, initial=MB2, maximum=MB2, dynamic_c=False, c=1.0
        )
        region = directory.ensure_region(0)
        levels = 1 + int(math.log2(MB2 // PAGE_SIZE))
        f = 40
        for _epoch in range(levels + 2):
            for r in directory.regions():
                # Concentrate the count on the lowest-base region each
                # epoch (worst-case-ish recursive heat).
                r.false_invalidations = f if r is directory.regions()[0] else 1
            t = controller.current_threshold()
            bound = sum(
                worst_case_subregions(r.false_invalidations, t, r.size)
                for r in directory.regions()
            )
            engine.run_process(controller.run_epoch())
            assert len(directory) <= max(bound, len(directory))


class TestEpochBehaviour:
    def test_hot_region_splits(self):
        engine, directory, controller = make_controller(dynamic_c=False)
        hot = directory.ensure_region(0)
        cold = directory.ensure_region(10 * KB16)
        hot.false_invalidations = 100
        cold.false_invalidations = 0
        engine.run_process(controller.run_epoch())
        assert directory.find(0).size == KB16 // 2
        assert directory.find(10 * KB16).size == KB16  # cold untouched
        assert controller.splits_performed == 1

    def test_threshold_follows_eq1(self):
        engine, directory, controller = make_controller(dynamic_c=False, c=2.0)
        a = directory.ensure_region(0)
        b = directory.ensure_region(10 * KB16)
        a.false_invalidations, b.false_invalidations = 30, 10
        # t = sum(f) / (c * N) = 40 / (2 * 2) = 10.
        assert controller.current_threshold() == pytest.approx(10.0)

    def test_threshold_floor(self):
        engine, directory, controller = make_controller(
            dynamic_c=False, min_threshold=1.0
        )
        directory.ensure_region(0)
        assert controller.current_threshold() == 1.0

    def test_counters_reset_each_epoch(self):
        engine, directory, controller = make_controller(dynamic_c=False)
        region = directory.ensure_region(0)
        region.false_invalidations = 100
        region.accesses = 5
        engine.run_process(controller.run_epoch())
        for r in directory.regions():
            assert r.false_invalidations == 0
            assert r.accesses == 0

    def test_page_sized_region_never_splits(self):
        engine, directory, controller = make_controller(
            initial=PAGE_SIZE, dynamic_c=False
        )
        region = directory.ensure_region(0)
        region.false_invalidations = 1000
        engine.run_process(controller.run_epoch())
        assert directory.find(0).size == PAGE_SIZE

    def test_repeated_epochs_reach_page_floor(self):
        """A persistently hot region (hot relative to its peers, per Eq. 1)
        stabilizes at the 4 KB page floor within log2(M) epochs."""
        engine, directory, controller = make_controller(
            capacity=4096, initial=KB16, dynamic_c=False
        )
        directory.ensure_region(0)
        directory.ensure_region(10 * KB16)  # cold peer keeps t below f
        for _ in range(int(math.log2(KB16 // PAGE_SIZE)) + 1):
            for r in directory.regions():
                r.false_invalidations = 100 if r.base < 10 * KB16 else 0
            engine.run_process(controller.run_epoch())
        assert directory.find(0).size == PAGE_SIZE

    def test_split_denied_when_sram_full(self):
        engine, directory, controller = make_controller(
            capacity=2, dynamic_c=False
        )
        a = directory.ensure_region(0)
        b = directory.ensure_region(10 * KB16)
        a.state = b.state = CoherenceState.SHARED  # not reclaimable
        a.false_invalidations = 100
        b.false_invalidations = 1
        engine.run_process(controller.run_epoch())
        assert controller.splits_denied == 1
        assert directory.find(0).size == KB16

    def test_splits_charge_control_cpu(self):
        engine, directory, controller = make_controller(dynamic_c=False)
        region = directory.ensure_region(0)
        directory.ensure_region(10 * KB16)  # cold peer
        region.false_invalidations = 100
        engine.run_process(controller.run_epoch())
        assert controller.control_cpu.rule_updates == 2

    def test_lone_region_at_threshold_not_split(self):
        """Eq. 1 with a single region puts t = f, and splitting requires
        strictly exceeding t -- a lone region never splits on its own."""
        engine, directory, controller = make_controller(dynamic_c=False)
        region = directory.ensure_region(0)
        region.false_invalidations = 100
        engine.run_process(controller.run_epoch())
        assert directory.find(0).size == KB16

    def test_telemetry_recorded(self):
        engine, directory, controller = make_controller(dynamic_c=False)
        directory.ensure_region(0)
        engine.run_process(controller.run_epoch())
        assert len(controller.stats.series("directory_entries")) == 1


class TestDynamicC:
    def test_c_drops_under_pressure_and_merges(self):
        engine, directory, controller = make_controller(
            capacity=8, dynamic_c=True, c=1.0
        )
        # Fill the SRAM with mergeable (Invalid) buddy pairs.
        for i in range(4):
            region = directory.ensure_region(i * KB16)
            directory.split(region)
        assert directory.utilization == 1.0
        engine.run_process(controller.run_epoch())
        assert controller.c < 1.0
        assert directory.utilization <= 0.95

    def test_c_rises_with_headroom(self):
        engine, directory, controller = make_controller(
            capacity=1024, dynamic_c=True, c=1.0
        )
        directory.ensure_region(0)
        engine.run_process(controller.run_epoch())
        assert controller.c > 1.0

    def test_c_clamped(self):
        engine, directory, controller = make_controller(
            capacity=1024, dynamic_c=True, c=1.0, c_max=1.2
        )
        directory.ensure_region(0)
        for _ in range(5):
            engine.run_process(controller.run_epoch())
        assert controller.c <= 1.2


class TestEpochLoop:
    def test_background_loop_fires_every_epoch(self):
        engine, directory, controller = make_controller(
            dynamic_c=False, epoch_us=100.0
        )
        directory.ensure_region(0)
        controller.start()
        engine.run(until=550.0)
        assert controller.epochs_run == 5

    def test_double_start_rejected(self):
        engine, _directory, controller = make_controller()
        controller.start()
        with pytest.raises(RuntimeError):
            controller.start()
