"""End-to-end MSHR coalescing: N concurrent Shared reads, one RDMA.

The paper's transient states (Sections 4.3.2 and 6.3) let the switch
absorb compatible racing requests instead of serializing them.  The
microbenchmark here is the acceptance check for the transaction engine:
N compute blades fault-read the same page at the same instant, and the
switch issues exactly one memory-blade fetch -- the other N-1 ride it.
"""

from repro.obs.report import RunReport
from repro.sim.stats import RunResult

from conftest import small_cluster


def setup_proc(cluster, length=1 << 20):
    ctl = cluster.controller
    task = ctl.sys_exec("t")
    base = ctl.sys_mmap(task.pid, length)
    return task.pid, base


def concurrent_reads(cluster, pid, va, blades):
    """Start one read fault per blade at t=now, run to completion."""
    procs = [
        cluster.engine.process(
            cluster.compute_blades[i].ensure_page(pid, va, write=False)
        )
        for i in blades
    ]
    cluster.engine.run()
    return procs


class TestCoalescedReads:
    N = 4

    def make(self):
        cluster = small_cluster(num_compute=self.N)
        pid, base = setup_proc(cluster)
        return cluster, pid, base

    def test_one_rdma_serves_all_readers(self):
        cluster, pid, base = self.make()
        concurrent_reads(cluster, pid, base, range(self.N))
        stats = cluster.stats
        # Exactly one memory-blade fetch; the other N-1 coalesced onto it.
        assert stats.counter("memory_fetches") == 1
        assert stats.counter("coalesced_fetches") == self.N - 1
        assert stats.counter("faults_coalesced") == self.N - 1
        # Every reader really completed: all are sharers now.
        region = cluster.mmu.directory.find(base)
        sharers = {b.port.port_id for b in cluster.compute_blades}
        assert region.sharers == sharers

    def test_coalesced_wait_attributed_in_breakdown(self):
        cluster, pid, base = self.make()
        concurrent_reads(cluster, pid, base, range(self.N))
        breakdown = cluster.stats.breakdown("fault_path")
        assert breakdown.get("coalesced_wait", 0.0) > 0.0
        # The span components still partition end-to-end fault latency.
        total = sum(cluster.stats.latencies["fault"])
        assert abs(sum(breakdown.values()) - total) / total < 1e-9

    def test_coalesced_faults_cheaper_than_leader(self):
        cluster, pid, base = self.make()
        concurrent_reads(cluster, pid, base, range(self.N))
        lat = sorted(cluster.stats.latencies["fault"])
        # Riders skip the uplink-to-memory leg; the leader pays it.
        assert lat[0] < lat[-1]

    def test_counters_surface_in_run_report(self):
        cluster, pid, base = self.make()
        concurrent_reads(cluster, pid, base, range(self.N))
        cluster.capture_telemetry()
        result = RunResult(
            system="mind",
            workload="coalesce-micro",
            num_blades=self.N,
            num_threads=self.N,
            runtime_us=cluster.engine.now,
            total_accesses=self.N,
            stats=cluster.stats,
        )
        report = RunReport.from_result(result)
        assert report.txn_engine["coalesced_fetches"] == self.N - 1
        assert report.txn_engine["memory_fetches"] == 1
        assert report.txn_engine["txn_admitted"] >= self.N
        assert report.txn_engine["pending_table_peak"] >= 2
        rendered = report.render()
        assert "transaction engine" in rendered
        assert "coalesced_fetches" in rendered
        assert report.fault_breakdown_error < 1e-9

    def test_sequential_reads_do_not_coalesce(self):
        cluster, pid, base = self.make()
        for i in range(self.N):
            cluster.run_process(
                cluster.compute_blades[i].ensure_page(pid, base, write=False)
            )
        stats = cluster.stats
        assert stats.counter("memory_fetches") == self.N
        assert stats.counter("coalesced_fetches") == 0

    def test_write_among_readers_serializes(self):
        # A racing write must NOT coalesce with the reads; directory state
        # stays coherent (writer is the single owner or readers reshared).
        cluster, pid, base = self.make()
        engine = cluster.engine
        for i in range(self.N - 1):
            engine.process(
                cluster.compute_blades[i].ensure_page(pid, base, write=False)
            )
        engine.process(
            cluster.compute_blades[self.N - 1].ensure_page(pid, base, write=True)
        )
        engine.run()
        region = cluster.mmu.directory.find(base)
        writer_port = cluster.compute_blades[self.N - 1].port.port_id
        # However the race resolved, the final state must be a coherent
        # MSI configuration that includes the writer's outcome.
        from repro.core.directory import CoherenceState

        assert region.state in (CoherenceState.MODIFIED, CoherenceState.SHARED)
        if region.state is CoherenceState.MODIFIED:
            assert region.owner == writer_port

    def test_pending_table_cap_throttles_admissions(self):
        cluster = small_cluster(num_compute=4, pending_table_capacity=2)
        pid, base = setup_proc(cluster)
        # Distinct pages on distinct blades: no coalescing possible, so all
        # four need their own slot and two must wait.
        procs = [
            cluster.engine.process(
                cluster.compute_blades[i].ensure_page(
                    pid, base + i * (16 * 1024), write=False
                )
            )
            for i in range(4)
        ]
        cluster.engine.run()
        assert all(p.value is not None for p in procs)
        assert cluster.mmu.coherence.pending.peak <= 2
        waits = [
            r for r in cluster.engine.resources if r.name == "switch.pending_txns"
        ]
        assert waits and waits[0].total_wait_us > 0
