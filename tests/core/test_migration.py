"""Tests for page migration and live memory-blade retirement."""

import pytest

from repro.core.migration import MigrationError
from repro.sim.network import PAGE_SIZE

from conftest import small_cluster


@pytest.fixture
def rig():
    cluster = small_cluster(num_compute=2, num_memory=3, cache_pages=128)
    ctl = cluster.controller
    task = ctl.sys_exec("app")
    base = ctl.sys_mmap(task.pid, 4 * PAGE_SIZE)
    return cluster, task, base


def write(cluster, blade_idx, pid, va, data):
    blade = cluster.compute_blades[blade_idx]
    cluster.run_process(blade.store_bytes(pid, va, data))


def read(cluster, blade_idx, pid, va, n):
    blade = cluster.compute_blades[blade_idx]
    return cluster.run_process(blade.load_bytes(pid, va, n))


class TestMigrateRange:
    def test_data_survives_migration(self, rig):
        cluster, task, base = rig
        write(cluster, 0, task.pid, base, b"survives")
        write(cluster, 0, task.pid, base + PAGE_SIZE, b"page two")
        src = cluster.mmu.address_space.translate(base)
        dst = (src.blade_id + 1) % 3
        cluster.run_process(
            cluster.mmu.migration.migrate_range(base, 4 * PAGE_SIZE, dst)
        )
        assert read(cluster, 1, task.pid, base, 8) == b"survives"
        assert read(cluster, 0, task.pid, base + PAGE_SIZE, 8) == b"page two"

    def test_translation_reroutes(self, rig):
        cluster, task, base = rig
        src = cluster.mmu.address_space.translate(base)
        dst = (src.blade_id + 1) % 3
        cluster.run_process(
            cluster.mmu.migration.migrate_range(base, 4 * PAGE_SIZE, dst)
        )
        after = cluster.mmu.address_space.translate(base)
        assert after.blade_id == dst
        assert after.outlier

    def test_neighbouring_vas_unaffected(self, rig):
        cluster, task, base = rig
        other = cluster.controller.sys_mmap(task.pid, PAGE_SIZE)
        before = cluster.mmu.address_space.translate(other)
        src = cluster.mmu.address_space.translate(base)
        dst = (src.blade_id + 1) % 3
        cluster.run_process(
            cluster.mmu.migration.migrate_range(base, 4 * PAGE_SIZE, dst)
        )
        after = cluster.mmu.address_space.translate(other)
        assert (before.blade_id, before.pa) == (after.blade_id, after.pa)

    def test_quiesce_flushes_dirty_caches(self, rig):
        """A dirty cached page must reach the destination blade's storage."""
        cluster, task, base = rig
        write(cluster, 0, task.pid, base, b"dirty!")
        assert cluster.compute_blades[0].cache.peek(base).dirty
        src = cluster.mmu.address_space.translate(base)
        dst = (src.blade_id + 1) % 3
        cluster.run_process(
            cluster.mmu.migration.migrate_range(base, 4 * PAGE_SIZE, dst)
        )
        # Blade 0 no longer caches the page (quiesced) ...
        assert cluster.compute_blades[0].cache.peek(base) is None
        # ... and the destination memory blade holds the bytes.
        xlate = cluster.mmu.address_space.translate(base)
        raw = cluster.memory_blades[dst].read_page(xlate.pa)
        assert raw[:6] == b"dirty!"

    def test_directory_reset_after_migration(self, rig):
        cluster, task, base = rig
        write(cluster, 0, task.pid, base, b"x")
        src = cluster.mmu.address_space.translate(base)
        dst = (src.blade_id + 1) % 3
        cluster.run_process(
            cluster.mmu.migration.migrate_range(base, 4 * PAGE_SIZE, dst)
        )
        assert cluster.mmu.directory.find(base) is None

    def test_validation(self, rig):
        cluster, task, base = rig
        mig = cluster.mmu.migration
        with pytest.raises(MigrationError):
            cluster.run_process(mig.migrate_range(base, 3 * PAGE_SIZE, 1))
        with pytest.raises(MigrationError):
            cluster.run_process(mig.migrate_range(base + PAGE_SIZE, 2 * PAGE_SIZE, 1))
        src = cluster.mmu.address_space.translate(base)
        with pytest.raises(MigrationError):
            cluster.run_process(
                mig.migrate_range(base, 4 * PAGE_SIZE, src.blade_id)
            )

    def test_munmap_releases_migration(self, rig):
        cluster, task, base = rig
        src = cluster.mmu.address_space.translate(base)
        dst = (src.blade_id + 1) % 3
        cluster.run_process(
            cluster.mmu.migration.migrate_range(base, 4 * PAGE_SIZE, dst)
        )
        shadow_bytes = cluster.mmu.allocator.blade(dst).allocated_bytes
        cluster.controller.sys_munmap(task.pid, base)
        assert base not in cluster.mmu.migration.records
        assert cluster.mmu.allocator.blade(dst).allocated_bytes < shadow_bytes
        assert cluster.mmu.address_space.num_outlier_entries == 0


class TestBladeRetirement:
    def test_retire_blade_live(self):
        cluster = small_cluster(num_compute=2, num_memory=3, cache_pages=128)
        ctl = cluster.controller
        task = ctl.sys_exec("app")
        bases = [ctl.sys_mmap(task.pid, 2 * PAGE_SIZE) for _ in range(6)]
        payloads = {}
        for i, base in enumerate(bases):
            payloads[base] = f"vma-{i}".encode()
            write(cluster, 0, task.pid, base, payloads[base])
        victim = cluster.mmu.address_space.translate(bases[0]).blade_id
        migrated = cluster.run_process(
            cluster.mmu.migration.retire_blade(victim, ctl.tasks())
        )
        assert migrated >= 1
        assert victim not in cluster.mmu.allocator.blade_ids
        # Every vma still reads its data, from surviving blades only.
        for base, want in payloads.items():
            xlate = cluster.mmu.address_space.translate(base)
            assert xlate.blade_id != victim
            assert read(cluster, 1, task.pid, base, len(want)) == want

    def test_new_allocations_avoid_retired_blade(self):
        cluster = small_cluster(num_compute=2, num_memory=2, cache_pages=64)
        ctl = cluster.controller
        task = ctl.sys_exec("app")
        ctl.sys_mmap(task.pid, PAGE_SIZE)
        victim = 0
        cluster.run_process(
            cluster.mmu.migration.retire_blade(victim, ctl.tasks())
        )
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        assert cluster.mmu.address_space.translate(base).blade_id != victim

    def test_cannot_retire_last_blade(self):
        cluster = small_cluster(num_compute=1, num_memory=1)
        ctl = cluster.controller
        with pytest.raises(MigrationError):
            cluster.run_process(
                cluster.mmu.migration.retire_blade(0, ctl.tasks())
            )

    def test_remigration_chain(self, rig):
        """A -> B -> C migration chain keeps exactly one outlier route and
        frees the intermediate shadow."""
        cluster, task, base = rig
        write(cluster, 0, task.pid, base, b"chained")
        mig = cluster.mmu.migration
        src = cluster.mmu.address_space.translate(base).blade_id
        hop1 = (src + 1) % 3
        hop2 = (src + 2) % 3
        cluster.run_process(mig.migrate_range(base, 4 * PAGE_SIZE, hop1))
        hop1_bytes = cluster.mmu.allocator.blade(hop1).allocated_bytes
        cluster.run_process(mig.migrate_range(base, 4 * PAGE_SIZE, hop2))
        assert cluster.mmu.address_space.num_outlier_entries == 1
        assert cluster.mmu.allocator.blade(hop1).allocated_bytes < hop1_bytes
        assert cluster.mmu.address_space.translate(base).blade_id == hop2
        assert read(cluster, 1, task.pid, base, 7) == b"chained"

    def test_migration_counters(self, rig):
        cluster, task, base = rig
        src = cluster.mmu.address_space.translate(base)
        dst = (src.blade_id + 1) % 3
        cluster.run_process(
            cluster.mmu.migration.migrate_range(base, 4 * PAGE_SIZE, dst)
        )
        assert cluster.stats.counter("migrations") == 1
        assert cluster.stats.counter("pages_migrated") == 4
