"""DataPath unit tests: flush/fetch ordering and the async write-back map.

The regression class at the bottom pins the fail-over interaction fixed in
this revision: a ``flush_page_async`` completion callback must not remove
the pending-flush entry while the protocol is gated by ``begin_outage`` --
the fail-over quiesce re-flushes dirty pages and synchronizes on that map.
"""

from repro.sim.network import PAGE_SIZE

from conftest import small_cluster


def setup_proc(cluster, length=1 << 16):
    ctl = cluster.controller
    task = ctl.sys_exec("t")
    return task.pid, ctl.sys_mmap(task.pid, length)


class TestFlushFetchOrdering:
    def test_fetch_waits_for_inflight_flush(self):
        cluster = small_cluster()
        pid, base = setup_proc(cluster)
        coherence = cluster.mmu.coherence
        port0 = cluster.compute_blades[0].port
        fresh = bytes([7]) * PAGE_SIZE
        coherence.flush_page_async(port0, base, fresh)
        # A read fault racing the flush must be served *after* it lands.
        cluster.run_process(
            cluster.compute_blades[1].ensure_page(pid, base, write=False)
        )
        page = cluster.compute_blades[1].cache.peek(base)
        assert bytes(page.data) == fresh

    def test_entry_cleared_after_landing(self):
        cluster = small_cluster()
        pid, base = setup_proc(cluster)
        coherence = cluster.mmu.coherence
        port0 = cluster.compute_blades[0].port
        landed = coherence.flush_page_async(port0, base, b"\0" * PAGE_SIZE)
        assert base in coherence.pending_flushes
        cluster.engine.run()
        assert landed.triggered
        assert base not in coherence.pending_flushes

    def test_drain_writebacks_waits_all(self):
        cluster = small_cluster()
        pid, base = setup_proc(cluster)
        coherence = cluster.mmu.coherence
        port0 = cluster.compute_blades[0].port
        events = [
            coherence.flush_page_async(
                port0, base + i * PAGE_SIZE, b"\0" * PAGE_SIZE
            )
            for i in range(3)
        ]
        cluster.run_process(coherence.drain_writebacks())
        assert all(ev.triggered for ev in events)

    def test_drain_writebacks_range_filtered(self):
        cluster = small_cluster()
        pid, base = setup_proc(cluster)
        coherence = cluster.mmu.coherence
        port0 = cluster.compute_blades[0].port
        inside = coherence.flush_page_async(port0, base, b"\0" * PAGE_SIZE)
        coherence.flush_page_async(
            port0, base + 64 * PAGE_SIZE, b"\0" * PAGE_SIZE
        )
        cluster.run_process(coherence.drain_writebacks(base, PAGE_SIZE))
        assert inside.triggered


class TestOutageRace:
    """Regression: flush completion racing ``begin_outage``."""

    def test_completion_during_outage_keeps_entry(self):
        cluster = small_cluster()
        pid, base = setup_proc(cluster)
        coherence = cluster.mmu.coherence
        port0 = cluster.compute_blades[0].port
        landed = coherence.flush_page_async(port0, base, b"\1" * PAGE_SIZE)
        # The primary crashes while the flush is in flight.
        coherence.begin_outage()
        cluster.engine.run()
        # The payload landed, but the map entry must survive the outage:
        # the fail-over quiesce synchronizes on it.
        assert landed.triggered
        assert coherence.pending_flushes.get(base) is landed

    def test_requiesce_after_outage_clears_entry(self):
        cluster = small_cluster()
        pid, base = setup_proc(cluster)
        coherence = cluster.mmu.coherence
        port0 = cluster.compute_blades[0].port
        coherence.flush_page_async(port0, base, b"\1" * PAGE_SIZE)
        coherence.begin_outage()
        cluster.engine.run()
        coherence.end_outage()
        # The recovery path re-flushes against the rebuilt plane; the fresh
        # entry replaces the stale one and clears normally.
        refreshed = coherence.flush_page_async(port0, base, b"\2" * PAGE_SIZE)
        cluster.engine.run()
        assert refreshed.triggered
        assert base not in coherence.pending_flushes

    def test_normal_path_unaffected(self):
        cluster = small_cluster()
        pid, base = setup_proc(cluster)
        coherence = cluster.mmu.coherence
        port0 = cluster.compute_blades[0].port
        coherence.flush_page_async(port0, base, b"\1" * PAGE_SIZE)
        cluster.engine.run()
        assert base not in coherence.pending_flushes
