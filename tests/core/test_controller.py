"""Unit tests for the switch control plane (syscalls, processes)."""

import errno

import pytest

from repro.core.controller import SyscallError
from repro.core.vma import PermissionClass
from repro.sim.network import PAGE_SIZE
from repro.switchsim.packets import AccessType, PacketVerdict

from conftest import small_cluster


@pytest.fixture
def ctl(cluster):
    return cluster.controller


class TestProcessManagement:
    def test_exec_assigns_unique_pids(self, ctl):
        a, b = ctl.sys_exec("a"), ctl.sys_exec("b")
        assert a.pid != b.pid

    def test_exit_removes_task(self, ctl):
        task = ctl.sys_exec("a")
        ctl.sys_exit(task.pid)
        with pytest.raises(SyscallError) as exc:
            ctl.task(task.pid)
        assert exc.value.errno == errno.ESRCH

    def test_exit_frees_vmas_and_protection(self, cluster, ctl):
        task = ctl.sys_exec("a")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        ctl.sys_exit(task.pid)
        assert (
            cluster.mmu.protection.check(task.pid, base, AccessType.READ)
            is PacketVerdict.REJECT_NO_ENTRY
        )
        assert cluster.mmu.allocator.allocated_per_blade()[0] == 0

    def test_round_robin_thread_placement(self, ctl):
        task = ctl.sys_exec("a")
        blades = [ctl.place_thread(task.pid).blade_id for _ in range(4)]
        assert blades == [0, 1, 0, 1]

    def test_threads_share_pid(self, ctl):
        task = ctl.sys_exec("a")
        t1, t2 = ctl.place_thread(task.pid), ctl.place_thread(task.pid)
        assert t1.tid != t2.tid
        assert len(ctl.task(task.pid).threads) == 2

    def test_unknown_pid_rejected(self, ctl):
        with pytest.raises(SyscallError):
            ctl.place_thread(99999)


class TestMemorySyscalls:
    def test_mmap_returns_page_aligned_va(self, ctl):
        task = ctl.sys_exec("a")
        base = ctl.sys_mmap(task.pid, 100)
        assert base % PAGE_SIZE == 0

    def test_mmap_installs_protection(self, cluster, ctl):
        task = ctl.sys_exec("a")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        assert (
            cluster.mmu.protection.check(task.pid, base, AccessType.WRITE)
            is PacketVerdict.ALLOW
        )

    def test_mmap_invalid_length(self, ctl):
        task = ctl.sys_exec("a")
        with pytest.raises(SyscallError) as exc:
            ctl.sys_mmap(task.pid, 0)
        assert exc.value.errno == errno.EINVAL

    def test_mmap_enomem(self, ctl):
        task = ctl.sys_exec("a")
        with pytest.raises(SyscallError) as exc:
            ctl.sys_mmap(task.pid, 1 << 40)  # bigger than the test blade
        assert exc.value.errno == errno.ENOMEM

    def test_mmaps_do_not_overlap(self, ctl):
        task = ctl.sys_exec("a")
        spans = []
        for _ in range(10):
            base = ctl.sys_mmap(task.pid, 3 * PAGE_SIZE)
            vma, _blade = ctl.task(task.pid).vmas[base]
            for other_base, other_end in spans:
                assert vma.end <= other_base or other_end <= vma.base
            spans.append((vma.base, vma.end))

    def test_isolation_between_processes(self, cluster, ctl):
        """Two processes in one global VA space: allocations disjoint and
        permissions domain-scoped (Section 4.1 'Isolation')."""
        a, b = ctl.sys_exec("a"), ctl.sys_exec("b")
        base_a = ctl.sys_mmap(a.pid, PAGE_SIZE)
        base_b = ctl.sys_mmap(b.pid, PAGE_SIZE)
        assert base_a != base_b
        prot = cluster.mmu.protection
        assert prot.check(a.pid, base_b, AccessType.READ) is PacketVerdict.REJECT_NO_ENTRY
        assert prot.check(b.pid, base_a, AccessType.READ) is PacketVerdict.REJECT_NO_ENTRY

    def test_munmap_frees_everything(self, cluster, ctl):
        task = ctl.sys_exec("a")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        ctl.sys_munmap(task.pid, base)
        assert (
            cluster.mmu.protection.check(task.pid, base, AccessType.READ)
            is PacketVerdict.REJECT_NO_ENTRY
        )
        assert base not in ctl.task(task.pid).vmas

    def test_munmap_drops_directory_entries(self, cluster, ctl):
        task = ctl.sys_exec("a")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        blade = cluster.compute_blades[0]
        cluster.run_process(blade.ensure_page(task.pid, base, True))
        assert cluster.mmu.directory.find(base) is not None
        ctl.sys_munmap(task.pid, base)
        assert cluster.mmu.directory.find(base) is None

    def test_munmap_drops_cached_pages(self, cluster, ctl):
        task = ctl.sys_exec("a")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        blade = cluster.compute_blades[0]
        cluster.run_process(blade.ensure_page(task.pid, base, True))
        ctl.sys_munmap(task.pid, base)
        assert blade.cache.peek(base) is None
        assert base not in blade.ptes

    def test_munmap_unknown_vma(self, ctl):
        task = ctl.sys_exec("a")
        with pytest.raises(SyscallError) as exc:
            ctl.sys_munmap(task.pid, 0xDEAD000)
        assert exc.value.errno == errno.EINVAL

    def test_brk_grows_heap(self, ctl):
        task = ctl.sys_exec("a")
        base = ctl.sys_brk(task.pid, 8 * PAGE_SIZE)
        assert ctl.task(task.pid).brk_base == base
        assert ctl.task(task.pid).brk_current == base + 8 * PAGE_SIZE

    def test_brk_shrink_unsupported(self, ctl):
        task = ctl.sys_exec("a")
        with pytest.raises(SyscallError):
            ctl.sys_brk(task.pid, -1)

    def test_mprotect_changes_class(self, cluster, ctl):
        task = ctl.sys_exec("a")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        ctl.sys_mprotect(task.pid, base, PermissionClass.READ_ONLY)
        prot = cluster.mmu.protection
        assert prot.check(task.pid, base, AccessType.READ) is PacketVerdict.ALLOW
        assert (
            prot.check(task.pid, base, AccessType.WRITE)
            is PacketVerdict.REJECT_PERMISSION
        )


class TestProtectionDomains:
    def test_grant_domain_shares_vma(self, cluster, ctl):
        task = ctl.sys_exec("server")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        session_pdid = 777
        ctl.grant_domain(task.pid, base, session_pdid, PermissionClass.READ_ONLY)
        prot = cluster.mmu.protection
        assert prot.check(session_pdid, base, AccessType.READ) is PacketVerdict.ALLOW
        assert (
            prot.check(session_pdid, base, AccessType.WRITE)
            is PacketVerdict.REJECT_PERMISSION
        )

    def test_revoke_domain(self, cluster, ctl):
        task = ctl.sys_exec("server")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        ctl.grant_domain(task.pid, base, 777, PermissionClass.READ_ONLY)
        ctl.revoke_domain(task.pid, base, 777)
        assert (
            cluster.mmu.protection.check(777, base, AccessType.READ)
            is PacketVerdict.REJECT_NO_ENTRY
        )

    def test_domains_isolated_per_session(self, cluster, ctl):
        """Section 4.2's ssh-server example: one domain per session."""
        task = ctl.sys_exec("server")
        s1 = ctl.sys_mmap(task.pid, PAGE_SIZE)
        s2 = ctl.sys_mmap(task.pid, PAGE_SIZE)
        ctl.grant_domain(task.pid, s1, 100, PermissionClass.READ_WRITE)
        ctl.grant_domain(task.pid, s2, 200, PermissionClass.READ_WRITE)
        prot = cluster.mmu.protection
        assert prot.check(100, s2, AccessType.READ) is PacketVerdict.REJECT_NO_ENTRY
        assert prot.check(200, s1, AccessType.READ) is PacketVerdict.REJECT_NO_ENTRY


class TestVersioning:
    def test_metadata_ops_bump_version(self, ctl):
        v0 = ctl.version
        task = ctl.sys_exec("a")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE)
        ctl.sys_munmap(task.pid, base)
        assert ctl.version >= v0 + 3
