"""Unit tests for the MSHR-style pending-transaction table.

These drive :class:`~repro.core.txn.PendingTransactionTable` directly with
a bare engine and hand-built regions -- no cluster -- to pin down the
admission semantics: shared coalescing, FIFO conflict queueing, the
occupancy cap, control gates, downgrade, and fetch merging.  End-to-end
coalescing (one RDMA serving N blades) is covered in
``test_coherence_coalescing.py``.
"""

import pytest

from repro.core.directory import CoherenceState, Region
from repro.core.txn import PendingTransactionTable
from repro.sim.engine import Engine
from repro.sim.stats import StatsCollector

KB16 = 16 * 1024


def make_table(capacity=256):
    engine = Engine()
    stats = StatsCollector()
    return engine, stats, PendingTransactionTable(engine, stats, capacity=capacity)


def shared_region(base=0):
    return Region(base, KB16, state=CoherenceState.SHARED)


def modified_region(base=0, owner=1):
    return Region(base, KB16, state=CoherenceState.MODIFIED, owner=owner)


class TestSharedAdmission:
    def test_concurrent_shared_reads_all_admitted(self):
        engine, stats, table = make_table()
        region = shared_region()
        admitted = []

        def reader(port):
            txn = table.transaction(port, region.base, is_write=False)
            yield from table.admit(txn, region)
            admitted.append(txn)
            yield 10.0
            table.complete(txn)

        for port in range(4):
            engine.process(reader(port))
        engine.run(until=5.0)
        # All four hold the entry concurrently in shared mode.
        assert len(admitted) == 4
        assert table.inflight(region.base) == 4
        assert region.transient == "shared"
        engine.run()
        assert table.inflight(region.base) == 0
        assert region.transient == ""
        assert stats.counter("txn_conflict_waits") == 0

    def test_write_admitted_exclusively(self):
        engine, stats, table = make_table()
        region = shared_region()
        txn = engine.run_process(self._admit_one(table, region, is_write=True))
        assert not txn.shared
        assert region.transient == "exclusive"
        table.complete(txn)

    @staticmethod
    def _admit_one(table, region, is_write):
        txn = table.transaction(0, region.base, is_write=is_write)
        yield from table.admit(txn, region)
        return txn

    def test_read_of_modified_region_is_exclusive(self):
        engine, stats, table = make_table()
        region = modified_region()
        txn = engine.run_process(self._admit_one(table, region, is_write=False))
        assert not txn.shared
        assert region.transient == "exclusive"


class TestConflictQueue:
    def test_writes_serialize_fifo(self):
        engine, stats, table = make_table()
        region = shared_region()
        order = []

        def writer(port):
            txn = table.transaction(port, region.base, is_write=True)
            yield from table.admit(txn, region)
            order.append(port)
            yield 10.0
            table.complete(txn)

        for port in range(3):
            engine.process(writer(port))
        engine.run()
        assert order == [0, 1, 2]
        assert stats.counter("txn_conflict_waits") == 2

    def test_reader_parks_behind_writer_then_proceeds(self):
        engine, stats, table = make_table()
        region = shared_region()
        events = []

        def writer():
            txn = table.transaction(0, region.base, is_write=True)
            yield from table.admit(txn, region)
            events.append(("w", engine.now))
            yield 10.0
            table.complete(txn)

        def reader():
            yield 1.0  # arrive second
            txn = table.transaction(1, region.base, is_write=False)
            yield from table.admit(txn, region)
            events.append(("r", engine.now))
            table.complete(txn)

        engine.process(writer())
        engine.process(reader())
        engine.run()
        assert events[0][0] == "w"
        assert events[1][0] == "r"
        assert events[1][1] >= 10.0  # parked until the writer retired

    def test_grant_reevaluates_shared_at_wake(self):
        # A read parked behind a writer re-evaluates at grant time: the
        # region is Modified by then, so it must be granted exclusively.
        engine, stats, table = make_table()
        region = shared_region()

        def writer():
            txn = table.transaction(0, region.base, is_write=True)
            yield from table.admit(txn, region)
            yield 10.0
            region.state = CoherenceState.MODIFIED
            region.owner = 0
            table.complete(txn)

        parked = []

        def reader():
            yield 1.0
            txn = table.transaction(1, region.base, is_write=False)
            yield from table.admit(txn, region)
            parked.append(txn)
            table.complete(txn)

        engine.process(writer())
        engine.process(reader())
        engine.run()
        assert len(parked) == 1 and not parked[0].shared


class TestOccupancyCap:
    def test_cap_blocks_admission_until_slot_frees(self):
        engine, stats, table = make_table(capacity=2)
        admitted = []

        def txn_proc(port):
            region = shared_region(base=port * KB16)
            txn = table.transaction(port, region.base, is_write=False)
            yield from table.admit(txn, region)
            admitted.append((port, engine.now))
            yield 10.0
            table.complete(txn)

        for port in range(3):
            engine.process(txn_proc(port))
        engine.run(until=5.0)
        # Only two slots: the third (distinct-region!) admission waits.
        assert len(admitted) == 2
        assert table.occupancy == 2
        engine.run()
        assert len(admitted) == 3
        assert admitted[2][1] >= 10.0
        assert table.peak == 2

    def test_control_admissions_exempt_from_cap(self):
        engine, stats, table = make_table(capacity=1)

        def holder():
            region = shared_region(0)
            txn = table.transaction(0, region.base, is_write=False)
            yield from table.admit(txn, region)
            yield 10.0
            table.complete(txn)

        gates = []

        def control():
            gate = yield from table.admit_control(KB16)
            gates.append(engine.now)
            table.release_control(gate)

        engine.process(holder())
        engine.process(control())
        engine.run()
        # The control gate (different key) never queued on the full table.
        assert gates == [0.0]


class TestControlGate:
    def test_control_waits_out_inflight_txn(self):
        engine, stats, table = make_table()
        region = shared_region()
        times = {}

        def fault():
            txn = table.transaction(0, region.base, is_write=False)
            yield from table.admit(txn, region)
            yield 10.0
            table.complete(txn)

        def split():
            yield 1.0
            gate = yield from table.admit_control(region.base, region)
            times["granted"] = engine.now
            table.release_control(gate)

        engine.process(fault())
        engine.process(split())
        engine.run()
        assert times["granted"] >= 10.0

    def test_fault_waits_out_control_gate(self):
        engine, stats, table = make_table()
        region = shared_region()
        times = {}

        def split():
            gate = yield from table.admit_control(region.base, region)
            yield 10.0
            table.release_control(gate)

        def fault():
            yield 1.0
            txn = table.transaction(0, region.base, is_write=False)
            yield from table.admit(txn, region)
            times["granted"] = engine.now
            table.complete(txn)

        engine.process(split())
        engine.process(fault())
        engine.run()
        assert times["granted"] >= 10.0
        assert stats.counter("txn_conflict_waits") == 1


class TestDowngrade:
    def test_downgrade_grants_parked_readers(self):
        engine, stats, table = make_table()
        region = modified_region(owner=0)
        granted = []

        def leader():
            txn = table.transaction(1, region.base, is_write=False)
            yield from table.admit(txn, region)
            assert not txn.shared
            yield 5.0
            # Directory update applied: the region is Shared from here on.
            region.state = CoherenceState.SHARED
            region.owner = None
            table.downgrade(txn, region)
            assert txn.shared
            yield 5.0
            table.complete(txn)

        def follower(port):
            yield 1.0
            txn = table.transaction(port, region.base, is_write=False)
            yield from table.admit(txn, region)
            granted.append(engine.now)
            table.complete(txn)

        engine.process(leader())
        for port in (2, 3):
            engine.process(follower(port))
        engine.run()
        # Followers were granted at the downgrade, not at completion.
        assert granted == [5.0, 5.0]

    def test_control_cannot_downgrade(self):
        engine, stats, table = make_table()
        region = shared_region()

        def run():
            gate = yield from table.admit_control(region.base, region)
            return gate

        gate = engine.run_process(run())
        with pytest.raises(ValueError):
            table.downgrade(gate, region)


class TestFetchCoalescing:
    def test_join_and_finish(self):
        engine, stats, table = make_table()
        region = shared_region()
        results = []

        def leader():
            txn = table.transaction(0, region.base, is_write=False)
            yield from table.admit(txn, region)
            fetch = table.publish_fetch(txn, region.base)
            yield 10.0  # the RDMA in flight
            table.finish_fetch(txn, fetch, b"payload")
            table.complete(txn)

        def joiner(port):
            yield 1.0
            txn = table.transaction(port, region.base, is_write=False)
            yield from table.admit(txn, region)
            fetch = table.inflight_fetch(txn, region.base)
            assert fetch is not None
            data = yield fetch.done
            results.append((port, data, engine.now))
            table.complete(txn)

        engine.process(leader())
        for port in (1, 2):
            engine.process(joiner(port))
        engine.run()
        assert [(p, d) for p, d, _t in results] == [(1, b"payload"), (2, b"payload")]
        assert all(t >= 10.0 for _p, _d, t in results)
        assert stats.counter("coalesced_fetches") == 2

    def test_merge_window_closes_at_finish(self):
        engine, stats, table = make_table()
        region = shared_region()

        def run():
            txn = table.transaction(0, region.base, is_write=False)
            yield from table.admit(txn, region)
            fetch = table.publish_fetch(txn, region.base)
            table.finish_fetch(txn, fetch, b"x")
            # The window is closed: a later reader fetches for itself.
            late = table.transaction(1, region.base, is_write=False)
            yield from table.admit(late, region)
            assert table.inflight_fetch(late, region.base) is None
            table.complete(late)
            table.complete(txn)

        engine.run_process(run())
        assert stats.counter("coalesced_fetches") == 0

    def test_fetch_of_other_page_not_joined(self):
        engine, stats, table = make_table()
        region = shared_region()

        def run():
            txn = table.transaction(0, region.base, is_write=False)
            yield from table.admit(txn, region)
            fetch = table.publish_fetch(txn, region.base)
            other = table.transaction(1, region.base + 4096, is_write=False)
            yield from table.admit(other, region)
            assert table.inflight_fetch(other, region.base + 4096) is None
            table.finish_fetch(txn, fetch, None)
            table.complete(other)
            table.complete(txn)

        engine.run_process(run())


class TestRebind:
    def test_rebind_moves_transient_flag(self):
        engine, stats, table = make_table()
        old = shared_region()
        new = shared_region()

        def run():
            txn = table.transaction(0, old.base, is_write=False)
            yield from table.admit(txn, old)
            assert old.transient == "shared"
            table.rebind(txn, new)
            assert old.transient == ""
            assert new.transient == "shared"
            table.complete(txn)
            assert new.transient == ""

        engine.run_process(run())
