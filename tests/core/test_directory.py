"""Unit and property tests for the region directory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.directory import (
    CoherenceState,
    DirectoryFullError,
    Region,
    RegionDirectory,
)
from repro.sim.network import PAGE_SIZE
from repro.switchsim.sram import RegisterArray

KB16 = 16 * 1024
MB2 = 2 * 1024 * 1024

I, S, M = CoherenceState.INVALID, CoherenceState.SHARED, CoherenceState.MODIFIED


def make_dir(capacity=64, initial=KB16, maximum=MB2):
    return RegionDirectory(
        RegisterArray(capacity), initial_region_size=initial, max_region_size=maximum
    )


class TestRegion:
    def test_validation(self):
        with pytest.raises(ValueError):
            Region(0, 1000)  # not pow2
        with pytest.raises(ValueError):
            Region(0x800, PAGE_SIZE)  # not aligned
        with pytest.raises(ValueError):
            Region(0, PAGE_SIZE // 2)  # below page size

    def test_buddy_base(self):
        left = Region(0x0, KB16)
        right = Region(0x4000, KB16)
        assert left.buddy_base() == right.base
        assert right.buddy_base() == left.base

    def test_contains_and_pages(self):
        r = Region(KB16, KB16)
        assert r.contains(KB16)
        assert r.contains(2 * KB16 - 1)
        assert not r.contains(2 * KB16)
        assert r.num_pages == 4


class TestLifecycle:
    def test_ensure_creates_at_initial_size(self):
        d = make_dir()
        region = d.ensure_region(0x5000)
        assert region.size == KB16
        assert region.contains(0x5000)
        assert region.base % KB16 == 0
        assert len(d) == 1

    def test_ensure_is_idempotent(self):
        d = make_dir()
        a = d.ensure_region(0x5000)
        b = d.ensure_region(0x6000)  # same 16 KB window
        assert a is b
        assert len(d) == 1

    def test_distinct_windows_distinct_regions(self):
        d = make_dir()
        a = d.ensure_region(0x0)
        b = d.ensure_region(KB16)
        assert a is not b
        assert len(d) == 2

    def test_find_miss(self):
        d = make_dir()
        d.ensure_region(0x0)
        assert d.find(KB16) is None

    def test_release(self):
        d = make_dir()
        region = d.ensure_region(0x0)
        d.release(region)
        assert d.find(0x0) is None
        assert d.sram.free == d.sram.capacity

    def test_capacity_reclaims_invalid(self):
        d = make_dir(capacity=2)
        a = d.ensure_region(0)          # Invalid, reclaimable
        d.ensure_region(KB16).state = S
        # Third window: full, but `a` is Invalid -> reclaimed transparently.
        c = d.ensure_region(2 * KB16)
        assert c is not None
        assert d.find(0) is None  # a was reclaimed

    def test_capacity_raises_when_nothing_reclaimable(self):
        d = make_dir(capacity=2)
        d.ensure_region(0).state = S
        d.ensure_region(KB16).state = M
        with pytest.raises(DirectoryFullError):
            d.ensure_region(2 * KB16)

    def test_creation_shrinks_around_existing_fragments(self):
        d = make_dir()
        region = d.ensure_region(0x0)
        halves = d.split(region)
        left, right = halves
        d.release(right)
        # Re-ensuring in the released half must not overlap the left half.
        again = d.ensure_region(right.base)
        assert again.base >= left.end
        assert not (again.base < left.end and left.base < again.end)


class TestSplit:
    def test_split_halves_region(self):
        d = make_dir()
        region = d.ensure_region(0)
        region.state = S
        region.sharers = {1, 2}
        left, right = d.split(region)
        assert left.size == right.size == KB16 // 2
        assert left.base == 0 and right.base == KB16 // 2
        assert left.state is S and right.state is S
        assert left.sharers == {1, 2} and right.sharers == {1, 2}
        assert len(d) == 2
        assert d.splits == 1

    def test_split_at_page_floor_refused(self):
        d = make_dir(initial=PAGE_SIZE)
        region = d.ensure_region(0)
        assert d.split(region) is None

    def test_split_when_full_refused(self):
        d = make_dir(capacity=1)
        region = d.ensure_region(0)
        region.state = S  # not reclaimable
        assert d.split(region) is None

    def test_split_reclaims_invalid_for_second_slot(self):
        d = make_dir(capacity=2)
        stale = d.ensure_region(10 * KB16)  # Invalid: reclaimable
        region = d.ensure_region(0)
        region.state = M
        region.owner = 1
        assert d.split(region) is not None
        assert d.find(10 * KB16) is None  # stale entry got reclaimed

    def test_lookup_after_split(self):
        d = make_dir()
        region = d.ensure_region(0)
        d.split(region)
        assert d.find(0).size == KB16 // 2
        assert d.find(KB16 // 2).base == KB16 // 2


class TestMerge:
    def _pair(self, d, state_a=I, state_b=I, owner_a=None, owner_b=None):
        region = d.ensure_region(0)
        left, right = d.split(region)
        left.state, right.state = state_a, state_b
        left.owner, right.owner = owner_a, owner_b
        return left, right

    def test_mergeable_invalid_pair(self):
        d = make_dir()
        left, right = self._pair(d)
        assert d.mergeable(left) is right

    def test_mergeable_shared_pair(self):
        d = make_dir()
        left, right = self._pair(d, S, S)
        left.sharers, right.sharers = {1}, {2}
        assert d.mergeable(left) is right

    def test_mergeable_same_owner_modified(self):
        d = make_dir()
        left, right = self._pair(d, M, M, owner_a=3, owner_b=3)
        assert d.mergeable(left) is right

    def test_not_mergeable_different_owners(self):
        d = make_dir()
        left, right = self._pair(d, M, M, owner_a=3, owner_b=4)
        assert d.mergeable(left) is None

    def test_not_mergeable_shared_with_modified(self):
        d = make_dir()
        left, right = self._pair(d, S, M, owner_b=4)
        assert d.mergeable(left) is None

    def test_not_mergeable_at_max_size(self):
        d = make_dir(initial=KB16, maximum=KB16)
        left = d.ensure_region(0)
        d.ensure_region(KB16)
        assert d.mergeable(left) is None

    def test_merge_unions_sharers(self):
        d = make_dir()
        left, right = self._pair(d, S, S)
        left.sharers, right.sharers = {1}, {2, 3}
        merged = d.merge(left, right)
        assert merged.size == KB16
        assert merged.state is S
        assert merged.sharers == {1, 2, 3}
        assert len(d) == 1
        assert d.merges == 1

    def test_merge_sums_epoch_counters(self):
        d = make_dir()
        left, right = self._pair(d, S, S)
        left.false_invalidations, right.false_invalidations = 3, 4
        merged = d.merge(left, right)
        assert merged.false_invalidations == 7

    def test_merge_modified_with_invalid_keeps_owner(self):
        d = make_dir()
        left, right = self._pair(d, M, I, owner_a=5)
        left.sharers = {5}
        merged = d.merge(left, right)
        assert merged.state is M
        assert merged.owner == 5

    def test_merge_non_buddies_rejected(self):
        d = make_dir()
        a = d.ensure_region(0)
        b = d.ensure_region(2 * KB16)
        with pytest.raises(ValueError):
            d.merge(a, b)

    def test_merge_any_frees_slots(self):
        d = make_dir()
        region = d.ensure_region(0)
        d.split(region)
        before = len(d)
        assert d.merge_any() == 1
        assert len(d) == before - 1


class TestClockVictim:
    def test_prefers_shared_over_modified(self):
        d = make_dir()
        m = d.ensure_region(0)
        m.state = M
        s = d.ensure_region(KB16)
        s.state = S
        assert d.clock_victim(probe=8).state is S

    def test_skips_invalid(self):
        d = make_dir()
        d.ensure_region(0)  # Invalid
        s = d.ensure_region(KB16)
        s.state = S
        assert d.clock_victim(probe=8) is s

    def test_none_when_all_invalid(self):
        d = make_dir()
        d.ensure_region(0)
        assert d.clock_victim(probe=8) is None

    def test_empty_directory(self):
        assert make_dir().clock_victim() is None

    def test_prefers_colder_entries(self):
        d = make_dir()
        hot = d.ensure_region(0)
        hot.state = S
        hot.accesses = 100
        cold = d.ensure_region(KB16)
        cold.state = S
        cold.accesses = 1
        assert d.clock_victim(probe=8) is cold


@given(
    pages=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=60),
    split_mask=st.integers(min_value=0, max_value=2**16 - 1),
)
@settings(max_examples=100)
def test_property_regions_never_overlap_and_cover_ensured_pages(pages, split_mask):
    """After arbitrary ensure/split churn, regions stay disjoint, buddy-
    aligned, and every ensured page remains covered."""
    d = make_dir(capacity=1024)
    for i, page in enumerate(pages):
        va = page * PAGE_SIZE
        region = d.ensure_region(va)
        if (split_mask >> (i % 16)) & 1:
            d.split(region)
    regions = d.regions()
    for a, b in zip(regions, regions[1:]):
        assert a.end <= b.base, "regions must not overlap"
    for r in regions:
        assert r.base % r.size == 0, "buddy alignment"
        assert r.size & (r.size - 1) == 0
    for page in pages:
        assert d.find(page * PAGE_SIZE) is not None
