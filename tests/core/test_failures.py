"""Tests for switch fail-over: replication and data-plane rebuild."""

import pytest

from repro.core.failures import ControlPlaneReplicator, rebuild_data_plane
from repro.core.vma import PermissionClass
from repro.sim.network import PAGE_SIZE
from repro.switchsim.packets import AccessType, PacketVerdict
from repro.switchsim.sram import RegisterArray
from repro.switchsim.tcam import Tcam

from conftest import small_cluster


@pytest.fixture
def populated():
    cluster = small_cluster(num_compute=2, num_memory=2)
    ctl = cluster.controller
    task = ctl.sys_exec("app")
    bases = [ctl.sys_mmap(task.pid, 4 * PAGE_SIZE) for _ in range(3)]
    ro = ctl.sys_mmap(task.pid, PAGE_SIZE, PermissionClass.READ_ONLY)
    return cluster, task, bases, ro


def rebuild(cluster):
    replicator = ControlPlaneReplicator(cluster.controller)
    snapshot = replicator.capture()
    return rebuild_data_plane(
        snapshot,
        xlate_tcam=Tcam(1024, name="backup-xlate"),
        protection_tcam=Tcam(1024, name="backup-prot"),
        directory_sram=RegisterArray(256, name="backup-dir"),
    )


class TestReplication:
    def test_snapshot_captures_vmas(self, populated):
        cluster, task, bases, ro = populated
        snap = ControlPlaneReplicator(cluster.controller).capture()
        assert len(snap.vmas) == 4
        assert {v[1] for v in snap.vmas} == set(bases) | {ro}

    def test_staleness_detection(self, populated):
        cluster, task, _bases, _ro = populated
        replicator = ControlPlaneReplicator(cluster.controller)
        assert not replicator.stale()
        cluster.controller.sys_mmap(task.pid, PAGE_SIZE)
        assert replicator.stale()
        replicator.capture()
        assert not replicator.stale()


class TestRebuild:
    def test_translation_identical(self, populated):
        cluster, _task, bases, _ro = populated
        backup = rebuild(cluster)
        for base in bases:
            orig = cluster.mmu.address_space.translate(base)
            new = backup.address_space.translate(base)
            assert (orig.blade_id, orig.pa) == (new.blade_id, new.pa)

    def test_protection_identical(self, populated):
        cluster, task, bases, ro = populated
        backup = rebuild(cluster)
        for base in bases:
            assert (
                backup.protection.check(task.pid, base, AccessType.WRITE)
                is PacketVerdict.ALLOW
            )
        assert (
            backup.protection.check(task.pid, ro, AccessType.WRITE)
            is PacketVerdict.REJECT_PERMISSION
        )
        assert (
            backup.protection.check(9999, bases[0], AccessType.READ)
            is PacketVerdict.REJECT_NO_ENTRY
        )

    def test_allocator_occupancy_replayed(self, populated):
        cluster, _task, _bases, _ro = populated
        backup = rebuild(cluster)
        assert (
            backup.allocator.allocated_per_blade()
            == cluster.mmu.allocator.allocated_per_blade()
        )

    def test_future_allocations_do_not_collide(self, populated):
        cluster, task, bases, _ro = populated
        backup = rebuild(cluster)
        placement = backup.allocator.allocate(PAGE_SIZE)
        for base in bases:
            vma, _blade = cluster.controller.task(task.pid).vmas[base]
            assert (
                placement.va_base + placement.length <= vma.base
                or vma.end <= placement.va_base
            )

    def test_directory_starts_cold(self, populated):
        cluster, task, bases, _ro = populated
        blade = cluster.compute_blades[0]
        cluster.run_process(blade.ensure_page(task.pid, bases[0], True))
        assert len(cluster.mmu.directory) == 1
        backup = rebuild(cluster)
        assert len(backup.directory) == 0  # re-populated by faults

    def test_rebuild_of_empty_control_plane(self):
        cluster = small_cluster()
        backup = rebuild(cluster)
        assert len(backup.protection) == 0
        assert backup.address_space.num_blade_entries == 1
