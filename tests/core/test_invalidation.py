"""InvalidationEngine unit tests: builders, transport retries, reset, and
the unicast-cpu ablation's serialization cost."""

from repro.cluster import ClusterConfig, MindCluster
from repro.core.directory import CoherenceState
from repro.core.mmu import MindConfig
from repro.faults import MessageLossInjector
from repro.sim.rng import make_rng

from conftest import small_cluster

I, S, M = CoherenceState.INVALID, CoherenceState.SHARED, CoherenceState.MODIFIED


def lossy_cluster(injector, **mind_kwargs):
    mind = MindConfig(directory_capacity=256, enable_bounded_splitting=False, **mind_kwargs)
    return MindCluster(
        ClusterConfig(num_compute_blades=2, cache_capacity_pages=64, mind=mind),
        fault_injector=injector,
    )


def setup_proc(cluster, length=1 << 16):
    ctl = cluster.controller
    task = ctl.sys_exec("t")
    return task.pid, ctl.sys_mmap(task.pid, length)


def touch(cluster, blade_idx, pid, va, write):
    blade = cluster.compute_blades[blade_idx]
    return cluster.run_process(blade.ensure_page(pid, va, write))


class TestBuilders:
    def test_make_inval_aligns_target_page(self):
        cluster = small_cluster()
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        region = cluster.mmu.directory.find(base)

        class Req:
            src_port = 5
            va = base + 123  # unaligned offset into the page

        inval = cluster.mmu.coherence.invalidation.make_inval(
            region, Req, [1, 2], downgrade=True
        )
        assert inval.region_base == region.base
        assert inval.sharers == frozenset({1, 2})
        assert inval.target_va == base  # aligned down to the page
        assert inval.downgrade_to_shared

    def test_make_eviction_inval_marks_collateral(self):
        cluster = small_cluster()
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        region = cluster.mmu.directory.find(base)
        inval = cluster.mmu.coherence.invalidation.make_eviction_inval(region, [1])
        assert inval.requester_port == -1
        assert inval.target_va == -1  # every page is collateral


class TestRetryAndReset:
    def test_dropped_invalidation_retried_to_completion(self):
        injector = MessageLossInjector(make_rng(2), drop_invalidations=0.5)
        cluster = lossy_cluster(injector)
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 1, pid, base, write=True)
        assert injector.dropped > 0
        assert cluster.stats.counter("retransmissions") > 0
        # Despite the loss, the write completed with a coherent directory.
        region = cluster.mmu.directory.find(base)
        assert region.state is M
        assert region.owner == cluster.compute_blades[1].port.port_id

    def test_dropped_acks_retried_idempotently(self):
        injector = MessageLossInjector(make_rng(2), drop_acks=0.5)
        cluster = lossy_cluster(injector)
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 1, pid, base, write=True)
        assert cluster.stats.counter("retransmissions") > 0
        region = cluster.mmu.directory.find(base)
        assert region.state is M

    def test_persistent_loss_triggers_reset(self):
        injector = MessageLossInjector(make_rng(3), drop_invalidations=1.0)
        cluster = lossy_cluster(injector)
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 1, pid, base, write=True)
        assert cluster.stats.counter("resets") >= 1


class TestUnicastAblation:
    def test_unicast_serializes_on_switch_cpu(self):
        mc = small_cluster(num_compute=3)
        uc = small_cluster(num_compute=3, invalidation_mode="unicast-cpu")
        for cluster in (mc, uc):
            pid, base = setup_proc(cluster)
            touch(cluster, 0, pid, base, write=False)
            touch(cluster, 1, pid, base, write=False)
            touch(cluster, 2, pid, base, write=True)
        assert uc.stats.counter("unicast_invalidations_generated") == 2
        assert mc.stats.counter("unicast_invalidations_generated") == 0
        # Per-packet CPU generation is what makes software fan-out slow.
        assert uc.mmu.control_cpu.busy_us > mc.mmu.control_cpu.busy_us
