"""Unit tests for range-partitioned address translation with outliers."""

import pytest

from repro.core.addressing import AddressSpace, TranslationFault
from repro.switchsim.tcam import Tcam

CAP = 1 << 20


@pytest.fixture
def space():
    space = AddressSpace(Tcam(64), blade_capacity=CAP)
    for blade_id in (10, 20):
        space.add_blade(blade_id)
    return space


def test_one_entry_per_blade(space):
    assert space.num_blade_entries == 2
    assert len(space.tcam) == 2


def test_blade_ranges_contiguous(space):
    assert space.blade_va_base(10) == 0
    assert space.blade_va_base(20) == CAP


def test_translate_identity_within_blade(space):
    t = space.translate(0x1234)
    assert t.blade_id == 10
    assert t.pa == 0x1234
    assert not t.outlier


def test_translate_second_blade_offsets_pa(space):
    t = space.translate(CAP + 0x500)
    assert t.blade_id == 20
    assert t.pa == 0x500  # physical addresses restart per blade


def test_translate_unmapped_faults(space):
    with pytest.raises(TranslationFault):
        space.translate(5 * CAP)


def test_translate_out_of_va_space(space):
    with pytest.raises(TranslationFault):
        space.translate(1 << 60)
    with pytest.raises(TranslationFault):
        space.translate(-1)


def test_capacity_must_be_pow2():
    with pytest.raises(ValueError):
        AddressSpace(Tcam(4), blade_capacity=1000)


def test_duplicate_blade_rejected(space):
    with pytest.raises(ValueError):
        space.add_blade(10)


def test_remove_blade(space):
    space.remove_blade(20)
    with pytest.raises(TranslationFault):
        space.translate(CAP + 1)
    with pytest.raises(KeyError):
        space.remove_blade(20)


class TestOutliers:
    def test_outlier_shadows_blade_entry(self, space):
        # Migrate a 4 KB region of blade 10's range to blade 20.
        space.add_outlier(0x4000, 0x1000, blade_id=20, pa_base=0x9000)
        t = space.translate(0x4800)
        assert t.blade_id == 20
        assert t.pa == 0x9800
        assert t.outlier

    def test_neighbours_unaffected(self, space):
        space.add_outlier(0x4000, 0x1000, blade_id=20, pa_base=0x9000)
        assert space.translate(0x3FFF).blade_id == 10
        assert space.translate(0x5000).blade_id == 10

    def test_remove_outlier_restores_blade_route(self, space):
        space.add_outlier(0x4000, 0x1000, blade_id=20, pa_base=0x9000)
        space.remove_outlier(0x4000, 0x1000)
        assert space.translate(0x4800).blade_id == 10
        assert space.num_outlier_entries == 0

    def test_remove_unknown_outlier_rejected(self, space):
        with pytest.raises(KeyError):
            space.remove_outlier(0x4000, 0x1000)

    def test_migrate_is_outlier_install(self, space):
        space.migrate(0x8000, 0x2000, dst_blade=20, dst_pa=0x0)
        t = space.translate(0x8000)
        assert (t.blade_id, t.pa) == (20, 0x0)

    def test_nested_outliers_most_specific_wins(self, space):
        space.add_outlier(0x0, 0x10000, blade_id=20, pa_base=0x0)
        space.add_outlier(0x4000, 0x1000, blade_id=20, pa_base=0x90000)
        assert space.translate(0x4000).pa == 0x90000
        assert space.translate(0x1000).pa == 0x1000


def test_storage_is_constant_in_memory_size():
    """The headline claim of Section 4.1: entries scale with blades, not
    with allocated bytes."""
    space = AddressSpace(Tcam(64), blade_capacity=1 << 34)
    for blade_id in range(8):
        space.add_blade(blade_id)
    assert len(space.tcam) == 8  # 16 GB/blade, still one entry each
