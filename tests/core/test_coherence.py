"""Behavioural tests for the in-network MSI coherence protocol.

These drive real fault transactions through a miniature cluster and check
directory state, invalidation traffic, latency structure and reliability.
"""

import pytest

from repro.blades.compute import SegmentationFault
from repro.faults import MessageLossInjector
from repro.core.directory import CoherenceState
from repro.core.vma import PermissionClass
from repro.sim.rng import make_rng
from repro.sim.network import PAGE_SIZE

from conftest import small_cluster

I, S, M = CoherenceState.INVALID, CoherenceState.SHARED, CoherenceState.MODIFIED


def setup_proc(cluster, length=1 << 20):
    ctl = cluster.controller
    task = ctl.sys_exec("t")
    base = ctl.sys_mmap(task.pid, length)
    return task.pid, base


def touch(cluster, blade_idx, pid, va, write):
    blade = cluster.compute_blades[blade_idx]
    return cluster.run_process(blade.ensure_page(pid, va, write))


class TestTransitions:
    def test_read_miss_creates_shared_region(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        region = cluster.mmu.directory.find(base)
        assert region.state is S
        assert region.sharers == {cluster.compute_blades[0].port.port_id}
        assert region.owner is None

    def test_write_miss_creates_modified_region(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        region = cluster.mmu.directory.find(base)
        assert region.state is M
        assert region.owner == cluster.compute_blades[0].port.port_id

    def test_second_reader_joins_sharers(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 1, pid, base, write=False)
        region = cluster.mmu.directory.find(base)
        assert region.state is S
        assert len(region.sharers) == 2
        assert cluster.stats.counter("invalidations_sent") == 0

    def test_upgrade_invalidates_other_sharers(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 1, pid, base, write=False)
        touch(cluster, 1, pid, base, write=True)  # S -> M
        region = cluster.mmu.directory.find(base)
        p1 = cluster.compute_blades[1].port.port_id
        assert region.state is M and region.owner == p1
        assert region.sharers == {p1}
        assert cluster.stats.counter("invalidations_sent") == 1
        # Blade 0 no longer caches the page.
        assert cluster.compute_blades[0].cache.peek(base) is None

    def test_read_steal_downgrades_owner(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 1, pid, base, write=False)  # M -> S
        region = cluster.mmu.directory.find(base)
        assert region.state is S
        assert region.owner is None
        assert len(region.sharers) == 2
        # The old owner keeps a read-only copy (downgrade, not drop).
        page = cluster.compute_blades[0].cache.peek(base)
        assert page is not None
        assert not page.writable

    def test_write_steal_transfers_ownership(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 1, pid, base, write=True)  # M -> M
        region = cluster.mmu.directory.find(base)
        p1 = cluster.compute_blades[1].port.port_id
        assert region.state is M and region.owner == p1
        assert cluster.compute_blades[0].cache.peek(base) is None

    def test_owner_capacity_refetch_keeps_state(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        blade = cluster.compute_blades[0]
        blade.cache.drop(base)  # simulate a capacity eviction (clean copy)
        blade.ptes.unmap_page(base)
        touch(cluster, 0, pid, base, write=True)
        region = cluster.mmu.directory.find(base)
        assert region.state is M
        assert cluster.stats.counter("invalidations_sent") == 0

    def test_transition_labels_recorded(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 1, pid, base, write=False)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 1, pid, base, write=True)
        touch(cluster, 0, pid, base, write=False)
        counters = cluster.stats.counters
        assert counters["transition:I->S"] == 1
        assert counters["transition:S->S"] == 1
        assert counters["transition:S->M"] == 1
        assert counters["transition:M->M"] == 1
        assert counters["transition:M->S"] == 1

    def test_invalidation_latency_roughly_double(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 1, pid, base, write=True)
        stats = cluster.stats
        clean = stats.mean_latency("fault:I->M")
        steal = stats.mean_latency("fault:M->M")
        assert 1.6 < steal / clean < 2.4  # the paper's 9 vs 18 us structure


class TestProtectionIntegration:
    def test_unmapped_access_faults(self, cluster):
        pid, _base = setup_proc(cluster)
        with pytest.raises(SegmentationFault):
            touch(cluster, 0, pid, 0x7F00_0000_0000, write=False)

    def test_wrong_pid_rejected(self, cluster):
        pid, base = setup_proc(cluster)
        other = cluster.controller.sys_exec("other")
        with pytest.raises(SegmentationFault):
            touch(cluster, 0, other.pid, base, write=False)

    def test_read_only_write_rejected(self, cluster):
        ctl = cluster.controller
        task = ctl.sys_exec("ro")
        base = ctl.sys_mmap(task.pid, PAGE_SIZE, PermissionClass.READ_ONLY)
        touch(cluster, 0, task.pid, base, write=False)  # reads fine
        with pytest.raises(SegmentationFault):
            touch(cluster, 1, task.pid, base, write=True)

    def test_rejection_counted_not_cached(self, cluster):
        pid, base = setup_proc(cluster)
        other = cluster.controller.sys_exec("other")
        try:
            touch(cluster, 0, other.pid, base, write=False)
        except SegmentationFault:
            pass
        assert cluster.stats.counter("protection_rejections") == 1
        assert cluster.compute_blades[0].cache.peek(base) is None


class TestFalseInvalidations:
    def test_counted_for_collateral_pages(self, cluster):
        pid, base = setup_proc(cluster)
        # Blade 0 dirties two pages of the same 16 KB region.
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 0, pid, base + PAGE_SIZE, write=True)
        # Blade 1 writes page 0: page 1 is flushed alongside -> 1 false inv.
        touch(cluster, 1, pid, base, write=True)
        assert cluster.stats.counter("false_invalidations") == 1
        region = cluster.mmu.directory.find(base)
        assert region.false_invalidations == 1

    def test_zero_when_region_holds_only_target(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 1, pid, base, write=True)
        assert cluster.stats.counter("false_invalidations") == 0

    def test_flush_counts(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 0, pid, base + PAGE_SIZE, write=True)
        touch(cluster, 1, pid, base, write=True)
        assert cluster.stats.counter("flushed_pages") == 2


class TestDataPathOrdering:
    def test_stolen_write_data_visible(self, cluster):
        """M->M handoff: the new owner must see the old owner's bytes."""
        pid, base = setup_proc(cluster)
        b0, b1 = cluster.compute_blades
        cluster.run_process(b0.store_bytes(pid, base, b"from-blade-0"))
        data = cluster.run_process(b1.load_bytes(pid, base, 12))
        assert data == b"from-blade-0"

    def test_eviction_then_remote_read(self, cluster):
        """Dirty eviction write-back must be observed by later fetches."""
        pid, base = setup_proc(cluster)
        b0, b1 = cluster.compute_blades
        cluster.run_process(b0.store_bytes(pid, base, b"evicted-data"))
        # Fill blade 0's cache far past capacity to force the eviction.
        for i in range(1, 70):
            cluster.run_process(b0.ensure_page(pid, base + i * PAGE_SIZE, True))
        assert b0.cache.peek(base) is None
        data = cluster.run_process(b1.load_bytes(pid, base, 12))
        assert data == b"evicted-data"

    def test_concurrent_writers_serialize_consistently(self, cluster):
        """Racing writers on one page: directory and caches stay coherent."""
        pid, base = setup_proc(cluster)
        b0, b1 = cluster.compute_blades
        cluster.run_all(
            [
                b0.store_bytes(pid, base, b"AAAA"),
                b1.store_bytes(pid, base, b"BBBB"),
            ]
        )
        region = cluster.mmu.directory.find(base)
        assert region.state is M
        owner_blade = b0 if region.owner == b0.port.port_id else b1
        loser_blade = b1 if owner_blade is b0 else b0
        assert owner_blade.cache.peek(base) is not None
        assert loser_blade.cache.peek(base) is None
        # The final memory image is one of the two writes, not a mix.
        final = cluster.run_process(owner_blade.load_bytes(pid, base, 4))
        assert final in (b"AAAA", b"BBBB")


class TestCapacityEviction:
    def test_directory_eviction_makes_room(self):
        cluster = small_cluster(directory_capacity=2, cache_pages=256)
        pid, base = setup_proc(cluster)
        # Touch three distinct 16 KB windows: slot pressure forces eviction.
        for i in range(3):
            touch(cluster, 0, pid, base + i * 16 * 1024, write=True)
        assert len(cluster.mmu.directory) <= 2
        assert cluster.stats.counter("directory_capacity_events") >= 1

    def test_mergeable_buddies_merge_instead_of_evicting(self):
        """Same-owner buddy regions merge metadata-only under pressure."""
        cluster = small_cluster(directory_capacity=2, cache_pages=256)
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 0, pid, base + 16 * 1024, write=True)
        touch(cluster, 0, pid, base + 32 * 1024, write=True)
        assert cluster.stats.counter("capacity_evictions") == 0
        assert cluster.mmu.directory.merges >= 1

    def test_eviction_invalidates_holders(self):
        """Non-mergeable regions (different owners) force a real eviction,
        whose collateral flushes are the capacity false invalidations."""
        cluster = small_cluster(directory_capacity=2, cache_pages=256)
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 1, pid, base + 16 * 1024, write=True)
        touch(cluster, 0, pid, base + 48 * 1024, write=True)
        assert cluster.stats.counter("capacity_evictions") >= 1
        assert cluster.stats.counter("flushed_pages") >= 1


class TestReliability:
    def test_lost_invalidations_retransmitted(self):
        injector = MessageLossInjector(make_rng(7), drop_invalidations=0.5)
        cluster = small_cluster()
        cluster.mmu.coherence.fault_injector = injector
        pid, base = setup_proc(cluster)
        for i in range(6):
            touch(cluster, 0, pid, base, write=True)
            touch(cluster, 1, pid, base, write=True)
        assert cluster.stats.counter("retransmissions") >= 1
        # Protocol still converged to a single owner.
        region = cluster.mmu.directory.find(base)
        assert region.state in (M, I)

    def test_reset_after_max_retries(self):
        injector = MessageLossInjector(make_rng(7), drop_invalidations=1.0)
        cluster = small_cluster()
        cluster.mmu.coherence.fault_injector = injector
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        injector.drop_invalidations = 1.0
        touch(cluster, 1, pid, base, write=True)
        assert cluster.stats.counter("resets") >= 1

    def test_lost_fetches_retransmitted(self):
        injector = MessageLossInjector(make_rng(3), drop_fetches=0.5)
        cluster = small_cluster()
        cluster.mmu.coherence.fault_injector = injector
        pid, base = setup_proc(cluster)
        for i in range(8):
            touch(cluster, 0, pid, base + i * PAGE_SIZE, write=False)
        assert cluster.stats.counter("retransmissions") >= 1
        # Every page still arrived.
        for i in range(8):
            assert cluster.compute_blades[0].cache.peek(base + i * PAGE_SIZE)

    def test_fetch_loss_adds_timeout_latency(self):
        from repro.core.coherence import CoherenceProtocol

        injector = MessageLossInjector(make_rng(3), drop_fetches=1.0)
        cluster = small_cluster()
        cluster.mmu.coherence.fault_injector = injector
        pid, base = setup_proc(cluster)
        t0 = cluster.engine.now
        touch(cluster, 0, pid, base, write=False)
        elapsed = cluster.engine.now - t0
        expected_waits = (
            CoherenceProtocol.MAX_RETRIES + 1
        ) * CoherenceProtocol.ACK_TIMEOUT_US
        assert elapsed > expected_waits

    def test_no_injection_no_retransmissions(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 1, pid, base, write=True)
        assert cluster.stats.counter("retransmissions") == 0
        assert cluster.stats.counter("resets") == 0


class TestInvalidationModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            small_cluster(invalidation_mode="carrier-pigeon")

    def test_unicast_mode_counts_generated_packets(self):
        cluster = small_cluster(
            num_compute=3, invalidation_mode="unicast-cpu"
        )
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 1, pid, base, write=False)
        touch(cluster, 2, pid, base, write=True)  # invalidates 2 sharers
        assert cluster.stats.counter("unicast_invalidations_generated") == 2

    def test_unicast_slower_than_multicast(self):
        def upgrade_latency(mode):
            cluster = small_cluster(num_compute=3, invalidation_mode=mode)
            pid, base = setup_proc(cluster)
            touch(cluster, 0, pid, base, write=False)
            touch(cluster, 1, pid, base, write=False)
            touch(cluster, 2, pid, base, write=True)
            return cluster.stats.mean_latency("fault:S->M")

        assert upgrade_latency("unicast-cpu") > upgrade_latency("multicast") + 10

    def test_multicast_mode_generates_no_cpu_packets(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 1, pid, base, write=True)
        assert cluster.stats.counter("unicast_invalidations_generated") == 0


class TestSwitchMechanics:
    def test_every_fault_recirculates_once(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 1, pid, base, write=False)
        assert cluster.mmu.pipeline.recirculations == 2

    def test_multicast_prunes_non_sharers(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 1, pid, base, write=True)
        mc = cluster.mmu.multicast
        assert mc.delivered == 1
        assert mc.pruned >= 1  # the requester's copy was pruned at egress

    def test_remote_access_counter(self, cluster):
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        touch(cluster, 0, pid, base, write=False)  # hit, no fault
        assert cluster.stats.counter("remote_accesses") == 1


class TestDeprecatedInjectorAliases:
    """MessageLossInjector moved to repro.faults; the old names must keep
    working but warn."""

    def test_coherence_alias_warns_and_resolves(self):
        from repro.core import coherence

        with pytest.warns(DeprecationWarning, match="repro.faults"):
            cls = coherence.FaultInjector
        assert cls is MessageLossInjector
        with pytest.warns(DeprecationWarning, match="repro.faults"):
            cls = coherence.MessageLossInjector
        assert cls is MessageLossInjector

    def test_package_alias_warns_and_resolves(self):
        import repro.core

        with pytest.warns(DeprecationWarning, match="repro.faults"):
            cls = repro.core.FaultInjector
        assert cls is MessageLossInjector

    def test_unknown_attribute_still_raises(self):
        from repro.core import coherence

        with pytest.raises(AttributeError):
            coherence.NoSuchThing
