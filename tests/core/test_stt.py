"""Unit tests for the materialized state-transition tables."""

import pytest

from repro.core.directory import CoherenceState
from repro.core.stt import (
    RequesterRole,
    TransitionAction,
    build_mesi_stt,
    build_msi_stt,
    stt_size,
)
from repro.switchsim.packets import AccessType

I, S, M = CoherenceState.INVALID, CoherenceState.SHARED, CoherenceState.MODIFIED
R, W = AccessType.READ, AccessType.WRITE
NONE, SHARER, OWNER = RequesterRole.NONE, RequesterRole.SHARER, RequesterRole.OWNER


@pytest.fixture
def stt():
    return build_msi_stt()


class TestMsiCompleteness:
    def test_every_reachable_key_present(self, stt):
        """Every (state, access, role) combination the data path can
        produce must have a transition."""
        reachable = [
            (I, R, NONE), (I, W, NONE),
            (S, R, NONE), (S, R, SHARER), (S, W, NONE), (S, W, SHARER),
            (M, R, NONE), (M, R, SHARER), (M, R, OWNER),
            (M, W, NONE), (M, W, SHARER), (M, W, OWNER),
        ]
        for key in reachable:
            assert key in stt, f"missing STT entry for {key}"

    def test_table_is_small(self, stt):
        # Section 8: STT fits easily in a TCAM (tens of entries).
        assert stt_size(stt) < 32


class TestMsiSemantics:
    def test_read_miss_goes_shared(self, stt):
        t = stt[(I, R, NONE)]
        assert t.next_state is S
        assert t.action is TransitionAction.FETCH_ONLY
        assert t.label == "I->S"

    def test_write_miss_goes_modified(self, stt):
        t = stt[(I, W, NONE)]
        assert t.next_state is M
        assert t.action is TransitionAction.FETCH_ONLY

    def test_shared_upgrade_invalidates_in_parallel(self, stt):
        t = stt[(S, W, SHARER)]
        assert t.next_state is M
        assert t.action is TransitionAction.INVALIDATE_PARALLEL

    def test_stealing_modified_region_is_sequential(self, stt):
        for access in (R, W):
            t = stt[(M, access, NONE)]
            assert t.action is TransitionAction.INVALIDATE_OWNER_THEN_FETCH

    def test_owner_downgrades_on_read_steal(self, stt):
        t = stt[(M, R, NONE)]
        assert t.next_state is S
        assert t.owner_downgrades

    def test_owner_does_not_stay_on_write_steal(self, stt):
        t = stt[(M, W, NONE)]
        assert t.next_state is M
        assert not t.owner_downgrades

    def test_owner_capacity_miss_no_invalidation(self, stt):
        for access in (R, W):
            t = stt[(M, access, OWNER)]
            assert t.next_state is M
            assert t.action is TransitionAction.FETCH_ONLY

    def test_shared_read_no_invalidation(self, stt):
        for role in (NONE, SHARER):
            t = stt[(S, R, role)]
            assert t.next_state is S
            assert t.action is TransitionAction.FETCH_ONLY

    def test_invalidating_actions_never_from_invalid(self, stt):
        """From I nothing is cached anywhere, so no transition from I may
        require invalidations."""
        for (state, _a, _r), t in stt.items():
            if state is I:
                assert t.action is TransitionAction.FETCH_ONLY


class TestMesi:
    def test_sole_reader_gets_exclusive(self):
        mesi = build_mesi_stt()
        t = mesi[(I, R, NONE)]
        assert t.next_state is M  # E encoded as clean-Modified
        assert t.action is TransitionAction.FETCH_ONLY
        assert t.label == "I->E"

    def test_rest_matches_msi(self):
        msi, mesi = build_msi_stt(), build_mesi_stt()
        for key in msi:
            if key == (I, R, NONE):
                continue
            assert mesi[key] == msi[key]
