"""Unit tests for the assembled in-network MMU."""

import pytest

from repro.blades.memory import MemoryBlade
from repro.core.mmu import InNetworkMmu, MindConfig
from repro.sim.engine import Engine
from repro.sim.network import Network


def make_mmu(**cfg_kwargs):
    engine = Engine()
    network = Network(engine)
    cfg_kwargs.setdefault("memory_blade_capacity", 1 << 26)
    cfg_kwargs.setdefault("enable_bounded_splitting", False)
    mmu = InNetworkMmu(engine, network, MindConfig(**cfg_kwargs))
    return engine, network, mmu


class TestResourceBudgets:
    def test_default_budgets_match_paper(self):
        cfg = MindConfig()
        assert cfg.directory_capacity == 30_000
        assert cfg.match_action_capacity == 45_000
        assert cfg.epoch_us == 100_000.0
        assert cfg.initial_region_size == 16 * 1024

    def test_rule_budget_split(self):
        _e, _n, mmu = make_mmu(match_action_capacity=1000, protection_share=0.25)
        assert mmu.protection_tcam.capacity == 250
        assert mmu.translation_tcam.capacity == 750

    def test_directory_sram_sized(self):
        _e, _n, mmu = make_mmu(directory_capacity=123)
        assert mmu.directory_sram.capacity == 123


class TestProtocolSelection:
    @pytest.mark.parametrize(
        "protocol,label",
        [("msi", "I->S"), ("mesi", "I->E"), ("moesi", "I->E")],
    )
    def test_stt_matches_protocol(self, protocol, label):
        from repro.core.directory import CoherenceState
        from repro.core.stt import RequesterRole
        from repro.switchsim.packets import AccessType

        _e, _n, mmu = make_mmu(protocol=protocol)
        key = (CoherenceState.INVALID, AccessType.READ, RequesterRole.NONE)
        assert mmu.coherence.stt[key].label == label

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            make_mmu(protocol="dragonfly")


class TestMembership:
    def test_add_memory_blade_installs_everything(self):
        engine, network, mmu = make_mmu()
        blade = MemoryBlade(7, network, 1 << 26, store_data=False)
        mmu.add_memory_blade(blade)
        assert blade.registered
        assert mmu.address_space.translate(0).blade_id == 7
        assert 7 in mmu.allocator.blade_ids
        assert mmu.match_action_rules()["translation"] == 1

    def test_match_action_rules_accounting(self):
        engine, network, mmu = make_mmu()
        blade = MemoryBlade(0, network, 1 << 26, store_data=False)
        mmu.add_memory_blade(blade)
        task = mmu.controller.sys_exec("p")
        mmu.controller.sys_mmap(task.pid, 4096)
        rules = mmu.match_action_rules()
        assert rules["translation"] == 1
        assert rules["protection"] == 1
        assert rules["total"] == 2

    def test_bounded_splitting_lifecycle(self):
        engine, network, mmu = make_mmu(enable_bounded_splitting=True)
        mmu.start()
        mmu.start()  # idempotent
        engine.run(until=250_000)
        assert mmu.splitter.epochs_run == 2  # default 100 ms epochs

    def test_migration_manager_wired(self):
        _e, _n, mmu = make_mmu()
        assert mmu.migration.coherence is mmu.coherence
        assert mmu.controller._migration_manager is mmu.migration
