"""Unit and property tests for first-fit and global (balanced) allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import (
    FirstFitAllocator,
    GlobalAllocator,
    OutOfMemoryError,
)
from repro.sim.network import PAGE_SIZE


class TestFirstFit:
    def test_allocates_from_start(self):
        alloc = FirstFitAllocator(0, 0x10000)
        assert alloc.allocate(0x1000, alignment=0x1000) == 0
        assert alloc.allocate(0x1000, alignment=0x1000) == 0x1000

    def test_alignment_respected(self):
        alloc = FirstFitAllocator(0, 0x10000)
        alloc.allocate(0x100, alignment=0x100)
        base = alloc.allocate(0x1000, alignment=0x1000)
        assert base % 0x1000 == 0

    def test_first_fit_reuses_earliest_hole(self):
        alloc = FirstFitAllocator(0, 0x10000)
        a = alloc.allocate(0x1000, alignment=0x1000)
        b = alloc.allocate(0x1000, alignment=0x1000)
        alloc.allocate(0x1000, alignment=0x1000)
        alloc.free(a)
        alloc.free(b)
        # Freeing a then b coalesces; next fit lands at the start again.
        assert alloc.allocate(0x2000, alignment=0x1000) == a

    def test_free_coalesces_adjacent_holes(self):
        alloc = FirstFitAllocator(0, 0x4000)
        a = alloc.allocate(0x1000, alignment=0x1000)
        b = alloc.allocate(0x1000, alignment=0x1000)
        c = alloc.allocate(0x1000, alignment=0x1000)
        alloc.free(a)
        alloc.free(c)
        alloc.free(b)  # middle free merges all three
        assert len(alloc.holes()) <= 2
        assert alloc.largest_hole == 0x4000

    def test_out_of_memory(self):
        alloc = FirstFitAllocator(0, 0x1000)
        alloc.allocate(0x1000, alignment=0x1000)
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(0x1000, alignment=0x1000)

    def test_fragmentation_blocks_large_alloc(self):
        alloc = FirstFitAllocator(0, 0x4000)
        blocks = [alloc.allocate(0x1000, alignment=0x1000) for _ in range(4)]
        alloc.free(blocks[0])
        alloc.free(blocks[2])
        # 0x2000 free total, but no contiguous 0x2000 hole.
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(0x2000, alignment=0x1000)

    def test_free_unknown_base_rejected(self):
        with pytest.raises(KeyError):
            FirstFitAllocator(0, 0x1000).free(0x0)

    def test_accounting(self):
        alloc = FirstFitAllocator(0, 0x4000)
        alloc.allocate(0x1000, alignment=0x1000)
        assert alloc.allocated_bytes == 0x1000
        assert alloc.free_bytes == 0x3000

    def test_allocate_at_exact_range(self):
        alloc = FirstFitAllocator(0, 0x10000)
        assert alloc.allocate_at(0x4000, 0x2000) == 0x4000
        # The claimed range is no longer available.
        with pytest.raises(OutOfMemoryError):
            alloc.allocate_at(0x5000, 0x1000)

    def test_allocate_at_splits_hole(self):
        alloc = FirstFitAllocator(0, 0x10000)
        alloc.allocate_at(0x4000, 0x1000)
        assert alloc.allocate(0x4000, alignment=0x1000) == 0

    def test_invalid_arguments(self):
        alloc = FirstFitAllocator(0, 0x1000)
        with pytest.raises(ValueError):
            alloc.allocate(0, alignment=0x1000)
        with pytest.raises(ValueError):
            alloc.allocate(0x100, alignment=3)

    @given(
        ops=st.lists(
            st.tuples(st.integers(min_value=1, max_value=64), st.booleans()),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100)
    def test_property_no_overlap_and_conservation(self, ops):
        """Random alloc/free churn: allocations never overlap and
        allocated + free bytes always equals the arena size."""
        arena = 1 << 20
        alloc = FirstFitAllocator(0, arena)
        live = {}
        for size_pages, do_free in ops:
            if do_free and live:
                base = next(iter(live))
                alloc.free(base)
                del live[base]
            else:
                size = size_pages * PAGE_SIZE
                try:
                    base = alloc.allocate(size, alignment=PAGE_SIZE)
                except OutOfMemoryError:
                    continue
                for other_base, other_size in live.items():
                    assert base + size <= other_base or other_base + other_size <= base
                live[base] = size
            assert alloc.allocated_bytes + alloc.free_bytes == arena


class TestGlobalAllocator:
    def _make(self, blades=4, capacity=1 << 20):
        galloc = GlobalAllocator()
        for i in range(blades):
            galloc.add_blade(i, va_base=i * capacity, size=capacity)
        return galloc

    def test_least_loaded_blade_selected(self):
        galloc = self._make()
        seen = [galloc.allocate(PAGE_SIZE).blade_id for _ in range(4)]
        assert sorted(seen) == [0, 1, 2, 3]

    def test_rounds_to_pow2_page_minimum(self):
        galloc = self._make()
        placement = galloc.allocate(100)
        assert placement.length == PAGE_SIZE
        placement = galloc.allocate(PAGE_SIZE + 1)
        assert placement.length == 2 * PAGE_SIZE

    def test_va_within_blade_range(self):
        galloc = self._make(capacity=1 << 20)
        placement = galloc.allocate(PAGE_SIZE)
        base = placement.blade_id * (1 << 20)
        assert base <= placement.va_base < base + (1 << 20)

    def test_balanced_after_many_allocations(self):
        galloc = self._make()
        for _ in range(100):
            galloc.allocate(PAGE_SIZE)
        assert galloc.jain_fairness() > 0.99

    def test_jain_fairness_skewed(self):
        galloc = self._make(blades=2)
        galloc.blade(0).allocate(PAGE_SIZE, alignment=PAGE_SIZE)
        assert galloc.jain_fairness() == pytest.approx(0.5)

    def test_jain_fairness_empty_is_one(self):
        assert self._make().jain_fairness() == 1.0

    def test_spills_to_other_blade_when_full(self):
        galloc = self._make(blades=2, capacity=1 << 13)  # two pages each
        placements = [galloc.allocate(PAGE_SIZE) for _ in range(4)]
        assert sorted(p.blade_id for p in placements) == [0, 0, 1, 1]
        with pytest.raises(OutOfMemoryError):
            galloc.allocate(PAGE_SIZE)

    def test_free_returns_capacity(self):
        galloc = self._make(blades=1, capacity=1 << 13)
        p = galloc.allocate(PAGE_SIZE)
        galloc.allocate(PAGE_SIZE)
        galloc.free(p.blade_id, p.va_base)
        galloc.allocate(PAGE_SIZE)  # must not raise

    def test_remove_blade_requires_empty(self):
        galloc = self._make(blades=2)
        p = galloc.allocate(PAGE_SIZE)
        with pytest.raises(RuntimeError):
            galloc.remove_blade(p.blade_id)
        galloc.free(p.blade_id, p.va_base)
        galloc.remove_blade(p.blade_id)
        assert p.blade_id not in galloc.blade_ids

    def test_duplicate_blade_rejected(self):
        galloc = self._make(blades=1)
        with pytest.raises(ValueError):
            galloc.add_blade(0, va_base=0, size=1 << 20)

    def test_no_blades(self):
        with pytest.raises(OutOfMemoryError):
            GlobalAllocator().allocate(PAGE_SIZE)
