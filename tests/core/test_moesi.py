"""Behavioural tests for the MOESI extension (Section 8, implemented).

The point of MOESI over MSI: a read stealing a Modified region leaves the
dirty data at its owner (state Owned), is served cache-to-cache in one
network phase, and avoids the memory write-back entirely.
"""

import pytest

from repro.core.directory import CoherenceState
from repro.core.stt import (
    RequesterRole,
    TransitionAction,
    build_moesi_stt,
    stt_size,
)
from repro.switchsim.packets import AccessType

from conftest import small_cluster

I, S, M, O = (
    CoherenceState.INVALID,
    CoherenceState.SHARED,
    CoherenceState.MODIFIED,
    CoherenceState.OWNED,
)
R, W = AccessType.READ, AccessType.WRITE
NONE, SHARER, OWNER = RequesterRole.NONE, RequesterRole.SHARER, RequesterRole.OWNER


def moesi_cluster(num_compute=3):
    return small_cluster(num_compute=num_compute, cache_pages=256, protocol="moesi")


def setup_proc(cluster, length=1 << 16):
    ctl = cluster.controller
    task = ctl.sys_exec("t")
    return task.pid, ctl.sys_mmap(task.pid, length)


def touch(cluster, blade_idx, pid, va, write):
    blade = cluster.compute_blades[blade_idx]
    return cluster.run_process(blade.ensure_page(pid, va, write))


class TestSttTable:
    def test_still_small(self):
        assert stt_size(build_moesi_stt()) < 40  # "tens of states" (Sec 8)

    def test_read_steal_keeps_owner(self):
        stt = build_moesi_stt()
        t = stt[(M, R, NONE)]
        assert t.next_state is O
        assert t.action is TransitionAction.FETCH_FROM_OWNER

    def test_owner_upgrade_is_local(self):
        stt = build_moesi_stt()
        t = stt[(O, W, OWNER)]
        assert t.next_state is M
        assert t.action is TransitionAction.LOCAL_UPGRADE

    def test_write_steal_still_two_phase(self):
        stt = build_moesi_stt()
        t = stt[(O, W, NONE)]
        assert t.action is TransitionAction.INVALIDATE_OWNER_THEN_FETCH


class TestProtocolBehaviour:
    def test_read_steal_enters_owned(self):
        cluster = moesi_cluster()
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 1, pid, base, write=False)
        region = cluster.mmu.directory.find(base)
        assert region.state is O
        assert region.owner == cluster.compute_blades[0].port.port_id
        assert len(region.sharers) == 2

    def test_owner_keeps_dirty_data_unflushed(self):
        cluster = moesi_cluster()
        pid, base = setup_proc(cluster)
        b0 = cluster.compute_blades[0]
        cluster.run_process(b0.store_bytes(pid, base, b"dirty"))
        touch(cluster, 1, pid, base, write=False)  # M->O
        page = b0.cache.peek(base)
        assert page is not None and page.dirty and not page.writable
        assert cluster.stats.counter("flushed_pages") == 0
        assert cluster.stats.counter("cache_to_cache_transfers") == 1

    def test_reader_sees_owner_bytes(self):
        cluster = moesi_cluster()
        pid, base = setup_proc(cluster)
        b0, b1, b2 = cluster.compute_blades
        cluster.run_process(b0.store_bytes(pid, base, b"owner-bytes"))
        got = cluster.run_process(b1.load_bytes(pid, base, 11))
        assert got == b"owner-bytes"
        got2 = cluster.run_process(b2.load_bytes(pid, base, 11))
        assert got2 == b"owner-bytes"
        assert cluster.stats.counter("cache_to_cache_transfers") == 2

    def test_owner_local_upgrade_invalidates_readers(self):
        cluster = moesi_cluster()
        pid, base = setup_proc(cluster)
        b0, b1, _b2 = cluster.compute_blades
        cluster.run_process(b0.store_bytes(pid, base, b"v1"))
        touch(cluster, 1, pid, base, write=False)  # M->O, b1 reads
        cluster.run_process(b0.store_bytes(pid, base, b"v2"))  # O->M local
        region = cluster.mmu.directory.find(base)
        assert region.state is M
        assert region.owner == b0.port.port_id
        assert b1.cache.peek(base) is None
        # And the new value is visible everywhere.
        assert cluster.run_process(b1.load_bytes(pid, base, 2)) == b"v2"

    def test_write_steal_from_owned(self):
        cluster = moesi_cluster()
        pid, base = setup_proc(cluster)
        b0, b1, b2 = cluster.compute_blades
        cluster.run_process(b0.store_bytes(pid, base, b"old"))
        touch(cluster, 1, pid, base, write=False)  # M->O
        cluster.run_process(b2.store_bytes(pid, base, b"new"))  # O->M steal
        region = cluster.mmu.directory.find(base)
        assert region.state is M and region.owner == b2.port.port_id
        assert b0.cache.peek(base) is None  # old owner dropped + flushed
        assert cluster.run_process(b0.load_bytes(pid, base, 3)) == b"new"

    def test_owner_eviction_falls_back_to_memory(self):
        cluster = moesi_cluster()
        pid, base = setup_proc(cluster, length=1 << 21)
        b0, b1, _b2 = cluster.compute_blades
        cluster.run_process(b0.store_bytes(pid, base, b"evictme"))
        touch(cluster, 1, pid, base, write=False)  # M->O, dirty at b0
        # Thrash b0's cache so the dirty Owned page is evicted (flushes).
        from repro.sim.network import PAGE_SIZE

        for i in range(1, b0.cache.capacity_pages + 4):
            cluster.run_process(b0.ensure_page(pid, base + i * PAGE_SIZE, False))
        assert b0.cache.peek(base) is None
        # A new reader must still get the right bytes (from memory now).
        got = cluster.run_process(
            cluster.compute_blades[2].load_bytes(pid, base, 7)
        )
        assert got == b"evictme"

    def test_moesi_read_steal_faster_than_msi(self):
        """The headline: M->O beats MSI's M->S latency."""
        moesi = moesi_cluster()
        pid_o, base_o = setup_proc(moesi)
        touch(moesi, 0, pid_o, base_o, write=True)
        touch(moesi, 1, pid_o, base_o, write=False)
        msi = small_cluster(num_compute=3, cache_pages=256)
        pid_m, base_m = setup_proc(msi)
        touch(msi, 0, pid_m, base_m, write=True)
        touch(msi, 1, pid_m, base_m, write=False)
        m_to_o = moesi.stats.mean_latency("fault:M->O")
        m_to_s = msi.stats.mean_latency("fault:M->S")
        assert m_to_o < 0.9 * m_to_s

    def test_i_to_e_like_mesi(self):
        cluster = moesi_cluster()
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=False)
        region = cluster.mmu.directory.find(base)
        assert region.state is M  # E encoded as clean-exclusive M


class TestMoesiUnderMessageLoss:
    """FETCH_FROM_OWNER and LOCAL_UPGRADE with injected protocol drops:
    the retry must fold idempotently -- exactly one state transition and
    one cache-to-cache transfer, never a double-apply."""

    @staticmethod
    def lossy_moesi(seed, **loss):
        from repro.cluster import ClusterConfig, MindCluster
        from repro.core.mmu import MindConfig
        from repro.faults import MessageLossInjector
        from repro.sim.rng import make_rng

        mind = MindConfig(
            directory_capacity=256,
            enable_bounded_splitting=False,
            protocol="moesi",
        )
        injector = MessageLossInjector(make_rng(seed), **loss)
        cluster = MindCluster(
            ClusterConfig(
                num_compute_blades=3, cache_capacity_pages=256, mind=mind
            ),
            fault_injector=injector,
        )
        return cluster, injector

    def test_fetch_from_owner_retries_fold_idempotently(self):
        cluster, injector = self.lossy_moesi(2, drop_invalidations=0.5)
        pid, base = setup_proc(cluster)
        cluster.run_process(
            cluster.compute_blades[0].store_bytes(pid, base, b"dirty")
        )
        touch(cluster, 1, pid, base, write=False)  # M->O under loss
        assert injector.dropped > 0
        assert cluster.stats.counter("retransmissions") > 0
        region = cluster.mmu.directory.find(base)
        b0, b1 = cluster.compute_blades[0], cluster.compute_blades[1]
        # Exactly one transition: M->O once, owner keeps the dirty line.
        assert region.state is O
        assert region.owner == b0.port.port_id
        assert b1.port.port_id in region.sharers
        assert cluster.stats.counter("cache_to_cache_transfers") == 1
        assert len(cluster.stats.latencies["fault:M->O"]) == 1
        # The reader got the owner's bytes despite the drops.
        got = cluster.run_process(b1.load_bytes(pid, base, 5))
        assert got == b"dirty"

    def test_fetch_from_owner_survives_dropped_acks(self):
        cluster, injector = self.lossy_moesi(2, drop_acks=0.5)
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 1, pid, base, write=False)
        assert cluster.stats.counter("retransmissions") > 0
        region = cluster.mmu.directory.find(base)
        assert region.state is O
        assert cluster.stats.counter("cache_to_cache_transfers") == 1

    def test_local_upgrade_retries_fold_idempotently(self):
        cluster, injector = self.lossy_moesi(2, drop_invalidations=0.5)
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)  # M at b0
        touch(cluster, 1, pid, base, write=False)  # M->O, b1 shares
        dropped_before = injector.dropped
        retrans_before = cluster.stats.counter("retransmissions")
        touch(cluster, 0, pid, base, write=True)  # O->M local upgrade
        assert injector.dropped > dropped_before
        assert cluster.stats.counter("retransmissions") > retrans_before
        region = cluster.mmu.directory.find(base)
        b0, b1 = cluster.compute_blades[0], cluster.compute_blades[1]
        # Exactly one upgrade: owner unchanged, sharer set emptied once.
        assert region.state is M
        assert region.owner == b0.port.port_id
        assert region.sharers == {b0.port.port_id}
        assert len(cluster.stats.latencies["fault:O->M"]) == 1
        # The sharer's copy is gone -- the duplicate delivery did not
        # resurrect or double-drop it.
        assert b1.cache.peek(base) is None

    def test_local_upgrade_no_double_transition_on_dropped_ack(self):
        cluster, injector = self.lossy_moesi(2, drop_acks=0.5)
        pid, base = setup_proc(cluster)
        touch(cluster, 0, pid, base, write=True)
        touch(cluster, 1, pid, base, write=False)
        touch(cluster, 0, pid, base, write=True)
        region = cluster.mmu.directory.find(base)
        assert region.state is M
        assert len(cluster.stats.latencies["fault:O->M"]) == 1
        assert cluster.stats.counter("resets") == 0
