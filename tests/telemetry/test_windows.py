"""MetricsTimeline: tumbling windows, phase attribution, serialization."""

import pytest

from repro.telemetry import MetricsTimeline
from repro.telemetry.windows import TIMELINE_SCHEMA


def loaded_timeline():
    tl = MetricsTimeline(window_us=100.0)
    tl.record_latency(10.0, "fault", 5.0)
    tl.record_latency(50.0, "fault", 7.0)
    tl.record_latency(250.0, "fault", 50.0)
    tl.incr(10.0, "requests")
    tl.incr(90.0, "requests", 2.0)
    tl.gauge(20.0, "depth", 3.0)
    tl.gauge(80.0, "depth", 9.0)
    tl.finalize(400.0)
    return tl


class TestWindowing:
    def test_window_assignment(self):
        tl = loaded_timeline()
        snaps = tl.snapshots()
        assert tl.num_windows == 5
        assert [s.index for s in snaps] == [0, 1, 2, 3, 4]
        assert snaps[0].latencies["fault"]["count"] == 2.0
        assert snaps[2].latencies["fault"]["count"] == 1.0

    def test_empty_windows_are_enumerated(self):
        # Window 1 saw nothing; it still appears (an outage window with
        # zero completions is the measurement, not missing data).
        snaps = loaded_timeline().snapshots()
        assert snaps[1].latencies == {}
        assert snaps[1].counters == {}
        assert snaps[4].latencies == {}

    def test_counters_are_per_window_deltas(self):
        snaps = loaded_timeline().snapshots()
        assert snaps[0].counters["requests"] == 3.0
        assert "requests" not in snaps[2].counters

    def test_gauges_keep_last_value_in_window(self):
        snaps = loaded_timeline().snapshots()
        assert snaps[0].gauges["depth"] == 9.0

    def test_window_stats_shape(self):
        stats = loaded_timeline().snapshots()[0].latencies["fault"]
        assert sorted(stats) == ["count", "max", "mean", "p50", "p99", "p999"]
        assert stats["max"] == 7.0
        assert stats["mean"] == pytest.approx(6.0)

    def test_series(self):
        tl = loaded_timeline()
        counts = tl.series("fault", "count")
        assert counts == [2.0, 0.0, 1.0, 0.0, 0.0]
        maxes = tl.series("fault", "max")
        assert maxes[0] == 7.0
        assert maxes[2] == 50.0
        assert len(tl.series("fault", "p999")) == tl.num_windows

    def test_empty_timeline(self):
        tl = MetricsTimeline()
        assert tl.num_windows == 0
        assert tl.snapshots() == []

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            MetricsTimeline(window_us=0.0)


class TestPhases:
    def timeline_with_phases(self):
        tl = MetricsTimeline(window_us=100.0)
        tl.set_phase(0.0, "pre")
        tl.set_phase(150.0, "degraded")
        tl.set_phase(350.0, "post")
        tl.finalize(500.0)
        return tl

    def test_phase_at(self):
        tl = self.timeline_with_phases()
        assert tl.phase_at(0.0) == "pre"
        assert tl.phase_at(149.0) == "pre"
        assert tl.phase_at(150.0) == "degraded"
        assert tl.phase_at(400.0) == "post"

    def test_windows_carry_their_start_phase(self):
        phases = [s.phase for s in self.timeline_with_phases().snapshots()]
        assert phases == ["pre", "pre", "degraded", "degraded", "post", "post"]

    def test_consecutive_identical_phases_dedup(self):
        tl = MetricsTimeline()
        tl.set_phase(0.0, "pre")
        tl.set_phase(10.0, "pre")
        assert tl.phases == [(0.0, "pre")]

    def test_marks_are_kept_in_order(self):
        tl = MetricsTimeline()
        tl.mark(5.0, "crash")
        tl.mark(9.0, "recovered")
        assert tl.marks == [(5.0, "crash"), (9.0, "recovered")]


class TestMerge:
    def test_merge_combines_everything(self):
        a = MetricsTimeline(window_us=100.0)
        a.record_latency(10.0, "fault", 5.0)
        a.incr(10.0, "n")
        b = MetricsTimeline(window_us=100.0)
        b.record_latency(20.0, "fault", 7.0)
        b.record_latency(250.0, "openloop:latency", 30.0)
        b.incr(10.0, "n", 2.0)
        b.gauge(10.0, "g", 1.0)
        a.merge(b)
        snaps = a.snapshots()
        assert snaps[0].latencies["fault"]["count"] == 2.0
        assert snaps[0].counters["n"] == 3.0
        assert snaps[0].gauges["g"] == 1.0
        assert a.categories() == ["fault", "openloop:latency"]
        assert a.num_windows == 3

    def test_merge_window_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MetricsTimeline(window_us=100.0).merge(MetricsTimeline(window_us=50.0))


class TestSerialization:
    def test_document_shape(self):
        doc = loaded_timeline().to_json()
        assert doc["schema"] == TIMELINE_SCHEMA
        assert doc["window_us"] == 100.0
        assert doc["num_windows"] == 5
        assert len(doc["windows"]) == 5
        assert doc["windows"][0]["latencies"]["fault"]["count"] == 2.0
        # Empty sections are omitted, not serialized as {}.
        assert "latencies" not in doc["windows"][1]

    def test_document_is_deterministic(self):
        import json

        a = json.dumps(loaded_timeline().to_json(), sort_keys=True)
        b = json.dumps(loaded_timeline().to_json(), sort_keys=True)
        assert a == b
