"""SLO evaluation: compliance, burn rates, phase attribution."""

import pytest

from repro.telemetry import (
    DEFAULT_OBJECTIVES,
    MetricsTimeline,
    SloObjective,
    evaluate_slos,
)


def objective(threshold=10.0, target=0.9, percentile=99.0):
    return SloObjective("t", "fault", percentile, threshold, target=target)


def timeline(samples, window_us=100.0):
    """samples: list of (t, latency_us)."""
    tl = MetricsTimeline(window_us=window_us)
    for t, v in samples:
        tl.record_latency(t, "fault", v)
    return tl


class TestObjectiveValidation:
    def test_bad_percentile(self):
        with pytest.raises(ValueError):
            SloObjective("x", "fault", 95.0, 10.0)

    def test_bad_target(self):
        with pytest.raises(ValueError):
            SloObjective("x", "fault", 99.0, 10.0, target=0.0)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            SloObjective("x", "fault", 99.0, 0.0)

    def test_stat_keys(self):
        assert SloObjective("x", "c", 99.9, 1.0).stat_key == "p999"
        assert SloObjective("x", "c", 100.0, 1.0).stat_key == "max"

    def test_defaults_cover_fault_and_openloop(self):
        categories = {o.category for o in DEFAULT_OBJECTIVES}
        assert categories == {"fault", "openloop:latency"}


class TestEvaluation:
    def test_all_windows_compliant(self):
        tl = timeline([(10.0, 5.0), (150.0, 8.0)])
        (result,) = evaluate_slos(tl, [objective()]).results
        assert result.windows_evaluated == 2
        assert result.windows_violating == 0
        assert result.compliance == 1.0
        assert result.burn_rate == 0.0
        assert result.met

    def test_violating_window_detected(self):
        tl = timeline([(10.0, 5.0), (150.0, 50.0)])
        (result,) = evaluate_slos(tl, [objective()]).results
        assert result.windows_violating == 1
        assert result.violations == [1]
        assert result.compliance == 0.5
        # 50% violating over a 10% budget: burning 5x.
        assert result.burn_rate == pytest.approx(5.0)
        assert not result.met

    def test_empty_windows_not_evaluated(self):
        # A gap of idle windows neither meets nor misses the target.
        tl = timeline([(10.0, 5.0), (950.0, 5.0)])
        (result,) = evaluate_slos(tl, [objective()]).results
        assert result.windows_evaluated == 2

    def test_unknown_category_skipped(self):
        tl = timeline([(10.0, 5.0)])
        missing = SloObjective("nope", "openloop:latency", 99.0, 1.0)
        report = evaluate_slos(tl, [objective(), missing])
        assert [r.objective.name for r in report.results] == ["t"]

    def test_zero_budget_burn_is_infinite_when_violated(self):
        tl = timeline([(10.0, 50.0)])
        (result,) = evaluate_slos(tl, [objective(target=1.0)]).results
        assert result.burn_rate == float("inf")

    def test_phase_attribution(self):
        # A window is attributed to the phase active at its start: the
        # degraded phase begins exactly at window 1's boundary, so both
        # violating windows land in it.
        tl = timeline([(10.0, 5.0), (150.0, 50.0), (250.0, 60.0)])
        tl.set_phase(0.0, "pre")
        tl.set_phase(100.0, "degraded")
        (result,) = evaluate_slos(tl, [objective()]).results
        assert result.violations_by_phase == {"degraded": 2}

    def test_report_met_and_render(self):
        tl = timeline([(10.0, 5.0), (150.0, 50.0)])
        report = evaluate_slos(tl, [objective()])
        assert not report.met
        text = "\n".join(report.render())
        assert "MISSED" in text
        assert "burn" in text

    def test_report_json_shape(self):
        tl = timeline([(10.0, 5.0)])
        doc = evaluate_slos(tl, [objective()]).to_json()
        assert doc["met"] is True
        (obj,) = doc["objectives"]
        assert obj["name"] == "t"
        assert obj["compliance"] == 1.0
        assert obj["violations"] == []
