"""LogHistogram: constant-memory percentiles with bounded relative error."""

import math
import random

import pytest

from repro.telemetry import LogHistogram
from repro.telemetry.histogram import BUCKETS_PER_DECADE, MIN_TRACKABLE_US


class TestRecording:
    def test_empty(self):
        h = LogHistogram()
        assert h.count == 0
        assert h.percentiles((50.0, 99.0)) == [0.0, 0.0]
        assert h.mean == 0.0

    def test_single_value_is_exact(self):
        h = LogHistogram()
        h.record(42.5)
        assert h.percentiles((50.0, 99.0, 99.9)) == [42.5, 42.5, 42.5]
        assert h.min == 42.5
        assert h.max == 42.5

    def test_min_max_sum_are_exact(self):
        h = LogHistogram()
        values = [3.7, 120.0, 0.9, 55.5]
        for v in values:
            h.record(v)
        assert h.min == min(values)
        assert h.max == max(values)
        assert h.sum == pytest.approx(sum(values))
        assert h.count == len(values)

    def test_sub_resolution_values_share_bucket_zero(self):
        h = LogHistogram()
        h.record(0.0)
        h.record(MIN_TRACKABLE_US / 10)
        assert h.count == 2
        assert list(h.counts) == [0]
        assert h.percentile(50.0) == 0.0  # rank 1 reports the exact min
        assert h.percentile(100.0) == MIN_TRACKABLE_US / 10

    def test_weighted_record(self):
        h = LogHistogram()
        h.record(10.0, count=5)
        assert h.count == 5
        assert h.sum == pytest.approx(50.0)

    def test_memory_is_bounded_by_range_not_samples(self):
        h = LogHistogram()
        rng = random.Random(1)
        for _ in range(50_000):
            h.record(rng.uniform(1.0, 1_000.0))  # three decades
        assert len(h.counts) <= 3 * BUCKETS_PER_DECADE + 2

    def test_out_of_range_percentile_rejected(self):
        h = LogHistogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentiles((101.0,))


class TestPercentileAccuracy:
    def test_relative_error_bound(self):
        # ~2.6 % worst-case relative error at 90 buckets/decade; exact
        # min/max clamping makes the extremes better than the bound.
        rng = random.Random(7)
        values = [rng.lognormvariate(3.0, 1.5) for _ in range(20_000)]
        h = LogHistogram()
        for v in values:
            h.record(v)
        ordered = sorted(values)
        bound = 10 ** (1 / BUCKETS_PER_DECADE) - 1  # one bucket's width
        for q in (50.0, 90.0, 99.0, 99.9):
            rank = min(len(ordered), max(1, math.ceil(q / 100 * len(ordered))))
            exact = ordered[rank - 1]
            (approx,) = h.percentiles((q,))
            assert abs(approx - exact) / exact <= bound + 1e-9

    def test_p100_is_exact_max(self):
        h = LogHistogram()
        for v in (1.0, 10.0, 321.5):
            h.record(v)
        assert h.percentile(100.0) == 321.5

    def test_p0_is_exact_min(self):
        h = LogHistogram()
        for v in (1.25, 10.0, 321.5):
            h.record(v)
        assert h.percentile(0.0) == 1.25

    def test_batch_query_matches_individual_queries(self):
        h = LogHistogram()
        for v in range(1, 500):
            h.record(float(v))
        qs = (99.9, 50.0, 99.0)  # deliberately unsorted
        batch = h.percentiles(qs)
        assert batch == [h.percentile(q) for q in qs]


class TestMerge:
    def test_merge_equals_combined_recording(self):
        a, b, both = LogHistogram(), LogHistogram(), LogHistogram()
        for v in (1.0, 5.0, 9.0):
            a.record(v)
            both.record(v)
        for v in (2.0, 100.0):
            b.record(v)
            both.record(v)
        a.merge(b)
        assert a.count == both.count
        assert a.min == both.min
        assert a.max == both.max
        assert a.counts == both.counts
        assert a.percentiles((50.0, 99.0)) == both.percentiles((50.0, 99.0))

    def test_merge_resolution_mismatch_rejected(self):
        a = LogHistogram()
        b = LogHistogram(buckets_per_decade=10)
        b.record(1.0)
        with pytest.raises(ValueError):
            a.merge(b)


class TestSerialization:
    def test_json_roundtrip(self):
        h = LogHistogram()
        for v in (0.5, 3.0, 3.1, 250.0):
            h.record(v)
        clone = LogHistogram.from_json(h.to_json())
        assert clone.counts == h.counts
        assert clone.min == h.min
        assert clone.max == h.max
        assert clone.sum == h.sum
        assert clone.percentiles((50.0, 99.9)) == h.percentiles((50.0, 99.9))

    def test_empty_roundtrip(self):
        clone = LogHistogram.from_json(LogHistogram().to_json())
        assert clone.count == 0
        assert clone.percentiles((99.0,)) == [0.0]

    def test_buckets_serialized_sorted(self):
        h = LogHistogram()
        for v in (100.0, 1.0, 10.0):
            h.record(v)
        indices = [idx for idx, _ in h.to_json()["buckets"]]
        assert indices == sorted(indices)
