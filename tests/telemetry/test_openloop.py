"""Open-loop arrivals: determinism, schedule shape, end-to-end runs."""

import pytest

from repro.runner import RunnerConfig, run_system
from repro.workloads import UniformSharingWorkload
from repro.workloads.openloop import (
    ArrivalSpec,
    arrival_times,
    thread_arrival_seed,
)


class TestArrivalSpec:
    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(process="bursty")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(rate_per_us=0.0)

    def test_bad_amplitude_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(amplitude=1.0)


class TestArrivalTimes:
    def test_pure_function_of_inputs(self):
        spec = ArrivalSpec(rate_per_us=0.01)
        a = arrival_times(spec, 200, seed=5)
        b = arrival_times(spec, 200, seed=5)
        assert a.tolist() == b.tolist()
        assert arrival_times(spec, 200, seed=6).tolist() != a.tolist()

    def test_ascending_and_sized(self):
        for process in ("poisson", "diurnal"):
            spec = ArrivalSpec(process=process, rate_per_us=0.02)
            times = arrival_times(spec, 500, seed=1)
            assert len(times) == 500
            assert all(b > a for a, b in zip(times, list(times)[1:]))

    def test_poisson_mean_rate(self):
        spec = ArrivalSpec(rate_per_us=0.02)
        times = arrival_times(spec, 5_000, seed=2)
        observed = len(times) / times[-1]
        assert observed == pytest.approx(0.02, rel=0.1)

    def test_diurnal_rate_oscillates(self):
        # sin is positive over the first half of each period, so with a
        # strong amplitude far more arrivals land there than in the
        # second half -- equal time, unequal counts.
        period = 10_000.0
        spec = ArrivalSpec(
            process="diurnal", rate_per_us=0.05, period_us=period,
            amplitude=0.9,
        )
        times = arrival_times(spec, 2_000, seed=3).tolist()
        in_peak = sum(1 for t in times if (t % period) < period / 2)
        in_trough = len(times) - in_peak
        assert in_peak > 1.3 * in_trough

    def test_zero_requests(self):
        assert len(arrival_times(ArrivalSpec(), 0, seed=1)) == 0

    def test_thread_seed_is_stable_and_distinct(self):
        assert thread_arrival_seed("tf", 1, 0) == thread_arrival_seed("tf", 1, 0)
        assert thread_arrival_seed("tf", 1, 0) != thread_arrival_seed("tf", 1, 1)
        assert thread_arrival_seed("tf", 1, 0) != thread_arrival_seed("tf", 2, 0)


def open_loop_result(process="poisson", **overrides):
    workload = UniformSharingWorkload(4, accesses_per_thread=400, seed=3)
    kwargs = dict(
        telemetry=True,
        arrival_process=process,
        arrival_rate_per_thread=0.01,
        request_size=8,
    )
    kwargs.update(overrides)
    return run_system("mind", workload, 2, RunnerConfig(**kwargs))


class TestOpenLoopRuns:
    def test_all_requests_complete(self):
        result = open_loop_result()
        # 400 accesses / 8 per request = 50 requests per thread.
        assert result.stats.counter("openloop_arrivals") == 200
        assert result.stats.counter("openloop_completions") == 200
        assert result.total_accesses == 1_600

    def test_queue_service_latency_decomposition(self):
        stats = open_loop_result().stats
        queue = stats.latency_summary("openloop:queue")
        service = stats.latency_summary("openloop:service")
        latency = stats.latency_summary("openloop:latency")
        assert latency.count == queue.count == service.count == 200
        assert latency.mean == pytest.approx(queue.mean + service.mean)
        assert latency.max >= service.max

    def test_runtime_tracks_arrival_schedule_not_service(self):
        # Open loop: the last arrival bounds the runtime from below even
        # though the closed-loop replay would finish much earlier.
        closed = run_system(
            "mind",
            UniformSharingWorkload(4, accesses_per_thread=400, seed=3),
            2,
            RunnerConfig(),
        )
        slow = open_loop_result(arrival_rate_per_thread=0.002)
        assert slow.runtime_us > 2 * closed.runtime_us

    def test_timeline_records_openloop_categories(self):
        timeline = open_loop_result().stats.timeline
        assert "openloop:latency" in timeline.categories()
        assert "openloop:queue" in timeline.categories()
        counts = timeline.series("openloop:latency", "count")
        assert sum(counts) == 200.0

    def test_deterministic_across_runs(self):
        a = open_loop_result()
        b = open_loop_result()
        assert a.runtime_us == b.runtime_us
        assert a.stats.counters == b.stats.counters
        import json

        assert json.dumps(a.stats.timeline.to_json(), sort_keys=True) == (
            json.dumps(b.stats.timeline.to_json(), sort_keys=True)
        )

    def test_diurnal_runs(self):
        result = open_loop_result(process="diurnal")
        assert result.stats.counter("openloop_completions") == 200

    def test_baselines_reject_open_loop(self):
        workload = UniformSharingWorkload(2, accesses_per_thread=100, seed=1)
        config = RunnerConfig(arrival_process="poisson")
        with pytest.raises(ValueError):
            run_system("gam", workload, 2, config)
