"""Telemetry end to end: the kernel contract, fault attribution, sweeps.

Three properties anchor the layer:

1. **No perturbation**: the same run with telemetry on or off executes
   the identical simulated event sequence -- runtime, counters and
   latency summaries are bit-identical.  The timeline schedules nothing.
2. **Fault attribution**: a switch-crash run joins the orchestrator's
   pre/degraded/post phases and the injector's marks to windows, and SLO
   violations land in the degraded phase.
3. **Sweep byte-identity**: per-point timeline documents are pure
   functions of the point, so ``--jobs N`` documents match serial ones
   byte for byte, and telemetry-off documents carry no telemetry keys.
"""

import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor

from repro.faults import FaultPlan
from repro.runner import RunnerConfig, run_system
from repro.sweep import SweepSpec, execute_point
from repro.telemetry import evaluate_slos
from repro.workloads import UniformSharingWorkload


def run(telemetry, fault_plan=None, accesses=800):
    workload = UniformSharingWorkload(4, accesses_per_thread=accesses, seed=3)
    config = RunnerConfig(telemetry=telemetry, fault_plan=fault_plan)
    return run_system("mind", workload, 2, config)


class TestKernelContract:
    def test_telemetry_does_not_perturb_the_simulation(self):
        off = run(telemetry=False)
        on = run(telemetry=True)
        assert on.runtime_us == off.runtime_us
        assert on.stats.counters == off.stats.counters
        for category in off.stats.latencies:
            assert on.stats.latency_summary(category) == off.stats.latency_summary(
                category
            )

    def test_disabled_runs_carry_no_timeline(self):
        assert run(telemetry=False).stats.timeline is None

    def test_report_sections_appear_only_with_telemetry(self):
        off_doc = run(telemetry=False).report().to_json()
        on_doc = run(telemetry=True).report().to_json()
        assert off_doc["timeline"] == {}
        assert off_doc["slo"] == {}
        assert on_doc["timeline"]["num_windows"] > 0
        assert on_doc["slo"]["objectives"]


def crash_plan():
    return FaultPlan(seed=7).switch_crash(2_000.0)


class TestFaultAttribution:
    def test_switch_crash_phases_cover_the_timeline(self):
        result = run(telemetry=True, fault_plan=crash_plan(), accesses=1500)
        timeline = result.stats.timeline
        assert [p for _, p in timeline.phases] == ["pre", "degraded", "post"]
        window_phases = {s.phase for s in timeline.snapshots()}
        assert window_phases == {"pre", "degraded", "post"}

    def test_crash_marks_land_on_the_timeline(self):
        result = run(telemetry=True, fault_plan=crash_plan(), accesses=1500)
        labels = [label for _, label in result.stats.timeline.marks]
        assert "switch_crash" in labels
        assert "failover_complete" in labels
        crash_t = dict((l, t) for t, l in result.stats.timeline.marks)
        assert crash_t["switch_crash"] == 2_000.0

    def test_slo_violations_attributed_to_degraded_phase(self):
        result = run(telemetry=True, fault_plan=crash_plan(), accesses=1500)
        report = evaluate_slos(result.stats.timeline)
        violating = [r for r in report.results if r.windows_violating]
        assert violating, "a switch crash must violate some latency objective"
        for r in violating:
            assert set(r.violations_by_phase) <= {"degraded", "post"}
            assert "degraded" in r.violations_by_phase


TELEMETRY_GRID = (
    "system=mind;workload=uniform;blades=2;threads_per_blade=2;"
    "accesses_per_thread=300;shared_pages=64;private_pages_per_thread=32;"
    "num_memory_blades=2;epoch_us=2000;telemetry=true;"
    "arrival_process=none,poisson;arrival_rate_per_thread=0.01"
)


def telemetry_points():
    return SweepSpec.from_grids([TELEMETRY_GRID], seeds=[1]).points()


class TestSweepByteIdentity:
    def test_worker_timeline_matches_in_process(self):
        points = telemetry_points()
        local = [execute_point(p) for p in points]
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(max_workers=2, mp_context=context) as pool:
            remote = list(pool.map(execute_point, points))
        for mine, theirs in zip(local, remote):
            assert mine.metrics == theirs.metrics
            assert json.dumps(mine.timeline, sort_keys=True) == json.dumps(
                theirs.timeline, sort_keys=True
            )

    def test_timeline_document_repeats_exactly(self):
        (point, _) = telemetry_points()
        a = execute_point(point)
        b = execute_point(point)
        assert json.dumps(a.to_json(), sort_keys=True) == json.dumps(
            b.to_json(), sort_keys=True
        )

    def test_telemetry_metrics_present(self):
        _, openloop_point = telemetry_points()
        record = execute_point(openloop_point)
        assert record.timeline is not None
        assert record.timeline["schema"] == "repro.telemetry/v1"
        assert record.metrics["telemetry:windows"] > 0
        assert "slo:openloop-p99:compliance" in record.metrics
        assert "latency:openloop:latency:p999" in record.metrics

    def test_telemetry_off_documents_unchanged(self):
        grid = TELEMETRY_GRID.replace("telemetry=true;", "").replace(
            "arrival_process=none,poisson;arrival_rate_per_thread=0.01",
            "arrival_process=none",
        )
        (point,) = SweepSpec.from_grids([grid], seeds=[1]).points()
        record = execute_point(point)
        assert record.timeline is None
        doc = record.to_json()
        assert "timeline" not in doc
        assert not any(
            k.startswith(("slo:", "telemetry:")) for k in record.metrics
        )

    def test_roundtrip_preserves_timeline(self):
        (_, point) = telemetry_points()
        record = execute_point(point)
        clone = type(record).from_json(
            json.loads(json.dumps(record.to_json()))
        )
        assert clone.timeline == record.timeline
        assert clone.metrics == record.metrics
