"""Seeded randomized invariant suite run against every allocator policy.

Every policy must uphold the same contract under arbitrary churn: live
allocations never overlap, byte accounting conserves the blade size,
draining restores one maximal hole, and an ``allocate_at`` replay of the
live set (the fail-over path) reproduces the same occupancy.
"""

import random

import pytest

from repro.alloc import POLICIES, AllocatorPolicy, OutOfMemoryError, make_policy
from repro.sim.network import PAGE_SIZE

BLADE_BASE = 1 << 30
BLADE_SIZE = 1 << 24  # pow2 so a drained policy's largest_hole == size

ALL_POLICIES = sorted(POLICIES)


def churn(policy: AllocatorPolicy, seed: int, ops: int = 500):
    """Drive a policy through seeded mixed-size churn; returns live bases."""
    rng = random.Random(seed)
    live = []
    for i in range(ops):
        if live and (rng.random() < 0.45 or len(live) > 100):
            base = live.pop(rng.randrange(len(live)))
            policy.free(base)
        else:
            length = rng.randrange(200, 150_000)
            padded = policy.padded_size(length)
            alignment = policy.alignment_for(padded)
            try:
                base = policy.allocate(
                    padded, alignment, requested=length, owner=rng.randrange(4)
                )
            except OutOfMemoryError:
                continue
            live.append(base)
    return live


@pytest.mark.parametrize("name", ALL_POLICIES)
class TestPolicyInvariants:
    def test_live_allocations_never_overlap(self, name):
        policy = make_policy(name, BLADE_BASE, BLADE_SIZE)
        churn(policy, seed=11)
        spans = sorted(
            (base, base + length)
            for base, length in policy.live_allocations().items()
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2, f"{name}: [{s1:#x},{e1:#x}) overlaps [{s2:#x},{e2:#x})"
        for start, end in spans:
            assert BLADE_BASE <= start < end <= BLADE_BASE + BLADE_SIZE

    def test_byte_accounting_conserved(self, name):
        policy = make_policy(name, BLADE_BASE, BLADE_SIZE)
        churn(policy, seed=23)
        assert (
            policy.allocated_bytes + policy.free_bytes + policy.waste_bytes
            == BLADE_SIZE
        )
        assert policy.allocated_bytes == sum(policy.live_allocations().values())
        assert 0 <= policy.external_fragmentation() <= 1
        assert 0 <= policy.internal_fragmentation() <= 1
        assert policy.largest_hole <= policy.free_bytes
        assert policy.metadata_bytes() > 0

    def test_drain_restores_single_maximal_hole(self, name):
        policy = make_policy(name, BLADE_BASE, BLADE_SIZE)
        live = churn(policy, seed=37)
        for base in live:
            policy.free(base)
        assert policy.allocated_bytes == 0
        assert policy.waste_bytes == 0
        assert policy.free_bytes == BLADE_SIZE
        assert policy.largest_hole == BLADE_SIZE
        assert policy.external_fragmentation() == 0.0

    def test_allocate_at_replay_round_trips(self, name):
        """Fail-over: replaying the live set in base order reproduces it."""
        policy = make_policy(name, BLADE_BASE, BLADE_SIZE)
        churn(policy, seed=53)
        snapshot = sorted(policy.live_allocations().items())
        replica = make_policy(name, BLADE_BASE, BLADE_SIZE)
        for base, length in snapshot:
            assert replica.allocate_at(base, length) == base
        assert replica.live_allocations() == policy.live_allocations()
        assert replica.allocated_bytes == policy.allocated_bytes

    def test_free_unknown_base_raises(self, name):
        policy = make_policy(name, BLADE_BASE, BLADE_SIZE)
        with pytest.raises(KeyError, match="no allocation"):
            policy.free(BLADE_BASE + PAGE_SIZE)

    def test_invalid_requests_rejected(self, name):
        policy = make_policy(name, BLADE_BASE, BLADE_SIZE)
        with pytest.raises(ValueError):
            policy.allocate(0, PAGE_SIZE)
        with pytest.raises(ValueError):
            policy.allocate(PAGE_SIZE, 3)

    def test_exhaustion_raises_oom(self, name):
        policy = make_policy(name, BLADE_BASE, BLADE_SIZE)
        with pytest.raises(OutOfMemoryError):
            for _ in range(2 * BLADE_SIZE // PAGE_SIZE):
                padded = policy.padded_size(BLADE_SIZE // 4)
                policy.allocate(padded, policy.alignment_for(padded))

    def test_steps_accumulate(self, name):
        policy = make_policy(name, BLADE_BASE, BLADE_SIZE)
        padded = policy.padded_size(PAGE_SIZE)
        policy.allocate(padded, policy.alignment_for(padded))
        assert policy.last_op_steps >= 1
        assert policy.total_ops == 1
        assert policy.total_steps == policy.last_op_steps


def test_registry_names_match_classes():
    for name, cls in POLICIES.items():
        assert cls.name == name
    assert set(POLICIES) == {"first-fit", "slab", "buddy", "arena", "bump"}


def test_make_policy_unknown_name():
    with pytest.raises(ValueError, match="unknown allocator policy"):
        make_policy("tlsf", 0, BLADE_SIZE)


def test_bump_retires_interior_frees_and_resets_when_empty():
    from repro.alloc import BumpAllocator

    bump = BumpAllocator(0, BLADE_SIZE)
    a = bump.allocate(PAGE_SIZE, PAGE_SIZE)
    b = bump.allocate(PAGE_SIZE, PAGE_SIZE)
    bump.free(a)  # interior: retired, not reusable
    assert bump.waste_bytes == PAGE_SIZE
    bump.free(b)  # drained: epoch reset reclaims the retired bytes
    assert bump.waste_bytes == 0
    assert bump.largest_hole == BLADE_SIZE


def test_arena_per_owner_isolation_and_trim():
    from repro.alloc import ArenaAllocator

    arena = ArenaAllocator(0, BLADE_SIZE)
    a = arena.allocate(PAGE_SIZE, PAGE_SIZE, owner=1)
    b = arena.allocate(PAGE_SIZE, PAGE_SIZE, owner=2)
    assert arena.arena_count() == 2
    arena.free(a)
    assert arena.arena_count() == 1  # owner 1's arena trimmed to reserve
    arena.free(b)
    assert arena.arena_count() == 0
    assert arena.largest_hole == BLADE_SIZE


def test_slab_size_classes_are_finer_than_pow2():
    from repro.alloc import SlabAllocator

    # 3-page request: pow2 padding would burn 4 pages, the slab class 3.
    assert SlabAllocator.padded_size(3 * PAGE_SIZE) == 3 * PAGE_SIZE
    assert SlabAllocator.padded_size(5 * PAGE_SIZE) == 6 * PAGE_SIZE
    assert SlabAllocator.padded_size(PAGE_SIZE) == PAGE_SIZE
