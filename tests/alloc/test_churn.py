"""The churn scenario: determinism, policy distinctness, sweep dispatch."""

import pytest

from repro.alloc.scenario import (
    ChurnScenarioConfig,
    config_from_params,
    run_churn,
)
from repro.sweep.spec import GridSpec, SweepSpec
from repro.sweep.engine import execute_point, extract_metrics
from repro.workloads.churn import OP_MMAP, OP_MUNMAP, generate_churn_ops

QUICK = dict(
    compute_blades=2,
    threads_per_blade=1,
    ops_per_thread=120,
    live_target=24,
)


class TestOpGeneration:
    def test_streams_are_deterministic(self):
        a = generate_churn_ops(5, 0, 200, 32)
        b = generate_churn_ops(5, 0, 200, 32)
        assert a == b

    def test_threads_get_distinct_streams(self):
        assert generate_churn_ops(5, 0, 200, 32) != generate_churn_ops(5, 1, 200, 32)

    def test_mix_hovers_near_live_target(self):
        ops = generate_churn_ops(7, 0, 2000, 32)
        live = sum(1 if k == OP_MMAP else -1 for k, _ in ops)
        assert 0 <= live < 3 * 32

    def test_munmap_never_first(self):
        for t in range(4):
            assert generate_churn_ops(3, t, 50, 8)[0][0] == OP_MMAP

    def test_size_dist_validated(self):
        with pytest.raises(ValueError, match="unknown size_dist"):
            generate_churn_ops(1, 0, 10, 4, size_dist="huge")


class TestRunChurn:
    def test_deterministic_in_config(self):
        r1 = run_churn(ChurnScenarioConfig(allocator="slab", **QUICK))
        r2 = run_churn(ChurnScenarioConfig(allocator="slab", **QUICK))
        assert extract_metrics(r1) == extract_metrics(r2)

    def test_policies_have_distinct_signatures(self):
        """At least 3 policies must separate on each headline metric."""
        metrics = {
            policy: extract_metrics(
                run_churn(ChurnScenarioConfig(allocator=policy, **QUICK))
            )
            for policy in ("first-fit", "slab", "buddy", "arena", "bump")
        }
        for key in (
            "gauge:alloc:frag:external",
            "gauge:alloc:metadata_bytes",
            "latency:alloc:mean",
        ):
            values = {round(m[key], 9) for m in metrics.values()}
            assert len(values) >= 3, f"{key}: {values}"

    def test_steady_state_gauges_and_drain_accounting(self):
        result = run_churn(ChurnScenarioConfig(allocator="arena", **QUICK))
        # Steady-state gauges reflect the loaded heap, not the drain.
        assert result.stats.gauges["alloc:allocated_bytes"] > 0
        # The drain phase munmaps every survivor, so allocator ops exceed
        # the generated op count.
        assert result.stats.counters["alloc_ops"] > result.total_accesses

    def test_enomem_is_survivable_and_counted(self):
        result = run_churn(
            ChurnScenarioConfig(
                allocator="bump",
                compute_blades=1,
                threads_per_blade=1,
                num_memory_blades=1,
                memory_blade_capacity=1 << 21,
                ops_per_thread=300,
                live_target=64,
                size_dist="large",
            )
        )
        assert result.stats.counters["churn_enomem"] > 0

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown churn scenario parameter"):
            config_from_params({"allocator": "slab", "palette": 3})


class TestSweepDispatch:
    def test_churn_point_runs_through_engine(self):
        grid = GridSpec(
            {
                "system": ["mind"],
                "workload": ["churn"],
                "blades": [2],
                "threads_per_blade": [1],
                "allocator": ["slab"],
                "ops_per_thread": [120],
                "live_target": [24],
            }
        )
        spec = SweepSpec(grids=[grid], seeds=[1])
        (point,) = spec.points()
        record = execute_point(point)
        assert record.metrics["gauge:alloc:metadata_bytes"] > 0
        assert record.metrics["latency:alloc:mean"] > 0

    def test_churn_rejects_non_mind_system(self):
        with pytest.raises(ValueError, match="only runs on"):
            GridSpec(
                {
                    "system": ["gam"],
                    "workload": ["churn"],
                    "blades": [1],
                    "threads_per_blade": [1],
                }
            )

    def test_churn_rejects_external_fault_plan(self):
        grid = GridSpec(
            {
                "system": ["mind"],
                "workload": ["churn"],
                "blades": [1],
                "threads_per_blade": [1],
            }
        )
        spec = SweepSpec(grids=[grid], seeds=[1])
        (point,) = spec.points()
        with pytest.raises(ValueError, match="chaos plan"):
            execute_point(point, fault_plan=object())

    def test_runner_axis_rejected_for_baselines(self):
        from repro.runner import RunnerConfig, run_system
        from repro.workloads import UniformSharingWorkload

        workload = UniformSharingWorkload(1, seed=1, accesses_per_thread=10)
        with pytest.raises(ValueError, match="no in-network allocator"):
            run_system(
                "gam", workload, 1, RunnerConfig(allocator="slab")
            )
