"""GlobalAllocator: incremental ordering, cost accounting, SRAM banking."""

import random

import pytest

from repro.alloc import (
    AllocCostModel,
    GlobalAllocator,
    OutOfMemoryError,
    alloc_gauges,
)
from repro.sim.network import PAGE_SIZE
from repro.switchsim.sram import MetadataSram

BLADE_SIZE = 1 << 22


def make_global(policy="first-fit", blades=4, **kw):
    galloc = GlobalAllocator(policy=policy, **kw)
    for b in range(blades):
        galloc.add_blade(b, b << 30, BLADE_SIZE)
    return galloc


def brute_force_order(galloc):
    return sorted(
        (galloc.blade(b).allocated_bytes, b) for b in galloc.blade_ids
    )


class TestIncrementalOrdering:
    @pytest.mark.parametrize("policy", ["first-fit", "slab", "buddy"])
    def test_order_matches_brute_force_under_churn(self, policy):
        galloc = make_global(policy)
        rng = random.Random(7)
        live = []
        for _ in range(400):
            if live and rng.random() < 0.4:
                bid, base = live.pop(rng.randrange(len(live)))
                galloc.free(bid, base)
            else:
                try:
                    p = galloc.allocate(rng.randrange(300, 100_000))
                except OutOfMemoryError:
                    continue
                live.append((p.blade_id, p.va_base))
            assert galloc._order == brute_force_order(galloc)

    def test_direct_blade_mutation_keeps_order_fresh(self):
        """Migration mutates blades directly; the hook must still fire."""
        galloc = make_global()
        blade = galloc.blade(2)
        blade.allocate(4 * PAGE_SIZE, 4 * PAGE_SIZE)
        assert galloc._order == brute_force_order(galloc)
        # The least-allocated choice must now avoid blade 2.
        assert galloc.allocate(PAGE_SIZE).blade_id != 2

    def test_allocate_at_keeps_order_fresh(self):
        galloc = make_global()
        galloc.allocate_at(1, (1 << 30) + PAGE_SIZE, PAGE_SIZE)
        assert galloc._order == brute_force_order(galloc)

    def test_remove_blade_drops_from_order(self):
        galloc = make_global()
        galloc.remove_blade(1)
        assert galloc.blade_ids == [0, 2, 3]
        assert galloc._order == brute_force_order(galloc)

    def test_duplicate_blade_rejected(self):
        galloc = make_global()
        with pytest.raises(ValueError, match="already registered"):
            galloc.add_blade(0, 0, BLADE_SIZE)


class TestCostModel:
    def test_unmodeled_by_default(self):
        galloc = make_global()
        assert not galloc.modeled
        galloc.allocate(PAGE_SIZE)
        assert galloc.last_cost_us == 0.0

    def test_modeled_cost_is_affine_in_steps(self):
        model = AllocCostModel(base_us=2.0, per_step_us=0.5)
        galloc = make_global(cost_model=model)
        assert galloc.modeled
        placement = galloc.allocate(PAGE_SIZE)
        steps = galloc.blade(placement.blade_id).last_op_steps
        assert placement.cost_us == galloc.last_cost_us == 2.0 + 0.5 * steps

    def test_enomem_charges_full_probe_scan(self):
        galloc = make_global(cost_model=AllocCostModel(), blades=2)
        with pytest.raises(OutOfMemoryError):
            galloc.allocate(2 * BLADE_SIZE)
        assert galloc.enomem_count == 1
        assert galloc.last_cost_us == AllocCostModel().cost_us(2)

    def test_identical_sequences_identical_costs(self):
        def run():
            galloc = make_global("slab", cost_model=AllocCostModel())
            costs = []
            for i in range(50):
                costs.append(galloc.allocate(1000 * (i + 1)).cost_us)
            return costs

        assert run() == run()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown allocator policy"):
            GlobalAllocator(policy="tlsf")


class TestMetadataSram:
    def test_occupancy_tracks_allocator_metadata(self):
        sram = MetadataSram(1 << 20)
        galloc = make_global(
            "slab", cost_model=AllocCostModel(), metadata_sram=sram
        )
        assert sram.used == galloc.raw_telemetry()["metadata"]
        p = galloc.allocate(3 * PAGE_SIZE)
        assert sram.used == galloc.raw_telemetry()["metadata"]
        assert sram.peak_used >= sram.used
        galloc.free(p.blade_id, p.va_base)
        assert sram.used == galloc.raw_telemetry()["metadata"]

    def test_overflow_counted_once_per_crossing(self):
        sram = MetadataSram(16)
        sram.set_used(10)
        assert sram.overflows == 0
        sram.set_used(20)
        sram.set_used(24)  # still over budget: same crossing
        assert sram.overflows == 1
        sram.set_used(8)
        sram.set_used(32)
        assert sram.overflows == 2
        assert sram.peak_used == 32

    def test_rejects_empty_bank(self):
        with pytest.raises(ValueError):
            MetadataSram(0)


class TestGauges:
    def test_gauges_merge_across_allocators(self):
        a = make_global("first-fit", cost_model=AllocCostModel())
        b = make_global("first-fit", cost_model=AllocCostModel())
        a.allocate(PAGE_SIZE)
        b.allocate(PAGE_SIZE)
        merged = alloc_gauges([a.raw_telemetry(), b.raw_telemetry()])
        assert merged["alloc:allocated_bytes"] == 2 * PAGE_SIZE
        solo = alloc_gauges([a.raw_telemetry()])
        # Fractions recompute from the summed bytes, not averaged.
        assert merged["alloc:frag:internal"] == solo["alloc:frag:internal"]

    def test_jain_fairness_stays_near_one(self):
        galloc = make_global()
        for _ in range(16):
            galloc.allocate(PAGE_SIZE)
        assert galloc.jain_fairness() == pytest.approx(1.0)
