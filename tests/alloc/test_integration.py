"""The allocator axis through the full stack: cluster, fail-over, shim."""

import warnings

import pytest

from repro.cluster import ClusterConfig, MindCluster
from repro.core.failures import ControlPlaneReplicator, rebuild_data_plane
from repro.core.mmu import MindConfig
from repro.sim.network import PAGE_SIZE
from repro.switchsim.sram import RegisterArray
from repro.switchsim.tcam import Tcam


def make_cluster(allocator=None):
    return MindCluster(
        ClusterConfig(
            num_compute_blades=2,
            num_memory_blades=2,
            cache_capacity_pages=64,
            mind=MindConfig(
                directory_capacity=256,
                memory_blade_capacity=1 << 24,
                enable_bounded_splitting=False,
                allocator=allocator,
            ),
        )
    )


class TestAxisGating:
    def test_default_is_unmodeled_first_fit(self):
        cluster = make_cluster()
        mmu = cluster.mmu
        assert mmu.allocator.policy_name == "first-fit"
        assert not mmu.allocator.modeled
        assert mmu.alloc_metadata_sram is None
        task = cluster.controller.sys_exec("t")
        cluster.controller.sys_mmap(task.pid, PAGE_SIZE)
        cluster.capture_telemetry()
        # No alloc metrics leak into the default namespace.
        assert not any(k.startswith("alloc") for k in cluster.stats.gauges)
        assert not any(k.startswith("alloc") for k in cluster.stats.counters)
        assert "alloc" not in cluster.stats.snapshot()
        assert mmu.control_cpu.alloc_ops == 0

    @pytest.mark.parametrize("policy", ["first-fit", "slab", "arena"])
    def test_axis_activates_cost_and_telemetry(self, policy):
        cluster = make_cluster(allocator=policy)
        mmu = cluster.mmu
        assert mmu.allocator.policy_name == policy
        assert mmu.allocator.modeled
        assert mmu.alloc_metadata_sram is not None
        ctl = cluster.controller
        task = ctl.sys_exec("t")
        bases = [ctl.sys_mmap(task.pid, 3 * PAGE_SIZE) for _ in range(4)]
        ctl.sys_munmap(task.pid, bases[0])
        cluster.capture_telemetry()
        stats = cluster.stats
        assert stats.counters["alloc_ops"] == 5  # 4 mmaps + 1 munmap
        assert stats.gauges["alloc:cpu_us"] > 0
        assert stats.gauges["alloc:metadata_bytes"] > 0
        assert "alloc" in stats.snapshot()
        assert mmu.alloc_metadata_sram.peak_used > 0


class TestFailoverReplay:
    @pytest.mark.parametrize("policy", [None, "slab", "buddy", "arena"])
    def test_rebuilt_allocator_matches_policy_and_occupancy(self, policy):
        cluster = make_cluster(allocator=policy)
        ctl = cluster.controller
        task = ctl.sys_exec("t")
        bases = [
            ctl.sys_mmap(task.pid, (i + 1) * PAGE_SIZE) for i in range(6)
        ]
        ctl.sys_munmap(task.pid, bases[2])
        snapshot = ControlPlaneReplicator(ctl).capture()
        plane = rebuild_data_plane(
            snapshot,
            xlate_tcam=Tcam(1024, name="backup-xlate"),
            protection_tcam=Tcam(1024, name="backup-prot"),
            directory_sram=RegisterArray(256, name="backup-dir"),
        )
        rebuilt = plane.allocator
        original = cluster.mmu.allocator
        assert rebuilt.policy_name == original.policy_name
        assert rebuilt.modeled == original.modeled
        assert rebuilt.allocated_per_blade() == original.allocated_per_blade()
        for bid in original.blade_ids:
            assert (
                rebuilt.blade(bid).live_allocations()
                == original.blade(bid).live_allocations()
            )
        # Where the free structure is a pure function of the live set,
        # placement stays identical after adoption: the next allocation
        # lands on the same blade at the same base.  (Arena placement
        # depends on per-owner heap state, which a snapshot deliberately
        # does not replicate -- the replay books into the shared arena.)
        if policy != "arena":
            p1 = original.allocate(PAGE_SIZE)
            p2 = rebuilt.allocate(PAGE_SIZE)
            assert (p1.blade_id, p1.va_base) == (p2.blade_id, p2.va_base)


class TestDeprecationShim:
    @pytest.mark.parametrize(
        "name",
        ["FirstFitAllocator", "GlobalAllocator", "BladeAllocation", "OutOfMemoryError"],
    )
    def test_old_import_path_warns_and_resolves(self, name):
        import repro.alloc
        import repro.core.allocator as legacy

        with pytest.warns(DeprecationWarning, match="import it from repro.alloc"):
            obj = getattr(legacy, name)
        assert obj is getattr(repro.alloc, name)

    def test_unknown_attribute_raises_without_warning(self):
        import repro.core.allocator as legacy

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(AttributeError):
                legacy.SlabAllocator

    def test_core_package_reexport_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.core import GlobalAllocator  # noqa: F401
