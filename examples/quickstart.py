#!/usr/bin/env python3
"""Quickstart: transparent shared memory over a disaggregated rack.

Builds a 2-compute / 2-memory blade rack managed by MIND's in-network MMU,
allocates memory, and demonstrates the headline property: threads on
*different compute blades* share one coherent address space with no
application-visible machinery -- the switch runs translation, protection
and MSI coherence on every miss.

Run:  python examples/quickstart.py
"""

from repro.api import MindSystem


def main() -> None:
    # A rack: compute blades (with small local DRAM caches), memory blades,
    # and the programmable switch running MIND in between.
    system = MindSystem(
        num_compute_blades=2,
        num_memory_blades=2,
        cache_capacity_pages=1024,  # partial disaggregation: tiny local cache
    )

    # Processes see ordinary virtual memory; mmap goes to the switch's
    # control plane, which allocates on the least-loaded memory blade.
    proc = system.spawn_process("quickstart")
    buf = proc.mmap(1 << 20)  # 1 MiB
    print(f"mmap'd 1 MiB at virtual address {buf:#x}")

    # Threads are placed round-robin across compute blades; they share the
    # process's single global address space.
    t0 = proc.spawn_thread()
    t1 = proc.spawn_thread()
    print(f"thread {t0.tid} on compute blade {t0.blade_id}, "
          f"thread {t1.tid} on compute blade {t1.blade_id}")

    # A write on blade 0 ...
    t0.write(buf, b"hello from blade 0")
    # ... is coherently visible on blade 1: the switch invalidates blade
    # 0's copy (M -> S) and routes the fetch to the right memory blade.
    data = t1.read(buf, 18)
    print(f"blade {t1.blade_id} reads: {data.decode()}")

    # Writes from the other side work symmetrically (S -> M upgrade).
    t1.write(buf + 64, b"hello back")
    print(f"blade {t0.blade_id} reads: {t0.read(buf + 64, 10).decode()}")

    # What did the network just do for us?
    stats = system.stats
    print("\n-- in-network activity --")
    print(f"simulated time:        {system.now_us:8.1f} us")
    print(f"remote accesses:       {stats.counter('remote_accesses'):5d}")
    print(f"invalidations sent:    {stats.counter('invalidations_sent'):5d}")
    print(f"pages written back:    {stats.counter('pages_written_back'):5d}")
    for label in ("I->S", "I->M", "M->S", "S->M", "S->S", "M->M"):
        summary = stats.latency_summary(f"fault:{label}")
        if summary.count:
            print(f"fault {label:5s} latency:  {summary.mean:6.2f} us "
                  f"(x{summary.count})")


if __name__ == "__main__":
    main()
