#!/usr/bin/env python3
"""Elastic key-value store: scale compute without touching the data.

The paper's motivating scenario: existing disaggregation designs pin a
process to one compute blade, so scaling its compute means sharding or
rewriting the application.  Under MIND the KVS below simply *adds serving
threads on new blades* mid-run -- the hash table lives in the single
global address space, and in-network coherence keeps every blade's view
consistent.

Each phase serves the same number of read-mostly requests, split across
the current serving threads which run *concurrently* in simulated time.
With mostly-read traffic, serving capacity grows with the blades, exactly
the transparent compute elasticity MIND promises.

The building blocks (deterministic op generation, the serving loop) come
from :mod:`repro.workloads.elastic_kvs` -- the same code that powers the
full multi-tenant serving scenario (``python -m repro serve``), which
adds open-loop arrivals, admission control, chaos, and SLO reporting on
top of what this example shows.

Run:  python examples/elastic_kvs.py
"""

from repro.api import MindSystem
from repro.workloads.elastic_kvs import make_ops, server_loop, tenant_key
from repro.workloads.kvs import MindKvs

NUM_KEYS = 400
REQUESTS_PER_PHASE = 512
READ_FRACTION = 0.95


def main() -> None:
    system = MindSystem(
        num_compute_blades=4,
        num_memory_blades=2,
        cache_capacity_pages=512,
    )
    proc = system.spawn_process("kvs-server")
    kvs = MindKvs(proc, num_slots=2048)

    print(f"loading {NUM_KEYS} keys...")
    loader = proc.spawn_thread()
    for i in range(NUM_KEYS):
        kvs.put(loader, tenant_key(0, i), f"initial-{i}".encode())

    threads = [loader]
    print("serving phases (same data, progressively more blades):")
    rates = []
    for phase_index, phase in enumerate((1, 2, 4)):
        while len(threads) < phase:
            threads.append(proc.spawn_thread())
        per_thread = REQUESTS_PER_PHASE // len(threads)
        batches = [
            make_ops(
                "elastic-kvs",
                seed=42,
                tenant=0,
                client=phase_index * len(threads) + t,
                count=per_thread,
                num_keys=NUM_KEYS,
                read_fraction=READ_FRACTION,
            )
            for t in range(len(threads))
        ]
        t0 = system.now_us
        system.run_concurrently(
            [server_loop(kvs, t, ops) for t, ops in zip(threads, batches)]
        )
        elapsed_ms = (system.now_us - t0) / 1000
        rate = (per_thread * len(threads)) / max(elapsed_ms, 1e-9)
        rates.append(rate)
        print(
            f"  {phase} blade(s) {sorted({t.blade_id for t in threads})}: "
            f"{per_thread * len(threads)} ops in {elapsed_ms:7.2f} ms "
            f"-> {rate:7.1f} ops/ms"
        )

    speedup = rates[-1] / rates[0]
    print(f"\nserving capacity grew {speedup:.2f}x from 1 to 4 blades "
          "with zero application changes")
    probe = threads[-1]
    print(f"blade {probe.blade_id} reads {tenant_key(0, 0)!r} -> "
          f"{kvs.get(probe, tenant_key(0, 0))!r}")
    stats = system.stats
    print(f"coherence served it all: {stats.counter('invalidations_sent')} "
          f"invalidations, {stats.counter('false_invalidations')} false")
    print("\nnext step: the multi-tenant serving scenario under chaos --")
    print("  python -m repro serve --chaos full")


if __name__ == "__main__":
    main()
