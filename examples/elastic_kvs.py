#!/usr/bin/env python3
"""Elastic key-value store: scale compute without touching the data.

The paper's motivating scenario: existing disaggregation designs pin a
process to one compute blade, so scaling its compute means sharding or
rewriting the application.  Under MIND the KVS below simply *adds serving
threads on new blades* mid-run -- the hash table lives in the single
global address space, and in-network coherence keeps every blade's view
consistent.

Each phase serves the same number of read-mostly requests, split across
the current serving threads which run *concurrently* in simulated time.
With mostly-read traffic, serving capacity grows with the blades, exactly
the transparent compute elasticity MIND promises.

Run:  python examples/elastic_kvs.py
"""

import numpy as np

from repro.api import MindSystem
from repro.sim.rng import ZipfianSampler
from repro.workloads.kvs import MindKvs

NUM_KEYS = 400
REQUESTS_PER_PHASE = 512
READ_FRACTION = 0.95
#: CPU time to parse/handle one request (why serving is compute-bound and
#: worth scaling out in the first place).
REQUEST_CPU_US = 8.0


def server_loop(kvs, thread, requests):
    """One serving thread's request loop (a simulated process)."""

    def gen():
        served = 0
        for op, key, value in requests:
            yield REQUEST_CPU_US  # request parsing + protocol handling
            if op == "get":
                yield from kvs.get_gen(thread, key)
            else:
                yield from kvs.put_gen(thread, key, value)
            served += 1
        return served

    return gen()


def make_requests(rng, sampler, count):
    requests = []
    for i in range(count):
        key = f"key-{sampler.sample_one()}".encode()
        if rng.random() < READ_FRACTION:
            requests.append(("get", key, b""))
        else:
            requests.append(("put", key, f"update-{i}".encode()))
    return requests


def main() -> None:
    system = MindSystem(
        num_compute_blades=4,
        num_memory_blades=2,
        cache_capacity_pages=512,
    )
    proc = system.spawn_process("kvs-server")
    kvs = MindKvs(proc, num_slots=2048)
    rng = np.random.default_rng(42)
    sampler = ZipfianSampler(NUM_KEYS, theta=0.9, seed=7)

    print(f"loading {NUM_KEYS} keys...")
    loader = proc.spawn_thread()
    for i in range(NUM_KEYS):
        kvs.put(loader, f"key-{i}".encode(), f"initial-{i}".encode())

    threads = [loader]
    print("serving phases (same data, progressively more blades):")
    rates = []
    for phase in (1, 2, 4):
        while len(threads) < phase:
            threads.append(proc.spawn_thread())
        per_thread = REQUESTS_PER_PHASE // len(threads)
        batches = [
            make_requests(rng, sampler, per_thread) for _ in threads
        ]
        t0 = system.now_us
        system.run_concurrently(
            [server_loop(kvs, t, reqs) for t, reqs in zip(threads, batches)]
        )
        elapsed_ms = (system.now_us - t0) / 1000
        rate = (per_thread * len(threads)) / max(elapsed_ms, 1e-9)
        rates.append(rate)
        print(
            f"  {phase} blade(s) {sorted({t.blade_id for t in threads})}: "
            f"{per_thread * len(threads)} ops in {elapsed_ms:7.2f} ms "
            f"-> {rate:7.1f} ops/ms"
        )

    speedup = rates[-1] / rates[0]
    print(f"\nserving capacity grew {speedup:.2f}x from 1 to 4 blades "
          "with zero application changes")
    probe = threads[-1]
    print(f"blade {probe.blade_id} reads key-0 -> "
          f"{kvs.get(probe, b'key-0')!r}")
    stats = system.stats
    print(f"coherence served it all: {stats.counter('invalidations_sent')} "
          f"invalidations, {stats.counter('false_invalidations')} false")


if __name__ == "__main__":
    main()
