#!/usr/bin/env python3
"""Parallel PageRank over disaggregated shared memory.

A small but real graph-analytics job -- the paper's GC workload class --
executed natively on MIND: the rank vector lives in the global address
space, worker threads on different compute blades each own a vertex
partition, and every iteration reads neighbours' ranks written by other
blades.  No message passing, no explicit synchronization of data: the
in-network MSI protocol is the only coherence mechanism.

The example verifies the distributed result against a single-threaded
reference computation and reports the coherence traffic the switch served.

Run:  python examples/graph_analytics.py
"""

import struct

import numpy as np

from repro.api import MindSystem

NUM_VERTICES = 64
NUM_BLADES = 4
ITERATIONS = 5
DAMPING = 0.85
RANK = struct.Struct("<d")


def build_graph(seed=7):
    """A random directed graph with a few hub vertices."""
    rng = np.random.default_rng(seed)
    edges = []
    for v in range(NUM_VERTICES):
        out_degree = 2 + int(rng.integers(0, 4))
        # Preferential attachment: low vertex ids are hubs.
        targets = set()
        while len(targets) < out_degree:
            t = int(rng.zipf(1.5)) % NUM_VERTICES
            if t != v:
                targets.add(t)
        edges.extend((v, t) for t in targets)
    return edges


def reference_pagerank(edges):
    ranks = np.full(NUM_VERTICES, 1.0 / NUM_VERTICES)
    out_deg = np.zeros(NUM_VERTICES)
    for s, _t in edges:
        out_deg[s] += 1
    for _ in range(ITERATIONS):
        contrib = np.zeros(NUM_VERTICES)
        for s, t in edges:
            contrib[t] += ranks[s] / out_deg[s]
        ranks = (1 - DAMPING) / NUM_VERTICES + DAMPING * contrib
    return ranks


def main() -> None:
    edges = build_graph()
    in_edges = {v: [] for v in range(NUM_VERTICES)}
    out_deg = [0] * NUM_VERTICES
    for s, t in edges:
        in_edges[t].append(s)
        out_deg[s] += 1

    system = MindSystem(
        num_compute_blades=NUM_BLADES,
        num_memory_blades=2,
        cache_capacity_pages=64,
    )
    proc = system.spawn_process("pagerank")
    # Two rank arrays (current / next) in disaggregated shared memory.
    cur = proc.mmap(NUM_VERTICES * RANK.size)
    nxt = proc.mmap(NUM_VERTICES * RANK.size)
    threads = [proc.spawn_thread() for _ in range(NUM_BLADES)]

    # Initialize ranks from one blade; all blades will read them.
    for v in range(NUM_VERTICES):
        threads[0].write(cur + v * RANK.size, RANK.pack(1.0 / NUM_VERTICES))

    partitions = np.array_split(np.arange(NUM_VERTICES), NUM_BLADES)
    print(f"{NUM_VERTICES} vertices, {len(edges)} edges, "
          f"{NUM_BLADES} blades x {ITERATIONS} iterations")

    for it in range(ITERATIONS):
        # Each blade computes new ranks for its partition, reading
        # neighbour ranks that other blades wrote last iteration.
        def worker(thread, vertices):
            def gen():
                for v in vertices:
                    contrib = 0.0
                    for s in in_edges[v]:
                        raw = yield from thread.blade.load_bytes(
                            proc.pid, cur + s * RANK.size, RANK.size
                        )
                        contrib += RANK.unpack(raw)[0] / out_deg[s]
                    rank = (1 - DAMPING) / NUM_VERTICES + DAMPING * contrib
                    yield from thread.blade.store_bytes(
                        proc.pid, nxt + v * RANK.size, RANK.pack(rank)
                    )
            return gen()

        system.run_concurrently(
            [worker(t, part) for t, part in zip(threads, partitions)]
        )
        cur, nxt = nxt, cur
        top = RANK.unpack(threads[0].read(cur, RANK.size))[0]
        print(f"  iteration {it + 1}: rank[0] = {top:.6f}")

    # Verify against the single-threaded reference.
    got = np.array([
        RANK.unpack(threads[0].read(cur + v * RANK.size, RANK.size))[0]
        for v in range(NUM_VERTICES)
    ])
    want = reference_pagerank(edges)
    err = np.abs(got - want).max()
    assert err < 1e-12, f"distributed result diverged: max err {err}"
    print(f"\nresult matches the single-threaded reference (max err {err:.2e})")

    stats = system.stats
    print(f"coherence traffic: {stats.counter('invalidations_sent')} "
          f"invalidations, {stats.counter('flushed_pages')} pages flushed, "
          f"{stats.counter('remote_accesses')} remote accesses")


if __name__ == "__main__":
    main()
