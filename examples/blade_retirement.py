#!/usr/bin/env python3
"""Live memory-blade retirement via page migration (Section 4.1).

Operations story: a memory blade needs to come out of the rack (failure
prediction, firmware, decommissioning).  MIND's outlier translation
entries make this a control-plane event: every region on the blade is
quiesced, copied, and re-routed by installing a more-specific TCAM entry
-- running applications never see an address change.

The script runs an application across two compute blades, retires the
memory blade holding half its data mid-run, and shows the application
continuing with identical contents.

Run:  python examples/blade_retirement.py
"""

from repro.api import MindSystem


def main() -> None:
    system = MindSystem(
        num_compute_blades=2,
        num_memory_blades=3,
        cache_capacity_pages=128,
    )
    proc = system.spawn_process("app")
    t0, t1 = proc.spawn_thread(), proc.spawn_thread()

    # Spread several buffers across the memory blades and fill them.
    buffers = [proc.mmap(1 << 14) for _ in range(6)]
    mmu = system.cluster.mmu
    for i, buf in enumerate(buffers):
        t0.write(buf, f"buffer-{i}-contents".encode())
    placement = {
        buf: mmu.address_space.translate(buf).blade_id for buf in buffers
    }
    print("initial placement (buffer -> memory blade):")
    for buf, blade in placement.items():
        print(f"  {buf:#12x} -> mem{blade}")

    victim = placement[buffers[0]]
    victims = [b for b, blade in placement.items() if blade == victim]
    print(f"\nretiring memory blade mem{victim} "
          f"({len(victims)} buffer(s) to evacuate)...")

    t_start = system.now_us
    migrated = system.cluster.run_process(
        mmu.migration.retire_blade(victim, system.controller.tasks())
    )
    elapsed = system.now_us - t_start
    print(f"evacuated {migrated} vma(s) in {elapsed:.1f} us of rack time; "
          f"{system.stats.counter('pages_migrated')} pages copied")

    assert victim not in mmu.allocator.blade_ids
    print(f"mem{victim} removed from translation and allocation")

    # The application keeps running: all data intact, on surviving blades.
    print("\npost-retirement verification:")
    for i, buf in enumerate(buffers):
        data = t1.read(buf, len(f"buffer-{i}-contents"))
        now_on = mmu.address_space.translate(buf).blade_id
        assert data == f"buffer-{i}-contents".encode()
        assert now_on != victim
        print(f"  {buf:#12x} -> mem{now_on}  ({data.decode()})")

    # New allocations avoid the retired blade automatically.
    fresh = proc.mmap(1 << 12)
    t0.write(fresh, b"allocated after retirement")
    print(f"\nnew allocation landed on mem"
          f"{mmu.address_space.translate(fresh).blade_id}; "
          "the rack shrank without the application noticing.")


if __name__ == "__main__":
    main()
