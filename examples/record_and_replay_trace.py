#!/usr/bin/env python3
"""Record a workload to a trace bundle and replay it across systems.

The paper's evaluation methodology in miniature: capture one deterministic
access stream (as Intel PIN did for the authors), persist it, and replay
the *identical* stream on MIND, the GAM-style DSM, and FastSwap so the
comparison isolates the memory system.  The same path ingests real
PIN-style text traces via ``repro.workloads.convert_pin_text``.

Run:  python examples/record_and_replay_trace.py
"""

import tempfile
from pathlib import Path

from repro.runner import RunnerConfig, run_system
from repro.workloads import (
    FileWorkload,
    UniformSharingWorkload,
    record_workload,
)


def main() -> None:
    workload = UniformSharingWorkload(
        num_threads=4,
        accesses_per_thread=2_000,
        read_ratio=0.7,
        sharing_ratio=0.4,
        shared_pages=512,
        private_pages_per_thread=128,
        burst=4,
    )
    bundle = Path(tempfile.gettempdir()) / "mind-demo-trace.npz"
    record_workload(workload, bundle)
    print(f"recorded {workload.describe()}")
    print(f"   -> {bundle} ({bundle.stat().st_size} bytes)\n")

    replay = FileWorkload(bundle, burst=workload.burst)
    cfg = RunnerConfig(num_memory_blades=2, epoch_us=2_000.0)
    print("replaying the identical stream on every system:")
    rows = []
    for system, blades in (("mind", 2), ("mind-moesi", 2), ("gam", 2), ("fastswap", 1)):
        result = run_system(system, replay, blades, cfg)
        rows.append((result.system, blades, result.runtime_us / 1000,
                     result.throughput_iops / 1e6,
                     result.fraction_of_accesses("invalidations_sent")))
    print(f"  {'system':12s} {'blades':>6s} {'runtime(ms)':>12s} "
          f"{'M IOPS':>8s} {'inval frac':>10s}")
    for system, blades, ms, miops, inval in rows:
        print(f"  {system:12s} {blades:6d} {ms:12.2f} {miops:8.2f} {inval:10.4f}")
    print("\nsame accesses, different memory systems -- the paper's"
          " apples-to-apples methodology.")


if __name__ == "__main__":
    main()
