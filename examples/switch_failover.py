#!/usr/bin/env python3
"""Switch fail-over: rebuilding the data plane from the replicated
control plane (Section 4.4).

MIND consistently replicates its control-plane state (processes, vmas,
allocations) at a backup switch; control state only changes on metadata
operations, so replication is cheap.  When the primary dies, the backup
reprograms a fresh data plane -- translation and protection tables exactly,
the coherence directory cold (blades re-fault and re-warm it).

This example snapshots a live system, "fails" the switch, rebuilds on
backup hardware, and shows translation/protection survive while the
directory re-populates on demand.

Run:  python examples/switch_failover.py
"""

from repro.api import MindSystem, PermissionClass
from repro.core.failures import ControlPlaneReplicator, rebuild_data_plane
from repro.switchsim.packets import AccessType, PacketVerdict
from repro.switchsim.sram import RegisterArray
from repro.switchsim.tcam import Tcam


def main() -> None:
    system = MindSystem(num_compute_blades=2, num_memory_blades=2)
    proc = system.spawn_process("app")
    data_buf = proc.mmap(1 << 16)
    ro_buf = proc.mmap(1 << 12, PermissionClass.READ_ONLY)
    t0 = proc.spawn_thread()
    t0.write(data_buf, b"survives the failover")
    print(f"primary switch: {len(system.cluster.mmu.protection)} protection "
          f"entries, {system.cluster.mmu.directory_entries()} directory entries")

    # The backup continuously mirrors control-plane state (here: on demand).
    replicator = ControlPlaneReplicator(system.controller)
    snapshot = replicator.capture()
    print(f"replicated control plane at version {snapshot.version}: "
          f"{len(snapshot.vmas)} vmas, {len(snapshot.tasks)} tasks")

    # --- primary switch fails; program a backup switch's tables ---
    backup = rebuild_data_plane(
        snapshot,
        xlate_tcam=Tcam(45_000 // 2, name="backup-translation"),
        protection_tcam=Tcam(45_000 // 2, name="backup-protection"),
        directory_sram=RegisterArray(30_000, name="backup-directory"),
    )
    print("\nbackup switch programmed from the snapshot:")

    # Translation is bit-identical: the same VA routes to the same blade
    # and physical address, so memory contents remain reachable.
    orig = system.cluster.mmu.address_space.translate(data_buf)
    new = backup.address_space.translate(data_buf)
    assert (orig.blade_id, orig.pa) == (new.blade_id, new.pa)
    print(f"  translation {data_buf:#x} -> blade {new.blade_id} "
          f"pa {new.pa:#x} (identical)")

    # Protection survives, including permission classes.
    assert backup.protection.check(
        proc.pid, data_buf, AccessType.WRITE) is PacketVerdict.ALLOW
    assert backup.protection.check(
        proc.pid, ro_buf, AccessType.WRITE) is PacketVerdict.REJECT_PERMISSION
    assert backup.protection.check(
        4242, data_buf, AccessType.READ) is PacketVerdict.REJECT_NO_ENTRY
    print("  protection table rebuilt (rw vma writable, ro vma protected,"
          " foreign domains rejected)")

    # The directory starts cold -- coherence safety does not depend on it;
    # blades simply re-fault and the directory re-warms.
    assert len(backup.directory) == 0
    print("  directory cold (re-populated by page faults after fail-over)")

    # New allocations on the backup do not collide with pre-failure vmas.
    placement = backup.allocator.allocate(1 << 12)
    assert placement.va_base not in (data_buf, ro_buf)
    print(f"  post-failover allocation at {placement.va_base:#x} "
          "(no collision with survivors)")
    print("\nfail-over complete: applications keep their address space.")


if __name__ == "__main__":
    main()
