#!/usr/bin/env python3
"""Capability-style protection domains (Section 4.2).

MIND decouples protection from translation: the switch holds a
``<PDID, vma> -> permission class`` table, so a server can give each
client *session* its own protection domain over selected buffers --
richer semantics than per-process Unix permissions, enforced at line rate
in the network.

This example models a database server with two client sessions:
- each session gets a private read-write scratch buffer,
- both sessions may read a shared catalog the server maintains,
- neither session can touch the other's scratch or write the catalog.

Run:  python examples/protection_domains.py
"""

from repro.api import MindSystem, PermissionClass, SegmentationFault


def expect_denied(fn, what: str) -> None:
    try:
        fn()
    except SegmentationFault:
        print(f"  DENIED (as intended): {what}")
    else:
        raise AssertionError(f"{what} should have been rejected")


def main() -> None:
    system = MindSystem(num_compute_blades=2, num_memory_blades=1)
    server = system.spawn_process("db-server")

    # Server-side memory: a catalog plus one scratch area per session.
    catalog = server.mmap(1 << 16)
    scratch_a = server.mmap(1 << 14)
    scratch_b = server.mmap(1 << 14)

    # Protection domains are just identifiers; the server mints one per
    # client session and asks the switch to install the grants.
    SESSION_A, SESSION_B = 101, 102
    server.grant_domain(catalog, SESSION_A, PermissionClass.READ_ONLY)
    server.grant_domain(catalog, SESSION_B, PermissionClass.READ_ONLY)
    server.grant_domain(scratch_a, SESSION_A, PermissionClass.READ_WRITE)
    server.grant_domain(scratch_b, SESSION_B, PermissionClass.READ_WRITE)

    server_thread = server.spawn_thread()
    server_thread.write(catalog, b"catalog-v1: tables=[users, orders]")
    print("server published the catalog")

    # Session handler threads run with their session's PDID.  (We reuse the
    # server's blades; what isolates the sessions is the protection domain
    # embedded in each request, not where the thread runs.)
    worker = server.spawn_thread()

    def as_session(pdid, action, *args):
        blade = worker.blade
        return system.cluster.run_process(action(pdid, *args))

    # Both sessions can read the catalog.
    for name, pdid in (("A", SESSION_A), ("B", SESSION_B)):
        data = as_session(pdid, blade_load(worker), catalog, 34)
        print(f"  session {name} reads catalog: {data[:12].decode()}...")

    # Each session writes its own scratch.
    as_session(SESSION_A, blade_store(worker), scratch_a, b"A's work")
    as_session(SESSION_B, blade_store(worker), scratch_b, b"B's work")
    print("  sessions wrote their private scratch areas")

    # Cross-session access and catalog writes are rejected by the switch.
    expect_denied(
        lambda: as_session(SESSION_A, blade_load(worker), scratch_b, 8),
        "session A reading session B's scratch",
    )
    expect_denied(
        lambda: as_session(SESSION_B, blade_store(worker), catalog, b"hack"),
        "session B writing the catalog",
    )

    # The server can revoke a session at any time.
    server.revoke_domain(catalog, SESSION_B)
    expect_denied(
        lambda: as_session(SESSION_B, blade_load(worker), catalog, 8),
        "session B reading the catalog after revocation",
    )
    print("session B revoked; catalog reads now rejected")


def blade_load(thread):
    def action(pdid, va, size):
        return thread.blade.load_bytes(pdid, va, size)

    return action


def blade_store(thread):
    def action(pdid, va, data):
        return thread.blade.store_bytes(pdid, va, data)

    return action


if __name__ == "__main__":
    main()
