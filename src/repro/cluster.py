"""Rack assembly: blades + switch wired into a running MIND cluster.

This is the composition root: it builds the event engine, the star network,
the in-network MMU, and the compute/memory blades, and cross-wires the
pieces (blade invalidation handlers into the coherence engine, memory
blades into translation, the cache-drop callback into the controller's
munmap path).  Everything else -- the public API, the workload runner, the
benchmarks -- builds a cluster and goes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from .blades.compute import ComputeBlade
from .blades.memory import MemoryBlade
from .core.mmu import InNetworkMmu, MindConfig
from .obs.gauges import GaugeSampler
from .obs.tracer import NULL_TRACER, Tracer
from .sim.engine import Engine
from .sim.network import Network, NetworkConfig, PAGE_SIZE
from .sim.stats import StatsCollector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults.message_loss import MessageLossInjector


@dataclass
class ClusterConfig:
    """Shape of the emulated rack (paper's testbed by default)."""

    num_compute_blades: int = 2
    num_memory_blades: int = 1
    #: local DRAM cache per compute blade; the paper limits it to 512 MB
    #: (~25 % of workload footprint) to emulate partial disaggregation.
    cache_capacity_pages: int = (512 * 1024 * 1024) // PAGE_SIZE
    #: keep real page payloads (needed by the byte-level API; trace replays
    #: may disable it for speed/memory).
    store_data: bool = True
    mind: MindConfig = field(default_factory=MindConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    #: enable the observability subsystem: event tracing plus background
    #: gauge sampling.  Off by default -- instrumentation sites then cost a
    #: single ``tracer.enabled`` check.
    trace: bool = False
    #: ring-buffer capacity of the tracer (oldest records drop when full).
    trace_capacity: int = 1 << 16
    #: gauge sampling period in simulated microseconds (when tracing).
    sample_interval_us: float = 100.0
    #: enable windowed telemetry (a :class:`repro.telemetry.MetricsTimeline`
    #: on the stats collector): per-window latency percentiles, counters,
    #: gauges and fault-phase attribution.  Off by default -- when off,
    #: instrumentation sites pay a single ``timeline is None`` check and
    #: the simulation schedules nothing extra.
    telemetry: bool = False
    #: tumbling-window width of the telemetry timeline (simulated us).
    telemetry_window_us: float = 500.0


class MindCluster:
    """A fully wired rack running MIND."""

    #: set by a multi-rack fabric embedding this cluster as a rack node:
    #: the ``(base, length)`` VA slice this rack's switch is home for.
    #: Fail-over quiesces only this range so other racks keep serving.
    quiesce_range: Optional[tuple] = None

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        fault_injector: Optional["MessageLossInjector"] = None,
        *,
        engine: Optional[Engine] = None,
        stats: Optional[StatsCollector] = None,
        port_id_base: int = 0,
    ):
        """Stand-alone by default; a multi-rack fabric passes a shared
        ``engine``/``stats`` and a rack-unique ``port_id_base`` to embed
        the cluster as one rack node in its topology graph (port ids key
        every rack's coherence registries, so they must stay globally
        unique across the fabric)."""
        self.config = config or ClusterConfig()
        self.engine = engine if engine is not None else Engine()
        self.stats = stats if stats is not None else StatsCollector()
        if self.config.telemetry and self.stats.timeline is None:
            # Pure data keyed by simulated time: recording computes the
            # window index from the caller's timestamp, so the timeline
            # adds no scheduled events to the run.
            from .telemetry import MetricsTimeline

            self.stats.timeline = MetricsTimeline(
                window_us=self.config.telemetry_window_us
            )
        #: the observability sink; installed on the engine so every layer
        #: (network, pipeline, coherence, blades) reaches it the same way.
        # When embedded as a rack node, an earlier rack may already have
        # installed the fabric-wide tracer; record into the same ring.
        existing = self.engine.tracer
        if engine is not None and existing is not NULL_TRACER:
            self.tracer = existing
        else:
            self.tracer = Tracer(
                capacity=self.config.trace_capacity, enabled=self.config.trace
            )
            self.engine.tracer = self.tracer
        self.network = Network(
            self.engine, self.config.network, port_id_base=port_id_base
        )
        self.mmu = InNetworkMmu(
            self.engine,
            self.network,
            config=self.config.mind,
            stats=self.stats,
            fault_injector=fault_injector,
        )
        self.memory_blades: List[MemoryBlade] = []
        for i in range(self.config.num_memory_blades):
            blade = MemoryBlade(
                blade_id=i,
                network=self.network,
                capacity_bytes=self.config.mind.memory_blade_capacity,
                store_data=self.config.store_data,
            )
            self.mmu.add_memory_blade(blade)
            self.memory_blades.append(blade)
        self.compute_blades: List[ComputeBlade] = []
        for i in range(self.config.num_compute_blades):
            blade = ComputeBlade(
                blade_id=i,
                engine=self.engine,
                network=self.network,
                datapath=self.mmu.coherence,
                cache_capacity_pages=self.config.cache_capacity_pages,
                stats=self.stats,
            )
            self.compute_blades.append(blade)
            self.mmu.controller.add_compute_blade(i)
        self.mmu.controller.set_drop_cached_range(self._drop_cached_range)
        self.mmu.controller.set_flush_cached_range(self._flush_cached_range)
        self.mmu.controller.set_revoke_domain_range(self._revoke_domain_range)
        #: fault-injection machinery, created lazily by enable_failover /
        #: inject_faults so fault-free runs pay nothing.
        self._failover = None
        self._injectors: List = []
        #: built lazily: fault-free untraced runs (the common sweep point)
        #: never pay for gauge registration.
        self._sampler: Optional[GaugeSampler] = None
        self.mmu.start()
        if self.config.trace or self.config.telemetry:
            # Perpetual background process, like the epoch loop: drive the
            # cluster with run_until_complete-style helpers, not run().
            # Sampling only reads gauges, so it never perturbs simulated
            # results -- telemetry-enabled runs report identical metrics.
            self.sampler.start()

    @property
    def sampler(self) -> GaugeSampler:
        if self._sampler is None:
            self._sampler = self._build_sampler()
        return self._sampler

    def _build_sampler(self) -> GaugeSampler:
        """Register the switch-resource and queue-depth gauges Fig. 8 needs."""
        sampler = GaugeSampler(
            self.engine, self.stats, interval_us=self.config.sample_interval_us
        )
        sampler.add("directory_sram.used", lambda: self.mmu.directory_sram.used)
        sampler.add("tcam.translation", lambda: len(self.mmu.translation_tcam))
        sampler.add("tcam.protection", lambda: len(self.mmu.protection_tcam))
        sampler.add("pipeline.recirculations", lambda: self.mmu.pipeline.recirculations)
        sampler.add("pending_txns", lambda: self.mmu.coherence.pending.occupancy)
        for blade in self.compute_blades:
            lock = blade.kernel_lock
            sampler.add(
                f"blade{blade.blade_id}.kernel_queue",
                lambda l=lock: l.queue_length,
            )
        return sampler

    @property
    def controller(self):
        return self.mmu.controller

    def compute_blade(self, blade_id: int) -> ComputeBlade:
        return self.compute_blades[blade_id]

    def blade_for_port(self, port_id: int) -> Optional[ComputeBlade]:
        for blade in self.compute_blades:
            if blade.port.port_id == port_id:
                return blade
        return None

    def _drop_cached_range(self, base: int, length: int) -> None:
        """munmap support: drop (without write-back) every cached page of a
        freed vma from every compute blade, including its PTEs."""
        for blade in self.compute_blades:
            for page in blade.cache.pages_in(base, length):
                blade.cache.drop(page.va)
                blade.ptes.unmap_page(page.va)

    def _flush_cached_range(self, base: int, length: int) -> None:
        """mprotect support: write dirty pages back to their memory blades
        and drop the range everywhere, so no blade retains a PTE with the
        old (looser) permission.  Runs as a quiesced metadata operation, as
        mprotect on a live range is in real kernels."""
        for blade in self.compute_blades:
            for page in blade.cache.pages_in(base, length):
                if page.dirty and page.data is not None:
                    xlate = self.mmu.address_space.translate(page.va)
                    self.memory_blades[xlate.blade_id].write_page(
                        xlate.pa, bytes(page.data)
                    )
                blade.cache.drop(page.va)
                blade.ptes.unmap_page(page.va)

    def _revoke_domain_range(self, pdid: int, base: int, length: int) -> None:
        """Domain revocation: drop only that domain's PTEs everywhere."""
        for blade in self.compute_blades:
            blade.ptes.unmap_domain_range(pdid, base, length)

    # -- fault injection -------------------------------------------------------

    def enable_failover(self, config=None):
        """Arm the Section 4.4 fail-over path: replicate the control plane
        on the metadata path and stand a backup switch by.  Idempotent;
        returns the :class:`~repro.faults.failover.FailoverOrchestrator`."""
        if self._failover is None:
            from .faults.failover import FailoverOrchestrator

            self._failover = FailoverOrchestrator(self, config)
        return self._failover

    @property
    def failover(self):
        return self._failover

    def inject_faults(self, plan):
        """Arm a :class:`~repro.faults.plan.FaultPlan` on this cluster.

        Link-loss windows are installed immediately; timed events (blade
        faults, CPU stalls, switch crashes) are scheduled as simulation
        processes.  Returns the armed injector."""
        from .faults.injector import FaultInjector as PlanInjector

        injector = PlanInjector(self, plan)
        injector.start()
        self._injectors.append(injector)
        return injector

    # -- observability ---------------------------------------------------------

    def capture_telemetry(self) -> None:
        """Stash end-of-run switch-resource peaks and queueing telemetry in
        the stats collector, so :meth:`RunResult.report` works from stats
        alone (and survives pickling).  Idempotent: counters are assigned,
        not accumulated."""
        stats = self.stats
        stats.counters["directory_peak"] = self.mmu.directory_sram.peak_used
        stats.counters["directory_final"] = len(self.mmu.directory)
        stats.counters["match_action_rules"] = self.mmu.match_action_rules()["total"]
        stats.counters["pipeline_passes"] = self.mmu.pipeline.passes
        stats.counters["recirculations"] = self.mmu.pipeline.recirculations
        stats.counters["pending_table_peak"] = self.mmu.coherence.pending.peak
        dropped = self.network.total_packets_dropped()
        if dropped:
            stats.counters["link_packets_dropped"] = dropped
            stats.counters["link_bytes_dropped"] = self.network.total_bytes_dropped()
        refused = sum(b.requests_refused for b in self.memory_blades)
        if refused:
            stats.counters["blade_requests_refused"] = refused
        if self.mmu.control_cpu.stalls:
            stats.counters["control_cpu_stalls"] = self.mmu.control_cpu.stalls
            stats.set_gauge("control_cpu_stall_us", self.mmu.control_cpu.stall_us)
        galloc = self.mmu.allocator
        if galloc.modeled:
            # Allocator-axis telemetry (only when the axis is set, so the
            # default run's metric set stays bit-identical).
            from .alloc import alloc_gauges

            stats.counters["alloc_ops"] = self.mmu.control_cpu.alloc_ops
            stats.set_gauge("alloc:cpu_us", self.mmu.control_cpu.alloc_us)
            for name, value in alloc_gauges([galloc.raw_telemetry()]).items():
                stats.set_gauge(name, value)
            sram = self.mmu.alloc_metadata_sram
            if sram is not None:
                stats.set_gauge("alloc:metadata_peak_bytes", float(sram.peak_used))
                stats.set_gauge(
                    "alloc:metadata_utilization", sram.utilization()
                )
                if sram.overflows:
                    stats.counters["alloc_metadata_overflows"] = sram.overflows
        for resource in self.engine.resources:
            if resource.total_wait_us:
                stats.set_gauge(f"wait_us:{resource.name}", resource.total_wait_us)
            utilization = resource.utilization()
            if utilization:
                stats.set_gauge(f"utilization:{resource.name}", utilization)
        if self.config.trace or self.config.telemetry:
            self.sampler.sample_once()
        timeline = stats.timeline
        if timeline is not None:
            timeline.finalize(self.engine.now)

    # -- execution helpers ----------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        return self.engine.run(until=until)

    def run_process(self, gen, name: Optional[str] = None):
        return self.engine.run_process(gen, name)

    def run_all(self, gens: List) -> List:
        """Run several processes concurrently to completion (a barrier)."""
        procs = [self.engine.process(g) for g in gens]
        barrier = self.engine.all_of(procs)
        return self.engine.run_until_complete(barrier)
