"""Workload runner: replay a trace workload on any of the evaluated systems.

This is the harness behind every scaling figure: it builds a fresh cluster
of the requested system, performs the workload's allocations, binds the
deterministic per-thread traces, runs all threads concurrently in simulated
time, and returns a :class:`repro.sim.stats.RunResult` whose
``runtime_us`` / ``throughput_iops`` / counters are what the figures plot.

Systems (Section 7's comparison set):

- ``mind``       -- MIND under TSO (the hardware-realizable configuration).
- ``mind-pso``   -- MIND with the simulated PSO relaxation (Fig. 5 center).
- ``mind-pso+``  -- PSO plus an effectively infinite switch directory.
- ``mind-mesi``  -- extension: MIND running the MESI STT (Section 8).
- ``mind-moesi`` -- extension: MOESI with cache-to-cache transfers (Section 8).
- ``gam``        -- the software-DSM baseline.
- ``fastswap``   -- the single-blade swap baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from .baselines.fastswap import FastSwapSystem
from .baselines.gam import GamSystem
from .blades.consistency import ConsistencyModel
from .cluster import ClusterConfig, MindCluster
from .core.mmu import MindConfig
from .sim.network import PAGE_SIZE, NetworkConfig
from .sim.stats import RunResult
from .workloads.openloop import (
    open_loop_thread,
    spec_from_config,
    thread_arrival_seed,
)
from .workloads.trace import TraceWorkload

SYSTEMS = ("mind", "mind-pso", "mind-pso+", "mind-mesi", "mind-moesi", "gam", "fastswap")


@dataclass
class RunnerConfig:
    """Cluster sizing knobs shared by all systems for a fair comparison."""

    num_memory_blades: int = 4
    #: cache per compute blade as a fraction of the workload footprint
    #: (the paper emulates partial disaggregation at ~25 %).
    cache_fraction: float = 0.25
    #: hard override for the per-blade cache, in pages.
    cache_capacity_pages: Optional[int] = None
    memory_blade_capacity: int = 1 << 34
    network: Optional[NetworkConfig] = None
    mind: Optional[MindConfig] = None
    #: store page payloads (off for trace replay: timings don't need bytes).
    store_data: bool = False
    #: Bounded Splitting epoch for replays.  The paper's epoch is 100 ms
    #: against minutes-long workloads; our traces run for milliseconds, so
    #: the epoch is compressed proportionally (time-scale compression --
    #: documented in EXPERIMENTS.md).  None keeps the MindConfig default.
    epoch_us: Optional[float] = 5_000.0
    #: enable observability: event tracing + gauge sampling.  The tracer is
    #: attached to the returned RunResult as ``result.trace``.
    trace: bool = False
    #: tracer ring-buffer capacity when tracing is enabled.
    trace_capacity: int = 1 << 16
    #: gauge sampling period (simulated us) when tracing is enabled.
    sample_interval_us: float = 100.0
    #: enable windowed telemetry: per-window latency percentiles (p50/p99/
    #: p99.9/max), counter deltas, gauge samples and fault-phase
    #: attribution, surfaced as the report's ``timeline``/``slo`` sections.
    telemetry: bool = False
    #: tumbling-window width of the telemetry timeline (simulated us).
    telemetry_window_us: float = 500.0
    #: open-loop arrival process ("poisson" or "diurnal"); None replays
    #: the trace closed-loop as the scaling figures do.  MIND systems
    #: only: latency-under-load is measured against the switch data path.
    arrival_process: Optional[str] = None
    #: mean open-loop arrival rate per thread (requests per simulated us).
    arrival_rate_per_thread: float = 0.02
    #: trace accesses consumed per open-loop request.
    request_size: int = 8
    #: diurnal modulation period / amplitude (ignored for plain Poisson).
    diurnal_period_us: float = 20_000.0
    diurnal_amplitude: float = 0.5
    #: allocation-policy axis ("first-fit", "slab", "buddy", "arena",
    #: "bump").  MIND systems only: the policy runs on the switch control
    #: CPU.  None keeps the default first-fit with cost modeling off (the
    #: bit-identical baseline path); any name activates modeling.
    allocator: Optional[str] = None
    #: fault schedule (a :class:`repro.faults.FaultPlan`) armed on the
    #: cluster before the workload starts.  MIND systems only -- the
    #: baselines have no switch to fail over.
    fault_plan: Optional[object] = None


def _base_mind(cfg: RunnerConfig) -> MindConfig:
    """The MindConfig a run starts from (applies epoch compression)."""
    if cfg.mind is not None:
        return cfg.mind
    if cfg.epoch_us is not None:
        return MindConfig(epoch_us=cfg.epoch_us)
    return MindConfig()


def _cache_pages(workload: TraceWorkload, cfg: RunnerConfig) -> int:
    if cfg.cache_capacity_pages is not None:
        return cfg.cache_capacity_pages
    footprint_pages = workload.footprint_bytes() // PAGE_SIZE
    return max(256, int(footprint_pages * cfg.cache_fraction))


def run_on_mind(
    workload: TraceWorkload,
    num_blades: int,
    config: Optional[RunnerConfig] = None,
    consistency: ConsistencyModel = ConsistencyModel.TSO,
    mind_config: Optional[MindConfig] = None,
    system_name: str = "MIND",
) -> RunResult:
    """Replay ``workload`` on a fresh MIND cluster of ``num_blades``."""
    cfg = config or RunnerConfig()
    mind = mind_config or _base_mind(cfg)
    if cfg.allocator is not None:
        mind = replace(mind, allocator=cfg.allocator)
    cluster_config = ClusterConfig(
        num_compute_blades=num_blades,
        num_memory_blades=cfg.num_memory_blades,
        cache_capacity_pages=_cache_pages(workload, cfg),
        store_data=cfg.store_data,
        mind=mind,
        network=cfg.network or NetworkConfig(),
        trace=cfg.trace,
        trace_capacity=cfg.trace_capacity,
        sample_interval_us=cfg.sample_interval_us,
        telemetry=cfg.telemetry,
        telemetry_window_us=cfg.telemetry_window_us,
    )
    cluster = MindCluster(cluster_config)
    controller = cluster.controller
    task = controller.sys_exec(workload.name)
    bases = [
        controller.sys_mmap(task.pid, spec.size_bytes)
        for spec in workload.region_specs()
    ]
    traces = workload.all_traces(bases)
    if cfg.fault_plan is not None:
        # Arm after mmap so scheduled faults hit a populated control plane.
        cluster.inject_faults(cfg.fault_plan)
    arrival_spec = spec_from_config(cfg)
    gens = []
    for trace in traces:
        thread = controller.place_thread(task.pid)
        blade = cluster.compute_blade(thread.blade_id)
        if arrival_spec is not None:
            gens.append(
                open_loop_thread(
                    blade,
                    task.pid,
                    trace.stream(),
                    arrival_spec,
                    thread_arrival_seed(
                        workload.name, workload.seed, trace.thread_id
                    ),
                    consistency,
                    name=f"openloop.t{trace.thread_id}",
                )
            )
        else:
            gens.append(
                blade.run_thread(task.pid, trace.stream(), consistency=consistency)
            )
    cluster.run_all(gens)
    total = sum(len(t) for t in traces)
    # Stash switch-resource and queueing telemetry the figures/reports need.
    cluster.capture_telemetry()
    return RunResult(
        system=system_name,
        workload=workload.name,
        num_blades=num_blades,
        num_threads=workload.num_threads,
        runtime_us=cluster.engine.now,
        total_accesses=total,
        stats=cluster.stats,
        trace=cluster.tracer if cfg.trace else None,
        kernel_stats=cluster.engine.kernel_stats(),
    )


def run_system(
    system: str,
    workload: TraceWorkload,
    num_blades: int,
    config: Optional[RunnerConfig] = None,
) -> RunResult:
    """Dispatch a run to one of the evaluated systems by name."""
    cfg = config or RunnerConfig()
    key = system.lower()
    if cfg.fault_plan is not None and key in ("gam", "fastswap"):
        raise ValueError(
            f"fault plans target the MIND switch; {system!r} has no switch "
            "data plane to fail over"
        )
    if cfg.arrival_process is not None and key in ("gam", "fastswap"):
        raise ValueError(
            "open-loop arrival processes measure latency-under-load against "
            f"the MIND data path; {system!r} only replays closed-loop"
        )
    if cfg.allocator is not None and key in ("gam", "fastswap"):
        raise ValueError(
            "the allocator axis selects the MIND switch's allocation "
            f"policy; {system!r} has no in-network allocator"
        )
    if key == "mind":
        return run_on_mind(workload, num_blades, cfg)
    if key == "mind-pso":
        return run_on_mind(
            workload,
            num_blades,
            cfg,
            consistency=ConsistencyModel.PSO,
            system_name="MIND-PSO",
        )
    if key == "mind-pso+":
        big_directory = replace(_base_mind(cfg), directory_capacity=10_000_000)
        return run_on_mind(
            workload,
            num_blades,
            cfg,
            consistency=ConsistencyModel.PSO,
            mind_config=big_directory,
            system_name="MIND-PSO+",
        )
    if key == "mind-mesi":
        mesi = replace(_base_mind(cfg), protocol="mesi")
        return run_on_mind(
            workload, num_blades, cfg, mind_config=mesi, system_name="MIND-MESI"
        )
    if key == "mind-moesi":
        moesi = replace(_base_mind(cfg), protocol="moesi")
        return run_on_mind(
            workload, num_blades, cfg, mind_config=moesi, system_name="MIND-MOESI"
        )
    if key == "gam":
        gam = GamSystem(
            num_blades=num_blades,
            num_memory_blades=cfg.num_memory_blades,
            cache_capacity_pages=_cache_pages(workload, cfg),
            network_config=cfg.network,
            memory_blade_capacity=cfg.memory_blade_capacity,
        )
        return gam.run_workload(workload)
    if key == "fastswap":
        if num_blades != 1:
            raise ValueError(
                "FastSwap does not share memory across compute blades "
                "(Section 2.2); it only has single-blade data points"
            )
        fastswap = FastSwapSystem(
            num_memory_blades=cfg.num_memory_blades,
            cache_capacity_pages=_cache_pages(workload, cfg),
            network_config=cfg.network,
            memory_blade_capacity=cfg.memory_blade_capacity,
        )
        return fastswap.run_workload(workload)
    raise ValueError(f"unknown system {system!r}; choose from {SYSTEMS}")


def scaling_sweep(
    system: str,
    workload_factory,
    blade_counts: List[int],
    threads_per_blade: int,
    config: Optional[RunnerConfig] = None,
) -> Dict[int, RunResult]:
    """Run a workload at several blade counts (the Fig. 5 sweeps).

    ``workload_factory(num_threads)`` builds the workload sized for each
    point; per the paper, each blade runs ``threads_per_blade`` threads.
    """
    results: Dict[int, RunResult] = {}
    for blades in blade_counts:
        workload = workload_factory(blades * threads_per_blade)
        results[blades] = run_system(system, workload, blades, config)
    return results
