"""SLO objectives and error-budget burn-rate accounting over timelines.

An :class:`SloObjective` is the SRE-style statement "percentile P of
latency category C stays below T microseconds in at least ``target`` of
windows".  :func:`evaluate_slos` checks each objective against every
non-empty window of a :class:`~.windows.MetricsTimeline`:

- **compliance** is the fraction of evaluated windows that met the
  threshold;
- the **error budget** is the fraction of windows the target permits to
  violate (``1 - target``); the **burn rate** is the ratio of the
  observed violation fraction to that budget.  Burn rate 1.0 means the
  run consumed its budget exactly; above 1.0 the objective is missed.
- violations are attributed to the service phase
  (``pre``/``degraded``/``post``) active in each violating window, so a
  fail-over report can show the burn concentrated in the outage.

Windows with no samples of the objective's category are excluded from
compliance (an idle window neither meets nor misses a latency target);
they remain visible in the timeline document itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .windows import MetricsTimeline

#: snapshot-latency keys by percentile rank.
_STAT_KEYS = {50.0: "p50", 99.0: "p99", 99.9: "p999", 100.0: "max"}


@dataclass(frozen=True)
class SloObjective:
    """One windowed latency objective."""

    name: str
    #: latency category the objective watches (e.g. ``fault``,
    #: ``openloop:latency``).
    category: str
    #: percentile rank evaluated per window (50, 99, 99.9 or 100).
    percentile: float
    #: the latency bound, in simulated microseconds.
    threshold_us: float
    #: required fraction of evaluated windows meeting the bound.
    target: float = 0.99

    def __post_init__(self) -> None:
        if self.percentile not in _STAT_KEYS:
            raise ValueError(
                f"objective percentile must be one of {sorted(_STAT_KEYS)}, "
                f"got {self.percentile!r}"
            )
        if not 0.0 < self.target <= 1.0:
            raise ValueError("objective target must be in (0, 1]")
        if self.threshold_us <= 0:
            raise ValueError("objective threshold must be positive")

    @property
    def stat_key(self) -> str:
        return _STAT_KEYS[self.percentile]

    def describe(self) -> str:
        return (
            f"{self.name}: {self.category} {self.stat_key} "
            f"<= {self.threshold_us:g} us in {self.target:.1%} of windows"
        )


#: objectives evaluated by default: the coherence fault path (every MIND
#: run records it) and the open-loop end-to-end latency (when measured).
DEFAULT_OBJECTIVES: Sequence[SloObjective] = (
    SloObjective("fault-p99", "fault", 99.0, 60.0, target=0.99),
    SloObjective("fault-p999", "fault", 99.9, 250.0, target=0.999),
    SloObjective("openloop-p99", "openloop:latency", 99.0, 200.0, target=0.99),
    SloObjective(
        "openloop-p999", "openloop:latency", 99.9, 1_000.0, target=0.999
    ),
)


@dataclass
class SloResult:
    """One objective's verdict over a timeline."""

    objective: SloObjective
    windows_evaluated: int
    windows_violating: int
    #: violating window indices, in time order.
    violations: List[int] = field(default_factory=list)
    #: phase -> violating-window count (phases only when tracked).
    violations_by_phase: Dict[str, int] = field(default_factory=dict)

    @property
    def compliance(self) -> float:
        if self.windows_evaluated == 0:
            return 1.0
        return 1.0 - self.windows_violating / self.windows_evaluated

    @property
    def budget_windows(self) -> float:
        """Violating windows the error budget allows."""
        return (1.0 - self.objective.target) * self.windows_evaluated

    @property
    def burn_rate(self) -> float:
        """Observed violation fraction over the allowed fraction."""
        if self.windows_evaluated == 0:
            return 0.0
        budget = 1.0 - self.objective.target
        observed = self.windows_violating / self.windows_evaluated
        if budget == 0.0:
            return 0.0 if observed == 0.0 else float("inf")
        return observed / budget

    @property
    def met(self) -> bool:
        return self.compliance >= self.objective.target

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.objective.name,
            "category": self.objective.category,
            "percentile": self.objective.percentile,
            "threshold_us": self.objective.threshold_us,
            "target": self.objective.target,
            "windows_evaluated": self.windows_evaluated,
            "windows_violating": self.windows_violating,
            "compliance": self.compliance,
            "burn_rate": self.burn_rate,
            "met": self.met,
            "violations": list(self.violations),
            "violations_by_phase": dict(sorted(self.violations_by_phase.items())),
        }


@dataclass
class SloReport:
    """All evaluated objectives for one run."""

    window_us: float
    results: List[SloResult] = field(default_factory=list)

    @property
    def met(self) -> bool:
        return all(r.met for r in self.results)

    def to_json(self) -> Dict[str, Any]:
        return {
            "window_us": self.window_us,
            "met": self.met,
            "objectives": [r.to_json() for r in self.results],
        }

    def render(self) -> List[str]:
        lines = []
        for r in self.results:
            status = "met" if r.met else "MISSED"
            lines.append(
                f"  {r.objective.name:<16s} {status:<7s}"
                f"compliance {r.compliance:7.2%}  "
                f"burn {r.burn_rate:6.2f}x  "
                f"({r.windows_violating}/{r.windows_evaluated} windows over "
                f"{r.objective.threshold_us:g} us {r.objective.stat_key})"
            )
            if r.violations_by_phase:
                phase_bits = ", ".join(
                    f"{p}={n}" for p, n in sorted(r.violations_by_phase.items())
                )
                lines.append(f"    violations by phase: {phase_bits}")
        return lines


def evaluate_slos(
    timeline: MetricsTimeline,
    objectives: Optional[Sequence[SloObjective]] = None,
) -> SloReport:
    """Evaluate ``objectives`` (default :data:`DEFAULT_OBJECTIVES`) over
    ``timeline``.  Objectives whose category never appears are skipped,
    so the default set applies cleanly to both closed- and open-loop
    runs."""
    if objectives is None:
        objectives = DEFAULT_OBJECTIVES
    snapshots = timeline.snapshots()
    categories = set(timeline.categories())
    report = SloReport(window_us=timeline.window_us)
    for objective in objectives:
        if objective.category not in categories:
            continue
        result = SloResult(objective, windows_evaluated=0, windows_violating=0)
        for snap in snapshots:
            stats = snap.latencies.get(objective.category)
            if stats is None:
                continue
            result.windows_evaluated += 1
            if stats[objective.stat_key] > objective.threshold_us:
                result.windows_violating += 1
                result.violations.append(snap.index)
                if snap.phase is not None:
                    result.violations_by_phase[snap.phase] = (
                        result.violations_by_phase.get(snap.phase, 0) + 1
                    )
        report.results.append(result)
    return report
