"""Windowed telemetry: streaming metrics on the simulated-time axis.

Whole-run aggregates (``StatsCollector``) answer "what was the p99" but
not "what was the p99 *while the switch was down*".  This package adds
the time axis:

- :class:`~repro.telemetry.histogram.LogHistogram` -- constant-memory
  log-bucketed (HDR-style) latency histograms with deterministic
  percentile extraction and lossless merging;
- :class:`~repro.telemetry.windows.MetricsTimeline` -- tumbling-window
  snapshots of latencies (p50/p99/p99.9/max), counters and gauges, with
  fault-phase attribution joining the ``repro.faults`` markers to
  windows;
- :mod:`~repro.telemetry.slo` -- SLO objective definitions evaluated
  over the timeline, with error-budget burn-rate accounting.

Everything is pure data keyed by simulated time: recording computes a
window index from the caller-supplied timestamp, so the timeline needs
no scheduled events of its own and costs nothing when disabled (the
kernel contract of the fast-path work: telemetry stays off the hot
path).  Timelines pickle with the owning ``StatsCollector``, merge
associatively, and serialize to byte-stable JSON documents, so sweep
documents carrying windowed series are identical at any ``--jobs``.
"""

from .histogram import LogHistogram
from .slo import DEFAULT_OBJECTIVES, SloObjective, SloReport, evaluate_slos
from .windows import MetricsTimeline, WindowSnapshot

__all__ = [
    "DEFAULT_OBJECTIVES",
    "LogHistogram",
    "MetricsTimeline",
    "SloObjective",
    "SloReport",
    "WindowSnapshot",
    "evaluate_slos",
]
