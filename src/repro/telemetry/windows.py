"""Tumbling-window metric timelines on the simulated clock.

A :class:`MetricsTimeline` partitions simulated time into fixed tumbling
windows of ``window_us`` and accumulates, per window:

- latency samples per category, into :class:`~.histogram.LogHistogram`
  buckets (constant memory, deterministic p50/p99/p99.9/max);
- counters (deltas per window) and gauges (last-written value);
- fault-phase attribution: the ``pre``/``degraded``/``post`` service
  phases the fail-over orchestrator announces are joined to windows, so
  a report can show exactly which windows a crash degraded;
- instant marks (fault-injector events), kept as a flat annotated list.

There is **no flushing process**: the window index is computed from the
caller-supplied timestamp at record time (``int(t / window_us)``), so the
timeline schedules nothing, perturbs no event ordering, and adds zero
events to the simulation -- the same run with telemetry on or off
executes the identical event sequence.  That is the kernel contract the
fast-path work established: observability must not change the simulated
world.

Snapshots enumerate *every* window from 0 to the finalize time,
including empty ones -- an empty window during an outage is the
measurement ("no request completed for 800 us"), not missing data.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .histogram import LogHistogram

#: schema tag stamped on serialized timeline documents.
TIMELINE_SCHEMA = "repro.telemetry/v1"

#: percentiles every window snapshot reports, in rank order.
WINDOW_PERCENTILES = (50.0, 99.0, 99.9)

#: series() statistic names -> percentile ranks.
_PERCENTILE_STATS = {"p50": 50.0, "p99": 99.0, "p999": 99.9}


@dataclass
class WindowSnapshot:
    """One tumbling window's digest (plain data, JSON-shaped)."""

    index: int
    t_start: float
    t_end: float
    #: service phase active at the window start (None without tracking).
    phase: Optional[str]
    #: category -> {count, mean, p50, p99, p999, max}.
    latencies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: counter name -> delta accumulated inside this window.
    counters: Dict[str, float] = field(default_factory=dict)
    #: gauge name -> last value written inside this window.
    gauges: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "window": self.index,
            "t_start": self.t_start,
            "t_end": self.t_end,
        }
        if self.phase is not None:
            doc["phase"] = self.phase
        if self.latencies:
            doc["latencies"] = self.latencies
        if self.counters:
            doc["counters"] = self.counters
        if self.gauges:
            doc["gauges"] = self.gauges
        return doc


class MetricsTimeline:
    """Windowed latency/counter/gauge accumulator for one run."""

    def __init__(self, window_us: float = 500.0):
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.window_us = float(window_us)
        #: category -> window index -> histogram.
        self._latencies: Dict[str, Dict[int, LogHistogram]] = {}
        #: counter name -> window index -> accumulated delta.
        self._counters: Dict[str, Dict[int, float]] = {}
        #: gauge name -> window index -> last value.
        self._gauges: Dict[str, Dict[int, float]] = {}
        #: (t, label) instants from the fault injector / orchestrator.
        self.marks: List[Tuple[float, str]] = []
        #: (t, phase) service-phase transitions, in announcement order.
        self.phases: List[Tuple[float, str]] = []
        #: high-water mark of observed simulated time.
        self._t_end = 0.0

    # -- recording (called from instrumentation sites) -------------------

    def _window(self, t: float) -> int:
        if t > self._t_end:
            self._t_end = t
        return int(t / self.window_us)

    def record_latency(self, t: float, category: str, value: float) -> None:
        windows = self._latencies.get(category)
        if windows is None:
            windows = self._latencies[category] = {}
        w = self._window(t)
        hist = windows.get(w)
        if hist is None:
            hist = windows[w] = LogHistogram()
        hist.record(value)

    def incr(self, t: float, name: str, amount: float = 1.0) -> None:
        windows = self._counters.get(name)
        if windows is None:
            windows = self._counters[name] = {}
        w = self._window(t)
        windows[w] = windows.get(w, 0.0) + amount

    def gauge(self, t: float, name: str, value: float) -> None:
        windows = self._gauges.get(name)
        if windows is None:
            windows = self._gauges[name] = {}
        windows[self._window(t)] = value

    def mark(self, t: float, label: str) -> None:
        self._window(t)
        self.marks.append((t, label))

    def set_phase(self, t: float, phase: str) -> None:
        if self.phases and self.phases[-1][1] == phase:
            return
        self._window(t)
        self.phases.append((t, phase))

    def finalize(self, t: float) -> None:
        """Extend the timeline's horizon to the run's end time."""
        if t > self._t_end:
            self._t_end = t

    # -- merging (per-thread partial collectors) -------------------------

    def merge(self, other: "MetricsTimeline") -> None:
        if other.window_us != self.window_us:
            raise ValueError(
                "cannot merge timelines with different windows "
                f"({self.window_us} vs {other.window_us})"
            )
        for cat, windows in other._latencies.items():
            mine = self._latencies.setdefault(cat, {})
            for w, hist in windows.items():
                if w in mine:
                    mine[w].merge(hist)
                else:
                    mine[w] = hist
        for name, windows in other._counters.items():
            mine_c = self._counters.setdefault(name, {})
            for w, delta in windows.items():
                mine_c[w] = mine_c.get(w, 0.0) + delta
        for name, windows in other._gauges.items():
            self._gauges.setdefault(name, {}).update(windows)
        self.marks.extend(other.marks)
        for t, phase in other.phases:
            self.set_phase(t, phase)
        self.finalize(other._t_end)

    # -- reading ---------------------------------------------------------

    @property
    def num_windows(self) -> int:
        if self._t_end <= 0.0:
            return 0
        return int(self._t_end / self.window_us) + 1

    def phase_at(self, t: float) -> Optional[str]:
        """Service phase active at time ``t`` (None if never tracked)."""
        if not self.phases:
            return None
        pos = bisect.bisect_right([pt for pt, _ in self.phases], t) - 1
        return self.phases[max(0, pos)][1]

    def categories(self) -> List[str]:
        return sorted(self._latencies)

    def snapshots(self) -> List[WindowSnapshot]:
        """Every window from 0 to the horizon, empty windows included."""
        out: List[WindowSnapshot] = []
        for w in range(self.num_windows):
            t_start = w * self.window_us
            snap = WindowSnapshot(
                index=w,
                t_start=t_start,
                t_end=t_start + self.window_us,
                phase=self.phase_at(t_start),
            )
            for cat in sorted(self._latencies):
                hist = self._latencies[cat].get(w)
                if hist is None or hist.count == 0:
                    continue
                p50, p99, p999 = hist.percentiles(WINDOW_PERCENTILES)
                snap.latencies[cat] = {
                    "count": float(hist.count),
                    "mean": hist.mean,
                    "p50": p50,
                    "p99": p99,
                    "p999": p999,
                    "max": hist.max,
                }
            for name in sorted(self._counters):
                delta = self._counters[name].get(w)
                if delta is not None:
                    snap.counters[name] = delta
            for name in sorted(self._gauges):
                value = self._gauges[name].get(w)
                if value is not None:
                    snap.gauges[name] = value
            out.append(snap)
        return out

    def series(self, category: str, stat: str = "p999") -> List[float]:
        """Per-window values of one latency statistic (0.0 where empty)."""
        windows = self._latencies.get(category, {})
        out = []
        for w in range(self.num_windows):
            hist = windows.get(w)
            if hist is None or hist.count == 0:
                out.append(0.0)
            elif stat == "count":
                out.append(float(hist.count))
            elif stat == "mean":
                out.append(hist.mean)
            elif stat == "max":
                out.append(hist.max)
            else:
                out.append(hist.percentile(_PERCENTILE_STATS[stat]))
        return out

    # -- serialization ---------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """Byte-stable document (all keys sorted or enumeration-ordered)."""
        return {
            "schema": TIMELINE_SCHEMA,
            "window_us": self.window_us,
            "num_windows": self.num_windows,
            "horizon_us": self._t_end,
            "windows": [snap.to_json() for snap in self.snapshots()],
            "marks": [[t, label] for t, label in self.marks],
            "phases": [[t, phase] for t, phase in self.phases],
        }
