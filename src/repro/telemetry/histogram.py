"""Log-bucketed latency histograms (the HDR-histogram idea, simplified).

A :class:`LogHistogram` records latency samples into geometrically spaced
buckets: ``buckets_per_decade`` buckets per factor-of-10 of value, so the
relative width of every bucket -- and therefore the worst-case relative
error of any reported percentile -- is ``10**(1/buckets_per_decade) - 1``
(~2.6 % at the default 90/decade).  Memory is bounded by the value range
actually observed, not the sample count: a million samples spanning six
decades costs at most ``6 * 90`` integer cells.

Percentiles are extracted by an integer-rank walk over the sorted bucket
indices, which makes them a pure function of the recorded multiset --
deterministic across platforms, merge orders and process boundaries
(the sweep engine's byte-identity contract).  Exact ``min``/``max`` are
tracked on the side and clamp the bucket representatives, so the extreme
percentiles (p0, p100) are exact.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

#: default resolution: ~2.6 % worst-case relative error per percentile.
BUCKETS_PER_DECADE = 90

#: smallest distinguishable latency (1 ns in our microsecond unit);
#: values at or below it share bucket 0.
MIN_TRACKABLE_US = 1e-3


class LogHistogram:
    """Constant-memory latency histogram with deterministic percentiles."""

    __slots__ = ("buckets_per_decade", "_scale", "counts", "count",
                 "min", "max", "sum")

    def __init__(self, buckets_per_decade: int = BUCKETS_PER_DECADE):
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.buckets_per_decade = buckets_per_decade
        self._scale = float(buckets_per_decade)
        #: sparse bucket index -> sample count.
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self.sum = 0.0

    # -- recording -------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= MIN_TRACKABLE_US:
            return 0
        return 1 + int(math.log10(value / MIN_TRACKABLE_US) * self._scale)

    def record(self, value: float, count: int = 1) -> None:
        value = float(value)
        idx = self._index(value)
        self.counts[idx] = self.counts.get(idx, 0) + count
        self.count += count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.sum += value * count

    # -- reading ---------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _bucket_upper(self, idx: int) -> float:
        """Upper edge of bucket ``idx`` (its reported representative)."""
        if idx <= 0:
            return MIN_TRACKABLE_US
        return MIN_TRACKABLE_US * 10.0 ** (idx / self._scale)

    def percentile(self, q: float) -> float:
        return self.percentiles((q,))[0]

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        """Values at percentiles ``qs`` (each in [0, 100]), one bucket walk.

        The rank of percentile ``q`` over ``n`` samples is
        ``ceil(q/100 * n)`` clamped to [1, n]; the reported value is the
        representative of the bucket holding that rank, clamped into the
        exact observed [min, max].
        """
        if self.count == 0:
            return [0.0 for _ in qs]
        order = sorted(range(len(qs)), key=lambda i: qs[i])
        out = [0.0] * len(qs)
        items = sorted(self.counts.items())
        pos = 0
        cumulative = items[0][1]
        for i in order:
            q = qs[i]
            if not 0.0 <= q <= 100.0:
                raise ValueError(f"percentile {q!r} outside [0, 100]")
            rank = min(self.count, max(1, math.ceil(q / 100.0 * self.count)))
            if rank == 1:
                # The lowest rank is the observed minimum, tracked exactly.
                out[i] = self.min
                continue
            while cumulative < rank:
                pos += 1
                cumulative += items[pos][1]
            value = self._bucket_upper(items[pos][0])
            out[i] = min(self.max, max(self.min, value))
        return out

    # -- merging ---------------------------------------------------------

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other`` into this histogram (lossless: bucket-exact)."""
        if other.buckets_per_decade != self.buckets_per_decade:
            raise ValueError(
                "cannot merge histograms with different resolutions "
                f"({self.buckets_per_decade} vs {other.buckets_per_decade})"
            )
        for idx, n in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + n
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.sum += other.sum

    # -- serialization ---------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "buckets_per_decade": self.buckets_per_decade,
            "count": self.count,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "sum": self.sum,
            "buckets": [[idx, n] for idx, n in sorted(self.counts.items())],
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "LogHistogram":
        hist = cls(buckets_per_decade=int(data["buckets_per_decade"]))  # type: ignore[arg-type]
        buckets: Iterable[Tuple[int, int]] = data["buckets"]  # type: ignore[assignment]
        hist.counts = {int(idx): int(n) for idx, n in buckets}
        hist.count = int(data["count"])  # type: ignore[arg-type]
        if hist.count:
            hist.min = float(data["min"])  # type: ignore[arg-type]
            hist.max = float(data["max"])  # type: ignore[arg-type]
        hist.sum = float(data["sum"])  # type: ignore[arg-type]
        return hist
