"""Parallel-in-time multirack execution: independent racks, concurrent.

A multirack scenario point with ``cross_fraction=0`` (or whose realized
cross-rack draws happen to leave some racks never exchanging traffic) is
several *disjoint* simulations sharing one engine: rack components that
never touch each other's addresses, links or directories.  The serial
runner still interleaves all of their events through a single clock; this
module instead simulates each component in its own worker process and
merges the results so the final :class:`~repro.sim.stats.RunResult` is
**byte-identical** to the serial run -- the same guarantee the sweep's
``--jobs`` fan-out makes across points, applied within one point.

The conservative part of the design is the planner: two racks belong to
the same component whenever *any* pre-generated thread stream homed on
one touches pages homed on the other (the draws are pure functions of the
seed, so planning never perturbs the simulation).  Anything that couples
racks outside the access streams falls back to the serial runner
entirely: windowed telemetry (one shared timeline) and modeled allocators
(cross-rack gauge arithmetic).  Every shipped preset point has
``cross_fraction > 0`` and therefore one fully-connected component --
also the serial fallback -- so this path is opt-in twice over: a caller
must ask for it *and* the workload must actually decompose.

Why the merge is exact:

- **Counters** are additive integers.  Workers report deltas over the
  (deterministic, identical-everywhere) post-setup baseline; the merge
  starts from a local setup-only fabric and adds the deltas.
- **Latency samples** feed order-sensitive statistics (``numpy``'s
  pairwise mean), so each worker logs ``(time, category, value)`` per
  sample and the merge replays them in ``(time, component, local order)``
  -- the same order the serial engine executes completion events, since
  independent components only tie at synchronized instants where the
  serial tie-break follows process-creation (= rack) order.
- **Gauges** go through the same :func:`aggregate_rack_telemetry` the
  serial capture uses, over per-rack raw tallies collected from each
  rack's owning worker, with utilization evaluated against the global
  makespan (max over components) rather than any worker's local clock.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..blades.consistency import ConsistencyModel
from ..sim.network import PAGE_SIZE
from ..sim.stats import RunResult
from ..workloads.openloop import open_loop_thread, thread_arrival_seed
from .fabric import MultiRackFabric, aggregate_rack_telemetry
from .runner import (
    MultiRackScenarioConfig,
    _thread_draws,
    _thread_stream,
    build_fabric,
    run_multirack,
)

#: process-wide enablement (None = serial, the default).  Set from the
#: CLI (``--rack-parallel``); deliberately *not* part of the scenario
#: config so sweep point identities, spec digests and documents are
#: unaffected -- exactly how ``--jobs`` stays out of sweep documents.
_rack_workers: Optional[int] = None


def set_rack_parallelism(workers: Optional[int]) -> None:
    """Enable (worker count) or disable (None) parallel-rack execution."""
    global _rack_workers
    _rack_workers = workers if workers and workers > 0 else None


def rack_parallelism() -> Optional[int]:
    return _rack_workers


# -- planning ----------------------------------------------------------------


def plan_components(
    config: MultiRackScenarioConfig,
) -> Optional[List[Tuple[int, ...]]]:
    """Partition racks into independent components, or None for serial.

    Replays every thread's seeded rack draws (cheap: the arrays, not the
    simulation) and unions a blade's home rack with every rack its stream
    touches.  Serial when anything couples racks outside the streams
    (telemetry timeline, modeled allocator) or when the realized draws
    leave a single connected component.
    """
    if config.racks < 2 or config.telemetry or config.allocator is not None:
        return None
    parent = list(range(config.racks))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    num_blades = config.racks * config.compute_blades_per_rack
    for blade_id in range(num_blades):
        home = blade_id // config.compute_blades_per_rack
        for thread_id in range(config.threads_per_blade):
            racks, _pages, _writes = _thread_draws(
                config, home, blade_id, thread_id
            )
            for rack in np.unique(racks):
                union(home, int(rack))
    groups: Dict[int, List[int]] = {}
    for rack in range(config.racks):
        groups.setdefault(find(rack), []).append(rack)
    components = sorted(
        (tuple(sorted(members)) for members in groups.values()),
        key=lambda component: component[0],
    )
    if len(components) < 2:
        return None
    return components


# -- per-component worker ----------------------------------------------------


@dataclass
class _ComponentPartial:
    """Everything one component's worker run contributes to the merge."""

    racks: Tuple[int, ...]
    #: counter deltas over the post-setup baseline (additive integers).
    counters: Dict[str, int]
    #: every latency sample as (record time, category, value), in order.
    samples: List[Tuple[float, str, float]]
    #: per-series timeseries points recorded during the run.
    timeseries: Dict[str, List[Tuple[float, float]]]
    #: breakdown deltas (category -> component -> accumulated value).
    breakdowns: Dict[str, Dict[str, float]]
    #: rack -> raw telemetry tallies (each rack owned by exactly one
    #: component, so absolute post-run values merge without double count).
    rack_raws: Dict[int, Dict[str, Any]]
    final_now: float
    kernel_stats: Dict[str, int] = field(default_factory=dict)


def _component_threads(
    fabric: MultiRackFabric,
    config: MultiRackScenarioConfig,
    bases: List[int],
    racks: Optional[frozenset],
) -> List:
    """The scenario's thread generators, optionally restricted to one
    component's racks.  Mirrors :func:`run_multirack`'s loop exactly:
    streams are per-thread seeded, so skipping other components' blades
    does not perturb the draws of the ones that run."""
    arrival = config.arrival_spec()
    gens = []
    for blade in fabric.compute_blades:
        if racks is not None and blade.home_rack not in racks:
            continue
        for t in range(config.threads_per_blade):
            stream = _thread_stream(
                config, bases, blade.home_rack, blade.blade_id, t
            )
            if arrival is None:
                gens.append(blade.run_thread(_SCENARIO_PDID, stream))
            else:
                seed = thread_arrival_seed(
                    "multirack",
                    config.seed,
                    blade.blade_id * 10_000 + t,
                )
                gens.append(
                    open_loop_thread(
                        blade,
                        _SCENARIO_PDID,
                        stream,
                        arrival,
                        seed,
                        ConsistencyModel.TSO,
                        name=f"mr{blade.blade_id}.{t}",
                    )
                )
    return gens


#: the scenario's (single) global PDID; first spawn_process yields 1.
_SCENARIO_PDID = 1


def _setup_fabric(
    config: MultiRackScenarioConfig,
) -> Tuple[MultiRackFabric, List[int]]:
    """Build the fabric and map the per-rack pools (the setup phase both
    the serial runner and every worker perform identically)."""
    fabric = build_fabric(config)
    pdid = fabric.spawn_process("scale")
    assert pdid == _SCENARIO_PDID
    pool_bytes = config.pages_per_rack * PAGE_SIZE
    bases = [
        fabric.mmap(pdid, pool_bytes, rack=r) for r in range(config.racks)
    ]
    return fabric, bases


def _run_component(
    config: MultiRackScenarioConfig, racks: Tuple[int, ...]
) -> _ComponentPartial:
    """Worker entry: full fabric build, this component's threads only.

    Building the *full* fabric (all racks, all blades, every pool mapped)
    keeps blade ids, port ids, seeds and VA bases identical to the serial
    run; only the generators actually started are restricted, which is
    sound because no other component's thread interacts with this one's
    racks.  Must stay module-level: spawn workers pickle it by name.
    """
    fabric, bases = _setup_fabric(config)
    stats = fabric.stats
    base_counters = dict(stats.counters)
    base_series = {k: len(v) for k, v in stats.timeseries.items()}
    base_breakdowns = {
        cat: dict(comps) for cat, comps in stats.breakdowns.items()
    }
    samples: List[Tuple[float, str, float]] = []
    engine = fabric.engine
    original_record = stats.record_latency

    def logging_record(category: str, value: float) -> None:
        samples.append((engine.now, category, value))
        original_record(category, value)

    # Instance-attribute shadow: every call site looks the method up per
    # call, so this intercepts exactly the run-phase samples (installed
    # after setup) without any cost on the serial path.
    stats.record_latency = logging_record  # type: ignore[method-assign]
    fabric.run_all(_component_threads(fabric, config, bases, frozenset(racks)))
    counters = {
        name: value - base_counters.get(name, 0)
        for name, value in stats.counters.items()
        if value != base_counters.get(name, 0)
    }
    timeseries = {
        name: list(points[base_series.get(name, 0):])
        for name, points in stats.timeseries.items()
        if len(points) > base_series.get(name, 0)
    }
    breakdowns: Dict[str, Dict[str, float]] = {}
    for cat, comps in stats.breakdowns.items():
        base = base_breakdowns.get(cat, {})
        delta = {
            comp: value - base.get(comp, 0.0)
            for comp, value in comps.items()
            if value != base.get(comp, 0.0)
        }
        if delta:
            breakdowns[cat] = delta
    return _ComponentPartial(
        racks=racks,
        counters=counters,
        samples=samples,
        timeseries=timeseries,
        breakdowns=breakdowns,
        rack_raws={r: fabric.rack_telemetry_raw(r) for r in racks},
        final_now=engine.now,
        kernel_stats=fabric.engine.kernel_stats(),
    )


def _execute_components(
    config: MultiRackScenarioConfig,
    components: List[Tuple[int, ...]],
    workers: Optional[int],
) -> List[_ComponentPartial]:
    """Run every component, in worker processes when more than one worker
    is available.  Results come back in component order regardless of
    completion order, so the merge is deterministic either way."""
    max_workers = min(workers or os.cpu_count() or 1, len(components))
    if max_workers <= 1:
        return [_run_component(config, c) for c in components]
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=max_workers, mp_context=context
    ) as pool:
        futures = [
            pool.submit(_run_component, config, c) for c in components
        ]
        return [f.result() for f in futures]


# -- the merge ---------------------------------------------------------------


def run_multirack_parallel(
    config: MultiRackScenarioConfig, workers: Optional[int] = None
) -> RunResult:
    """Execute one scenario point with parallel-in-time rack components.

    Byte-identical to :func:`run_multirack` (verified by
    ``tests/multirack/test_parallel.py`` down to the sweep document's
    metric floats); falls back to it outright when the point does not
    decompose.  ``workers`` bounds the process fan-out (default: CPU
    count); with one worker the components still run component-at-a-time
    in-process, exercising the same merge.
    """
    components = plan_components(config)
    if components is None:
        return run_multirack(config)
    partials = _execute_components(config, components, workers)

    # The merged collector starts from a local setup-only replica: it
    # contributes the (component-independent) setup-phase counters and any
    # setup-phase samples exactly once, matching the serial run's prefix.
    fabric, _bases = _setup_fabric(config)
    stats = fabric.stats
    for partial in partials:
        for name in sorted(partial.counters):
            stats.counters[name] += partial.counters[name]
    # Serial sample order is engine event order: strictly by time, with
    # cross-component ties only at lockstep instants where the serial
    # tie-break follows process-creation (= component) order.  Decorated
    # as (t, component, local index) the tuples are unique before the
    # payload, so heapq.merge replays exactly that order.
    decorated = [
        [
            (t, ci, si, category, value)
            for si, (t, category, value) in enumerate(partial.samples)
        ]
        for ci, partial in enumerate(partials)
    ]
    for _t, _ci, _si, category, value in heapq.merge(*decorated):
        stats.latencies[category].append(value)
    # Doc-invisible extras (never in sweep metrics), merged best-effort in
    # component order: timeseries points carry their own timestamps, and
    # breakdown sums may differ from serial in the last ulp (float
    # addition order).
    for partial in partials:
        for name, points in sorted(partial.timeseries.items()):
            stats.timeseries[name].extend(points)
        for cat in sorted(partial.breakdowns):
            for comp in sorted(partial.breakdowns[cat]):
                stats.add_breakdown(cat, comp, partial.breakdowns[cat][comp])
    runtime_us = max(partial.final_now for partial in partials)
    rack_raws: Dict[int, Dict[str, Any]] = {}
    for partial in partials:
        rack_raws.update(partial.rack_raws)
    aggregate_rack_telemetry(
        stats, [rack_raws[r] for r in range(config.racks)], runtime_us
    )
    kernel: Dict[str, int] = {}
    for partial in partials:
        for name, value in partial.kernel_stats.items():
            kernel[name] = kernel.get(name, 0) + value
    num_blades = len(fabric.compute_blades)
    return RunResult(
        system="mind",
        workload="multirack",
        num_blades=num_blades,
        num_threads=num_blades * config.threads_per_blade,
        runtime_us=runtime_us,
        total_accesses=num_blades
        * config.threads_per_blade
        * config.accesses_per_thread,
        stats=stats,
        kernel_stats=kernel,
    )


def run_multirack_auto(config: MultiRackScenarioConfig) -> RunResult:
    """Dispatch on the process-wide toggle: the sweep engine's entry."""
    workers = rack_parallelism()
    if workers is None:
        return run_multirack(config)
    return run_multirack_parallel(config, workers=workers)
