"""Scenario driver: a seeded multi-rack workload -> :class:`RunResult`.

One scenario run builds a fabric, maps one shared page pool per rack,
and replays a seeded access stream on every blade thread where a
configurable ``cross_fraction`` of accesses target pages homed on
*other* racks.  The router records every fault's latency under
``fault:intra`` / ``fault:cross``, so a sweep over ``racks`` exposes the
directory-sharding crossover -- where cross-rack sharing erases the
in-network directory's win -- directly in the sweep document's metrics.

Everything is derived from :func:`~repro.workloads.trace.stable_seed`,
so a scenario point is byte-identical no matter which worker process
executes it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional

import numpy as np

from ..blades.consistency import ConsistencyModel
from ..core.mmu import MindConfig
from ..sim.network import NetworkConfig, PAGE_SIZE
from ..sim.stats import RunResult
from ..workloads.openloop import ArrivalSpec, open_loop_thread, thread_arrival_seed
from ..workloads.trace import AccessStream, stable_seed
from .config import MultiRackConfig
from .fabric import MultiRackFabric


@dataclass
class MultiRackScenarioConfig:
    """One multi-rack scenario point (the ``multirack`` sweep workload)."""

    racks: int = 2
    compute_blades_per_rack: int = 2
    memory_blades_per_rack: int = 1
    threads_per_blade: int = 1
    cache_capacity_pages: int = 512
    #: accesses each thread replays.
    accesses_per_thread: int = 400
    #: fraction of accesses targeting pages homed on *other* racks.
    cross_fraction: float = 0.2
    read_ratio: float = 0.7
    #: shared pool pages mapped per rack (every blade may touch them all).
    pages_per_rack: int = 256
    seed: int = 1
    spine_extra_us: float = 3.4
    oversubscription: float = 4.0
    #: open-loop arrival process ("poisson"/"diurnal"); closed loop if None.
    arrival_process: Optional[str] = None
    arrival_rate_per_thread: float = 0.02
    request_size: int = 8
    diurnal_period_us: float = 20_000.0
    diurnal_amplitude: float = 0.5
    telemetry: bool = False
    telemetry_window_us: float = 500.0
    #: allocation-policy axis for every rack switch (None = unmodeled
    #: first-fit, the bit-identical default).
    allocator: Optional[str] = None

    def fabric_config(self) -> MultiRackConfig:
        return MultiRackConfig(
            num_racks=self.racks,
            compute_blades_per_rack=self.compute_blades_per_rack,
            memory_blades_per_rack=self.memory_blades_per_rack,
            cache_capacity_pages=self.cache_capacity_pages,
            spine_extra_us=self.spine_extra_us,
            oversubscription=self.oversubscription,
            telemetry=self.telemetry,
            telemetry_window_us=self.telemetry_window_us,
            mind=MindConfig(
                memory_blade_capacity=1 << 28,
                enable_bounded_splitting=False,
                allocator=self.allocator,
            ),
            network=NetworkConfig(),
        )

    def arrival_spec(self) -> Optional[ArrivalSpec]:
        if self.arrival_process is None:
            return None
        return ArrivalSpec(
            process=self.arrival_process,
            rate_per_us=self.arrival_rate_per_thread,
            request_size=self.request_size,
            period_us=self.diurnal_period_us,
            amplitude=self.diurnal_amplitude,
        )


def config_from_params(params: Dict, **overrides) -> MultiRackScenarioConfig:
    """Build a scenario config from loose sweep params, rejecting unknowns."""
    known = {f.name for f in fields(MultiRackScenarioConfig)}
    merged = dict(params)
    merged.update(overrides)
    unknown = sorted(set(merged) - known)
    if unknown:
        raise ValueError(
            f"unknown multirack scenario parameter(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    return MultiRackScenarioConfig(**merged)


def _thread_draws(
    config: MultiRackScenarioConfig,
    home_rack: int,
    blade_id: int,
    thread_id: int,
):
    """The seeded random draws behind one blade thread's stream.

    Returns ``(racks, pages, writes)`` arrays.  Kept separate from VA
    construction so the parallel-rack planner can inspect which racks a
    thread touches without needing the mapped pool bases -- both callers
    consume the RNG in exactly this order, so the streams agree.
    """
    rng = np.random.default_rng(
        stable_seed("multirack", config.seed, blade_id, thread_id)
    )
    n = config.accesses_per_thread
    if config.racks > 1:
        cross = rng.random(n) < config.cross_fraction
        other = rng.integers(0, config.racks - 1, n)
        other = np.where(other >= home_rack, other + 1, other)
        racks = np.where(cross, other, home_rack)
    else:
        racks = np.zeros(n, dtype=np.int64)
    pages = rng.integers(0, config.pages_per_rack, n)
    writes = rng.random(n) >= config.read_ratio
    return racks, pages, writes


def _thread_stream(
    config: MultiRackScenarioConfig,
    bases: List[int],
    home_rack: int,
    blade_id: int,
    thread_id: int,
) -> AccessStream:
    """Seeded access stream for one blade thread.

    Each access picks its page pool (home rack with probability
    ``1 - cross_fraction``, a uniformly random *other* rack otherwise),
    a page uniform in the pool, and a write with probability
    ``1 - read_ratio``.
    """
    racks, pages, writes = _thread_draws(config, home_rack, blade_id, thread_id)
    vas = np.asarray(bases, dtype=np.int64)[racks] + pages * PAGE_SIZE
    return AccessStream.from_numpy(vas, writes)


def build_fabric(config: MultiRackScenarioConfig) -> MultiRackFabric:
    return MultiRackFabric(config.fabric_config())


def run_multirack(config: MultiRackScenarioConfig) -> RunResult:
    """Execute one scenario point; deterministic in ``config`` alone."""
    fabric = build_fabric(config)
    pdid = fabric.spawn_process("scale")
    pool_bytes = config.pages_per_rack * PAGE_SIZE
    bases = [
        fabric.mmap(pdid, pool_bytes, rack=r) for r in range(config.racks)
    ]
    arrival = config.arrival_spec()
    gens = []
    total = 0
    for blade in fabric.compute_blades:
        for t in range(config.threads_per_blade):
            stream = _thread_stream(config, bases, blade.home_rack, blade.blade_id, t)
            total += len(stream)
            if arrival is None:
                gens.append(blade.run_thread(pdid, stream))
            else:
                seed = thread_arrival_seed(
                    "multirack",
                    config.seed,
                    blade.blade_id * 10_000 + t,
                )
                gens.append(
                    open_loop_thread(
                        blade,
                        pdid,
                        stream,
                        arrival,
                        seed,
                        ConsistencyModel.TSO,
                        name=f"mr{blade.blade_id}.{t}",
                    )
                )
    fabric.run_all(gens)
    fabric.capture_telemetry()
    return RunResult(
        system="mind",
        workload="multirack",
        num_blades=len(fabric.compute_blades),
        num_threads=len(fabric.compute_blades) * config.threads_per_blade,
        runtime_us=fabric.engine.now,
        total_accesses=total,
        stats=fabric.stats,
        kernel_stats=fabric.engine.kernel_stats(),
    )
