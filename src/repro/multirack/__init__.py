"""Multi-rack MIND: sharded directories over a rack/spine topology graph.

Section 8's NUMA-analogy extension, grown into a first-class subsystem:

- :mod:`~repro.multirack.config` -- fabric shape + the spine cost model
  (inter-rack RTT, leaf-spine bandwidth oversubscription).
- :mod:`~repro.multirack.topology` -- the explicit graph: per-rack
  :class:`~repro.cluster.MindCluster` nodes, spine uplinks/downlinks,
  VA-range sharding, spine proxy ports, per-tier link accounting.
- :mod:`~repro.multirack.fabric` -- the assembled system: blade routers,
  fabric-wide process/memory management, per-rack fail-over, telemetry.
- :mod:`~repro.multirack.runner` -- the seeded scenario driver behind the
  ``multirack`` sweep workload and ``multirack-scale`` preset.
- :mod:`~repro.multirack.parallel` -- opt-in parallel-in-time execution:
  independent rack components simulated concurrently, byte-identical to
  the serial runner.
- :mod:`~repro.multirack.cli` -- ``python -m repro multirack``.
"""

from .config import MultiRackConfig, RackCapacityError
from .fabric import MultiRackFabric, RackRouter
from .parallel import run_multirack_parallel, set_rack_parallelism
from .runner import MultiRackScenarioConfig, config_from_params, run_multirack
from .topology import RackNode, ShardMap, SpineProxyPort, Topology

__all__ = [
    "MultiRackConfig",
    "MultiRackFabric",
    "MultiRackScenarioConfig",
    "RackCapacityError",
    "RackNode",
    "RackRouter",
    "ShardMap",
    "SpineProxyPort",
    "Topology",
    "config_from_params",
    "run_multirack",
    "run_multirack_parallel",
    "set_rack_parallelism",
]
