"""Configuration for the multi-rack fabric: topology shape + spine model.

The fabric is a two-tier leaf-spine graph: one home switch per rack (a
full single-rack MIND data plane) and a spine tier every cross-rack
packet traverses.  The spine is modelled by two real links per rack --
an uplink (rack switch -> spine) and a downlink (spine -> rack switch)
-- whose bandwidth encodes the classic leaf-spine *oversubscription*
ratio: a rack's uplink aggregates all of its blades' edge links but is
provisioned at ``1/oversubscription`` of their summed capacity, so
cross-rack bandwidth ceilings and queueing emerge from contention on
those shared links rather than from a fudge constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.mmu import MindConfig
from ..sim.network import NetworkConfig


class RackCapacityError(ValueError):
    """A rack was configured beyond ``max_memory_blades_per_rack``.

    The VA slice each rack is home for is sized by the *maximum* blade
    count, so a rack hosting more blades than that would allocate
    addresses aliasing its neighbour's slice and faults on them would be
    routed to the wrong home switch.  Raised at construction instead of
    silently mis-slicing.
    """


@dataclass
class MultiRackConfig:
    """Shape of the multi-rack fabric."""

    num_racks: int = 2
    compute_blades_per_rack: int = 2
    memory_blades_per_rack: int = 1
    cache_capacity_pages: int = 1024
    #: extra one-way propagation a packet pays to cross the spine (two
    #: extra hops: rack switch -> spine switch -> rack switch).  Each hop
    #: contributes half of this (:attr:`spine_hop_us`).
    spine_extra_us: float = 3.4
    #: maximum memory blades a rack may ever host (sizes the VA slices).
    max_memory_blades_per_rack: int = 8
    #: leaf-spine oversubscription: the ratio of a rack's aggregate edge
    #: bandwidth to its spine uplink bandwidth (4:1 is the classic
    #: datacenter provisioning point).
    oversubscription: float = 4.0
    #: enable windowed telemetry on the fabric's shared stats collector.
    telemetry: bool = False
    telemetry_window_us: float = 500.0
    mind: MindConfig = field(default_factory=lambda: MindConfig(
        memory_blade_capacity=1 << 28, enable_bounded_splitting=False
    ))
    network: NetworkConfig = field(default_factory=NetworkConfig)

    @property
    def rack_va_span(self) -> int:
        return self.max_memory_blades_per_rack * self.mind.memory_blade_capacity

    @property
    def spine_hop_us(self) -> float:
        """One-way propagation of one spine hop (rack <-> spine switch)."""
        return self.spine_extra_us / 2.0

    def spine_link_config(self) -> NetworkConfig:
        """Latency/bandwidth constants for one spine uplink or downlink."""
        edge_gbps = self.network.link_bandwidth_gbps
        capacity = (
            edge_gbps * max(self.compute_blades_per_rack, 1)
            / self.oversubscription
        )
        return replace(
            self.network,
            link_propagation_us=self.spine_hop_us,
            link_bandwidth_gbps=capacity,
        )

    def spine_crossing_us(self, size_bytes: int) -> float:
        """Unloaded one-way cost of crossing the spine with ``size_bytes``:
        a forwarding pass through the source rack's pipeline plus two
        spine hops (serialization + propagation each)."""
        spine = self.spine_link_config()
        return self.network.switch_pipeline_us + 2 * (
            self.spine_hop_us + spine.serialization_us(size_bytes)
        )

    def validate(self) -> "MultiRackConfig":
        """Reject impossible shapes; returns self for chaining."""
        if self.num_racks < 1:
            raise ValueError(f"num_racks must be >= 1, got {self.num_racks}")
        if self.compute_blades_per_rack < 1:
            raise ValueError(
                "compute_blades_per_rack must be >= 1, "
                f"got {self.compute_blades_per_rack}"
            )
        if self.memory_blades_per_rack < 1:
            raise ValueError(
                "memory_blades_per_rack must be >= 1, "
                f"got {self.memory_blades_per_rack}"
            )
        if self.oversubscription <= 0:
            raise ValueError(
                f"oversubscription must be > 0, got {self.oversubscription}"
            )
        if self.memory_blades_per_rack > self.max_memory_blades_per_rack:
            raise RackCapacityError(
                f"memory_blades_per_rack={self.memory_blades_per_rack} exceeds "
                f"max_memory_blades_per_rack={self.max_memory_blades_per_rack}: "
                "the VA slice a rack is home for is sized by the maximum, so "
                "the excess blades' addresses would alias the next rack's slice"
            )
        return self
