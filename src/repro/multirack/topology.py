"""The explicit topology graph: rack nodes, a spine tier, VA sharding.

This is the refactor Section 8 asks for: instead of one singleton
cluster, each rack instantiates a full :class:`~repro.cluster.MindCluster`
as a *node* in a graph (shared engine and stats, rack-unique port-id
namespace), and the coherence directory is range-partitioned across the
rack switches by :class:`ShardMap`.  Cross-rack traffic is carried by
:class:`~repro.sim.network.CompositePath` chains built from real shared
links -- the blade's own edge link, a forwarding pass through its rack's
pipeline, and the per-rack spine uplink/downlink -- so inter-rack RTT,
bandwidth oversubscription and transit queueing all emerge from the same
FIFO-resource link model the single rack uses.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from ..cluster import ClusterConfig, MindCluster
from ..sim.engine import Engine
from ..sim.network import CompositePath, Link, Port
from ..sim.stats import StatsCollector
from .config import MultiRackConfig

#: port-id stride between racks; every rack's ports stay globally unique
#: (they key each rack's coherence registries).
PORT_ID_STRIDE = 100_000


class ShardMap:
    """Range partition of the global VA space across rack switches."""

    def __init__(self, num_racks: int, rack_span: int):
        self.num_racks = num_racks
        self.rack_span = rack_span

    def home_rack(self, va: int) -> int:
        """The rack whose switch is home (directory owner) for ``va``."""
        rack = int(va) // self.rack_span
        if not 0 <= rack < self.num_racks:
            raise ValueError(f"va {va:#x} outside every rack's partition")
        return rack

    def rack_base(self, rack: int) -> int:
        return rack * self.rack_span

    def rack_range(self, rack: int) -> Tuple[int, int]:
        """The ``(base, length)`` VA slice ``rack`` is home for."""
        return rack * self.rack_span, self.rack_span


class SpineProxyPort:
    """How a remote rack's switch sees a blade: same port id, spine paths.

    The home switch's protocol code is completely unchanged -- distance is
    encoded in the port, which is the NUMA analogy made literal.  Both
    directions are :class:`CompositePath` chains over *shared* real links,
    so concurrent cross-rack transactions contend for the blade's NIC and
    the spine uplinks exactly like real transit traffic.
    """

    def __init__(
        self,
        name: str,
        port_id: int,
        to_switch: CompositePath,
        from_switch: CompositePath,
    ):
        self.name = name
        self.port_id = port_id
        self.to_switch = to_switch
        self.from_switch = from_switch

    @property
    def links(self) -> Tuple[CompositePath, CompositePath]:
        return (self.to_switch, self.from_switch)

    def packets_dropped(self) -> int:
        # Drops are accounted on the underlying real links.
        return 0


class RackNode:
    """One vertex of the topology graph: a rack cluster + its spine links."""

    def __init__(self, index: int, cluster: MindCluster, uplink: Link, downlink: Link):
        self.index = index
        self.cluster = cluster
        #: rack switch -> spine switch (shared by all cross-rack senders
        #: in this rack -- the oversubscribed aggregation link).
        self.uplink = uplink
        #: spine switch -> rack switch.
        self.downlink = downlink

    @property
    def mmu(self):
        return self.cluster.mmu

    @property
    def network(self):
        return self.cluster.network

    @property
    def coherence(self):
        return self.cluster.mmu.coherence


class Topology:
    """The assembled graph: rack nodes over a spine tier, plus sharding."""

    def __init__(self, config: MultiRackConfig):
        self.config = config.validate()
        self.engine = Engine()
        self.stats = StatsCollector()
        self.shard = ShardMap(config.num_racks, config.rack_va_span)
        self.racks: List[RackNode] = []
        spine_cfg = config.spine_link_config()
        for r in range(config.num_racks):
            cluster = MindCluster(
                ClusterConfig(
                    num_compute_blades=0,  # the fabric places blades itself
                    num_memory_blades=config.memory_blades_per_rack,
                    cache_capacity_pages=config.cache_capacity_pages,
                    store_data=True,
                    mind=replace(config.mind, va_base=r * config.rack_va_span),
                    network=config.network,
                ),
                engine=self.engine,
                stats=self.stats,
                port_id_base=r * PORT_ID_STRIDE,
            )
            uplink = Link(self.engine, spine_cfg, f"rack{r}->spine")
            downlink = Link(self.engine, spine_cfg, f"spine->rack{r}")
            self.racks.append(RackNode(r, cluster, uplink, downlink))

    def spine_proxy(self, port: Port, src_rack: int, dst_rack: int) -> SpineProxyPort:
        """Build the proxy port rack ``dst_rack`` knows blade ``port`` by.

        Request direction (blade -> remote home switch): the blade's real
        edge uplink, a forwarding pass through its own rack's pipeline,
        then up to the spine and down into the destination rack.  The
        reply direction mirrors it.  Every spine-tier step banks its time
        for the fault path's span attribution.
        """
        src = self.racks[src_rack]
        dst = self.racks[dst_rack]
        forward = src.mmu.pipeline.forward
        to_switch = CompositePath(
            self.engine,
            f"{port.name}=>rack{dst_rack}",
            [
                (CompositePath.LINK, port.to_switch, "edge"),
                (CompositePath.PROC, forward, "spine"),
                (CompositePath.LINK, src.uplink, "spine"),
                (CompositePath.LINK, dst.downlink, "spine"),
            ],
        )
        from_switch = CompositePath(
            self.engine,
            f"rack{dst_rack}=>{port.name}",
            [
                (CompositePath.LINK, dst.uplink, "spine"),
                (CompositePath.LINK, src.downlink, "spine"),
                (CompositePath.PROC, forward, "spine"),
                (CompositePath.LINK, port.from_switch, "edge"),
            ],
        )
        return SpineProxyPort(
            f"{port.name}@rack{dst_rack}", port.port_id, to_switch, from_switch
        )

    # -- per-tier link accounting ---------------------------------------

    def tier_accounting(self) -> Dict[str, float]:
        """Aggregate per-tier link totals (bounded cardinality: these stay
        a handful of values no matter how many blades the fabric holds)."""
        edge_bytes = sum(n.network.total_bytes() for n in self.racks)
        edge_dropped = sum(n.network.total_packets_dropped() for n in self.racks)
        spine_bytes = 0
        spine_dropped = 0
        spine_util = 0.0
        for node in self.racks:
            for link in (node.uplink, node.downlink):
                spine_bytes += link.bytes_carried
                spine_dropped += link.packets_dropped
                spine_util = max(spine_util, link.utilization())
        return {
            "edge_bytes": float(edge_bytes),
            "edge_packets_dropped": float(edge_dropped),
            "spine_bytes": float(spine_bytes),
            "spine_packets_dropped": float(spine_dropped),
            "spine_utilization_max": spine_util,
            "spine_forwards": float(
                sum(n.mmu.pipeline.forwards for n in self.racks)
            ),
        }
