"""The assembled multi-rack system: blades, routers, fabric services.

The paper's design is rack-scale: one programmable switch owns all memory
management.  Section 8 sketches the next step -- "a shift similar to the
shift from single node CPUs to multi-node NUMA architectures" -- where the
global address space spans racks.  This package implements that extension
with a *home-rack* design over the :mod:`~repro.multirack.topology` graph:

- The global VA space is range-partitioned across racks
  (:class:`~repro.multirack.topology.ShardMap`); each rack's switch is the
  **home** for its slice: it runs translation, protection and the
  coherence directory for those addresses, exactly as in the single-rack
  system.
- A compute blade's fault on a remote-homed address is forwarded over the
  spine to the home rack's switch, which executes the transaction
  treating the remote blade as a sharer reachable through a
  :class:`~repro.multirack.topology.SpineProxyPort`.  Invalidations of
  cross-rack sharers likewise traverse the spine.

The cost structure this produces: intra-rack faults at the paper's
~10 us, cross-rack faults two spine crossings dearer (request + reply),
and cross-rack write sharing correspondingly more expensive -- quantified
in ``benchmarks/test_extension_multirack.py`` and swept to 32 racks by
the ``multirack-scale`` preset.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Union

from ..blades.compute import ComputeBlade
from ..blades.memory import MemoryBlade
from ..core.coherence import CoherenceProtocol
from ..core.mmu import InNetworkMmu
from ..core.vma import PermissionClass
from ..sim.network import Network, Port
from ..switchsim.packets import MemRequest
from .config import MultiRackConfig
from .topology import RackNode, SpineProxyPort, Topology

AnyPort = Union[Port, SpineProxyPort]


class RackRouter:
    """A compute blade's data path in the multi-rack fabric.

    Routes every operation to the *home rack* of its virtual address and
    presents the right port (real or spine proxy) so the home switch's
    unchanged protocol code charges the right wire latency.  Proxy ports
    are created lazily on a blade's first transaction against a remote
    rack: at thousands of blades the all-pairs proxy matrix would dominate
    construction, and laziness is deterministic because creation follows
    the (seeded) simulated execution order.
    """

    def __init__(self, fabric: "MultiRackFabric", home_rack: int):
        self.fabric = fabric
        self.home_rack = home_rack
        #: rack index -> the port this blade is known by on that rack.
        self.ports: Dict[int, AnyPort] = {}
        self._port: Optional[Port] = None
        self._handler: Optional[Callable] = None
        self._serve_page: Optional[Callable] = None

    # ComputeBlade.__init__ calls this with its real (home-rack) port.
    def register_compute_blade(self, port, handler, serve_page=None) -> None:
        self._port = port
        self._handler = handler
        self._serve_page = serve_page
        self.ports[self.home_rack] = port
        self.fabric.rack_coherence(self.home_rack).register_compute_blade(
            port, handler, serve_page
        )

    def port_for(self, rack: int) -> AnyPort:
        """This blade's port on ``rack``, registering a spine proxy on
        first use."""
        port = self.ports.get(rack)
        if port is None:
            real = self._port
            assert real is not None, "blade not registered with its router yet"
            port = self.fabric.topology.spine_proxy(real, self.home_rack, rack)
            self.ports[rack] = port
            self.fabric.rack_coherence(rack).register_compute_blade(
                port, self._handler, self._serve_page
            )
        return port

    def handle_fault(self, req: MemRequest) -> Generator:
        rack = self.fabric.shard.home_rack(req.va)
        if rack != self.home_rack:
            self.fabric.stats.incr("cross_rack_faults")
            self.port_for(rack)  # the home switch must know our proxy
            return self._timed_fault(req, rack, "fault:cross")
        self.fabric.stats.incr("intra_rack_faults")
        return self._timed_fault(req, rack, "fault:intra")

    def _timed_fault(self, req: MemRequest, rack: int, category: str) -> Generator:
        # Record locality-split latency on top of the home switch's own
        # fault accounting: the intra/cross crossover is the headline
        # multi-rack result.
        engine = self.fabric.engine
        t0 = engine.now
        result = yield from self.fabric.rack_coherence(rack).handle_fault(req)
        self.fabric.stats.record_latency(category, engine.now - t0)
        return result

    def flush_page_async(self, src_port, page_va: int, data):
        rack = self.fabric.shard.home_rack(page_va)
        return self.fabric.rack_coherence(rack).flush_page_async(
            self.port_for(rack), page_va, data
        )

    def flush_page(self, src_port, page_va: int, data) -> Generator:
        rack = self.fabric.shard.home_rack(page_va)
        return self.fabric.rack_coherence(rack).flush_page(
            self.port_for(rack), page_va, data
        )


class MultiRackFabric:
    """The assembled multi-rack system over an explicit topology graph."""

    def __init__(self, config: Optional[MultiRackConfig] = None):
        self.config = (config or MultiRackConfig()).validate()
        cfg = self.config
        self.topology = Topology(cfg)
        self.engine = self.topology.engine
        self.stats = self.topology.stats
        self.shard = self.topology.shard
        if cfg.telemetry and self.stats.timeline is None:
            from ..telemetry import MetricsTimeline

            self.stats.timeline = MetricsTimeline(
                window_us=cfg.telemetry_window_us
            )
        self.memory_blades: List[MemoryBlade] = [
            blade
            for node in self.topology.racks
            for blade in node.cluster.memory_blades
        ]
        # Compute blades: real port at the home rack, lazy proxies
        # elsewhere.  Every rack cluster shares the *fabric-wide* blade
        # list: any blade may cache any rack's pages, so rack-local
        # munmap/mprotect drops and fail-over quiesces must reach them
        # all -- sharing the list makes the cluster's existing callbacks
        # fabric-correct with no overriding.
        self.compute_blades: List[ComputeBlade] = []
        self.routers: List[RackRouter] = []
        next_id = 0
        for r, node in enumerate(self.topology.racks):
            node.cluster.compute_blades = self.compute_blades
            node.cluster.quiesce_range = self.shard.rack_range(r)
            for _c in range(cfg.compute_blades_per_rack):
                router = RackRouter(self, home_rack=r)
                blade = ComputeBlade(
                    blade_id=next_id,
                    engine=self.engine,
                    network=node.network,
                    datapath=router,
                    cache_capacity_pages=cfg.cache_capacity_pages,
                    stats=self.stats,
                )
                blade.home_rack = r
                self.compute_blades.append(blade)
                self.routers.append(router)
                next_id += 1
        # One global protection domain namespace: processes exist in every
        # rack's controller, sharing a fabric-wide pdid.
        self._next_pdid = 1
        self._rack_pids: Dict[int, List[int]] = {}

    # -- graph access --------------------------------------------------------

    @property
    def racks(self) -> List[InNetworkMmu]:
        """Rack index -> that rack's switch MMU (the home data plane)."""
        return [node.mmu for node in self.topology.racks]

    @property
    def networks(self) -> List[Network]:
        return [node.network for node in self.topology.racks]

    @property
    def clusters(self) -> List:
        return [node.cluster for node in self.topology.racks]

    def rack_node(self, rack: int) -> RackNode:
        return self.topology.racks[rack]

    def rack_coherence(self, rack: int) -> CoherenceProtocol:
        return self.topology.racks[rack].coherence

    # -- fabric-level process/memory management -----------------------------

    def spawn_process(self, name: str = "proc") -> int:
        """Create a fabric-wide process; returns its global PDID."""
        pdid = self._next_pdid
        self._next_pdid += 1
        pids = []
        for mmu in self.racks:
            task = mmu.controller.sys_exec(f"{name}@{pdid}")
            pids.append(task.pid)
        self._rack_pids[pdid] = pids
        return pdid

    def mmap(self, pdid: int, length: int,
             perm: PermissionClass = PermissionClass.READ_WRITE,
             rack: Optional[int] = None) -> int:
        """Allocate on the least-loaded rack (or a named one); returns VA.

        The vma's home rack installs protection under the *global* pdid so
        any rack's compute blades can fault on it.
        """
        mmus = self.racks
        if rack is None:
            rack = min(
                range(len(mmus)),
                key=lambda r: sum(
                    mmus[r].allocator.allocated_per_blade().values()
                ),
            )
        local_pid = self._rack_pids[pdid][rack]
        return mmus[rack].controller.sys_mmap(
            local_pid, length, perm, pdid=pdid
        )

    def rack_of(self, va: int) -> int:
        return int(va) // self.config.rack_va_span

    # -- fail-over ------------------------------------------------------------

    def enable_rack_failover(self, rack: int, config=None):
        """Arm Section 4.4 fail-over for one rack's switch.

        The orchestrator is scoped to that rack's cluster node: its
        outage gate only blocks transactions homed there, and the blade
        quiesce is range-limited to the rack's VA slice
        (``cluster.quiesce_range``), so the other racks keep serving
        straight through the outage.
        """
        return self.topology.racks[rack].cluster.enable_failover(config)

    # -- observability --------------------------------------------------------

    def rack_telemetry_raw(self, rack: int) -> Dict[str, Any]:
        """Raw end-of-run tallies for one rack, aggregation-ready.

        Every value is either an exact integer tally or a per-rack float
        that the serial capture path summed in rack order -- so
        :func:`aggregate_rack_telemetry` over these dicts (in rack order)
        reproduces :meth:`capture_telemetry`'s arithmetic bit for bit,
        whether the dicts came from this fabric or were collected across
        parallel per-component worker processes.
        """
        node = self.topology.racks[rack]
        m = node.mmu
        return {
            "directory_peak": m.directory_sram.peak_used,
            "directory_final": len(m.directory),
            "match_action_rules": m.match_action_rules()["total"],
            "pipeline_passes": m.pipeline.passes,
            "recirculations": m.pipeline.recirculations,
            "pending_table_peak": m.coherence.pending.peak,
            "control_cpu_stalls": m.control_cpu.stalls,
            "control_cpu_stall_us": m.control_cpu.stall_us,
            "requests_refused": sum(
                b.requests_refused for b in node.cluster.memory_blades
            ),
            "alloc_modeled": m.allocator.modeled,
            "alloc_ops": m.control_cpu.alloc_ops,
            "alloc_us": m.control_cpu.alloc_us,
            "alloc_raw": m.allocator.raw_telemetry(),
            "spine_forwards": m.pipeline.forwards,
            "edge_bytes": node.network.total_bytes(),
            "edge_packets_dropped": node.network.total_packets_dropped(),
            # (bytes, dropped, busy integral, capacity) per spine link so
            # utilization can be evaluated against any horizon.
            "spine_links": [
                (
                    link.bytes_carried,
                    link.packets_dropped,
                    *link.busy_stats(),
                )
                for link in (node.uplink, node.downlink)
            ],
        }

    def capture_telemetry(self) -> None:
        """Fabric-wide end-of-run telemetry with bounded cardinality.

        At thousands of blades the per-resource wait/utilization gauges
        the single-rack cluster emits would explode the metrics namespace
        (and the sweep documents), so the fabric aggregates instead:
        switch counters summed across racks plus per-tier link totals
        from the topology graph.  Idempotent: counters are assigned.
        """
        raws = [
            self.rack_telemetry_raw(r) for r in range(len(self.topology.racks))
        ]
        aggregate_rack_telemetry(self.stats, raws, self.engine.now)
        timeline = self.stats.timeline
        if timeline is not None:
            timeline.finalize(self.engine.now)

    # -- execution helpers ----------------------------------------------------

    def run_process(self, gen, name: Optional[str] = None):
        return self.engine.run_process(gen, name)

    def run_all(self, gens: List) -> List:
        procs = [self.engine.process(g) for g in gens]
        return self.engine.run_until_complete(self.engine.all_of(procs))


def aggregate_rack_telemetry(
    stats, raws: List[Dict[str, Any]], runtime_us: float
) -> None:
    """Fold per-rack raw tallies (in rack order) into fabric telemetry.

    The single aggregation routine shared by the serial capture path and
    the parallel-rack merge: summation order is fixed by the rack order of
    ``raws``, so both paths produce bit-identical counters and gauges.
    ``runtime_us`` is the horizon utilizations are evaluated against --
    the owning engine's clock in the serial case, the global makespan
    (max over component workers) in the parallel case.
    """
    stats.counters["directory_peak"] = sum(r["directory_peak"] for r in raws)
    stats.counters["directory_final"] = sum(r["directory_final"] for r in raws)
    stats.counters["match_action_rules"] = sum(
        r["match_action_rules"] for r in raws
    )
    stats.counters["pipeline_passes"] = sum(r["pipeline_passes"] for r in raws)
    stats.counters["recirculations"] = sum(r["recirculations"] for r in raws)
    stats.counters["pending_table_peak"] = max(
        r["pending_table_peak"] for r in raws
    )
    stalls = sum(r["control_cpu_stalls"] for r in raws)
    if stalls:
        stats.counters["control_cpu_stalls"] = stalls
        stats.set_gauge(
            "control_cpu_stall_us",
            sum(r["control_cpu_stall_us"] for r in raws),
        )
    refused = sum(r["requests_refused"] for r in raws)
    if refused:
        stats.counters["blade_requests_refused"] = refused
    if any(r["alloc_modeled"] for r in raws):
        # Allocator-axis telemetry: raw byte/step tallies sum across
        # racks, fragmentation fractions are recomputed from the sums.
        from ..alloc import alloc_gauges

        stats.counters["alloc_ops"] = sum(r["alloc_ops"] for r in raws)
        stats.set_gauge("alloc:cpu_us", sum(r["alloc_us"] for r in raws))
        merged = alloc_gauges([r["alloc_raw"] for r in raws])
        for name, value in merged.items():
            stats.set_gauge(name, value)
    edge_bytes = sum(r["edge_bytes"] for r in raws)
    edge_dropped = sum(r["edge_packets_dropped"] for r in raws)
    spine_bytes = 0
    spine_dropped = 0
    spine_util = 0.0
    for r in raws:
        for link_bytes, link_dropped, busy, capacity in r["spine_links"]:
            spine_bytes += link_bytes
            spine_dropped += link_dropped
            if runtime_us > 0:
                spine_util = max(spine_util, busy / (runtime_us * capacity))
    stats.counters["spine_forwards"] = sum(r["spine_forwards"] for r in raws)
    stats.set_gauge("tier:edge:bytes", float(edge_bytes))
    stats.set_gauge("tier:spine:bytes", float(spine_bytes))
    stats.set_gauge("tier:spine:utilization_max", spine_util)
    dropped = edge_dropped + spine_dropped
    if dropped:
        stats.counters["link_packets_dropped"] = int(dropped)
