"""``python -m repro multirack``: run one multi-rack scenario and report.

Prints the topology shape, the intra- vs cross-rack fault latency split
(the directory-sharding crossover the ``multirack-scale`` sweep charts
across rack counts), and the per-tier link accounting.
"""

from __future__ import annotations

from ..sim.stats import LatencySummary
from .runner import MultiRackScenarioConfig, run_multirack


def add_multirack_parser(sub) -> None:
    p = sub.add_parser(
        "multirack",
        help="multi-rack fabric scenario: sharded directories over a spine",
        description=(
            "Run the Section 8 multi-rack scenario: per-rack home switches "
            "sharding the coherence directory by VA range, cross-rack "
            "transactions forwarded over an oversubscribed spine tier.  "
            "Reports the intra- vs cross-rack fault latency split and "
            "per-tier link accounting."
        ),
    )
    p.add_argument("--racks", type=int, default=2)
    p.add_argument("--blades-per-rack", type=int, default=2)
    p.add_argument("--threads-per-blade", type=int, default=1)
    p.add_argument("--accesses", type=int, default=400,
                   help="accesses per thread (default 400)")
    p.add_argument("--cross-fraction", type=float, default=0.2,
                   help="fraction of accesses homed on other racks")
    p.add_argument("--read-ratio", type=float, default=0.7)
    p.add_argument("--pages-per-rack", type=int, default=256,
                   help="shared pool pages mapped per rack")
    p.add_argument("--cache-pages", type=int, default=512,
                   help="per-blade cache capacity in pages")
    p.add_argument("--oversubscription", type=float, default=4.0,
                   help="leaf-spine oversubscription ratio (default 4:1)")
    p.add_argument("--spine-extra", type=float, default=3.4,
                   help="extra one-way spine propagation in us")
    p.add_argument("--open-loop", choices=("poisson", "diurnal"), default=None,
                   help="drive threads with an open-loop arrival process")
    p.add_argument("--arrival-rate", type=float, default=0.02,
                   help="open-loop arrivals per thread per simulated us")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--rack-parallel", type=int, default=None, metavar="N",
                   help="simulate independent rack components in up to N "
                        "worker processes (byte-identical to serial; falls "
                        "back to serial when racks are coupled)")
    p.set_defaults(fn=multirack)


def multirack(args) -> int:
    config = MultiRackScenarioConfig(
        racks=args.racks,
        compute_blades_per_rack=args.blades_per_rack,
        threads_per_blade=args.threads_per_blade,
        accesses_per_thread=args.accesses,
        cross_fraction=args.cross_fraction,
        read_ratio=args.read_ratio,
        pages_per_rack=args.pages_per_rack,
        cache_capacity_pages=args.cache_pages,
        oversubscription=args.oversubscription,
        spine_extra_us=args.spine_extra,
        arrival_process=args.open_loop,
        arrival_rate_per_thread=args.arrival_rate,
        seed=args.seed,
    )
    if args.rack_parallel is not None:
        from .parallel import run_multirack_parallel

        result = run_multirack_parallel(config, workers=args.rack_parallel)
    else:
        result = run_multirack(config)
    stats = result.stats
    fcfg = config.fabric_config()
    spine = fcfg.spine_link_config()
    print(f"multi-rack fabric: {args.racks} rack(s) x "
          f"{args.blades_per_rack} blade(s) x {args.threads_per_blade} thread(s)")
    print(f"  spine: {spine.link_bandwidth_gbps:g} Gbps/link "
          f"({fcfg.oversubscription:g}:1 oversubscribed), "
          f"hop {fcfg.spine_hop_us:g} us")
    print(f"  runtime: {result.runtime_us:.1f} us, "
          f"throughput: {result.throughput_iops:.0f} IOPS, "
          f"accesses: {result.total_accesses}")
    print()
    print("fault locality (the directory-sharding crossover):")
    intra_n = stats.counters.get("intra_rack_faults", 0)
    cross_n = stats.counters.get("cross_rack_faults", 0)
    for label, key, count in (
        ("intra-rack", "fault:intra", intra_n),
        ("cross-rack", "fault:cross", cross_n),
    ):
        summary = LatencySummary.of(stats.latencies.get(key, ()))
        if summary.count:
            print(f"  {label:<11} faults={count:<7} "
                  f"p50={summary.p50:8.2f} us   p99={summary.p99:8.2f} us")
        else:
            print(f"  {label:<11} faults={count:<7} (no remote faults)")
    if intra_n and cross_n:
        intra_p50 = LatencySummary.of(stats.latencies["fault:intra"]).p50
        cross_p50 = LatencySummary.of(stats.latencies["fault:cross"]).p50
        if intra_p50:
            print(f"  cross/intra p50 ratio: {cross_p50 / intra_p50:.2f}x")
    print()
    print("per-tier link accounting:")
    print(f"  edge bytes:  {stats.gauges.get('tier:edge:bytes', 0.0):,.0f}")
    print(f"  spine bytes: {stats.gauges.get('tier:spine:bytes', 0.0):,.0f}")
    print(f"  spine forwards: {stats.counters.get('spine_forwards', 0)}")
    print("  spine utilization (max link): "
          f"{stats.gauges.get('tier:spine:utilization_max', 0.0):.1%}")
    spine_comp = stats.breakdown("fault_path").get("spine", 0.0)
    if spine_comp:
        print(f"  spine time in fault paths: {spine_comp:,.1f} us")
    return 0
