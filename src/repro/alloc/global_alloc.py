"""Global allocation: least-allocated-blade placement over pluggable policies.

The control plane's global view (P2) is the per-blade allocated byte
counts; each allocation goes to the blade with the least.  Because the VA
space is range-partitioned one-to-one onto blades, choosing a blade fixes
the VA range the per-blade policy carves from.

Two things changed relative to the legacy ``repro.core.allocator`` version:

- the per-blade allocator is a pluggable :class:`AllocatorPolicy` chosen by
  name (``first-fit`` remains the default and is placement-identical);
- the least-allocated ordering is maintained *incrementally*: every policy
  mutation fires a hook that repositions just that blade in a sorted
  ``(allocated_bytes, blade_id)`` list (two bisects), instead of re-sorting
  all blades on every allocation -- the difference between O(log n) and
  O(n log n) per mmap at 2048 blades in the ``multirack-scale`` sweep.
  The hook fires on *any* mutation path, including direct ``blade()``
  access by migration and tests, so the ordering can never go stale.

When a cost model is attached (the ``allocator=`` axis is set), every
operation also produces ``last_cost_us`` for the controller to charge on
the switch control CPU, and the per-blade metadata footprints are banked
against a :class:`~repro.switchsim.sram.MetadataSram`.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Type

from .arena import ArenaAllocator
from .buddy import BuddyAllocator
from .bump import BumpAllocator
from .cost import AllocCostModel
from .firstfit import FirstFitAllocator
from .policy import AllocatorPolicy, OutOfMemoryError
from .slab import SlabAllocator

#: policy registry: the ``allocator=`` axis values.
POLICIES: Dict[str, Type[AllocatorPolicy]] = {
    FirstFitAllocator.name: FirstFitAllocator,
    SlabAllocator.name: SlabAllocator,
    BuddyAllocator.name: BuddyAllocator,
    ArenaAllocator.name: ArenaAllocator,
    BumpAllocator.name: BumpAllocator,
}


def make_policy(name: str, base: int, size: int) -> AllocatorPolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown allocator policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    return cls(base, size)


@dataclass
class BladeAllocation:
    """Result of a global allocation: where a vma landed."""

    blade_id: int
    va_base: int
    length: int
    #: modeled control-CPU cost of this allocation (0.0 when unmodeled).
    cost_us: float = 0.0


class GlobalAllocator:
    """Least-allocated-blade placement over per-blade allocator policies."""

    def __init__(
        self,
        policy: str = "first-fit",
        cost_model: Optional[AllocCostModel] = None,
        metadata_sram=None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown allocator policy {policy!r}; "
                f"choose from {sorted(POLICIES)}"
            )
        self.policy_name = policy
        self._policy_cls = POLICIES[policy]
        self.cost_model = cost_model
        self.metadata_sram = metadata_sram
        self._blades: Dict[int, AllocatorPolicy] = {}
        #: sorted (allocated_bytes, blade_id) -- the placement order.
        self._order: List[Tuple[int, int]] = []
        self._keys: Dict[int, Tuple[int, int]] = {}
        self._metadata: Dict[int, int] = {}
        self._metadata_total = 0
        #: modeled control-CPU cost of the most recent operation (us).
        self.last_cost_us = 0.0
        self.enomem_count = 0

    @property
    def modeled(self) -> bool:
        """Whether allocation latency/telemetry modeling is active."""
        return self.cost_model is not None

    # -- membership --------------------------------------------------------

    def add_blade(self, blade_id: int, va_base: int, size: int) -> None:
        if blade_id in self._blades:
            raise ValueError(f"blade {blade_id} already registered")
        policy = self._policy_cls(va_base, size)
        self._blades[blade_id] = policy
        key = (policy.allocated_bytes, blade_id)
        insort(self._order, key)
        self._keys[blade_id] = key
        self._metadata[blade_id] = 0
        self._blade_mutated(blade_id)
        policy._on_mutate = lambda b=blade_id: self._blade_mutated(b)

    def remove_blade(self, blade_id: int, force: bool = False) -> None:
        """Retire a blade.  ``force`` skips the emptiness check -- used
        after migration has evacuated the data but VA ranges of live vmas
        still point (via outliers) elsewhere."""
        alloc = self._blades.get(blade_id)
        if alloc is None:
            raise KeyError(f"no blade {blade_id}")
        if alloc.allocated_bytes and not force:
            raise RuntimeError(
                f"blade {blade_id} still has {alloc.allocated_bytes} bytes allocated; "
                "migrate before retiring"
            )
        alloc._on_mutate = None
        del self._blades[blade_id]
        self._order.remove(self._keys.pop(blade_id))
        self._metadata_total -= self._metadata.pop(blade_id)
        self._sync_sram()

    def blade(self, blade_id: int) -> AllocatorPolicy:
        return self._blades[blade_id]

    @property
    def blade_ids(self) -> List[int]:
        return sorted(self._blades)

    def allocated_per_blade(self) -> Dict[int, int]:
        return {bid: alloc.allocated_bytes for bid, alloc in self._blades.items()}

    # -- incremental ordering ---------------------------------------------

    def _blade_mutated(self, blade_id: int) -> None:
        """Reposition one blade in the placement order; refresh metadata."""
        policy = self._blades[blade_id]
        old_key = self._keys[blade_id]
        new_key = (policy.allocated_bytes, blade_id)
        if new_key != old_key:
            idx = bisect_left(self._order, old_key)
            del self._order[idx]
            insort(self._order, new_key)
            self._keys[blade_id] = new_key
        meta = policy.metadata_bytes()
        self._metadata_total += meta - self._metadata[blade_id]
        self._metadata[blade_id] = meta
        self._sync_sram()

    def _sync_sram(self) -> None:
        if self.metadata_sram is not None:
            self.metadata_sram.set_used(self._metadata_total)

    def attach_metadata_sram(self, sram) -> None:
        """(Re)bind the SRAM bank -- used when a backup switch adopts a
        rebuilt allocator after fail-over."""
        self.metadata_sram = sram
        self._sync_sram()

    def _cost(self, steps: int) -> float:
        if self.cost_model is None:
            return 0.0
        return self.cost_model.cost_us(steps)

    # -- allocation --------------------------------------------------------

    def allocate(self, length: int, owner: Optional[int] = None) -> BladeAllocation:
        """Place a new vma on the least-allocated blade that can fit it.

        The length is padded per the active policy (the default first-fit
        pads to a power of two, min one page, so the vma is a single TCAM
        prefix) and the base aligned per the policy's rule.
        """
        if not self._blades:
            raise OutOfMemoryError("no memory blades registered")
        padded = self._policy_cls.padded_size(length)
        alignment = self._policy_cls.alignment_for(padded)
        order = self._order
        probes = 0
        while probes < len(order):
            blade_id = order[probes][1]
            alloc = self._blades[blade_id]
            try:
                base = alloc.allocate(
                    padded, alignment, requested=length, owner=owner
                )
            except OutOfMemoryError:
                probes += 1
                continue
            # Success mutated the order; return before touching it again.
            self.last_cost_us = self._cost(alloc.last_op_steps + probes)
            return BladeAllocation(blade_id, base, padded, self.last_cost_us)
        self.enomem_count += 1
        self.last_cost_us = self._cost(len(order))
        raise OutOfMemoryError(f"no blade can fit {padded:#x} bytes")

    def allocate_at(self, blade_id: int, base: int, length: int) -> int:
        """Claim an exact range on a named blade (fail-over replay)."""
        result = self._blades[blade_id].allocate_at(base, length)
        self.last_cost_us = self._cost(self._blades[blade_id].last_op_steps)
        return result

    def free(self, blade_id: int, va_base: int) -> int:
        alloc = self._blades[blade_id]
        length = alloc.free(va_base)
        self.last_cost_us = self._cost(alloc.last_op_steps)
        return length

    def jain_fairness(self) -> float:
        """Jain's fairness index over per-blade allocated bytes (Fig. 8 right).

        1.0 means perfectly balanced; 1/n means all load on one blade.
        """
        loads = [a.allocated_bytes for a in self._blades.values()]
        if not loads or sum(loads) == 0:
            return 1.0
        num = sum(loads) ** 2
        den = len(loads) * sum(x * x for x in loads)
        return num / den

    # -- telemetry ---------------------------------------------------------

    def raw_telemetry(self) -> Dict[str, float]:
        """Summable allocator accounting (one dict per rack/allocator)."""
        blades = [self._blades[b] for b in sorted(self._blades)]
        return {
            "allocated": float(sum(a.allocated_bytes for a in blades)),
            "requested": float(sum(a._requested_bytes for a in blades)),
            "free": float(sum(a.free_bytes for a in blades)),
            "waste": float(sum(a.waste_bytes for a in blades)),
            "largest_hole": float(sum(a.largest_hole for a in blades)),
            "metadata": float(self._metadata_total),
            "steps": float(sum(a.total_steps for a in blades)),
            "ops": float(sum(a.total_ops for a in blades)),
            "enomem": float(self.enomem_count),
        }


def alloc_gauges(raws: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Merge per-allocator raw telemetry into the ``alloc:*`` gauge set.

    Byte/step quantities sum; the fragmentation fractions are recomputed
    from the summed bytes so multi-rack aggregation stays well-defined.
    """
    total: Dict[str, float] = {}
    for raw in raws:
        for key, value in raw.items():
            total[key] = total.get(key, 0.0) + value
    free = total.get("free", 0.0)
    allocated = total.get("allocated", 0.0)
    ops = total.get("ops", 0.0)
    external = 1.0 - total.get("largest_hole", 0.0) / free if free > 0 else 0.0
    internal = 1.0 - total.get("requested", 0.0) / allocated if allocated > 0 else 0.0
    return {
        "alloc:allocated_bytes": allocated,
        "alloc:free_bytes": free,
        "alloc:waste_bytes": total.get("waste", 0.0),
        "alloc:metadata_bytes": total.get("metadata", 0.0),
        "alloc:frag:external": external,
        "alloc:frag:internal": internal,
        "alloc:steps_per_op": total.get("steps", 0.0) / ops if ops > 0 else 0.0,
        "alloc:enomem": total.get("enomem", 0.0),
    }
