"""glibc-style arena allocation: per-owner heaps carved from a shared range.

The user-level allocator MIND leaves running above its kernel path, modeled
at the thesis's granularity: each owner (thread/process id) gets its own
*arena*, grown sbrk-style in chunks carved from the blade range (a shared
reserve plus a bump frontier).  Within an arena, allocation is first-fit
over that arena's own hole list -- contention-free and short, which is the
whole point of per-thread arenas -- and every live allocation pays a
chunk-header's worth of metadata, like glibc's 16-byte boundary tags.

When an arena drains completely it is *trimmed*: its chunks return to the
shared reserve (coalesced, frontier-retreating), mirroring glibc's heap
trimming.  Until then, one owner's free space is invisible to the others
-- the external-fragmentation signature that distinguishes arenas from the
switch-side global policies under skewed churn.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .policy import PAGE_SIZE, AllocatorPolicy, OutOfMemoryError, align_up

#: arena key for ownerless allocations and fail-over replays.
_SHARED = -1


@dataclass
class _Arena:
    """One owner's heap: its free holes and occupancy accounting."""

    holes: List[Tuple[int, int]] = field(default_factory=list)
    chunk_bytes: int = 0
    live_bytes: int = 0


def _insert_hole(holes: List[Tuple[int, int]], base: int, length: int) -> None:
    """Insert and coalesce a hole in a sorted ``(base, size)`` list."""
    idx = bisect_left(holes, (base,))
    holes.insert(idx, (base, length))
    if idx + 1 < len(holes):
        nb, ns = holes[idx + 1]
        if base + length == nb:
            holes[idx] = (base, length + ns)
            del holes[idx + 1]
    if idx > 0:
        pb, ps = holes[idx - 1]
        b, s = holes[idx]
        if pb + ps == b:
            holes[idx - 1] = (pb, ps + s)
            del holes[idx]


class ArenaAllocator(AllocatorPolicy):
    """Per-owner first-fit arenas over a shared chunk reserve."""

    name = "arena"

    #: preferred chunk size an arena grows by (glibc: HEAP_MAX_SIZE-ish,
    #: scaled down to simulation blade sizes).
    CHUNK = 1 << 22
    _HOLE_RECORD = 16
    _LIVE_RECORD = 32  # boundary tag + allocation record
    _ARENA_RECORD = 64

    def __init__(self, base: int, size: int):
        super().__init__(base, size)
        self._arenas: Dict[int, _Arena] = {}
        #: allocation base -> owning arena key.
        self._owner_of: Dict[int, int] = {}
        #: trimmed chunks available for reuse, sorted and coalesced.
        self._reserve: List[Tuple[int, int]] = []
        self._frontier = base

    @classmethod
    def padded_size(cls, length: int) -> int:
        return align_up(max(length, PAGE_SIZE), PAGE_SIZE)

    @classmethod
    def alignment_for(cls, padded: int) -> int:
        return PAGE_SIZE

    # -- chunk acquisition -------------------------------------------------

    def _chunk_size(self, length: int) -> int:
        preferred = min(self.CHUNK, max(PAGE_SIZE, self.size // 8))
        return align_up(max(length, preferred), PAGE_SIZE)

    def _carve_extent(self, want: int, need: int) -> Optional[Tuple[int, int, int]]:
        """Take an extent >= ``need`` (ideally ``want``) from reserve or
        frontier; returns ``(base, size, steps)`` or None."""
        for target in (want, need) if want != need else (need,):
            for i, (hole_base, hole_size) in enumerate(self._reserve):
                if hole_size >= target:
                    take = min(hole_size, want)
                    del self._reserve[i]
                    if hole_size > take:
                        self._reserve.insert(i, (hole_base + take, hole_size - take))
                    return hole_base, take, i + 1
        remaining = (self.base + self.size) - self._frontier
        if remaining >= need:
            take = min(want, remaining)
            extent = (self._frontier, take, 1)
            self._frontier += take
            return extent
        return None

    def _release_to_reserve(self, base: int, length: int) -> None:
        """Return a trimmed chunk; retreat the frontier when adjacent."""
        _insert_hole(self._reserve, base, length)
        while self._reserve and (
            self._reserve[-1][0] + self._reserve[-1][1] == self._frontier
        ):
            hole_base, _hole_size = self._reserve.pop()
            self._frontier = hole_base

    # -- policy internals --------------------------------------------------

    def _do_allocate(
        self, length: int, alignment: int, owner: Optional[int]
    ) -> Tuple[int, int]:
        key = _SHARED if owner is None else owner
        arena = self._arenas.get(key)
        if arena is None:
            arena = self._arenas[key] = _Arena()
        # First-fit within the owner's own holes (page-multiple extents are
        # page-aligned, so no alignment waste inside an arena).
        for i, (hole_base, hole_size) in enumerate(arena.holes):
            if hole_size >= length:
                del arena.holes[i]
                if hole_size > length:
                    arena.holes.insert(i, (hole_base + length, hole_size - length))
                arena.live_bytes += length
                self._owner_of[hole_base] = key
                return hole_base, i + 2
        # Grow the arena by a chunk (sbrk).
        scanned = len(arena.holes)
        extent = self._carve_extent(self._chunk_size(length), length)
        if extent is None:
            raise OutOfMemoryError(
                f"no chunk fits {length:#x} bytes (arenas hold the rest)"
            )
        chunk_base, chunk_size, carve_steps = extent
        arena.chunk_bytes += chunk_size
        if chunk_size > length:
            _insert_hole(arena.holes, chunk_base + length, chunk_size - length)
        arena.live_bytes += length
        self._owner_of[chunk_base] = key
        return chunk_base, scanned + carve_steps + 1

    def _do_allocate_at(self, base: int, length: int) -> int:
        arena = self._arenas.get(_SHARED)
        if arena is None:
            arena = self._arenas[_SHARED] = _Arena()
        if base >= self._frontier:
            if base + length > self.base + self.size:
                raise OutOfMemoryError(
                    f"range [{base:#x}, {base + length:#x}) beyond blade range"
                )
            if base > self._frontier:
                _insert_hole(self._reserve, self._frontier, base - self._frontier)
            self._frontier = base + length
            arena.chunk_bytes += length
            arena.live_bytes += length
            self._owner_of[base] = _SHARED
            return 1
        steps = 1
        for i, (hole_base, hole_size) in enumerate(self._reserve):
            steps += 1
            if hole_base <= base and base + length <= hole_base + hole_size:
                del self._reserve[i]
                if base > hole_base:
                    self._reserve.insert(i, (hole_base, base - hole_base))
                    i += 1
                tail = (hole_base + hole_size) - (base + length)
                if tail:
                    self._reserve.insert(i, (base + length, tail))
                arena.chunk_bytes += length
                arena.live_bytes += length
                self._owner_of[base] = _SHARED
                return steps
        raise OutOfMemoryError(f"range [{base:#x}, {base + length:#x}) not free")

    def _do_free(self, base: int, length: int) -> int:
        key = self._owner_of.pop(base)
        arena = self._arenas[key]
        _insert_hole(arena.holes, base, length)
        arena.live_bytes -= length
        steps = max(1, len(arena.holes).bit_length())
        if arena.live_bytes == 0:
            # Trim: the whole arena (now pure holes) returns to the reserve.
            for hole_base, hole_size in arena.holes:
                self._release_to_reserve(hole_base, hole_size)
                steps += 1
            del self._arenas[key]
        return steps

    # -- accounting views --------------------------------------------------

    @property
    def largest_hole(self) -> int:
        best = (self.base + self.size) - self._frontier
        for _base, size in self._reserve:
            best = max(best, size)
        for arena in self._arenas.values():
            for _base, size in arena.holes:
                best = max(best, size)
        return best

    def holes(self) -> List[Tuple[int, int]]:
        out = list(self._reserve)
        for arena in self._arenas.values():
            out.extend(arena.holes)
        pristine = (self.base + self.size) - self._frontier
        if pristine:
            out.append((self._frontier, pristine))
        return sorted(out)

    def arena_count(self) -> int:
        return len(self._arenas)

    def metadata_bytes(self) -> int:
        hole_records = len(self._reserve)
        for arena in self._arenas.values():
            hole_records += len(arena.holes)
        return (
            self._HOLE_RECORD * hole_records
            + self._LIVE_RECORD * len(self._live)
            + self._ARENA_RECORD * len(self._arenas)
            + 16
        )
