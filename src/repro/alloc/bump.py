"""Bump/array allocation: a frontier pointer and almost no metadata.

The thesis's degenerate baseline: allocation advances a frontier (O(1), a
couple of registers of metadata), and ``free`` merely *retires* the bytes
-- they stay unusable until the allocator drains completely, at which point
the whole range resets (the array-allocator epoch model).  Under steady
churn the retired bytes grow monotonically, so this policy shows the worst
waste of the ablation while posting the smallest metadata footprint and
the lowest per-op cost -- the two ends of the trade-off in one policy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .policy import PAGE_SIZE, AllocatorPolicy, OutOfMemoryError, align_up


class BumpAllocator(AllocatorPolicy):
    """Frontier allocation with retire-on-free and reset-when-empty."""

    name = "bump"

    _LIVE_RECORD = 8  # just the length, for free() accounting

    def __init__(self, base: int, size: int):
        super().__init__(base, size)
        self._frontier = base
        self._retired = 0

    @classmethod
    def padded_size(cls, length: int) -> int:
        return align_up(max(length, PAGE_SIZE), PAGE_SIZE)

    @classmethod
    def alignment_for(cls, padded: int) -> int:
        return PAGE_SIZE

    # -- policy internals --------------------------------------------------

    def _do_allocate(
        self, length: int, alignment: int, owner: Optional[int]
    ) -> Tuple[int, int]:
        if self._frontier + length > self.base + self.size:
            raise OutOfMemoryError(
                f"frontier exhausted: {length:#x} bytes over "
                f"{self._retired:#x} retired"
            )
        base = self._frontier
        self._frontier += length
        return base, 1

    def _do_allocate_at(self, base: int, length: int) -> int:
        if base < self._frontier or base + length > self.base + self.size:
            raise OutOfMemoryError(
                f"range [{base:#x}, {base + length:#x}) not ahead of frontier"
            )
        self._retired += base - self._frontier
        self._frontier = base + length
        return 1

    def _do_free(self, base: int, length: int) -> int:
        if base + length == self._frontier:
            # Tail free: the frontier can back up without a full reset.
            self._frontier = base
        else:
            self._retired += length
        if not self._live:
            # Drained: wholesale epoch reset reclaims every retired byte.
            self._frontier = self.base
            self._retired = 0
        return 1

    # -- accounting views --------------------------------------------------

    @property
    def waste_bytes(self) -> int:
        return self._retired

    @property
    def largest_hole(self) -> int:
        return (self.base + self.size) - self._frontier

    def holes(self) -> List[Tuple[int, int]]:
        pristine = self.largest_hole
        return [(self._frontier, pristine)] if pristine else []

    def metadata_bytes(self) -> int:
        return 24 + self._LIVE_RECORD * len(self._live)
