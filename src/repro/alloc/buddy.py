"""Binary buddy allocator: pow2 blocks, O(log n) split/merge cascades.

The textbook alternative with predictable cost: the blade range is seeded
as pow2 blocks, allocation pops the smallest free block that fits and
splits it down to the request size, and every free merges with its buddy
(the equal-size neighbour across the doubled-size boundary) as far as it
can.  External fragmentation is structurally bounded -- free space always
re-coalesces into aligned pow2 extents -- at the price of pow2 internal
fragmentation identical to MIND's own padding rule, plus a fixed bitmap
metadata footprint proportional to the blade size.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

from .policy import PAGE_SIZE, AllocatorPolicy, OutOfMemoryError


class BuddyAllocator(AllocatorPolicy):
    """Classic binary buddy over the blade range (min block = one page)."""

    name = "buddy"

    _FREE_NODE = 16

    def __init__(self, base: int, size: int):
        super().__init__(base, size)
        #: block size -> sorted free-block bases, plus a base -> size map
        #: for O(1) buddy lookups.
        self._free_lists: Dict[int, List[int]] = {}
        self._free_at: Dict[int, int] = {}
        # Seed with a greedy pow2 decomposition (one block when the blade
        # capacity is a power of two, as MindConfig requires).
        offset = 0
        while offset < size:
            remaining = size - offset
            block = 1 << (remaining.bit_length() - 1)
            align = offset & -offset if offset else block
            block = min(block, align) if offset else block
            self._add_free(base + offset, block)
            offset += block

    def _add_free(self, block_base: int, block_size: int) -> None:
        insort(self._free_lists.setdefault(block_size, []), block_base)
        self._free_at[block_base] = block_size

    def _remove_free(self, block_base: int, block_size: int) -> None:
        self._free_lists[block_size].remove(block_base)
        del self._free_at[block_base]

    # -- policy internals --------------------------------------------------

    def _do_allocate(
        self, length: int, alignment: int, owner: Optional[int]
    ) -> Tuple[int, int]:
        # length is pow2 >= PAGE_SIZE (the default padding rule); find the
        # smallest free block that fits and split it down.
        steps = 1
        candidates = sorted(
            s for s, blocks in self._free_lists.items()
            if s >= length and blocks
        )
        if not candidates:
            raise OutOfMemoryError(f"no free block fits {length:#x} bytes")
        block_size = candidates[0]
        base = self._free_lists[block_size][0]
        self._remove_free(base, block_size)
        while block_size > length:
            block_size //= 2
            self._add_free(base + block_size, block_size)
            steps += 1
        return base, steps

    def _do_allocate_at(self, base: int, length: int) -> int:
        # Walk up from the target block until a free ancestor is found,
        # then split back down keeping [base, base + length).
        steps = 1
        block_size = length
        block_base = base
        while True:
            if self._free_at.get(block_base) == block_size:
                break
            if block_size >= self.size:
                raise OutOfMemoryError(
                    f"range [{base:#x}, {base + length:#x}) not free"
                )
            rel = block_base - self.base
            block_size *= 2
            block_base = self.base + (rel & ~(block_size - 1))
            steps += 1
        self._remove_free(block_base, block_size)
        while block_size > length:
            block_size //= 2
            if base < block_base + block_size:
                self._add_free(block_base + block_size, block_size)
            else:
                self._add_free(block_base, block_size)
                block_base += block_size
            steps += 1
        return steps

    def _do_free(self, base: int, length: int) -> int:
        steps = 1
        block_base, block_size = base, length
        while block_size < self.size:
            rel = block_base - self.base
            buddy = self.base + (rel ^ block_size)
            if self._free_at.get(buddy) != block_size:
                break
            self._remove_free(buddy, block_size)
            block_base = min(block_base, buddy)
            block_size *= 2
            steps += 1
        self._add_free(block_base, block_size)
        return steps

    # -- accounting views --------------------------------------------------

    @property
    def largest_hole(self) -> int:
        return max(
            (s for s, blocks in self._free_lists.items() if blocks), default=0
        )

    def holes(self) -> List[Tuple[int, int]]:
        return sorted(self._free_at.items())

    def metadata_bytes(self) -> int:
        # Split/allocated bitmap (two bits per min-size block) plus free
        # list nodes and per-level heads.
        bitmap = (self.size // PAGE_SIZE) // 4
        levels = max(1, (self.size // PAGE_SIZE).bit_length())
        return (
            bitmap
            + 8 * levels
            + self._FREE_NODE * len(self._free_at)
        )
