"""Switch-side slab allocator: size-class free lists, bounded split/merge.

The kernel-style alternative to raw first-fit: requests round up to a size
class (powers of two plus the 3*2^k half-steps, in pages), satisfied from a
per-class free list.  An empty class *splits* a block from one of the next
few larger classes (bounded splitting: only ``SPLIT_SPAN`` classes up are
considered, so a lookup never walks the whole class ladder); otherwise a
fresh slab is carved off the bump frontier.  Frees *merge* with equal-size
buddies up to ``MERGE_DEPTH`` levels (bounded merging) and retreat the
frontier when the freed space is adjacent to it, so a fully drained blade
collapses back to one pristine extent.

Compared with first-fit this trades a little internal fragmentation (class
rounding) for near-constant allocation cost and much smaller hole churn.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

from .policy import PAGE_SIZE, AllocatorPolicy, OutOfMemoryError


def _class_pages(pages: int) -> int:
    """Smallest size class (in pages) >= ``pages``: {2^k} U {3*2^k}."""
    p2 = 1 << (pages - 1).bit_length()
    three = 3 * p2 // 4
    if p2 >= 4 and pages <= three:
        return three
    return p2


def _largest_class_pages(pages: int) -> int:
    """Largest size class <= ``pages`` (for greedy remainder decomposition)."""
    p2 = 1 << (pages.bit_length() - 1)
    three = 3 * p2 // 2
    if p2 >= 2 and three <= pages:
        return three
    return p2


class SlabAllocator(AllocatorPolicy):
    """Size-class slab allocation with bounded splitting and merging."""

    name = "slab"

    #: how many larger classes an empty-class lookup may split from.
    SPLIT_SPAN = 3
    #: how many buddy-merge levels a free may climb.
    MERGE_DEPTH = 2

    _BLOCK_RECORD = 16
    _LIVE_RECORD = 16
    _CLASS_HEAD = 8

    def __init__(self, base: int, size: int):
        super().__init__(base, size)
        #: class size -> sorted free-block bases.
        self._free_lists: Dict[int, List[int]] = {}
        #: free-block base -> size, and end -> base (for frontier retreat).
        self._free_at: Dict[int, int] = {}
        self._free_end: Dict[int, int] = {}
        self._frontier = base

    @classmethod
    def padded_size(cls, length: int) -> int:
        pages = -(-max(length, PAGE_SIZE) // PAGE_SIZE)
        return _class_pages(pages) * PAGE_SIZE

    @classmethod
    def alignment_for(cls, padded: int) -> int:
        return PAGE_SIZE

    # -- free-structure helpers -------------------------------------------

    def _add_free(self, base: int, size: int) -> None:
        insort(self._free_lists.setdefault(size, []), base)
        self._free_at[base] = size
        self._free_end[base + size] = base

    def _remove_free(self, base: int, size: int) -> None:
        lst = self._free_lists[size]
        lst.remove(base)
        del self._free_at[base]
        del self._free_end[base + size]

    def _decompose(self, base: int, size: int) -> int:
        """Greedily shatter an extent into class-size free blocks."""
        steps = 0
        while size:
            piece = _largest_class_pages(size // PAGE_SIZE) * PAGE_SIZE
            self._add_free(base, piece)
            base += piece
            size -= piece
            steps += 1
        return steps

    def _retreat(self, new_frontier: int) -> int:
        """Pull the frontier back, absorbing free blocks that now touch it."""
        steps = 1
        self._frontier = new_frontier
        while True:
            block = self._free_end.get(self._frontier)
            if block is None:
                return steps
            self._remove_free(block, self._free_at[block])
            self._frontier = block
            steps += 1

    # -- policy internals --------------------------------------------------

    def _do_allocate(
        self, length: int, alignment: int, owner: Optional[int]
    ) -> Tuple[int, int]:
        # Exact class hit.
        lst = self._free_lists.get(length)
        if lst:
            base = lst.pop(0)
            del self._free_at[base]
            del self._free_end[base + length]
            return base, 1
        # Bounded splitting: only blocks within SPLIT_SPAN doublings of the
        # request may be split (larger ones would shatter into too many
        # pieces; the frontier serves those requests instead).
        steps = 1
        larger = sorted(
            s for s, blocks in self._free_lists.items() if s > length and blocks
        )
        if larger and larger[0] <= (length << self.SPLIT_SPAN):
            source_size = larger[0]
            steps += 1
            base = self._free_lists[source_size][0]
            self._remove_free(base, source_size)
            steps += self._decompose(base + length, source_size - length)
            return base, steps
        # Fresh slab off the frontier.
        if self._frontier + length <= self.base + self.size:
            base = self._frontier
            self._frontier += length
            return base, steps + 1
        raise OutOfMemoryError(
            f"no slab of {length:#x} bytes available (frontier exhausted)"
        )

    def _do_allocate_at(self, base: int, length: int) -> int:
        if base >= self._frontier:
            if base + length > self.base + self.size:
                raise OutOfMemoryError(
                    f"range [{base:#x}, {base + length:#x}) beyond blade range"
                )
            steps = 1
            if base > self._frontier:
                steps += self._decompose(self._frontier, base - self._frontier)
            self._frontier = base + length
            return steps
        # Claim out of an existing free block (mid-replay or test usage).
        steps = 1
        for block_base in sorted(self._free_at):
            steps += 1
            block_size = self._free_at[block_base]
            if block_base <= base and base + length <= block_base + block_size:
                self._remove_free(block_base, block_size)
                if base > block_base:
                    steps += self._decompose(block_base, base - block_base)
                tail = (block_base + block_size) - (base + length)
                if tail:
                    steps += self._decompose(base + length, tail)
                return steps
        raise OutOfMemoryError(f"range [{base:#x}, {base + length:#x}) not free")

    def _do_free(self, base: int, length: int) -> int:
        if base + length == self._frontier:
            return self._retreat(base)
        # Bounded buddy merging: climb while the equal-size neighbour on the
        # doubled-size boundary is free.  Doubling a class stays a class
        # (2*2^k and 2*3*2^k are both classes).
        steps = 1
        cur_base, cur_size = base, length
        for _ in range(self.MERGE_DEPTH):
            double = 2 * cur_size
            rel = cur_base - self.base
            if rel % double == 0:
                buddy = cur_base + cur_size
            elif rel % double == cur_size:
                buddy = cur_base - cur_size
            else:
                break
            if self._free_at.get(buddy) != cur_size:
                break
            self._remove_free(buddy, cur_size)
            cur_base = min(cur_base, buddy)
            cur_size = double
            steps += 1
        if cur_base + cur_size == self._frontier:
            return steps + self._retreat(cur_base)
        self._add_free(cur_base, cur_size)
        return steps

    # -- accounting views --------------------------------------------------

    @property
    def largest_hole(self) -> int:
        pristine = (self.base + self.size) - self._frontier
        in_lists = max(
            (s for s, blocks in self._free_lists.items() if blocks), default=0
        )
        return max(pristine, in_lists)

    def holes(self) -> List[Tuple[int, int]]:
        out = [(b, s) for b, s in self._free_at.items()]
        pristine = (self.base + self.size) - self._frontier
        if pristine:
            out.append((self._frontier, pristine))
        return sorted(out)

    def metadata_bytes(self) -> int:
        return (
            self._BLOCK_RECORD * len(self._free_at)
            + self._LIVE_RECORD * len(self._live)
            + self._CLASS_HEAD * len(self._free_lists)
            + 16  # frontier + bounds registers
        )
