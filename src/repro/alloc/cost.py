"""Deterministic allocation-cost model: scan steps -> control-CPU time.

Every policy reports the *step count* of each operation (holes scanned,
splits, merges, arenas grown).  This module converts steps into the
microseconds the switch control CPU spends on the allocation part of an
``mmap``/``munmap`` -- a fixed dispatch overhead plus a per-step charge,
calibrated well below the PCIe rule-update cost (allocation is a pure
CPU-memory walk over control-plane tables; it never crosses PCIe).

The model is intentionally affine and integer-step driven so that allocator
sweeps remain byte-identical across worker processes: cost is a pure
function of the op's step count, never of wall-clock or allocation history.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AllocCostModel:
    """Affine step-cost model for control-plane allocation work."""

    #: fixed allocator-dispatch overhead per operation (us).
    base_us: float = 1.5
    #: cost of one scan/split/merge step over control-plane tables (us).
    per_step_us: float = 0.3

    def cost_us(self, steps: int) -> float:
        return self.base_us + self.per_step_us * steps
