"""Churn scenario driver: a seeded malloc/free storm -> :class:`RunResult`.

The ``churn`` sweep workload.  Every thread is its *own process* (one
``sys_exec`` each), so its PID is its protection domain and -- under the
``arena`` policy -- its arena: the per-thread-heap behaviour the glibc
comparison needs falls out of the ownership plumbing rather than being
special-cased.

Each op round-trips through the real control plane (``sys_mmap`` /
``sys_munmap`` on the switch controller) and then *occupies* the
single-server control CPU for the syscall cost plus the policy's modeled
allocation cost, so allocator-dependent queueing shows up in the
``churn:op`` latency distribution, not just in per-op averages.

The run has two barriered phases: churn (the generated op streams, heaps
hovering at ``live_target``) and drain (munmap everything).  Occupancy and
fragmentation gauges are sampled at the phase boundary -- the loaded
steady state, where policies actually differ -- while step/cost/latency
accounting covers both phases (the drain is where coalescing cascades and
arena trims do their work).

Everything derives from :func:`~repro.workloads.trace.stable_seed`
children of the scenario seed; a point is byte-identical regardless of
which worker process executes it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Generator, List, Optional

from ..cluster import ClusterConfig, MindCluster
from ..core.controller import SyscallError
from ..core.mmu import MindConfig
from ..sim.stats import RunResult
from ..switchsim.control_cpu import ControlCpu
from ..workloads.churn import OP_MMAP, generate_churn_ops
from .global_alloc import alloc_gauges

#: gauges re-pinned to the churn-phase (loaded steady state) sample.
_STEADY_STATE_GAUGES = (
    "alloc:allocated_bytes",
    "alloc:free_bytes",
    "alloc:waste_bytes",
    "alloc:metadata_bytes",
    "alloc:frag:external",
    "alloc:frag:internal",
)


@dataclass
class ChurnScenarioConfig:
    """One churn point (the ``churn`` sweep workload)."""

    compute_blades: int = 2
    threads_per_blade: int = 2
    num_memory_blades: int = 4
    #: per-blade capacity; small so fragmentation pressure is visible.
    memory_blade_capacity: int = 1 << 24
    #: allocation policy under test.  The churn scenario always models
    #: cost (that is its purpose), so the default is the *named*
    #: first-fit, not None.
    allocator: str = "first-fit"
    #: object-size mix: "small", "large" or "mixed" (see
    #: :data:`repro.workloads.churn.SIZE_DISTRIBUTIONS`).
    size_dist: str = "mixed"
    ops_per_thread: int = 400
    #: live-object count each thread's stream hovers around.
    live_target: int = 48
    seed: int = 1
    cache_capacity_pages: int = 256

    def mind_config(self) -> MindConfig:
        return MindConfig(
            memory_blade_capacity=self.memory_blade_capacity,
            enable_bounded_splitting=False,
            allocator=self.allocator,
        )


def config_from_params(params: Dict, **overrides) -> ChurnScenarioConfig:
    """Build a scenario config from loose sweep params, rejecting unknowns."""
    known = {f.name for f in fields(ChurnScenarioConfig)}
    merged = dict(params)
    merged.update(overrides)
    unknown = sorted(set(merged) - known)
    if unknown:
        raise ValueError(
            f"unknown churn scenario parameter(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    return ChurnScenarioConfig(**merged)


def _syscall_round(cluster: MindCluster) -> Generator:
    """Occupy the control CPU for one syscall + its modeled allocator cost."""
    cpu = cluster.mmu.control_cpu
    cost = ControlCpu.SYSCALL_US + cluster.mmu.allocator.last_cost_us
    return cpu.occupy(cost)


def _churn_proc(
    cluster: MindCluster,
    pid: int,
    ops: List,
    live: List[int],
    enomem_counts: List[int],
) -> Generator:
    """One process-thread's churn phase over its generated op stream."""
    controller = cluster.controller
    engine = cluster.engine
    stats = cluster.stats
    for kind, value in ops:
        t0 = engine.now
        if kind == OP_MMAP:
            try:
                live.append(controller.sys_mmap(pid, value))
            except SyscallError:
                enomem_counts[0] += 1
        else:
            if live:
                controller.sys_munmap(pid, live.pop(value % len(live)))
        # Serialize the syscall + modeled allocator work through the
        # single-server CPU so queueing under contention is observable.
        yield from _syscall_round(cluster)
        stats.record_latency("churn:op", engine.now - t0)


def _drain_proc(cluster: MindCluster, pid: int, live: List[int]) -> Generator:
    """One process-thread's drain phase: munmap every surviving object."""
    controller = cluster.controller
    for base in live:
        controller.sys_munmap(pid, base)
        yield from _syscall_round(cluster)
    live.clear()


def run_churn(config: Optional[ChurnScenarioConfig] = None) -> RunResult:
    """Execute one churn point; deterministic in ``config`` alone."""
    config = config or ChurnScenarioConfig()
    cluster = MindCluster(
        ClusterConfig(
            num_compute_blades=config.compute_blades,
            num_memory_blades=config.num_memory_blades,
            cache_capacity_pages=config.cache_capacity_pages,
            store_data=False,
            mind=config.mind_config(),
        )
    )
    controller = cluster.controller
    num_threads = config.compute_blades * config.threads_per_blade
    enomem_counts = [0]
    lives: List[List[int]] = [[] for _ in range(num_threads)]
    pids: List[int] = []
    churn_gens = []
    total = 0
    for t in range(num_threads):
        # One process per thread: the PID is the arena owner.
        task = controller.sys_exec(f"churn.{t}")
        controller.place_thread(task.pid)
        pids.append(task.pid)
        ops = generate_churn_ops(
            config.seed,
            t,
            config.ops_per_thread,
            config.live_target,
            config.size_dist,
        )
        total += len(ops)
        churn_gens.append(
            _churn_proc(cluster, task.pid, ops, lives[t], enomem_counts)
        )
    cluster.run_all(churn_gens)
    # Sample occupancy/fragmentation at the loaded steady state (heaps at
    # live_target), before the drain coalesces everything away.
    steady = alloc_gauges([cluster.mmu.allocator.raw_telemetry()])
    cluster.run_all(
        [_drain_proc(cluster, pids[t], lives[t]) for t in range(num_threads)]
    )
    cluster.capture_telemetry()
    stats = cluster.stats
    for name in _STEADY_STATE_GAUGES:
        stats.set_gauge(name, steady[name])
    if enomem_counts[0]:
        stats.counters["churn_enomem"] = enomem_counts[0]
    return RunResult(
        system="mind",
        workload="churn",
        num_blades=config.compute_blades,
        num_threads=num_threads,
        runtime_us=cluster.engine.now,
        total_accesses=total,
        stats=stats,
        kernel_stats=cluster.engine.kernel_stats(),
    )
