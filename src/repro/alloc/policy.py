"""The allocator-policy interface: one pluggable allocator per memory blade.

MIND hard-wires a first-fit allocator into its control plane (Section 4.1);
the ``mind-malloc-bench`` thesis exists precisely because that choice is a
known weak point.  This module defines the contract every per-blade policy
implements so the ablation can swap allocators without touching the control
plane:

- ``allocate`` / ``allocate_at`` / ``free`` with the legacy first-fit
  signatures (``allocate_at`` is the Section 4.4 fail-over replay path);
- running-counter accounting (``allocated_bytes``/``free_bytes`` are O(1),
  never re-summed) plus per-op *scan steps*, the deterministic work measure
  the cost model converts into control-CPU microseconds;
- fragmentation reporting: external (how shattered the free space is) and
  internal (padding overhead over the bytes the caller asked for);
- a metadata footprint in bytes, banked against the switch CPU's SRAM
  budget by the global allocator;
- a mutation hook so the global allocator can maintain its least-allocated
  blade ordering incrementally instead of re-sorting on every allocation.

Every policy is deterministic: identical call sequences produce identical
placements, step counts and telemetry, which is what keeps allocator-axis
sweeps byte-identical at any ``--jobs``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, ClassVar, Dict, List, Optional, Tuple

from ..sim.network import PAGE_SIZE

__all__ = [
    "AllocatorPolicy",
    "OutOfMemoryError",
    "PAGE_SIZE",
    "align_up",
    "round_up_pow2",
]


class OutOfMemoryError(RuntimeError):
    """The requested allocation cannot be satisfied (maps to ENOMEM)."""


# Local copies of the two alignment helpers (also in ``repro.core.vma``).
# ``repro.alloc`` must not import from ``repro.core``: the core package
# imports allocator names from here, and a module-level back-edge would
# make the import order observable (``import repro.alloc`` first would
# explode).  Depending only on ``repro.sim`` keeps the layering acyclic.


def align_up(value: int, alignment: int) -> int:
    return value + (-value % alignment)


def round_up_pow2(value: int) -> int:
    if value <= 0:
        raise ValueError("value must be positive")
    return 1 << (value - 1).bit_length()


class AllocatorPolicy(ABC):
    """One blade's allocator over a contiguous ``[base, base + size)`` range.

    Subclasses implement ``_do_allocate`` / ``_do_allocate_at`` / ``_do_free``
    (each returning the deterministic *step count* of the operation) plus the
    ``largest_hole`` and ``metadata_bytes`` views; the base class owns the
    shared bookkeeping: the live-allocation map, running byte counters,
    requested-byte tracking for internal fragmentation, step totals, and the
    mutation hook.
    """

    #: registry key; also recorded in fail-over snapshots.
    name: ClassVar[str] = "abstract"

    def __init__(self, base: int, size: int):
        if size <= 0:
            raise ValueError("allocator range must be non-empty")
        self.base = base
        self.size = size
        #: base -> padded length of every live allocation.
        self._live: Dict[int, int] = {}
        #: base -> bytes the caller actually asked for (<= padded length).
        self._requested: Dict[int, int] = {}
        self._allocated_bytes = 0
        self._requested_bytes = 0
        #: deterministic work measure of the most recent operation.
        self.last_op_steps = 0
        self.total_steps = 0
        self.total_ops = 0
        #: installed by the global allocator; fires after every mutation so
        #: the least-allocated ordering and the SRAM bank stay fresh even
        #: when callers (migration, tests) mutate a blade directly.
        self._on_mutate: Optional[Callable[[], None]] = None

    # -- padding policy (class-level: the global allocator pads before
    # -- choosing a blade, so padding cannot depend on instance state) ----

    @classmethod
    def padded_size(cls, length: int) -> int:
        """Block size this policy carves for a ``length``-byte request.

        Default: next power of two, minimum one page -- the paper's rule
        that keeps every vma a single TCAM prefix (Section 4.2).  Policies
        with finer size classes override this; their non-pow2 vmas simply
        compile to a few prefix entries (``split_range_to_pow2``).
        """
        return round_up_pow2(max(length, PAGE_SIZE))

    @classmethod
    def alignment_for(cls, padded: int) -> int:
        """Base alignment for a ``padded``-byte block (default: natural)."""
        return padded

    # -- public operations -------------------------------------------------

    def allocate(
        self,
        length: int,
        alignment: int,
        requested: Optional[int] = None,
        owner: Optional[int] = None,
    ) -> int:
        """Place a ``length``-byte block at ``alignment``; returns its base.

        ``requested`` is the pre-padding byte count (for internal-
        fragmentation accounting); ``owner`` identifies the allocating
        thread/process for owner-aware policies (the glibc-style arenas).
        """
        if length <= 0:
            raise ValueError("allocation length must be positive")
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a power of two")
        result = self._do_allocate(length, alignment, owner)
        base, steps = result
        self._commit(base, length, requested, steps)
        return base

    def allocate_at(
        self, base: int, length: int, requested: Optional[int] = None
    ) -> int:
        """Claim an exact range (fail-over replay of a prior allocation)."""
        if length <= 0:
            raise ValueError("allocation length must be positive")
        steps = self._do_allocate_at(base, length)
        self._commit(base, length, requested, steps)
        return base

    def free(self, base: int) -> int:
        """Release an allocation; returns its padded length."""
        length = self._live.get(base)
        if length is None:
            raise KeyError(f"no allocation at {base:#x}")
        del self._live[base]
        self._allocated_bytes -= length
        self._requested_bytes -= self._requested.pop(base)
        steps = self._do_free(base, length)
        self._note(steps)
        return length

    def _commit(
        self, base: int, length: int, requested: Optional[int], steps: int
    ) -> None:
        self._live[base] = length
        asked = length if requested is None else min(requested, length)
        self._requested[base] = asked
        self._allocated_bytes += length
        self._requested_bytes += asked
        self._note(steps)

    def _note(self, steps: int) -> None:
        self.last_op_steps = steps
        self.total_steps += steps
        self.total_ops += 1
        if self._on_mutate is not None:
            self._on_mutate()

    # -- policy internals --------------------------------------------------

    @abstractmethod
    def _do_allocate(
        self, length: int, alignment: int, owner: Optional[int]
    ) -> Tuple[int, int]:
        """Find a placement; return ``(base, steps)`` or raise OOM."""

    @abstractmethod
    def _do_allocate_at(self, base: int, length: int) -> int:
        """Claim ``[base, base + length)`` exactly; return steps or raise."""

    @abstractmethod
    def _do_free(self, base: int, length: int) -> int:
        """Return the block to the free structures; return steps.

        Called after the live map and byte counters have been updated, so
        policies may observe ``not self._live`` (e.g. the bump reset).
        """

    # -- accounting views --------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return self._allocated_bytes

    @property
    def waste_bytes(self) -> int:
        """Bytes neither live nor reusable (only bump retires bytes)."""
        return 0

    @property
    def free_bytes(self) -> int:
        return self.size - self._allocated_bytes - self.waste_bytes

    @property
    @abstractmethod
    def largest_hole(self) -> int:
        """Largest contiguous allocatable extent (pre-padding)."""

    def holes(self) -> List[Tuple[int, int]]:
        """Sorted free extents, where the policy tracks them explicitly."""
        return []

    def live_allocations(self) -> Dict[int, int]:
        return dict(self._live)

    @abstractmethod
    def metadata_bytes(self) -> int:
        """Control-plane bytes this policy's bookkeeping occupies now."""

    def external_fragmentation(self) -> float:
        """1 - largest_hole / free_bytes: 0 when free space is one extent."""
        free = self.free_bytes
        if free <= 0:
            return 0.0
        return 1.0 - self.largest_hole / free

    def internal_fragmentation(self) -> float:
        """1 - requested / allocated: padding overhead on live bytes."""
        if self._allocated_bytes <= 0:
            return 0.0
        return 1.0 - self._requested_bytes / self._allocated_bytes
