"""First-fit over one contiguous range: MIND's own allocator (Section 4.1).

Migrated from ``repro.core.allocator`` byte-for-byte in placement behaviour
(the default policy must keep ``BENCH_baseline.json`` bit-identical), with
the two hot-path fixes the legacy version needed: ``allocated_bytes`` /
``free_bytes`` are running counters maintained by the policy base class
instead of per-call re-sums, and ``free`` finds its insert position with
``bisect`` instead of a linear scan.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Tuple

from .policy import AllocatorPolicy, OutOfMemoryError, align_up


class FirstFitAllocator(AllocatorPolicy):
    """First-fit allocator over one contiguous address range.

    Holds a sorted list of free holes ``(base, size)``; allocation scans for
    the first hole that can fit an aligned block, frees coalesce adjacent
    holes.  This mirrors the boot-memory-allocator style scheme the paper
    cites [57].
    """

    name = "first-fit"

    #: control-plane bytes per free-hole record and per live allocation
    #: (base + length at 8 bytes each).
    _HOLE_RECORD = 16
    _LIVE_RECORD = 16

    def __init__(self, base: int, size: int):
        super().__init__(base, size)
        self._holes: List[Tuple[int, int]] = [(base, size)]

    @property
    def largest_hole(self) -> int:
        return max((s for _b, s in self._holes), default=0)

    def holes(self) -> List[Tuple[int, int]]:
        return list(self._holes)

    def metadata_bytes(self) -> int:
        return (
            self._HOLE_RECORD * len(self._holes)
            + self._LIVE_RECORD * len(self._live)
        )

    # -- policy internals --------------------------------------------------

    def _do_allocate(
        self, length: int, alignment: int, owner: Optional[int]
    ) -> Tuple[int, int]:
        for i, (hole_base, hole_size) in enumerate(self._holes):
            start = align_up(hole_base, alignment)
            waste = start - hole_base
            if waste + length > hole_size:
                continue
            # Carve [start, start+length) out of the hole.
            del self._holes[i]
            remainder = []
            if waste:
                remainder.append((hole_base, waste))
            tail = hole_size - waste - length
            if tail:
                remainder.append((start + length, tail))
            self._holes[i:i] = remainder
            return start, i + 1
        raise OutOfMemoryError(
            f"no hole fits {length:#x} bytes aligned to {alignment:#x}"
        )

    def _do_allocate_at(self, base: int, length: int) -> int:
        for i, (hole_base, hole_size) in enumerate(self._holes):
            if hole_base <= base and base + length <= hole_base + hole_size:
                del self._holes[i]
                remainder = []
                if base > hole_base:
                    remainder.append((hole_base, base - hole_base))
                tail = (hole_base + hole_size) - (base + length)
                if tail:
                    remainder.append((base + length, tail))
                self._holes[i:i] = remainder
                return i + 1
        raise OutOfMemoryError(f"range [{base:#x}, {base + length:#x}) not free")

    def _do_free(self, base: int, length: int) -> int:
        # Insert hole in sorted position (binary search), then coalesce.
        idx = bisect_left(self._holes, (base,))
        self._holes.insert(idx, (base, length))
        # Coalesce right then left.
        if idx + 1 < len(self._holes):
            nb, ns = self._holes[idx + 1]
            if base + length == nb:
                self._holes[idx] = (base, length + ns)
                del self._holes[idx + 1]
        if idx > 0:
            pb, ps = self._holes[idx - 1]
            b, s = self._holes[idx]
            if pb + ps == b:
                self._holes[idx - 1] = (pb, ps + s)
                del self._holes[idx]
        # Steps: the binary search depth plus the constant coalesce work.
        return max(1, len(self._holes).bit_length())
