"""Pluggable memory-allocation policies with cost and metadata accounting.

MIND's control plane hard-wires one allocator (first-fit, Section 4.1);
this package turns allocation into an ablation axis.  Five per-blade
policies implement the :class:`AllocatorPolicy` contract -- ``first-fit``
(the paper's, placement-identical to the legacy ``repro.core.allocator``),
``slab`` (size-class free lists with bounded split/merge), ``buddy``,
``arena`` (glibc-style per-owner heaps) and ``bump`` -- under the same
:class:`GlobalAllocator` least-allocated-blade placement.  Every policy
reports external/internal fragmentation, a metadata footprint banked
against switch-CPU SRAM, and deterministic per-op step counts that an
:class:`AllocCostModel` converts into control-CPU microseconds.

Select a policy with the ``allocator=`` axis (``MindConfig.allocator``,
``RunnerConfig.allocator``, or the sweep grids / ``malloc-bench`` presets);
the default (``None``) keeps the unmodeled first-fit path bit-identical to
the pre-refactor behaviour.  The churn scenario that drives the ablation
lives in :mod:`repro.alloc.scenario` (imported lazily -- it pulls in the
full cluster stack).
"""

from .arena import ArenaAllocator
from .buddy import BuddyAllocator
from .bump import BumpAllocator
from .cost import AllocCostModel
from .firstfit import FirstFitAllocator
from .global_alloc import (
    POLICIES,
    BladeAllocation,
    GlobalAllocator,
    alloc_gauges,
    make_policy,
)
from .policy import AllocatorPolicy, OutOfMemoryError
from .slab import SlabAllocator

__all__ = [
    "AllocCostModel",
    "AllocatorPolicy",
    "ArenaAllocator",
    "BladeAllocation",
    "BuddyAllocator",
    "BumpAllocator",
    "FirstFitAllocator",
    "GlobalAllocator",
    "OutOfMemoryError",
    "POLICIES",
    "SlabAllocator",
    "alloc_gauges",
    "make_policy",
]
