"""In-network MSI coherence protocol execution (Sections 4.3.2 and 6.3).

This module orchestrates the full life of a page-fault transaction:

1. The faulting compute blade posts a one-sided RDMA request carrying only
   the virtual address, PDID and access type (no endpoint -- the blade does
   not know where memory lives).
2. The switch data plane takes one pipeline pass: the protection MAU checks
   ``<PDID, va>``; the directory MAU looks up the region entry; the STT MAU
   selects the transition.  The packet then *recirculates* so the directory
   MAU can apply the update (Fig. 4).
3. Invalidations, if required, are multicast to the compute-blade group
   with the sharer list embedded; non-sharers are pruned at egress.  For
   ``S -> M`` the data fetch proceeds in parallel with invalidation (memory
   holds clean data); for ``M -> S/M`` the owner must flush first, making
   the fetch sequential -- the 2x latency the paper measures (Fig. 7 left).
4. The page is fetched from its memory blade via one-sided RDMA (address
   translation picks the blade; the switch rewrites headers -- connection
   virtualization) and returned to the requester.

Reliability (Section 4.4): invalidations are ACKed; a lost message is
retransmitted after a timeout, and after ``max_retries`` the switch control
plane executes the *reset* protocol: every blade flushes its copies of the
region and the directory entry is removed, preventing deadlock when a blade
dies mid-transition.

Concurrency: transactions racing on the same region are serialized with a
per-region-base lock table, standing in for the transient-state handling a
hardware directory performs.  The Bounded Splitting controller takes the
same locks before splitting or merging an entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional

from ..obs.spans import SpanCursor
from ..sim.engine import Engine, Event, Resource
from ..sim.network import CONTROL_MSG_BYTES, Network, NetworkConfig, PAGE_SIZE, Port
from ..sim.rdma import BackoffPolicy
from ..sim.stats import StatsCollector
from ..switchsim.multicast import MulticastEngine
from ..switchsim.packets import (
    InvalidationAck,
    InvalidationRequest,
    MemRequest,
    PacketVerdict,
)
from ..switchsim.pipeline import SwitchPipeline
from ..switchsim.rdma_virt import RdmaVirtualizer
from .addressing import AddressSpace, Translation
from .directory import CoherenceState, DirectoryFullError, Region, RegionDirectory
from .protection import ProtectionTable
from .stt import RequesterRole, Transition, TransitionAction
from .vma import align_down

#: Multicast group containing every compute blade (invalidation fan-out).
COMPUTE_BLADE_GROUP = 1


@dataclass
class FaultResult:
    """What the requesting blade learns when its fault transaction ends."""

    verdict: PacketVerdict
    label: str = ""
    latency_us: float = 0.0
    data: Optional[bytes] = None
    translation: Optional[Translation] = None
    granted_write: bool = False
    invalidations_sent: int = 0
    was_reset: bool = False
    #: a switch fail-over happened while this transaction was in flight:
    #: its directory effects may be lost, so the blade must discard the
    #: result and re-issue the fault against the rebuilt data plane.
    stale: bool = False


class LockTable:
    """Keyed FIFO locks serializing transactions per region base."""

    def __init__(self, engine: Engine):
        self.engine = engine
        self._locks: Dict[int, Resource] = {}

    def acquire(self, key: int) -> Event:
        lock = self._locks.get(key)
        if lock is None:
            lock = Resource(self.engine, capacity=1)
            self._locks[key] = lock
        return lock.acquire()

    def release(self, key: int) -> None:
        lock = self._locks[key]
        lock.release()
        if lock.in_use == 0 and lock.queue_length == 0:
            del self._locks[key]


class MessageLossInjector:
    """Deterministic message-loss injection for Section 4.4 testing.

    ``drop_invalidations``/``drop_acks`` give per-message drop probabilities
    drawn from a seeded generator, so failure tests are reproducible.

    This is the protocol-level injector (it drops whole coherence messages
    regardless of route); scheduled, link-level fault windows live in
    :mod:`repro.faults`.
    """

    def __init__(
        self,
        rng,
        drop_invalidations: float = 0.0,
        drop_acks: float = 0.0,
        drop_fetches: float = 0.0,
    ):
        self._rng = rng
        self.drop_invalidations = drop_invalidations
        self.drop_acks = drop_acks
        self.drop_fetches = drop_fetches
        self.dropped = 0

    def _roll(self, probability: float) -> bool:
        if probability and self._rng.random() < probability:
            self.dropped += 1
            return True
        return False

    def should_drop_invalidation(self) -> bool:
        return self._roll(self.drop_invalidations)

    def should_drop_ack(self) -> bool:
        return self._roll(self.drop_acks)

    def should_drop_fetch(self) -> bool:
        return self._roll(self.drop_fetches)


#: Backward-compatible name: this class predates the repro.faults subsystem
#: and was exported as FaultInjector.
FaultInjector = MessageLossInjector


#: A compute blade's invalidation handler: a generator-producing callable
#: that performs the local invalidation work and returns an InvalidationAck.
InvalidationHandler = Callable[[InvalidationRequest], Generator]


class CoherenceProtocol:
    """The switch-resident coherence engine and its data-path plumbing."""

    #: retransmission timeout for invalidation ACKs (us).
    ACK_TIMEOUT_US = 100.0
    #: retransmissions before the reset protocol kicks in.
    MAX_RETRIES = 3

    def __init__(
        self,
        engine: Engine,
        network: Network,
        pipeline: SwitchPipeline,
        multicast: MulticastEngine,
        directory: RegionDirectory,
        address_space: AddressSpace,
        protection: ProtectionTable,
        stt: Dict,
        stats: StatsCollector,
        fault_injector: Optional[FaultInjector] = None,
        invalidation_mode: str = "multicast",
        control_cpu=None,
    ):
        self.engine = engine
        self.network = network
        self.config: NetworkConfig = network.config
        self.pipeline = pipeline
        self.multicast = multicast
        self.directory = directory
        self.address_space = address_space
        self.protection = protection
        self.stt = stt
        self.stats = stats
        self.fault_injector = fault_injector
        if invalidation_mode not in ("multicast", "unicast-cpu"):
            raise ValueError(f"unknown invalidation mode {invalidation_mode!r}")
        #: "multicast" (the paper's P3 design: one data-plane pass, egress
        #: pruning) or "unicast-cpu" (the ablation: the switch CPU
        #: generates one invalidation packet per sharer, serially).
        self.invalidation_mode = invalidation_mode
        self.control_cpu = control_cpu
        self.locks = LockTable(engine)
        #: retransmission backoff (Section 4.4: timeouts detect losses on
        #: every message class); exponential so repeated losses back off.
        self.backoff = BackoffPolicy(
            base_timeout_us=self.ACK_TIMEOUT_US,
            multiplier=2.0,
            max_retries=self.MAX_RETRIES,
            max_timeout_us=8 * self.ACK_TIMEOUT_US,
        )
        #: fail-over state: the epoch counts adopted data planes; while an
        #: outage event is pending, new fault transactions wait at the gate.
        self.epoch = 0
        self._outage: Optional[Event] = None
        self.outage_started_at: Optional[float] = None
        #: service phase for latency attribution ("pre" / "degraded" /
        #: "post"); only recorded when an orchestrator enables tracking.
        self.phase = "pre"
        self.phase_tracking = False
        #: switch-side RDMA connection virtualization (Section 6.3).
        self.rdma_virt = RdmaVirtualizer()
        #: page va -> in-flight write-back; fetches of that page must wait
        #: for the flush to land so they never read stale memory.
        self._pending_flushes: Dict[int, Event] = {}
        self._inval_handlers: Dict[int, InvalidationHandler] = {}
        self._page_servers: Dict[int, Callable[[int], Optional[bytes]]] = {}
        self._blade_ports: Dict[int, Port] = {}
        self._memory_blades: Dict[int, "MemoryBladeLike"] = {}
        # MAU stages per Fig. 4.
        self.protection_mau = pipeline.add_stage("protection")
        self.directory_mau = pipeline.add_stage("directory")
        self.stt_mau = pipeline.add_stage("stt")
        self.multicast.create_group(COMPUTE_BLADE_GROUP, [])

    # -- registration -----------------------------------------------------

    def register_compute_blade(
        self,
        port: Port,
        handler: InvalidationHandler,
        serve_page: Optional[Callable[[int], Optional[bytes]]] = None,
    ) -> None:
        """Attach a compute blade: its invalidation handler and (for the
        MOESI extension) its cache-to-cache page server."""
        self._inval_handlers[port.port_id] = handler
        self._blade_ports[port.port_id] = port
        if serve_page is not None:
            self._page_servers[port.port_id] = serve_page
        self.multicast.group(COMPUTE_BLADE_GROUP).add_port(port.port_id)

    def register_memory_blade(self, blade_id: int, blade: "MemoryBladeLike") -> None:
        self._memory_blades[blade_id] = blade

    # -- fail-over lifecycle (Section 4.4) ----------------------------------

    def begin_outage(self) -> Event:
        """Primary-switch crash: new fault transactions block at the gate
        until :meth:`end_outage`.  Idempotent; returns the gate event.

        The epoch bumps *now*, not at adoption: a transaction in flight at
        the crash instant had its directory effects on the dying switch, so
        it must come back stale even though it keeps executing in the model.
        """
        if self._outage is None:
            self._outage = self.engine.event()
            self.outage_started_at = self.engine.now
            self.epoch += 1
        return self._outage

    def end_outage(self) -> None:
        """Backup switch is serving: release every transaction at the gate."""
        gate = self._outage
        if gate is not None:
            self._outage = None
            if not gate.triggered:
                gate.succeed()

    def set_phase(self, phase: str) -> None:
        self.phase = phase

    def adopt_plane(
        self,
        directory: RegionDirectory,
        address_space: AddressSpace,
        protection: ProtectionTable,
    ) -> None:
        """Point the coherence engine at a rebuilt data plane (backup
        switch take-over).  Bumps the epoch so transactions that were in
        flight on the old plane come back ``stale`` and get re-issued.
        The lock table and pending-flush map are deliberately kept: old
        transactions must still serialize against new ones while they
        drain, and in-flight write-backs still gate fetch ordering.
        """
        self.directory = directory
        self.address_space = address_space
        self.protection = protection
        self.epoch += 1

    # -- reliable delivery helpers ------------------------------------------

    def _deliver(self, make_transfer: Callable[[], Generator]) -> Generator:
        """Land one transfer leg, retransmitting on an injected link drop
        with capped exponential backoff.  Data-movement legs use this (a
        lost payload is simply re-sent); invalidation/ACK legs instead
        surface the loss so the ACK-timeout machinery drives the retry.
        Returns the number of retransmissions used.
        """
        attempt = 0
        while True:
            delivered = yield self.engine.process(make_transfer())
            if delivered:
                return attempt
            self.stats.incr("retransmissions")
            self.stats.incr("link_retransmissions")
            yield self.backoff.timeout_us(min(attempt, self.MAX_RETRIES))
            attempt += 1

    def _blade_ready(self, blade) -> Generator:
        """Wait out a paused (crashed/stalled) memory blade: each probe
        that goes unanswered costs one backoff timeout."""
        attempt = 0
        while not getattr(blade, "available", True):
            if hasattr(blade, "refuse"):
                blade.refuse()
            self.stats.incr("blade_timeouts")
            yield self.backoff.timeout_us(min(attempt, self.MAX_RETRIES))
            attempt += 1

    def _blade_service_us(self, blade) -> float:
        """NIC+DRAM service time at ``blade`` under any injected slowdown."""
        base = self.config.memory_service_us + self.config.dram_access_us
        scale = getattr(blade, "slow_factor", 1.0)
        return base * scale

    # -- the fault transaction ---------------------------------------------

    def handle_fault(self, req: MemRequest) -> Generator:
        """Full fault transaction; returns a :class:`FaultResult`.

        The transaction is instrumented with a :class:`SpanCursor` whose
        marks partition its wall time -- the ``fault_path`` breakdown the
        run report shows sums exactly to the end-to-end fault latency.
        """
        t0 = self.engine.now
        # Fail-over gate: while the primary switch is down, new fault
        # transactions wait for the backup to take over.  The wait is part
        # of the fault's latency -- it *is* the unavailability window as
        # the blades experience it.
        while self._outage is not None:
            yield self._outage
        epoch = self.epoch
        requester = self._blade_ports[req.src_port]
        page_va = align_down(req.va, PAGE_SIZE)
        pkt = self.pipeline.packet()
        tracer = self.engine.tracer
        lane = (
            tracer.track(f"coherence:port{req.src_port}") if tracer.enabled else 0
        )
        spans = SpanCursor(
            self.engine, self.stats, "fault_path", trace_cat="coherence", track=lane
        )

        # Requester -> switch (retransmitted if the uplink drops it).
        yield self.config.rdma_verb_overhead_us
        yield from self._deliver(
            lambda: requester.to_switch.transfer(CONTROL_MSG_BYTES)
        )
        spans.mark("request")

        # Pipeline pass 1: protection check, directory lookup, STT match.
        yield self.engine.process(pkt.traverse())
        verdict = pkt.execute(
            self.protection_mau,
            lambda: self.protection.check(req.pdid, req.va, req.access),
        )
        spans.mark("pipeline")
        if verdict is not PacketVerdict.ALLOW:
            self.stats.incr("protection_rejections")
            yield from self._deliver(
                lambda: requester.from_switch.transfer(CONTROL_MSG_BYTES)
            )
            spans.mark("reply")
            return FaultResult(
                verdict,
                latency_us=self.engine.now - t0,
                stale=self.epoch != epoch,
            )

        # Directory entry lookup/creation, with capacity fallbacks; then
        # serialize on the region.
        region = yield from self._locked_region(page_va)
        spans.mark("directory_lock")
        try:
            role = self._role_of(region, req.src_port)
            transition: Transition = pkt.execute(
                self.stt_mau, lambda: self.stt[(region.state, req.access, role)]
            )
            region.accesses += 1
            self.stats.incr("remote_accesses")
            self.stats.incr(f"transition:{transition.label}")

            # Recirculate so the directory MAU can apply the update.
            yield self.engine.process(pkt.recirculate())
            old_owner = region.owner
            old_sharers = frozenset(region.sharers)
            pkt.execute(
                self.directory_mau,
                lambda: self._apply_transition(region, transition, req),
            )
            spans.mark("recirculate")

            invalidations = 0
            was_reset = False
            if transition.action is TransitionAction.FETCH_ONLY:
                data = yield from self._fetch(req, requester, page_va)
                spans.mark("fetch")
            elif transition.action is TransitionAction.INVALIDATE_PARALLEL:
                targets = self.multicast.replicate(
                    COMPUTE_BLADE_GROUP, old_sharers, req.src_port
                )
                inval = self._make_inval(region, req, targets, downgrade=False)
                fetch_proc = self.engine.process(
                    self._fetch(req, requester, page_va)
                )
                ack_proc = self.engine.process(
                    self._invalidate_all(inval, targets, region)
                )
                yield self.engine.all_of([fetch_proc, ack_proc])
                data = fetch_proc.value
                was_reset = ack_proc.value
                invalidations = len(targets)
                # Fetch and invalidation overlap (the S->M parallelism of
                # Fig. 7); the wall segment is attributed to their union.
                spans.mark("fetch+invalidation")
            elif transition.action is TransitionAction.LOCAL_UPGRADE:
                # MOESI O->M at the owner: no data moves; invalidate the
                # other sharers in parallel with returning the grant.
                targets = self.multicast.replicate(
                    COMPUTE_BLADE_GROUP, old_sharers, req.src_port
                )
                inval = self._make_inval(region, req, targets, downgrade=False)
                was_reset = yield from self._invalidate_all(inval, targets, region)
                spans.mark("invalidation")
                yield from self._deliver(
                    lambda: requester.from_switch.transfer(CONTROL_MSG_BYTES)
                )
                spans.mark("reply")
                data = None
                invalidations = len(targets)
            elif transition.action is TransitionAction.FETCH_FROM_OWNER:
                # Only the first steal (M->O) must write-protect the owner;
                # for O->O the owner is read-only already.
                data, was_reset = yield from self._fetch_from_owner(
                    req,
                    requester,
                    page_va,
                    old_owner,
                    region,
                    write_protect_owner=transition.label == "M->O",
                )
                invalidations = 1 if old_owner is not None else 0
                spans.mark("owner_fetch")
            else:  # INVALIDATE_OWNER_THEN_FETCH
                target_set = set(old_sharers)
                if old_owner is not None:
                    target_set.add(old_owner)
                target_set.discard(req.src_port)
                targets = self.multicast.replicate(
                    COMPUTE_BLADE_GROUP, frozenset(target_set), req.src_port
                )
                inval = self._make_inval(
                    region, req, targets, downgrade=transition.owner_downgrades
                )
                was_reset = yield from self._invalidate_all(inval, targets, region)
                spans.mark("invalidation")
                data = yield from self._fetch(req, requester, page_va)
                spans.mark("fetch")
                invalidations = len(targets)

            latency = self.engine.now - t0
            self.stats.record_latency(f"fault:{transition.label}", latency)
            self.stats.record_latency("fault", latency)
            if self.phase_tracking:
                # Attribute the fault to the current service phase so the
                # availability report can compare pre/degraded/post tails.
                self.stats.record_latency(f"fault:phase:{self.phase}", latency)
            if tracer.enabled:
                tracer.complete(
                    t0, latency, "coherence", f"fault:{transition.label}", track=lane
                )
            stale = self.epoch != epoch
            if stale:
                self.stats.incr("stale_transactions")
            return FaultResult(
                verdict=PacketVerdict.ALLOW,
                label=transition.label,
                latency_us=latency,
                data=data,
                translation=self.address_space.translate(page_va),
                granted_write=req.access.is_write,
                invalidations_sent=invalidations,
                was_reset=was_reset,
                stale=stale,
            )
        finally:
            self.locks.release(region.base)

    def _locked_region(self, page_va: int) -> Generator:
        """Find/create the region entry for ``page_va`` and lock it.

        Re-checks after acquiring the lock: the entry may have been split,
        merged or evicted while we waited.
        """
        while True:
            region = yield from self._ensure_entry(page_va)
            key = region.base
            yield self.locks.acquire(key)
            current = self.directory.find(page_va)
            if current is not None and current.base == key and current.contains(page_va):
                return current
            self.locks.release(key)

    def _ensure_entry(self, page_va: int) -> Generator:
        """Directory entry creation with the capacity fallback chain:
        reclaim Invalid entries, then (occasionally) metadata-only merges,
        then eviction of a victim region, whose collateral drops are false
        invalidations -- the regime the M_A/M_C workloads live in (Fig. 8
        left).

        Contended workloads hit this on a large share of faults, so every
        step is O(probe); the O(entries) merge scan runs only once per
        ``_MERGE_EVERY`` capacity events.
        """
        for _attempt in range(64):
            try:
                return self.directory.ensure_region(page_va, reclaim=False)
            except DirectoryFullError:
                self.stats.incr("directory_capacity_events")
                invalid, victim = self.directory.sweep(probe=16)
                if invalid is not None:
                    self.directory.release(invalid)
                    continue
                self._capacity_events += 1
                # The merge scan runs on the first event and then once per
                # _MERGE_EVERY (it is the only O(entries) step here).
                if (
                    self._capacity_events % self._MERGE_EVERY == 1
                    and self.directory.merge_any(limit=8)
                ):
                    continue
                if victim is None:
                    # Nothing probed was evictable; fall back to a full
                    # reclaim scan (rare).
                    if self.directory.reclaim_invalid(limit=8) == 0:
                        self.directory.merge_any(limit=8)
                    continue
                yield from self._evict_entry(victim)
        raise DirectoryFullError("could not make room in the directory")

    #: run the O(entries) opportunistic-merge scan once per this many
    #: capacity events.
    _MERGE_EVERY = 64
    _capacity_events = 0

    def _evict_entry(self, victim: Region) -> Generator:
        """Invalidate a region everywhere and free its slot (capacity path)."""
        yield self.locks.acquire(victim.base)
        try:
            if self.directory.find(victim.base) is not victim:
                return
            targets = sorted(victim.sharers | ({victim.owner} if victim.owner is not None else set()))
            if targets:
                inval = InvalidationRequest(
                    region_base=victim.base,
                    region_size=victim.size,
                    sharers=frozenset(targets),
                    requester_port=-1,
                    target_va=-1,  # capacity eviction: every page is collateral
                )
                self.stats.incr("capacity_evictions")
                yield from self._invalidate_all(inval, targets, victim)
            victim.state = CoherenceState.INVALID
            victim.sharers.clear()
            victim.owner = None
            self.directory.release(victim)
        finally:
            self.locks.release(victim.base)

    # -- transition mechanics ----------------------------------------------

    @staticmethod
    def _role_of(region: Region, port: int) -> RequesterRole:
        if region.owner == port and region.state in (
            CoherenceState.MODIFIED,
            CoherenceState.OWNED,
        ):
            return RequesterRole.OWNER
        if port in region.sharers:
            return RequesterRole.SHARER
        return RequesterRole.NONE

    def _apply_transition(
        self, region: Region, transition: Transition, req: MemRequest
    ) -> None:
        """Directory entry update selected by the STT (applied on recirc)."""
        region.state = transition.next_state
        if transition.next_state is CoherenceState.MODIFIED:
            region.owner = req.src_port
            region.sharers = {req.src_port}
        elif transition.next_state is CoherenceState.OWNED:
            # MOESI: the previous owner keeps ownership (and its dirty
            # data); the requester joins as a reader.
            new_sharers = set(region.sharers)
            if region.owner is not None:
                new_sharers.add(region.owner)
            new_sharers.add(req.src_port)
            region.sharers = new_sharers
        else:  # SHARED
            new_sharers = set(region.sharers)
            if transition.owner_downgrades and region.owner is not None:
                new_sharers.add(region.owner)
            new_sharers.add(req.src_port)
            region.owner = None
            region.sharers = new_sharers

    def _make_inval(
        self,
        region: Region,
        req: MemRequest,
        targets: List[int],
        downgrade: bool,
    ) -> InvalidationRequest:
        return InvalidationRequest(
            region_base=region.base,
            region_size=region.size,
            sharers=frozenset(targets),
            requester_port=req.src_port,
            target_va=align_down(req.va, PAGE_SIZE),
            downgrade_to_shared=downgrade,
        )

    # -- invalidation delivery ----------------------------------------------

    #: switch-CPU time to generate one unicast invalidation packet (the
    #: ablation's cost; the data-plane multicast pays none of this).
    UNICAST_CPU_US = 8.0

    def _invalidate_all(
        self, inval: InvalidationRequest, targets: List[int], region: Region
    ) -> Generator:
        """Deliver an invalidation to every target; returns True if a reset
        was required (some target never ACKed).

        Multicast mode replicates in the traffic manager: all targets are
        in flight after one pipeline pass.  Unicast mode serializes packet
        generation on the switch CPU (plus PCIe), which is exactly what
        makes software invalidation fan-out scale poorly with sharers.
        """
        if not targets:
            return False
        procs = []
        for port_id in targets:
            if self.invalidation_mode == "unicast-cpu":
                self.stats.incr("unicast_invalidations_generated")
                if self.control_cpu is not None:
                    yield self.engine.process(self._unicast_generate())
                else:
                    yield self.UNICAST_CPU_US
            procs.append(
                self.engine.process(
                    self._invalidate_with_retry(inval, port_id, region)
                )
            )
        results = yield self.engine.all_of(procs)
        return any(r is None for r in results)

    def _unicast_generate(self) -> Generator:
        """One unicast invalidation's generation at the switch CPU."""
        yield self.UNICAST_CPU_US
        self.control_cpu.busy_us += self.UNICAST_CPU_US

    def _invalidate_with_retry(
        self, inval: InvalidationRequest, port_id: int, region: Region
    ) -> Generator:
        """One target: deliver, await ACK, retransmit on loss with
        exponential backoff, reset after MAX_RETRIES (Section 4.4)."""
        for attempt in range(self.MAX_RETRIES + 1):
            dropped_out = (
                self.fault_injector is not None
                and self.fault_injector.should_drop_invalidation()
            )
            if not dropped_out:
                ack = yield from self._invalidate_at(inval, port_id, region)
                dropped_back = (
                    self.fault_injector is not None
                    and self.fault_injector.should_drop_ack()
                )
                # ``ack is None``: a link-level fault window ate one of the
                # legs -- indistinguishable, to the switch, from the
                # protocol-level drops the injector models.
                if ack is not None and not dropped_back:
                    return ack
            # Lost somewhere: wait out the (growing) timeout, retransmit.
            self.stats.incr("retransmissions")
            yield self.backoff.timeout_us(attempt)
        yield from self._reset_region(region)
        return None

    def _invalidate_at(
        self, inval: InvalidationRequest, port_id: int, region: Region
    ) -> Generator:
        """Deliver to one blade, run its handler, carry the ACK back.

        Returns None when a link-level fault drops either leg: a dropped
        outbound leg means the blade never saw the request; a dropped ACK
        leg means the blade *did* the work (accounting still happens -- the
        retry is idempotent) but the switch cannot know, and must resend.
        """
        port = self._blade_ports[port_id]
        self.stats.incr("invalidations_sent")
        delivered = yield self.engine.process(
            port.from_switch.transfer(CONTROL_MSG_BYTES)
        )
        if not delivered:
            return None
        ack: InvalidationAck = yield self.engine.process(
            self._inval_handlers[port_id](inval)
        )
        acked = yield self.engine.process(
            port.to_switch.transfer(CONTROL_MSG_BYTES)
        )
        # Fold the blade's report into directory + stats accounting.  The
        # "invalidation" breakdown (queue/tlb of Fig. 7 right) is recorded
        # by the blade's own span instrumentation, not here.
        region.false_invalidations += ack.false_invalidations
        self.stats.incr("flushed_pages", ack.flushed_pages)
        self.stats.incr("dropped_pages", ack.dropped_pages)
        self.stats.incr("false_invalidations", ack.false_invalidations)
        if not inval.downgrade_to_shared:
            region.sharers.discard(port_id)
        if not acked:
            return None
        return ack

    def _reset_region(self, region: Region) -> Generator:
        """The Section 4.4 reset: force every blade to flush the region's
        data and drop the directory entry, breaking any wedged transition."""
        self.stats.incr("resets")
        reset_inval = InvalidationRequest(
            region_base=region.base,
            region_size=region.size,
            sharers=frozenset(self._inval_handlers),
            requester_port=-1,
            target_va=-1,
        )
        procs = []
        for port_id, handler in self._inval_handlers.items():
            port = self._blade_ports[port_id]

            # Reset messages must land (a lost reset would leave a wedged
            # region wedged), so each leg is delivered reliably.
            def deliver(h=handler, p=port):
                yield from self._deliver(
                    lambda: p.from_switch.transfer(CONTROL_MSG_BYTES)
                )
                yield self.engine.process(h(reset_inval))
                yield from self._deliver(
                    lambda: p.to_switch.transfer(CONTROL_MSG_BYTES)
                )

            procs.append(self.engine.process(deliver()))
        yield self.engine.all_of(procs)
        region.state = CoherenceState.INVALID
        region.sharers.clear()
        region.owner = None
        if self.directory.find(region.base) is region:
            self.directory.release(region)

    # -- data movement -------------------------------------------------------

    def _fetch(self, req: MemRequest, requester: Port, page_va: int) -> Generator:
        """One-sided RDMA fetch, retransmitted on loss (Section 4.4: ACKs
        and timeouts detect packet losses on every message class)."""
        for attempt in range(self.MAX_RETRIES + 1):
            lost = (
                self.fault_injector is not None
                and self.fault_injector.should_drop_fetch()
            )
            if not lost:
                data = yield from self._fetch_once(req, requester, page_va)
                return data
            self.stats.incr("retransmissions")
            yield self.backoff.timeout_us(attempt)
        # Persistent loss: serve the final attempt unconditionally (the
        # reset machinery above handles wedged *coherence* state; a fetch
        # has no state to wedge).
        data = yield from self._fetch_once(req, requester, page_va)
        return data

    def _fetch_once(self, req: MemRequest, requester: Port, page_va: int) -> Generator:
        xlate = self.address_space.translate(page_va)
        blade = self._memory_blades[xlate.blade_id]
        # Stitch the requester's virtual connection to the real one.
        self.rdma_virt.rewrite(req.src_port, xlate.blade_id)
        yield from self._deliver(
            lambda: blade.port.from_switch.transfer(CONTROL_MSG_BYTES)
        )
        yield from self._blade_ready(blade)
        pending = self._pending_flushes.get(page_va)
        if pending is not None and not pending.triggered:
            # An asynchronous write-back of this very page has not landed
            # yet; the NIC must serve the read after it (flush/fetch order).
            yield pending
        yield self._blade_service_us(blade)
        data = blade.read_page(xlate.pa)
        yield from self._deliver(lambda: blade.port.to_switch.transfer(PAGE_SIZE))
        # Response pass through the pipeline, then down to the requester.
        resp = self.pipeline.packet()
        yield self.engine.process(resp.traverse())
        yield from self._deliver(lambda: requester.from_switch.transfer(PAGE_SIZE))
        yield self.config.rdma_verb_overhead_us
        return data

    def _fetch_from_owner(
        self,
        req: MemRequest,
        requester: Port,
        page_va: int,
        owner_port_id: Optional[int],
        region: Region,
        write_protect_owner: bool,
    ) -> Generator:
        """MOESI cache-to-cache transfer: one trip to the owner downgrades
        it (M->O) and carries the page back -- no memory write-back.

        Falls back to the memory blade when the owner no longer caches the
        page (it was evicted, and the eviction flush made memory current).
        Returns ``(data, was_reset)``.
        """
        if owner_port_id is None or owner_port_id not in self._page_servers:
            data = yield from self._fetch(req, requester, page_va)
            return data, False
        owner_port = self._blade_ports[owner_port_id]
        was_reset = False
        if write_protect_owner:
            inval = InvalidationRequest(
                region_base=region.base,
                region_size=region.size,
                sharers=frozenset({owner_port_id}),
                requester_port=req.src_port,
                target_va=page_va,
                downgrade_to_shared=True,
                keep_dirty=True,
            )
            was_reset = yield from self._invalidate_all(
                inval, [owner_port_id], region
            )
        else:
            # Just the read request leg to the owner.
            yield from self._deliver(
                lambda: owner_port.from_switch.transfer(CONTROL_MSG_BYTES)
            )
        # The owner's kernel serves the page out of its DRAM cache.
        yield self.config.memory_service_us + self.config.dram_access_us
        data = self._page_servers[owner_port_id](page_va)
        if data is None:
            # Owner evicted the page; its flush made memory current.
            fetched = yield from self._fetch(req, requester, page_va)
            return fetched, was_reset
        if data == b"":
            data = None  # resident, but payload storage is disabled
        self.stats.incr("cache_to_cache_transfers")
        yield from self._deliver(lambda: owner_port.to_switch.transfer(PAGE_SIZE))
        resp = self.pipeline.packet()
        yield self.engine.process(resp.traverse())
        yield from self._deliver(lambda: requester.from_switch.transfer(PAGE_SIZE))
        yield self.config.rdma_verb_overhead_us
        return data, was_reset

    def flush_page(
        self,
        src_port: Port,
        page_va: int,
        data: Optional[bytes],
        landed: Optional[Event] = None,
    ) -> Generator:
        """Write a dirty page back to its memory blade (eviction or inval).

        The blade sends the page up; the switch translates and forwards it
        as a one-sided WRITE.  ``landed`` fires the moment the payload is
        durable at the memory blade (before the NIC's ACK returns) -- the
        ordering point fetches synchronize on.
        """
        xlate = self.address_space.translate(page_va)
        blade = self._memory_blades[xlate.blade_id]
        self.rdma_virt.rewrite(src_port.port_id, xlate.blade_id)
        # Every leg is delivered reliably: a silently lost write-back would
        # leave memory stale behind an Invalid directory -- incoherence.
        yield from self._deliver(lambda: src_port.to_switch.transfer(PAGE_SIZE))
        pkt = self.pipeline.packet()
        yield self.engine.process(pkt.traverse())
        yield from self._deliver(lambda: blade.port.from_switch.transfer(PAGE_SIZE))
        yield from self._blade_ready(blade)
        yield self._blade_service_us(blade)
        blade.write_page(xlate.pa, data)
        self.stats.incr("pages_written_back")
        if landed is not None and not landed.triggered:
            landed.succeed()
        yield from self._deliver(
            lambda: blade.port.to_switch.transfer(CONTROL_MSG_BYTES)
        )

    def flush_page_async(
        self, src_port: Port, page_va: int, data: Optional[bytes]
    ) -> Event:
        """Start a write-back without waiting for it (Section 7.2's overlap:
        the invalidation ACK returns while the flush drains; correctness is
        preserved because fetches wait on :attr:`_pending_flushes`)."""
        landed = self.engine.event()
        self._pending_flushes[page_va] = landed
        self.engine.process(
            self.flush_page(src_port, page_va, data, landed=landed),
            name=f"flush-{page_va:#x}",
        )

        def _clear(_ev) -> None:
            if self._pending_flushes.get(page_va) is landed:
                del self._pending_flushes[page_va]

        landed.add_callback(_clear)
        return landed
