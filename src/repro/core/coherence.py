"""In-network coherence protocol orchestration (Sections 4.3.2 and 6.3).

This module is the thin top of a layered transaction engine:

- :mod:`repro.core.txn` -- the MSHR-style :class:`PendingTransactionTable`
  (admission, transient-state queuing, Shared-read fetch coalescing) and
  the ADMIT-phase :class:`AdmissionController`.
- :mod:`repro.core.invalidation` -- multicast/unicast invalidation, ACK
  tracking, timeout/retry, and the Section 4.4 reset protocol.
- :mod:`repro.core.fetch` -- the data-path legs: memory-blade fetch, MOESI
  cache-to-cache transfer, write-backs, reliable delivery.

:class:`CoherenceProtocol` wires STT verdicts to those layers.  One fault
transaction walks admit -> resolve (pipeline pass + recirculating
directory update, Fig. 4) -> invalidate/fetch -> complete; its wall time
is partitioned by a :class:`SpanCursor` whose components (including
``queue_conflict`` and ``coalesced_wait``) sum exactly to the end-to-end
fault latency.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional

from ..obs.spans import SpanCursor
from ..sim.engine import Engine, Event
from ..sim.network import (
    CONTROL_MSG_BYTES,
    Network,
    NetworkConfig,
    PAGE_SIZE,
    Port,
    pop_deferred_us,
)
from ..sim.rdma import BackoffPolicy
from ..sim.stats import StatsCollector
from ..switchsim.multicast import MulticastEngine
from ..switchsim.packets import InvalidationRequest, MemRequest, PacketVerdict
from ..switchsim.pipeline import SwitchPipeline
from .addressing import AddressSpace
from .directory import RegionDirectory
from .fetch import DataPath
from .invalidation import InvalidationEngine
from .protection import ProtectionTable
from .stt import apply_transition
from .txn import AdmissionController, FaultResult, PendingTransactionTable
from .vma import align_down

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..blades.memory import MemoryBlade
    from ..faults.message_loss import MessageLossInjector

#: Multicast group containing every compute blade (invalidation fan-out).
COMPUTE_BLADE_GROUP = 1

#: A compute blade's invalidation handler: a generator-producing callable
#: that performs the local invalidation work and returns an InvalidationAck.
InvalidationHandler = Callable[[InvalidationRequest], Generator]


def __getattr__(name: str):
    # MessageLossInjector moved to repro.faults (it was born here, pre-dating
    # the faults subsystem, and was first exported as FaultInjector).
    if name in ("MessageLossInjector", "FaultInjector"):
        from ..faults.message_loss import MessageLossInjector as _moved

        warnings.warn(
            f"repro.core.coherence.{name} is deprecated; "
            "import MessageLossInjector from repro.faults instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _moved
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class CoherenceProtocol:
    """The switch-resident coherence engine: a thin orchestrator wiring
    STT verdicts to the admission, invalidation, and data-path layers."""

    #: retransmission timeout for invalidation ACKs (us).
    ACK_TIMEOUT_US = 100.0
    #: retransmissions before the reset protocol kicks in.
    MAX_RETRIES = 3

    def __init__(
        self,
        engine: Engine,
        network: Network,
        pipeline: SwitchPipeline,
        multicast: MulticastEngine,
        directory: RegionDirectory,
        address_space: AddressSpace,
        protection: ProtectionTable,
        stt: Dict,
        stats: StatsCollector,
        fault_injector: Optional["MessageLossInjector"] = None,
        invalidation_mode: str = "multicast",
        control_cpu=None,
        pending_table_capacity: int = 256,
    ):
        self.engine = engine
        self.network = network
        self.config: NetworkConfig = network.config
        self.pipeline = pipeline
        self.multicast = multicast
        self.directory = directory
        self.address_space = address_space
        self.protection = protection
        self.stt = stt
        self.stats = stats
        self.fault_injector = fault_injector
        if invalidation_mode not in ("multicast", "unicast-cpu"):
            raise ValueError(f"unknown invalidation mode {invalidation_mode!r}")
        #: "multicast" (the paper's P3 design: one data-plane pass, egress
        #: pruning) or "unicast-cpu" (the ablation: the switch CPU generates
        #: one invalidation packet per sharer, serially).
        self.invalidation_mode = invalidation_mode
        self.control_cpu = control_cpu
        #: Section 4.4 retransmission backoff (exponential, capped).
        self.backoff = BackoffPolicy(
            base_timeout_us=self.ACK_TIMEOUT_US,
            multiplier=2.0,
            max_retries=self.MAX_RETRIES,
            max_timeout_us=8 * self.ACK_TIMEOUT_US,
        )
        # The layered engine: admission/pending table, invalidation, data path.
        self.pending = PendingTransactionTable(
            engine, stats, capacity=pending_table_capacity
        )
        self.admission = AdmissionController(self)
        self.invalidation = InvalidationEngine(self)
        self.fetch = DataPath(self)
        #: fail-over state: the epoch counts adopted data planes; while an
        #: outage event is pending, new fault transactions wait at the gate.
        self.epoch = 0
        self._outage: Optional[Event] = None
        self.outage_started_at: Optional[float] = None
        #: service phase for latency attribution ("pre"/"degraded"/"post");
        #: recorded only when an orchestrator enables tracking.
        self.phase = "pre"
        self.phase_tracking = False
        self._inval_handlers: Dict[int, InvalidationHandler] = {}
        self._page_servers: Dict[int, Callable[[int], Optional[bytes]]] = {}
        self._blade_ports: Dict[int, Port] = {}
        self._memory_blades: Dict[int, "MemoryBlade"] = {}
        # MAU stages per Fig. 4.
        self.protection_mau = pipeline.add_stage("protection")
        self.directory_mau = pipeline.add_stage("directory")
        self.stt_mau = pipeline.add_stage("stt")
        self.compute_group = COMPUTE_BLADE_GROUP
        self.multicast.create_group(COMPUTE_BLADE_GROUP, [])

    # -- layer access -------------------------------------------------------

    @property
    def rdma_virt(self):
        """Connection-virtualization state (lives on the data path)."""
        return self.fetch.rdma_virt

    @property
    def pending_flushes(self) -> Dict[int, Event]:
        return self.fetch.pending_flushes

    def memory_blade(self, blade_id: int):
        return self._memory_blades[blade_id]

    def flush_page(self, src_port, page_va, data, landed=None) -> Generator:
        return self.fetch.flush_page(src_port, page_va, data, landed=landed)

    def flush_page_async(self, src_port, page_va, data) -> Event:
        return self.fetch.flush_page_async(src_port, page_va, data)

    def drain_writebacks(self, base: int = 0, length: Optional[int] = None) -> Generator:
        """Wait for every in-flight write-back (optionally range-filtered)
        to land.  Fail-over and migration quiesce on this instead of
        reaching into the data path's flush map."""
        end = None if length is None else base + length
        pending = [
            ev
            for va, ev in self.fetch.pending_flushes.items()
            if not ev.triggered and (end is None or base <= va < end)
        ]
        if pending:
            yield self.engine.all_of(pending)

    # -- registration -------------------------------------------------------

    def register_compute_blade(
        self,
        port: Port,
        handler: InvalidationHandler,
        serve_page: Optional[Callable[[int], Optional[bytes]]] = None,
    ) -> None:
        """Attach a compute blade: its invalidation handler and (for the
        MOESI extension) its cache-to-cache page server."""
        self._inval_handlers[port.port_id] = handler
        self._blade_ports[port.port_id] = port
        if serve_page is not None:
            self._page_servers[port.port_id] = serve_page
        self.multicast.group(COMPUTE_BLADE_GROUP).add_port(port.port_id)

    def register_memory_blade(self, blade_id: int, blade: "MemoryBlade") -> None:
        self._memory_blades[blade_id] = blade

    # -- fail-over lifecycle (Section 4.4) ----------------------------------

    def begin_outage(self) -> Event:
        """Primary-switch crash: new fault transactions block at the gate
        until :meth:`end_outage`.  Idempotent; returns the gate event.  The
        epoch bumps *now*, not at adoption: a transaction in flight at the
        crash instant had its directory effects on the dying switch, so it
        must come back stale even though it keeps executing in the model."""
        if self._outage is None:
            self._outage = self.engine.event()
            self.outage_started_at = self.engine.now
            self.epoch += 1
        return self._outage

    def end_outage(self) -> None:
        """Backup switch is serving: release every transaction at the gate."""
        gate = self._outage
        if gate is not None:
            self._outage = None
            if not gate.triggered:
                gate.succeed()

    def set_phase(self, phase: str) -> None:
        self.phase = phase
        timeline = self.stats.timeline
        if timeline is not None:
            timeline.set_phase(self.engine.now, phase)

    def adopt_plane(
        self,
        directory: RegionDirectory,
        address_space: AddressSpace,
        protection: ProtectionTable,
    ) -> None:
        """Point the engine at a rebuilt data plane (backup take-over).
        Bumps the epoch so in-flight transactions come back ``stale``.  The
        pending table and flush map are deliberately kept: old transactions
        must still serialize against new ones while they drain, and
        in-flight write-backs still gate fetch ordering."""
        self.directory = directory
        self.address_space = address_space
        self.protection = protection
        self.epoch += 1

    # -- the fault transaction ----------------------------------------------

    def handle_fault(self, req: MemRequest) -> Generator:
        """Full fault transaction; returns a :class:`FaultResult`.

        Instrumented with a :class:`SpanCursor` whose marks partition its
        wall time -- the ``fault_path`` breakdown sums exactly to the
        end-to-end fault latency.
        """
        t0 = self.engine.now
        # Fail-over gate: while the primary is down, new transactions wait
        # for the backup.  The wait is part of the fault's latency -- it
        # *is* the unavailability window as the blades experience it.
        while self._outage is not None:
            yield self._outage
        epoch = self.epoch
        requester = self._blade_ports[req.src_port]
        # Cross-rack requesters sit behind a CompositePath that banks its
        # spine-tier time for span attribution.  Time banked by an earlier
        # overlapping transaction (e.g. an async flush on the same path)
        # must not leak into this fault's breakdown.
        pop_deferred_us(requester.to_switch)
        pop_deferred_us(requester.from_switch)
        page_va = align_down(req.va, PAGE_SIZE)
        pkt = self.pipeline.packet()
        tracer = self.engine.tracer
        lane = tracer.track(f"coherence:port{req.src_port}") if tracer.enabled else 0
        spans = SpanCursor(
            self.engine, self.stats, "fault_path", trace_cat="coherence", track=lane
        )

        # Requester -> switch (retransmitted if the uplink drops it).
        yield self.config.rdma_verb_overhead_us
        link = requester.to_switch
        if (leg := link.try_leg(CONTROL_MSG_BYTES)) >= 0.0:
            yield leg
        elif (ser := link.try_start(CONTROL_MSG_BYTES)) >= 0.0:
            yield ser
            yield link.finish(CONTROL_MSG_BYTES)
        elif not (yield from self.engine.subtask(link.transfer(CONTROL_MSG_BYTES))):
            yield from self.fetch._redeliver(link, CONTROL_MSG_BYTES)
        spans.mark_wire("request", requester.to_switch)

        # Pipeline pass 1: protection check, directory lookup, STT match.
        engine = self.engine
        if (
            not engine._ready
            and not engine.tracer.enabled
            and engine._due_head > engine.now
        ):
            yield pkt.traverse_us()
        else:
            yield from engine.subtask(pkt.traverse())
        verdict = pkt.execute(
            self.protection_mau,
            lambda: self.protection.check(req.pdid, req.va, req.access),
        )
        spans.mark("pipeline")
        if verdict is not PacketVerdict.ALLOW:
            self.stats.incr("protection_rejections")
            link = requester.from_switch
            if not (yield from self.engine.subtask(link.transfer(CONTROL_MSG_BYTES))):
                yield from self.fetch._redeliver(link, CONTROL_MSG_BYTES)
            spans.mark_wire("reply", requester.from_switch)
            return FaultResult(
                verdict, latency_us=self.engine.now - t0, stale=self.epoch != epoch
            )

        # ADMIT + classify (optimistic Shared-read admission lives there).
        txn = self.pending.transaction(req.src_port, page_va, req.access.is_write)
        try:
            region, transition = yield from self.admission.resolve(
                txn, pkt, req.access, spans
            )
            region.accesses += 1
            self.stats.incr("remote_accesses")
            self.stats.incr(f"transition:{transition.label}")

            # Recirculate so the directory MAU can apply the update.
            if (
                not engine._ready
                and not engine.tracer.enabled
                and engine._due_head > engine.now
            ):
                yield pkt.recirculate_us()
            else:
                yield from engine.subtask(pkt.recirculate())
            old_owner = region.owner
            old_sharers = frozenset(region.sharers)
            pkt.execute(
                self.directory_mau,
                lambda: apply_transition(region, transition, req.src_port),
            )
            spans.mark("recirculate")

            data, invalidations, was_reset, coalesced = yield from (
                self.fetch.run_action(
                    txn, req, requester, page_va, region, transition,
                    old_owner, old_sharers, spans,
                )
            )

            latency = self.engine.now - t0
            self.stats.record_latency(f"fault:{transition.label}", latency)
            self.stats.record_latency("fault", latency)
            if self.phase_tracking:
                # Attribute to the current service phase so the availability
                # report can compare pre/degraded/post tails.
                self.stats.record_latency(f"fault:phase:{self.phase}", latency)
            timeline = self.stats.timeline
            if timeline is not None:
                timeline.record_latency(self.engine.now, "fault", latency)
            if tracer.enabled:
                tracer.complete(
                    t0, latency, "coherence", f"fault:{transition.label}", track=lane
                )
            stale = self.epoch != epoch
            if stale:
                self.stats.incr("stale_transactions")
            return FaultResult(
                verdict=PacketVerdict.ALLOW,
                label=transition.label,
                latency_us=latency,
                data=data,
                translation=self.address_space.translate(page_va),
                granted_write=req.access.is_write,
                invalidations_sent=invalidations,
                was_reset=was_reset,
                stale=stale,
                coalesced=coalesced,
            )
        finally:
            self.pending.complete(txn)
