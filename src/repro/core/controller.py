"""Switch control plane: process and memory management (Sections 3.2, 6.3).

The general-purpose CPU on the switch hosts MIND's controller.  Compute
blades intercept process syscalls (``exec``/``exit``) and memory syscalls
(``brk``/``mmap``/``munmap``/``mprotect``) and forward them here; the
controller maintains Linux-like metadata (``task_struct``/``mm_struct``/
``vm_area_struct``), performs allocation with its global view (P2), and
answers with Linux-compatible return values and error codes so user
applications stay unmodified.

Thread placement is round-robin across compute blades (the paper does not
innovate on scheduling); threads of one process share a PID and therefore a
PDID, which is how they transparently share the address space.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..alloc import BladeAllocation, GlobalAllocator, OutOfMemoryError
from ..switchsim.control_cpu import ControlCpu
from .addressing import AddressSpace
from .directory import RegionDirectory
from .protection import ProtectionTable
from .vma import PermissionClass, Vma


class SyscallError(OSError):
    """A syscall failed; ``errno`` carries the Linux error code."""

    def __init__(self, err: int, message: str):
        super().__init__(err, message)


@dataclass
class ThreadInfo:
    """One execution thread of a process, pinned to a compute blade."""

    tid: int
    blade_id: int


@dataclass
class TaskStruct:
    """Controller-side process representation."""

    pid: int
    name: str
    threads: List[ThreadInfo] = field(default_factory=list)
    #: vma base -> (Vma, memory blade id)
    vmas: Dict[int, tuple] = field(default_factory=dict)
    brk_base: Optional[int] = None
    brk_current: int = 0
    alive: bool = True


class SwitchController:
    """The control-plane brain: syscall handling + metadata management."""

    def __init__(
        self,
        control_cpu: ControlCpu,
        allocator: GlobalAllocator,
        address_space: AddressSpace,
        protection: ProtectionTable,
        directory: RegionDirectory,
        compute_blade_ids: Optional[List[int]] = None,
        drop_cached_range: Optional[Callable[[int, int], None]] = None,
        flush_cached_range: Optional[Callable[[int, int], None]] = None,
        stats=None,
    ):
        self.control_cpu = control_cpu
        self.allocator = allocator
        #: StatsCollector for modeled allocation latency (optional).
        self.stats = stats
        self.address_space = address_space
        self.protection = protection
        self.directory = directory
        self._compute_blade_ids = list(compute_blade_ids or [])
        self._drop_cached_range = drop_cached_range
        self._flush_cached_range = flush_cached_range
        self._revoke_domain_range = None
        self._migration_manager = None
        self._tasks: Dict[int, TaskStruct] = {}
        self._next_pid = 1000
        self._next_tid = 1
        self._rr_cursor = 0
        #: bumped on every metadata mutation; the replication layer uses it.
        self.version = 0
        #: MIND replicates control-plane state on the metadata path
        #: (Section 4.4): the listener fires after every metadata mutation
        #: so a backup switch can recapture synchronously.
        self._on_metadata_change = None

    def set_metadata_listener(self, fn: Optional[Callable[[], None]]) -> None:
        """Install the replication hook invoked after metadata mutations."""
        self._on_metadata_change = fn

    def _bump_version(self) -> None:
        self.version += 1
        if self._on_metadata_change is not None:
            self._on_metadata_change()

    def _charge_alloc(self) -> None:
        """Charge the last allocator operation's modeled cost on the control
        CPU and record it as an ``alloc`` latency sample.  No-op when the
        allocator axis is off (``last_cost_us`` stays 0 and nothing is
        recorded), which keeps the default path bit-identical."""
        if not self.allocator.modeled:
            return
        cost = self.allocator.last_cost_us
        self.control_cpu.charge_alloc(cost)
        if self.stats is not None:
            self.stats.record_latency("alloc", cost)

    # -- cluster membership ---------------------------------------------------

    def add_compute_blade(self, blade_id: int) -> None:
        if blade_id not in self._compute_blade_ids:
            self._compute_blade_ids.append(blade_id)

    def set_drop_cached_range(self, fn: Callable[[int, int], None]) -> None:
        """Install the cluster's hook for dropping cached pages on munmap."""
        self._drop_cached_range = fn

    def set_flush_cached_range(self, fn: Callable[[int, int], None]) -> None:
        """Install the cluster's hook for flushing+dropping cached pages on
        permission changes (mprotect must not leave stale writable PTEs)."""
        self._flush_cached_range = fn

    def set_revoke_domain_range(self, fn) -> None:
        """Install the cluster's hook for tearing down one domain's PTEs
        across blades when its grant is revoked."""
        self._revoke_domain_range = fn

    def set_migration_manager(self, manager) -> None:
        """Attach the migration manager so munmap releases migrated
        ranges' outlier routes and shadow allocations."""
        self._migration_manager = manager

    # -- process management -----------------------------------------------------

    def sys_exec(self, name: str = "proc") -> TaskStruct:
        """Create a process; the PID doubles as its protection domain id."""
        self.control_cpu.syscalls_handled += 1
        pid = self._next_pid
        self._next_pid += 1
        task = TaskStruct(pid=pid, name=name)
        self._tasks[pid] = task
        self._bump_version()
        return task

    def sys_exit(self, pid: int) -> None:
        """Tear down a process: free every vma and its protection entries."""
        task = self._task(pid)
        for base in list(task.vmas):
            self.sys_munmap(pid, base)
        task.alive = False
        task.threads.clear()
        del self._tasks[pid]
        self._bump_version()
        self.control_cpu.syscalls_handled += 1

    def place_thread(self, pid: int) -> ThreadInfo:
        """Round-robin a new thread of ``pid`` onto a compute blade."""
        if not self._compute_blade_ids:
            raise SyscallError(errno.EAGAIN, "no compute blades registered")
        task = self._task(pid)
        blade_id = self._compute_blade_ids[self._rr_cursor % len(self._compute_blade_ids)]
        self._rr_cursor += 1
        thread = ThreadInfo(tid=self._next_tid, blade_id=blade_id)
        self._next_tid += 1
        task.threads.append(thread)
        self._bump_version()
        return thread

    def task(self, pid: int) -> TaskStruct:
        return self._task(pid)

    def tasks(self) -> List[TaskStruct]:
        return list(self._tasks.values())

    def _task(self, pid: int) -> TaskStruct:
        task = self._tasks.get(pid)
        if task is None or not task.alive:
            raise SyscallError(errno.ESRCH, f"no such process: {pid}")
        return task

    # -- memory management ---------------------------------------------------------

    def sys_mmap(
        self,
        pid: int,
        length: int,
        perm: PermissionClass = PermissionClass.READ_WRITE,
        pdid: Optional[int] = None,
    ) -> int:
        """Allocate a vma; returns its base VA (like ``mmap(2)``).

        ``pdid`` defaults to the PID; capability-style callers may name a
        different protection domain (e.g. one per client session).
        """
        task = self._task(pid)
        if length <= 0:
            raise SyscallError(errno.EINVAL, "mmap length must be positive")
        self.control_cpu.syscalls_handled += 1
        try:
            placement: BladeAllocation = self.allocator.allocate(length, owner=pid)
        except OutOfMemoryError as exc:
            self._charge_alloc()
            raise SyscallError(errno.ENOMEM, str(exc)) from exc
        self._charge_alloc()
        vma = Vma(placement.va_base, placement.length, pdid or pid, perm)
        self.protection.grant(vma.pdid, vma, perm)
        task.vmas[vma.base] = (vma, placement.blade_id)
        self._bump_version()
        return vma.base

    def sys_munmap(self, pid: int, va_base: int) -> None:
        """Free a vma: revoke protection, drop directory entries, free space."""
        task = self._task(pid)
        entry = task.vmas.pop(va_base, None)
        if entry is None:
            raise SyscallError(errno.EINVAL, f"no vma at {va_base:#x}")
        vma, blade_id = entry
        self.control_cpu.syscalls_handled += 1
        self.protection.revoke(vma.pdid, vma.base)
        self._drop_directory_range(vma.base, vma.length)
        if self._drop_cached_range is not None:
            self._drop_cached_range(vma.base, vma.length)
        if self._migration_manager is not None:
            # Releases the outlier route + destination shadow if migrated.
            self._migration_manager.release_migration(vma.base)
        try:
            self.allocator.free(blade_id, vma.base)
        except KeyError:
            # The vma's original home blade was retired after migration;
            # its physical range went away with the blade.
            pass
        else:
            self._charge_alloc()
        self._bump_version()

    def sys_brk(self, pid: int, increment: int) -> int:
        """Grow the heap; modelled as an mmap-backed growable segment."""
        task = self._task(pid)
        if increment <= 0:
            raise SyscallError(errno.EINVAL, "brk shrinking not supported")
        base = self.sys_mmap(pid, increment)
        if task.brk_base is None:
            task.brk_base = base
        task.brk_current = base + increment
        return base

    def sys_mprotect(self, pid: int, va_base: int, perm: PermissionClass) -> None:
        task = self._task(pid)
        entry = task.vmas.get(va_base)
        if entry is None:
            raise SyscallError(errno.EINVAL, f"no vma at {va_base:#x}")
        vma, blade_id = entry
        self.control_cpu.syscalls_handled += 1
        new_vma = vma.with_perm(perm)
        self.protection.change(vma.pdid, new_vma, perm)
        task.vmas[va_base] = (new_vma, blade_id)
        # Cached copies must not retain stale (looser) permissions: flush
        # dirty pages and drop the range everywhere, then reset directory
        # state so the next access re-faults under the new class.
        if self._flush_cached_range is not None:
            self._flush_cached_range(vma.base, vma.length)
        self._drop_directory_range(vma.base, vma.length)
        self._bump_version()

    def grant_domain(
        self, pid: int, va_base: int, pdid: int, perm: PermissionClass
    ) -> None:
        """Capability-style API: grant another protection domain access to
        one of ``pid``'s vmas (Section 4.2's per-session domains)."""
        task = self._task(pid)
        entry = task.vmas.get(va_base)
        if entry is None:
            raise SyscallError(errno.EINVAL, f"no vma at {va_base:#x}")
        vma, _blade = entry
        self.protection.grant(pdid, Vma(vma.base, vma.length, pdid, perm), perm)
        self._bump_version()

    def revoke_domain(self, pid: int, va_base: int, pdid: int) -> None:
        task = self._task(pid)
        entry = task.vmas.get(va_base)
        self.protection.revoke(pdid, va_base)
        # Tear down the revoked domain's local PTEs so cached pages stop
        # honouring the old grant.
        if entry is not None and self._revoke_domain_range is not None:
            vma, _blade = entry
            self._revoke_domain_range(pdid, vma.base, vma.length)
        self._bump_version()

    # -- helpers -----------------------------------------------------------------

    def _drop_directory_range(self, base: int, length: int) -> None:
        for region in list(self.directory.regions()):
            if region.base < base + length and base < region.end:
                self.directory.release(region)

    def all_vmas(self) -> List[tuple]:
        out = []
        for task in self._tasks.values():
            out.extend(task.vmas.values())
        return out
