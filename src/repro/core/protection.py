"""Domain-based memory protection (Section 4.2).

Protection is decoupled from translation: a separate data-plane table maps
``<PDID, vma> -> permission class``, checked in parallel with the rest of
the pipeline via TCAM range matches.  Protection domains (PDIDs) identify
*who* may touch a region -- the PID for unmodified applications, or
finer-grained domains (e.g. one per client session) for capability-style
use.  Because TCAM entries can only match power-of-two ranges, arbitrary
vmas are decomposed into at most ``ceil(log2 s)`` prefix entries, and
adjacent entries with the same ``<PDID, PC>`` are coalesced.

The TCAM key packs the PDID in the high bits above the 48-bit VA so one
ternary match covers both fields, as the switch's parallel range match does.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..switchsim.packets import AccessType, PacketVerdict
from ..switchsim.tcam import (
    Tcam,
    TcamFullError,
    VA_WIDTH,
    prefix_mask,
    split_range_to_pow2,
)
from .vma import PermissionClass, Vma

#: Width of the PDID field packed above the VA in the TCAM key.
PDID_WIDTH = 16
KEY_WIDTH = VA_WIDTH + PDID_WIDTH


def pack_key(pdid: int, va: int) -> int:
    """Pack ``(pdid, va)`` into a single TCAM key."""
    pdid, va = int(pdid), int(va)  # tolerate numpy integer inputs
    if not 0 <= pdid < (1 << PDID_WIDTH):
        raise ValueError(f"pdid {pdid} does not fit in {PDID_WIDTH} bits")
    if not 0 <= va < (1 << VA_WIDTH):
        raise ValueError(f"va {va:#x} does not fit in {VA_WIDTH} bits")
    return (pdid << VA_WIDTH) | va


class ProtectionTable:
    """The ``<PDID, vma> -> PC`` table in switch TCAM.

    The control plane keeps the authoritative ``<pdid, vma> -> perm`` map;
    the TCAM holds its compiled form (power-of-two prefixes, buddies with
    equal payloads coalesced).  Rule changes recompile the affected domain,
    which keeps revocation correct even when a coalesced entry spanned
    several vmas.  vma counts are small in practice (Section 7.2), so
    recompiling a domain is a handful of PCIe rule updates.
    """

    def __init__(self, tcam: Tcam):
        self.tcam = tcam
        # (pdid, vma.base) -> (vma, perm): the authoritative grants.
        self._grants: Dict[Tuple[int, int], Tuple[Vma, PermissionClass]] = {}
        self.checks = 0
        self.rejections = 0

    def __len__(self) -> int:
        return len(self.tcam)

    # -- rule management (control plane) -----------------------------------

    def grant(self, pdid: int, vma: Vma, perm: PermissionClass) -> int:
        """Install permission entries for ``<pdid, vma>``.

        Returns the number of TCAM entries now covering this domain.
        """
        key = (pdid, vma.base)
        if key in self._grants:
            raise ValueError(
                f"protection for pdid={pdid} vma@{vma.base:#x} already granted"
            )
        self._grants[key] = (vma, perm)
        try:
            return self._recompile_domain(pdid)
        except TcamFullError:
            del self._grants[key]
            self._recompile_domain(pdid)
            raise

    def grants(self) -> List[Tuple[int, Vma, PermissionClass]]:
        """The authoritative grant list, sorted: ``(pdid, vma, perm)``.

        Includes both owner grants (installed by ``mmap``) and
        capability-style domain grants (``grant_domain``) -- this is what
        fail-over must replicate, not just the per-task vma lists.
        """
        return [
            (pdid, vma, perm)
            for (pdid, _base), (vma, perm) in sorted(self._grants.items())
        ]

    def revoke(self, pdid: int, vma_base: int) -> None:
        """Remove the grant for ``<pdid, vma>`` (munmap path)."""
        if self._grants.pop((pdid, vma_base), None) is None:
            raise KeyError(f"no protection entries for pdid={pdid} @ {vma_base:#x}")
        self._recompile_domain(pdid)

    def change(self, pdid: int, vma: Vma, perm: PermissionClass) -> None:
        """mprotect: replace the grant with the new permission class."""
        self.revoke(pdid, vma.base)
        self.grant(pdid, vma, perm)

    def _recompile_domain(self, pdid: int) -> int:
        """Rebuild the TCAM entries of one protection domain from grants."""
        self.tcam.remove_where(
            lambda e: isinstance(e.data, tuple) and e.data[0] == pdid
        )
        count = 0
        for (g_pdid, _base), (vma, perm) in sorted(self._grants.items()):
            if g_pdid != pdid:
                continue
            for base, size in split_range_to_pow2(vma.base, vma.length):
                value = pack_key(pdid, base)
                prefix_len = VA_WIDTH - (size.bit_length() - 1)
                # Exact match on PDID bits + VA prefix.
                mask = (
                    prefix_mask(PDID_WIDTH, PDID_WIDTH) << VA_WIDTH
                ) | prefix_mask(prefix_len, VA_WIDTH)
                self.tcam.insert(value, mask, PDID_WIDTH + prefix_len, (pdid, perm))
                count += 1
        self.tcam.coalesce(width=KEY_WIDTH)
        return sum(
            1
            for e in self.tcam
            if isinstance(e.data, tuple) and e.data[0] == pdid
        )

    # -- data-plane check ---------------------------------------------------

    def check(self, pdid: int, va: int, access: AccessType) -> PacketVerdict:
        """The per-request protection check performed in the data plane."""
        self.checks += 1
        entry = self.tcam.lookup(pack_key(pdid, va))
        if entry is None:
            self.rejections += 1
            return PacketVerdict.REJECT_NO_ENTRY
        _pdid, perm = entry.data
        allowed = perm.allows_write() if access.is_write else perm.allows_read()
        if not allowed:
            self.rejections += 1
            return PacketVerdict.REJECT_PERMISSION
        return PacketVerdict.ALLOW
