"""Switch fail-over: control-plane replication and data-plane rebuild.

Section 4.4: MIND consistently replicates the control plane at a backup
switch; on a switch failure, the *data-plane* state is reconstructed from
the replicated control-plane state.  Control-plane state only changes on
metadata operations (syscalls), so replication is cheap.

The directory is deliberately *not* replicated: after fail-over every
region starts Invalid and compute blades re-fault, exactly as cold caches
re-warm -- coherence safety never depends on directory persistence because
blades flush dirty pages when asked and memory blades hold the ground
truth for evicted/flushed data.  (A fail-over while dirty pages are cached
relies on the blades themselves surviving, which matches the paper's
scope: it handles *switch* failures here, and defers compute/memory blade
fault-tolerance to prior work.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..alloc import AllocCostModel, GlobalAllocator
from ..switchsim.sram import RegisterArray
from ..switchsim.tcam import Tcam
from .addressing import AddressSpace
from .controller import SwitchController
from .directory import RegionDirectory
from .protection import ProtectionTable
from .vma import PermissionClass, Vma


@dataclass
class ControlPlaneSnapshot:
    """Everything needed to rebuild the data plane on a backup switch."""

    version: int
    #: (pid, name)
    tasks: List[Tuple[int, str]]
    #: (pid, vma base, vma length, pdid, perm, memory blade id)
    vmas: List[Tuple[int, int, int, int, PermissionClass, int]]
    #: every protection grant, including capability-style ``grant_domain``
    #: entries whose pdid is not any task's pid: (pdid, base, length, perm).
    #: Task vma lists alone miss them -- a rebuild that dropped session
    #: domains would segfault every multi-tenant server after fail-over.
    grants: List[Tuple[int, int, int, PermissionClass]]
    #: memory blade ids in VA-partition order.
    blade_order: List[int]
    blade_capacity: int
    #: Bounded Splitting policy state: the backup's directory must keep the
    #: primary's region-size bounds, or a fail-over silently changes
    #: splitting behaviour (region granularity, merge ceilings).
    initial_region_size: int = 16 * 1024
    max_region_size: int = 2 * 1024 * 1024
    #: allocator-policy axis state: the backup must rebuild with the same
    #: policy (and cost modeling) or post-fail-over placement diverges.
    allocator_policy: str = "first-fit"
    allocator_modeled: bool = False


class ControlPlaneReplicator:
    """Keeps a backup switch's control-plane state consistent.

    ``capture`` must be called after metadata operations (MIND replicates
    on the metadata path); ``stale`` tells whether the backup lags.
    """

    def __init__(self, controller: SwitchController):
        self.controller = controller
        self._snapshot: ControlPlaneSnapshot = self.capture()

    def capture(self) -> ControlPlaneSnapshot:
        ctl = self.controller
        tasks = [(t.pid, t.name) for t in ctl.tasks()]
        vmas = [
            (task.pid, vma.base, vma.length, vma.pdid, vma.perm, blade_id)
            for task in ctl.tasks()
            for vma, blade_id in task.vmas.values()
        ]
        grants = [
            (pdid, vma.base, vma.length, perm)
            for pdid, vma, perm in ctl.protection.grants()
        ]
        snapshot = ControlPlaneSnapshot(
            version=ctl.version,
            tasks=tasks,
            vmas=sorted(vmas),
            grants=grants,
            blade_order=ctl.allocator.blade_ids,
            blade_capacity=ctl.address_space.blade_capacity,
            initial_region_size=ctl.directory.initial_region_size,
            max_region_size=ctl.directory.max_region_size,
            allocator_policy=ctl.allocator.policy_name,
            allocator_modeled=ctl.allocator.modeled,
        )
        self._snapshot = snapshot
        return snapshot

    @property
    def snapshot(self) -> ControlPlaneSnapshot:
        return self._snapshot

    def stale(self) -> bool:
        return self._snapshot.version != self.controller.version


@dataclass
class RebuiltDataPlane:
    """The backup switch's freshly programmed tables."""

    address_space: AddressSpace
    protection: ProtectionTable
    directory: RegionDirectory
    allocator: GlobalAllocator


def rebuild_data_plane(
    snapshot: ControlPlaneSnapshot,
    xlate_tcam: Tcam,
    protection_tcam: Tcam,
    directory_sram: RegisterArray,
    initial_region_size: Optional[int] = None,
    max_region_size: Optional[int] = None,
) -> RebuiltDataPlane:
    """Program a backup switch's tables from a control-plane snapshot.

    Translation entries and protection entries are reinstalled exactly;
    allocator occupancy is replayed so future allocations stay balanced;
    the directory starts empty (all-Invalid), to be re-populated by faults.
    Region-size bounds default to the *snapshot's* (the primary's policy);
    explicit overrides are for tests only -- a real fail-over must not
    change bounded-splitting behaviour.
    """
    if initial_region_size is None:
        initial_region_size = snapshot.initial_region_size
    if max_region_size is None:
        max_region_size = snapshot.max_region_size
    address_space = AddressSpace(xlate_tcam, snapshot.blade_capacity)
    allocator = GlobalAllocator(
        policy=snapshot.allocator_policy,
        cost_model=AllocCostModel() if snapshot.allocator_modeled else None,
    )
    for blade_id in snapshot.blade_order:
        va_base = address_space.add_blade(blade_id)
        allocator.add_blade(blade_id, va_base, snapshot.blade_capacity)
    protection = ProtectionTable(protection_tcam)
    # Permissions come from the replicated grant list -- the task vma list
    # alone would silently drop capability-style session domains.
    for pdid, base, length, perm in snapshot.grants:
        protection.grant(pdid, Vma(base, length, pdid, perm), perm)
    # Replay each allocation at its original address.  Ascending-base order
    # (not the snapshot's pid-major order) so frontier-style policies
    # (slab/arena/bump) rebuild without claiming ranges behind their
    # frontier; first-fit hole structure is order-independent.
    for _pid, base, length, _pdid, _perm, blade_id in sorted(
        snapshot.vmas, key=lambda entry: entry[1]
    ):
        allocator.allocate_at(blade_id, base, length)
    directory = RegionDirectory(
        directory_sram,
        initial_region_size=initial_region_size,
        max_region_size=max_region_size,
    )
    return RebuiltDataPlane(address_space, protection, directory, allocator)
