"""First-class fault transactions and the MSHR-style pending table.

The paper's switch directory handles racing requests with *transient
states* (Sections 4.3.2 and 6.3): a directory entry mid-transition
remembers what is outstanding and either absorbs a compatible request or
parks a conflicting one.  Earlier revisions of this codebase approximated
that with a per-region FIFO lock table, which serialized even compatible
readers.  This module models the hardware shape directly:

- :class:`Transaction` -- one page-fault transaction with explicit phases
  (admit -> resolve -> invalidate/fetch -> complete).
- :class:`PendingTransactionTable` -- the switch's outstanding-transaction
  table.  Concurrent Shared-read faults on one region *coalesce*: they are
  admitted together, and reads of a page whose fetch is already in flight
  join that fetch (one memory-blade RDMA, N completions), like MSHR miss
  merging.  Conflicting requests queue on the entry's transient state.
  Table occupancy is a modeled switch resource with a configurable cap
  (``MindConfig.pending_table_capacity``); admissions beyond the cap wait.
- :class:`AdmissionController` -- the ADMIT phase: directory-entry
  creation with the capacity fallback chain (reclaim, merge, evict), then
  pending-table admission, re-checked against entry splits/merges/evictions
  that happened while waiting.

The control plane (Bounded Splitting, migration, capacity eviction) takes
the same admission gate via :meth:`PendingTransactionTable.admit_control`,
so split/merge/evict never races a fault transaction on the same entry.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, Generator, List, Optional, Tuple

from ..sim.engine import Engine, Event, Resource
from ..switchsim.packets import PacketVerdict
from .addressing import Translation
from .directory import CoherenceState, DirectoryFullError, Region
from .stt import Transition, TransitionAction, role_of

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..obs.spans import SpanCursor
    from ..sim.stats import StatsCollector
    from .coherence import CoherenceProtocol


@dataclass
class FaultResult:
    """What the requesting blade learns when its fault transaction ends."""

    verdict: PacketVerdict
    label: str = ""
    latency_us: float = 0.0
    data: Optional[bytes] = None
    translation: Optional[Translation] = None
    granted_write: bool = False
    invalidations_sent: int = 0
    was_reset: bool = False
    #: a switch fail-over happened mid-flight: directory effects may be
    #: lost, so the blade must re-issue against the rebuilt data plane.
    stale: bool = False
    #: this Shared read joined another transaction's in-flight fetch of the
    #: same page (MSHR coalescing): one memory RDMA served N requesters.
    coalesced: bool = False


class TxnPhase(enum.Enum):
    """Lifecycle phases of one fault transaction."""

    ADMIT = "admit"
    RESOLVE = "resolve"
    INVALIDATE = "invalidate"
    FETCH = "fetch"
    COMPLETE = "complete"


class Transaction:
    """One in-flight fault transaction (or a control-plane admission)."""

    __slots__ = (
        "txn_id",
        "src_port",
        "page_va",
        "is_write",
        "key",
        "phase",
        "shared",
        "control",
        "force_exclusive",
        "t_admit",
    )

    def __init__(
        self, txn_id: int, src_port: int, page_va: int, is_write: bool, control: bool = False
    ):
        self.txn_id = txn_id
        self.src_port = src_port
        self.page_va = page_va
        self.is_write = is_write
        #: region base this transaction is admitted on (set at admission).
        self.key: Optional[int] = None
        self.phase = TxnPhase.ADMIT
        #: admitted in shared (coalescible) mode rather than exclusively.
        self.shared = False
        #: a control-plane admission (split/merge/evict/migrate): always
        #: exclusive, exempt from the data-path occupancy cap.
        self.control = control
        #: set after a misclassified shared admission; forces the retry to
        #: take the entry exclusively.
        self.force_exclusive = False
        self.t_admit = 0.0


class PageFetch:
    """A published in-flight memory-blade fetch that readers may join."""

    __slots__ = ("page_va", "done", "data", "joiners")

    def __init__(self, page_va: int, done: Event):
        self.page_va = page_va
        self.done = done
        self.data: Optional[bytes] = None
        self.joiners = 0


class _Entry:
    """Transient state for one region base with outstanding transactions."""

    __slots__ = ("key", "mode", "holders", "waiters", "fetches", "region")

    def __init__(self, key: int):
        self.key = key
        self.mode = "exclusive"
        self.holders: List[Transaction] = []
        #: FIFO of parked transactions: (txn, wake event).
        self.waiters: Deque[Tuple[Transaction, Event]] = deque()
        #: page_va -> published in-flight fetch (MSHR miss merging).
        self.fetches: Dict[int, PageFetch] = {}
        #: the directory entry this transient state is flagged on.
        self.region: Optional[Region] = None


class PendingTransactionTable:
    """The switch's outstanding-transaction (MSHR-style) table.

    Replaces the old per-region ``LockTable``.  Entries are keyed by region
    base; each entry is either *exclusive* (one holder: a write, a
    state-changing read, or a control-plane operation) or *shared* (any
    number of concurrent Shared-read holders).  Arrivals that cannot join
    park FIFO on the entry; their wait is the ``queue_conflict`` span
    component.  Occupancy (data-path transactions in flight) is capped by a
    named :class:`~repro.sim.engine.Resource`, so cap pressure shows up in
    the run report's queueing hotspots.
    """

    def __init__(self, engine: Engine, stats: "StatsCollector", capacity: int = 256):
        self.engine = engine
        self.stats = stats
        self.capacity = capacity
        self._slots = Resource(engine, capacity=capacity, name="switch.pending_txns")
        self._entries: Dict[int, _Entry] = {}
        self._next_id = 0
        #: high-water mark of concurrently admitted data-path transactions.
        self.peak = 0

    # -- introspection ----------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Data-path transactions currently holding a table slot."""
        return self._slots.in_use

    def entry_count(self) -> int:
        return len(self._entries)

    def inflight(self, key: int) -> int:
        """Number of transactions admitted on ``key`` right now."""
        entry = self._entries.get(key)
        return len(entry.holders) if entry is not None else 0

    # -- transaction factory ----------------------------------------------

    def transaction(self, src_port: int, page_va: int, is_write: bool) -> Transaction:
        self._next_id += 1
        return Transaction(self._next_id, src_port, page_va, is_write)

    # -- admission --------------------------------------------------------

    def _wants_shared(self, txn: Transaction, region: Region) -> bool:
        """A read of a Shared region is coalescible: every protocol's STT
        maps it to a pure fetch that leaves the region Shared, so any
        number may proceed concurrently."""
        return (
            not txn.control
            and not txn.is_write
            and not txn.force_exclusive
            and region.state is CoherenceState.SHARED
        )

    def admit(self, txn: Transaction, region: Region) -> Generator:
        """Admit ``txn`` on ``region``'s entry; yields until granted.

        Returns True when the transaction had to park (conflict or cap
        pressure), so the caller can attribute the wait.
        """
        txn.key = region.base
        txn.phase = TxnPhase.ADMIT
        waited = False
        if not txn.control:
            if self._slots.try_acquire():
                slot_wait = 0.0
            else:
                slot_wait = yield self._slots.acquire()
            if slot_wait:
                waited = True
            self.stats.incr("txn_admitted")
            if self._slots.in_use > self.peak:
                self.peak = self._slots.in_use
        entry = self._entries.get(region.base)
        txn.shared = self._wants_shared(txn, region)
        if entry is None:
            entry = _Entry(region.base)
            self._entries[region.base] = entry
            self._grant(entry, txn, region)
        elif txn.shared and entry.mode == "shared" and not entry.waiters and entry.holders:
            self._grant(entry, txn, region)
        else:
            self.stats.incr("txn_conflict_waits")
            wake = self.engine.event()
            entry.waiters.append((txn, wake))
            yield wake
            waited = True
        txn.t_admit = self.engine.now
        return waited

    def _grant(self, entry: _Entry, txn: Transaction, region: Region) -> None:
        entry.holders.append(txn)
        entry.mode = "shared" if txn.shared else "exclusive"
        self._bind_region(entry, region)

    def _bind_region(self, entry: _Entry, region: Region) -> None:
        """Flag the directory entry with this table entry's transient state
        (the flag the split/merge/evict paths consult)."""
        if entry.region is not None and entry.region is not region:
            entry.region.transient = ""
        entry.region = region
        region.transient = entry.mode

    def rebind(self, txn: Transaction, region: Region) -> None:
        """Re-point the transient flag after the directory entry at
        ``txn.key`` was replaced (split/merge) while the txn waited."""
        entry = self._entries.get(txn.key) if txn.key is not None else None
        if entry is not None:
            self._bind_region(entry, region)

    def downgrade(self, txn: Transaction, region: Region) -> None:
        """Exclusive -> shared once the holder's remaining work is a pure
        Shared fetch (it has applied its ``-> S`` directory update).  Parked
        compatible readers are admitted immediately and can join the
        holder's published fetch -- the MSHR merge window."""
        if txn.control:
            raise ValueError("control admissions cannot downgrade")
        assert txn.key is not None, "downgrade before admission"
        entry = self._entries[txn.key]
        txn.shared = True
        entry.mode = "shared"
        if entry.region is not None:
            entry.region.transient = "shared"
        self._grant_waiters(entry)

    def complete(self, txn: Transaction) -> None:
        """Retire a transaction: free its slot, grant parked waiters, drop
        the entry when nothing is outstanding."""
        txn.phase = TxnPhase.COMPLETE
        entry = self._entries.get(txn.key) if txn.key is not None else None
        if entry is not None and txn in entry.holders:
            entry.holders.remove(txn)
            if not entry.holders:
                self._grant_waiters(entry)
            if not entry.holders and not entry.waiters:
                if entry.region is not None:
                    entry.region.transient = ""
                del self._entries[entry.key]
        if not txn.control:
            self._slots.release()

    def _grant_waiters(self, entry: _Entry) -> None:
        """Grant from the FIFO head: one exclusive waiter, or a run of
        consecutive shared-compatible waiters.  Shared eligibility is
        re-evaluated at grant time -- the region's state may have moved
        while the waiter was parked."""
        if entry.holders and entry.mode == "exclusive":
            return
        while entry.waiters:
            txn, wake = entry.waiters[0]
            region = entry.region
            txn.shared = region is not None and self._wants_shared(txn, region)
            if entry.holders:
                if not (txn.shared and entry.mode == "shared"):
                    return
            entry.waiters.popleft()
            entry.holders.append(txn)
            entry.mode = "shared" if txn.shared else "exclusive"
            if entry.region is not None:
                entry.region.transient = entry.mode
            wake.succeed()
            if entry.mode == "exclusive":
                return

    # -- fetch coalescing -------------------------------------------------

    def publish_fetch(self, txn: Transaction, page_va: int) -> PageFetch:
        """Publish ``txn``'s in-flight memory fetch of ``page_va`` so later
        Shared readers of the same page can join it."""
        assert txn.key is not None, "publish before admission"
        entry = self._entries[txn.key]
        fetch = PageFetch(page_va, self.engine.event())
        entry.fetches[page_va] = fetch
        return fetch

    def inflight_fetch(self, txn: Transaction, page_va: int) -> Optional[PageFetch]:
        """The published fetch of ``page_va`` on ``txn``'s entry, if one is
        in flight; joining increments the coalesced counter."""
        entry = self._entries.get(txn.key) if txn.key is not None else None
        if entry is None:
            return None
        fetch = entry.fetches.get(page_va)
        if fetch is not None:
            fetch.joiners += 1
            self.stats.incr("coalesced_fetches")
        return fetch

    def finish_fetch(
        self, txn: Transaction, fetch: PageFetch, data: Optional[bytes]
    ) -> None:
        """Data returned: complete every joined reader, close the merge
        window (later readers fetch for themselves)."""
        entry = self._entries.get(txn.key) if txn.key is not None else None
        if entry is not None and entry.fetches.get(fetch.page_va) is fetch:
            del entry.fetches[fetch.page_va]
        fetch.data = data
        if not fetch.done.triggered:
            fetch.done.succeed(data)

    # -- control-plane admission gate -------------------------------------

    def admit_control(self, key: int, region: Optional[Region] = None) -> Generator:
        """Exclusive admission for a control-plane operation (split, merge,
        eviction, migration quiesce).  Exempt from the occupancy cap -- it
        models switch-CPU work, not a data-path MSHR.  Returns the control
        transaction to pass to :meth:`release_control`."""
        self._next_id += 1
        txn = Transaction(self._next_id, -1, -1, True, control=True)
        # Control admissions may gate on a bare key (no Region object yet).
        txn.key = key
        entry = self._entries.get(key)
        if entry is None:
            entry = _Entry(key)
            self._entries[key] = entry
            entry.holders.append(txn)
            entry.mode = "exclusive"
            if region is not None:
                self._bind_region(entry, region)
        else:
            wake = self.engine.event()
            entry.waiters.append((txn, wake))
            yield wake
            if region is not None:
                self._bind_region(entry, region)
        return txn

    def release_control(self, txn: Transaction) -> None:
        self.complete(txn)


class AdmissionController:
    """The ADMIT phase: directory-entry lifecycle + pending-table admission.

    Owns the capacity fallback chain the old monolith ran inline: reclaim
    Invalid entries, opportunistically merge, and finally evict a victim
    region (whose collateral drops are false invalidations -- the regime
    the M_A/M_C workloads live in, Fig. 8 left).
    """

    #: run the O(entries) opportunistic-merge scan once per this many
    #: capacity events.
    _MERGE_EVERY = 64

    def __init__(self, ctx: "CoherenceProtocol"):
        self.ctx = ctx
        self._capacity_events = 0

    def resolve(self, txn: Transaction, pkt, access, spans: "SpanCursor") -> Generator:
        """ADMIT then classify: admit the transaction, match the STT.

        A Shared-read admission is optimistic; if the STT verdict turns out
        to need a state change (cannot happen with the shipped STTs, but
        guarded), the transaction re-admits exclusively.  Returns
        ``(region, transition)``.
        """
        ctx = self.ctx
        while True:
            region = yield from self.admit(txn, spans)
            role = role_of(region, txn.src_port)
            transition: Transition = pkt.execute(
                ctx.stt_mau, lambda: ctx.stt[(region.state, access, role)]
            )
            if txn.shared and (
                transition.action is not TransitionAction.FETCH_ONLY
                or transition.next_state is not CoherenceState.SHARED
            ):
                ctx.pending.complete(txn)
                txn.force_exclusive = True
                continue
            txn.phase = TxnPhase.RESOLVE
            return region, transition

    def admit(self, txn: Transaction, spans: "SpanCursor") -> Generator:
        """Find/create the directory entry for ``txn.page_va`` and admit the
        transaction on it.  Re-checks after any wait: the entry may have
        been split, merged or evicted in the meantime."""
        ctx = self.ctx
        page_va = txn.page_va
        while True:
            region = yield from self._ensure_entry(page_va)
            spans.mark("admit")
            yield from ctx.pending.admit(txn, region)
            spans.mark("queue_conflict")
            current = ctx.directory.find(page_va)
            if (
                current is not None
                and current.base == txn.key
                and current.contains(page_va)
            ):
                if current is not region:
                    ctx.pending.rebind(txn, current)
                return current
            ctx.pending.complete(txn)

    def _ensure_entry(self, page_va: int) -> Generator:
        """Directory entry creation with the capacity fallback chain.

        Contended workloads hit this on a large share of faults, so every
        step is O(probe); the O(entries) merge scan runs only once per
        ``_MERGE_EVERY`` capacity events.
        """
        ctx = self.ctx
        directory = ctx.directory
        for _attempt in range(64):
            try:
                return directory.ensure_region(page_va, reclaim=False)
            except DirectoryFullError:
                ctx.stats.incr("directory_capacity_events")
                invalid, victim = directory.sweep(probe=16)
                if invalid is not None:
                    directory.release(invalid)
                    continue
                self._capacity_events += 1
                # The merge scan runs on the first event and then once per
                # _MERGE_EVERY (it is the only O(entries) step here).
                if (
                    self._capacity_events % self._MERGE_EVERY == 1
                    and directory.merge_any(limit=8)
                ):
                    continue
                if victim is None:
                    # Nothing probed was evictable; fall back to a full
                    # reclaim scan (rare).
                    if directory.reclaim_invalid(limit=8) == 0:
                        directory.merge_any(limit=8)
                    continue
                yield from self._evict_entry(victim)
        raise DirectoryFullError("could not make room in the directory")

    def _evict_entry(self, victim: Region) -> Generator:
        """Invalidate a region everywhere and free its slot (capacity path).
        Takes the pending table's admission gate, so the eviction waits out
        any transaction in flight on the victim."""
        ctx = self.ctx
        gate = yield from ctx.pending.admit_control(victim.base, victim)
        try:
            if ctx.directory.find(victim.base) is not victim:
                return
            targets = sorted(
                victim.sharers | ({victim.owner} if victim.owner is not None else set())
            )
            if targets:
                inval = ctx.invalidation.make_eviction_inval(victim, targets)
                ctx.stats.incr("capacity_evictions")
                yield from ctx.invalidation.invalidate_all(inval, targets, victim)
            victim.state = CoherenceState.INVALID
            victim.sharers.clear()
            victim.owner = None
            ctx.directory.release(victim)
        finally:
            ctx.pending.release_control(gate)
