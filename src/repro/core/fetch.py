"""Data-path legs of a fault transaction (the FETCH phase).

Everything that moves page payloads lives here: the one-sided RDMA fetch
from a memory blade (with connection virtualization -- the switch rewrites
headers so blades never learn endpoints), the MOESI cache-to-cache
``FETCH_FROM_OWNER`` transfer, dirty-page write-backs (synchronous and
asynchronous), and the reliable-delivery helper every leg uses.

Ordering invariant: a fetch of a page whose asynchronous write-back has
not landed yet must wait for the flush (``pending_flushes``), so a read
can never observe stale memory behind an in-flight flush.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional

from ..sim.engine import Event
from ..sim.network import CONTROL_MSG_BYTES, PAGE_SIZE, Port
from ..switchsim.packets import InvalidationRequest, MemRequest
from ..switchsim.rdma_virt import RdmaVirtualizer
from .directory import CoherenceState, Region
from .stt import Transition, TransitionAction
from .txn import Transaction, TxnPhase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.spans import SpanCursor
    from .coherence import CoherenceProtocol


class DataPath:
    """Owns payload movement between blades, switch, and memory."""

    def __init__(self, ctx: "CoherenceProtocol"):
        self.ctx = ctx
        #: switch-side RDMA connection virtualization (Section 6.3).
        self.rdma_virt = RdmaVirtualizer()
        #: page va -> in-flight write-back; fetches of that page must wait
        #: for the flush to land so they never read stale memory.
        self.pending_flushes: Dict[int, Event] = {}

    # -- reliable delivery --------------------------------------------------

    def deliver(self, make_transfer: Callable[[], Generator]) -> Generator:
        """Land one transfer leg, retransmitting on an injected link drop
        with capped exponential backoff.  Data-movement legs use this (a
        lost payload is simply re-sent); invalidation/ACK legs instead
        surface the loss so the ACK-timeout machinery drives the retry.
        Returns the number of retransmissions used.
        """
        ctx = self.ctx
        attempt = 0
        while True:
            delivered = yield from ctx.engine.subtask(make_transfer())
            if delivered:
                return attempt
            ctx.stats.incr("retransmissions")
            ctx.stats.incr("link_retransmissions")
            yield ctx.backoff.timeout_us(min(attempt, ctx.MAX_RETRIES))
            attempt += 1

    def _redeliver(self, link, size_bytes: int) -> Generator:
        """Cold path of reliable delivery: retransmit with capped backoff
        after a first failed leg.  The hot path at each call site runs the
        first transfer inline (no deliver() frame, no closure) and only
        falls in here when a fault injector dropped the leg -- the
        retransmission sequence is exactly :meth:`deliver`'s from the first
        failure on.
        """
        ctx = self.ctx
        attempt = 0
        while True:
            ctx.stats.incr("retransmissions")
            ctx.stats.incr("link_retransmissions")
            yield ctx.backoff.timeout_us(min(attempt, ctx.MAX_RETRIES))
            attempt += 1
            if (yield from ctx.engine.subtask(link.transfer(size_bytes))):
                return

    def blade_ready(self, blade) -> Generator:
        """Wait out a paused (crashed/stalled) memory blade: each probe
        that goes unanswered costs one backoff timeout."""
        ctx = self.ctx
        attempt = 0
        while not getattr(blade, "available", True):
            if hasattr(blade, "refuse"):
                blade.refuse()
            ctx.stats.incr("blade_timeouts")
            yield ctx.backoff.timeout_us(min(attempt, ctx.MAX_RETRIES))
            attempt += 1

    def blade_service_us(self, blade) -> float:
        """NIC+DRAM service time at ``blade`` under any injected slowdown."""
        base = self.ctx.config.memory_service_us + self.ctx.config.dram_access_us
        scale = getattr(blade, "slow_factor", 1.0)
        return base * scale

    # -- the INVALIDATE/FETCH phase dispatch ----------------------------------

    def run_action(
        self,
        txn: Transaction,
        req: MemRequest,
        requester: Port,
        page_va: int,
        region: Region,
        transition: Transition,
        old_owner: Optional[int],
        old_sharers: frozenset,
        spans: "SpanCursor",
    ) -> Generator:
        """Drive the data-path phases the STT verdict selected.  Returns
        ``(data, invalidations, was_reset, coalesced)``."""
        ctx = self.ctx
        if transition.action is TransitionAction.FETCH_ONLY:
            txn.phase = TxnPhase.FETCH
            if txn.shared:
                joined = ctx.pending.inflight_fetch(txn, page_va)
                if joined is not None:
                    # MSHR merge: ride the in-flight fetch (one RDMA, N
                    # completions), then take our own downlink leg.
                    data = yield joined.done
                    spans.mark("coalesced_wait")
                    link = requester.from_switch
                    if (leg := link.try_leg(PAGE_SIZE)) >= 0.0:
                        yield leg
                    elif (ser := link.try_start(PAGE_SIZE)) >= 0.0:
                        yield ser
                        yield link.finish(PAGE_SIZE)
                    elif not (
                        yield from ctx.engine.subtask(link.transfer(PAGE_SIZE))
                    ):
                        yield from self._redeliver(link, PAGE_SIZE)
                    yield ctx.config.rdma_verb_overhead_us
                    spans.mark_wire("reply", requester.from_switch)
                    return data, 0, False, True
            if (
                not txn.shared
                and not txn.is_write
                and transition.next_state is CoherenceState.SHARED
            ):
                # The directory update is applied; the rest is a pure
                # Shared fetch, so parked readers may now ride along.
                ctx.pending.downgrade(txn, region)
            if txn.shared:
                published = ctx.pending.publish_fetch(txn, page_va)
                data = None
                try:
                    data = yield from self.fetch(req, requester, page_va)
                finally:
                    ctx.pending.finish_fetch(txn, published, data)
            else:
                data = yield from self.fetch(req, requester, page_va)
            spans.mark_wire("fetch", requester.from_switch)
            return data, 0, False, False
        if transition.action is TransitionAction.INVALIDATE_PARALLEL:
            txn.phase = TxnPhase.INVALIDATE
            targets = ctx.multicast.replicate(
                ctx.compute_group, old_sharers, req.src_port
            )
            inval = ctx.invalidation.make_inval(region, req, targets, downgrade=False)
            fetch_proc = ctx.engine.process(self.fetch(req, requester, page_va))
            ack_proc = ctx.engine.process(
                ctx.invalidation.invalidate_all(inval, targets, region)
            )
            yield ctx.engine.all_of([fetch_proc, ack_proc])
            # Fetch and invalidation overlap (the S->M parallelism of
            # Fig. 7); the wall segment is attributed to their union.
            spans.mark_wire("fetch+invalidation", requester.from_switch)
            return fetch_proc.value, len(targets), ack_proc.value, False
        if transition.action is TransitionAction.LOCAL_UPGRADE:
            # MOESI O->M at the owner: no data moves; invalidate the other
            # sharers, then return the grant.
            txn.phase = TxnPhase.INVALIDATE
            targets = ctx.multicast.replicate(
                ctx.compute_group, old_sharers, req.src_port
            )
            inval = ctx.invalidation.make_inval(region, req, targets, downgrade=False)
            was_reset = yield from ctx.invalidation.invalidate_all(
                inval, targets, region
            )
            spans.mark("invalidation")
            link = requester.from_switch
            if (leg := link.try_leg(CONTROL_MSG_BYTES)) >= 0.0:
                yield leg
            elif (ser := link.try_start(CONTROL_MSG_BYTES)) >= 0.0:
                yield ser
                yield link.finish(CONTROL_MSG_BYTES)
            elif not (yield from ctx.engine.subtask(link.transfer(CONTROL_MSG_BYTES))):
                yield from self._redeliver(link, CONTROL_MSG_BYTES)
            spans.mark_wire("reply", requester.from_switch)
            return None, len(targets), was_reset, False
        if transition.action is TransitionAction.FETCH_FROM_OWNER:
            # Only the first steal (M->O) must write-protect the owner; for
            # O->O the owner is read-only already.
            txn.phase = TxnPhase.FETCH
            data, was_reset = yield from self.fetch_from_owner(
                req,
                requester,
                page_va,
                old_owner,
                region,
                write_protect_owner=transition.label == "M->O",
            )
            spans.mark_wire("owner_fetch", requester.from_switch)
            return data, 1 if old_owner is not None else 0, was_reset, False
        # INVALIDATE_OWNER_THEN_FETCH: the owner must flush before memory
        # serves (the sequential M->S/M path, 2x latency of Fig. 7 left).
        txn.phase = TxnPhase.INVALIDATE
        target_set = set(old_sharers)
        if old_owner is not None:
            target_set.add(old_owner)
        target_set.discard(req.src_port)
        targets = ctx.multicast.replicate(
            ctx.compute_group, frozenset(target_set), req.src_port
        )
        inval = ctx.invalidation.make_inval(
            region, req, targets, downgrade=transition.owner_downgrades
        )
        was_reset = yield from ctx.invalidation.invalidate_all(inval, targets, region)
        spans.mark("invalidation")
        txn.phase = TxnPhase.FETCH
        data = yield from self.fetch(req, requester, page_va)
        spans.mark_wire("fetch", requester.from_switch)
        return data, len(targets), was_reset, False

    # -- memory-blade fetch ---------------------------------------------------

    def fetch(self, req: MemRequest, requester: Port, page_va: int) -> Generator:
        """One-sided RDMA fetch, retransmitted on loss (Section 4.4: ACKs
        and timeouts detect packet losses on every message class).

        Plain dispatch, not a generator: with no fault injector installed
        the per-attempt drop check can never fire, so the retry loop's
        generator frame is skipped entirely and callers drive
        :meth:`_fetch_once` directly (``yield from`` and ``process()``
        both accept the returned generator unchanged).
        """
        if self.ctx.fault_injector is None:
            return self._fetch_once(req, requester, page_va)
        return self._fetch_lossy(req, requester, page_va)

    def _fetch_lossy(self, req: MemRequest, requester: Port, page_va: int) -> Generator:
        ctx = self.ctx
        for attempt in range(ctx.MAX_RETRIES + 1):
            lost = (
                ctx.fault_injector is not None
                and ctx.fault_injector.should_drop_fetch()
            )
            if not lost:
                data = yield from self._fetch_once(req, requester, page_va)
                return data
            ctx.stats.incr("retransmissions")
            yield ctx.backoff.timeout_us(attempt)
        # Persistent loss: serve the final attempt unconditionally (the
        # reset machinery handles wedged *coherence* state; a fetch has no
        # state to wedge).
        data = yield from self._fetch_once(req, requester, page_va)
        return data

    def _fetch_once(self, req: MemRequest, requester: Port, page_va: int) -> Generator:
        ctx = self.ctx
        engine = ctx.engine
        xlate = ctx.address_space.translate(page_va)
        blade = ctx._memory_blades[xlate.blade_id]
        ctx.stats.incr("memory_fetches")
        # Stitch the requester's virtual connection to the real one.
        self.rdma_virt.rewrite(req.src_port, xlate.blade_id)
        link = blade.port.from_switch
        if (leg := link.try_leg(CONTROL_MSG_BYTES)) >= 0.0:
            yield leg
        elif (ser := link.try_start(CONTROL_MSG_BYTES)) >= 0.0:
            yield ser
            yield link.finish(CONTROL_MSG_BYTES)
        elif not (yield from engine.subtask(link.transfer(CONTROL_MSG_BYTES))):
            yield from self._redeliver(link, CONTROL_MSG_BYTES)
        if not getattr(blade, "available", True):
            yield from self.blade_ready(blade)
        pending = self.pending_flushes.get(page_va)
        if pending is not None and not pending.triggered:
            # An asynchronous write-back of this very page has not landed
            # yet; the NIC must serve the read after it (flush/fetch order).
            yield pending
        yield self.blade_service_us(blade)
        data = blade.read_page(xlate.pa)
        link = blade.port.to_switch
        if (leg := link.try_leg(PAGE_SIZE)) >= 0.0:
            yield leg
        elif (ser := link.try_start(PAGE_SIZE)) >= 0.0:
            yield ser
            yield link.finish(PAGE_SIZE)
        elif not (yield from engine.subtask(link.transfer(PAGE_SIZE))):
            yield from self._redeliver(link, PAGE_SIZE)
        # Response pass through the pipeline, then down to the requester.
        resp = ctx.pipeline.packet()
        if (
            not engine._ready
            and not engine.tracer.enabled
            and engine._due_head > engine.now
        ):
            yield resp.traverse_us()
        else:
            yield from engine.subtask(resp.traverse())
        link = requester.from_switch
        if (leg := link.try_leg(PAGE_SIZE)) >= 0.0:
            yield leg
        elif (ser := link.try_start(PAGE_SIZE)) >= 0.0:
            yield ser
            yield link.finish(PAGE_SIZE)
        elif not (yield from engine.subtask(link.transfer(PAGE_SIZE))):
            yield from self._redeliver(link, PAGE_SIZE)
        yield ctx.config.rdma_verb_overhead_us
        return data

    # -- MOESI cache-to-cache -------------------------------------------------

    def fetch_from_owner(
        self,
        req: MemRequest,
        requester: Port,
        page_va: int,
        owner_port_id: Optional[int],
        region: Region,
        write_protect_owner: bool,
    ) -> Generator:
        """MOESI cache-to-cache transfer: one trip to the owner downgrades
        it (M->O) and carries the page back -- no memory write-back.

        Falls back to the memory blade when the owner no longer caches the
        page (it was evicted, and the eviction flush made memory current).
        Returns ``(data, was_reset)``.
        """
        ctx = self.ctx
        if owner_port_id is None or owner_port_id not in ctx._page_servers:
            data = yield from self.fetch(req, requester, page_va)
            return data, False
        owner_port = ctx._blade_ports[owner_port_id]
        was_reset = False
        if write_protect_owner:
            inval = InvalidationRequest(
                region_base=region.base,
                region_size=region.size,
                sharers=frozenset({owner_port_id}),
                requester_port=req.src_port,
                target_va=page_va,
                downgrade_to_shared=True,
                keep_dirty=True,
            )
            was_reset = yield from ctx.invalidation.invalidate_all(
                inval, [owner_port_id], region
            )
        else:
            # Just the read request leg to the owner.
            link = owner_port.from_switch
            if (leg := link.try_leg(CONTROL_MSG_BYTES)) >= 0.0:
                yield leg
            elif (ser := link.try_start(CONTROL_MSG_BYTES)) >= 0.0:
                yield ser
                yield link.finish(CONTROL_MSG_BYTES)
            elif not (yield from ctx.engine.subtask(link.transfer(CONTROL_MSG_BYTES))):
                yield from self._redeliver(link, CONTROL_MSG_BYTES)
        # The owner's kernel serves the page out of its DRAM cache.
        yield ctx.config.memory_service_us + ctx.config.dram_access_us
        data = ctx._page_servers[owner_port_id](page_va)
        if data is None:
            # Owner evicted the page; its flush made memory current.
            fetched = yield from self.fetch(req, requester, page_va)
            return fetched, was_reset
        if data == b"":
            data = None  # resident, but payload storage is disabled
        ctx.stats.incr("cache_to_cache_transfers")
        link = owner_port.to_switch
        if (leg := link.try_leg(PAGE_SIZE)) >= 0.0:
            yield leg
        elif (ser := link.try_start(PAGE_SIZE)) >= 0.0:
            yield ser
            yield link.finish(PAGE_SIZE)
        elif not (yield from ctx.engine.subtask(link.transfer(PAGE_SIZE))):
            yield from self._redeliver(link, PAGE_SIZE)
        engine = ctx.engine
        resp = ctx.pipeline.packet()
        if (
            not engine._ready
            and not engine.tracer.enabled
            and engine._due_head > engine.now
        ):
            yield resp.traverse_us()
        else:
            yield from engine.subtask(resp.traverse())
        link = requester.from_switch
        if (leg := link.try_leg(PAGE_SIZE)) >= 0.0:
            yield leg
        elif (ser := link.try_start(PAGE_SIZE)) >= 0.0:
            yield ser
            yield link.finish(PAGE_SIZE)
        elif not (yield from ctx.engine.subtask(link.transfer(PAGE_SIZE))):
            yield from self._redeliver(link, PAGE_SIZE)
        yield ctx.config.rdma_verb_overhead_us
        return data, was_reset

    # -- write-backs ----------------------------------------------------------

    def flush_page(
        self,
        src_port: Port,
        page_va: int,
        data: Optional[bytes],
        landed: Optional[Event] = None,
    ) -> Generator:
        """Write a dirty page back to its memory blade (eviction or inval).

        The blade sends the page up; the switch translates and forwards it
        as a one-sided WRITE.  ``landed`` fires the moment the payload is
        durable at the memory blade (before the NIC's ACK returns) -- the
        ordering point fetches synchronize on.
        """
        ctx = self.ctx
        engine = ctx.engine
        xlate = ctx.address_space.translate(page_va)
        blade = ctx._memory_blades[xlate.blade_id]
        self.rdma_virt.rewrite(src_port.port_id, xlate.blade_id)
        # Every leg is delivered reliably: a silently lost write-back would
        # leave memory stale behind an Invalid directory -- incoherence.
        link = src_port.to_switch
        if (leg := link.try_leg(PAGE_SIZE)) >= 0.0:
            yield leg
        elif (ser := link.try_start(PAGE_SIZE)) >= 0.0:
            yield ser
            yield link.finish(PAGE_SIZE)
        elif not (yield from engine.subtask(link.transfer(PAGE_SIZE))):
            yield from self._redeliver(link, PAGE_SIZE)
        pkt = ctx.pipeline.packet()
        if (
            not engine._ready
            and not engine.tracer.enabled
            and engine._due_head > engine.now
        ):
            yield pkt.traverse_us()
        else:
            yield from engine.subtask(pkt.traverse())
        link = blade.port.from_switch
        if (leg := link.try_leg(PAGE_SIZE)) >= 0.0:
            yield leg
        elif (ser := link.try_start(PAGE_SIZE)) >= 0.0:
            yield ser
            yield link.finish(PAGE_SIZE)
        elif not (yield from engine.subtask(link.transfer(PAGE_SIZE))):
            yield from self._redeliver(link, PAGE_SIZE)
        if not getattr(blade, "available", True):
            yield from self.blade_ready(blade)
        yield self.blade_service_us(blade)
        blade.write_page(xlate.pa, data)
        ctx.stats.incr("pages_written_back")
        if landed is not None and not landed.triggered:
            landed.succeed()
        link = blade.port.to_switch
        if (leg := link.try_leg(CONTROL_MSG_BYTES)) >= 0.0:
            yield leg
        elif (ser := link.try_start(CONTROL_MSG_BYTES)) >= 0.0:
            yield ser
            yield link.finish(CONTROL_MSG_BYTES)
        elif not (yield from engine.subtask(link.transfer(CONTROL_MSG_BYTES))):
            yield from self._redeliver(link, CONTROL_MSG_BYTES)

    def flush_page_async(
        self, src_port: Port, page_va: int, data: Optional[bytes]
    ) -> Event:
        """Start a write-back without waiting for it (Section 7.2's overlap:
        the invalidation ACK returns while the flush drains; correctness is
        preserved because fetches wait on :attr:`pending_flushes`)."""
        ctx = self.ctx
        landed = ctx.engine.event()
        self.pending_flushes[page_va] = landed
        ctx.engine.process(
            self.flush_page(src_port, page_va, data, landed=landed),
            name=f"flush-{page_va:#x}",
        )

        def _clear(_ev) -> None:
            # Re-check the fail-over gate: if the primary crashed while this
            # flush was in flight, the entry must survive the outage -- the
            # fail-over quiesce re-flushes dirty pages against the rebuilt
            # plane and synchronizes on this map, so dropping the entry from
            # a completion that raced the crash would let a re-warmed fetch
            # order ahead of the (re-issued) write-back.
            if ctx._outage is not None:
                return
            if self.pending_flushes.get(page_va) is landed:
                del self.pending_flushes[page_va]

        landed.add_callback(_clear)
        return landed
