"""Invalidation transport: multicast fan-out, ACK tracking, Section 4.4.

The INVALIDATE phase of a fault transaction lives here.  The switch
replicates the invalidation to the sharer set (one data-plane pass with
egress pruning in multicast mode; serialized switch-CPU packet generation
in the ``unicast-cpu`` ablation), tracks ACKs per target, retransmits lost
messages with exponential backoff, and -- after ``MAX_RETRIES`` -- runs the
paper's *reset* protocol: every blade flushes its copies of the region and
the directory entry is dropped, breaking any wedged transition.

The engine is deliberately stateless between calls: all transient state
(which targets are outstanding) lives in the generator frames, and the
shared mutable state (directory entry, counters) is owned by the caller's
admitted transaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List

from ..sim.network import CONTROL_MSG_BYTES, PAGE_SIZE
from ..switchsim.packets import InvalidationAck, InvalidationRequest
from .directory import CoherenceState, Region
from .vma import align_down

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .coherence import CoherenceProtocol


class InvalidationEngine:
    """Owns invalidation delivery and the Section 4.4 reset protocol."""

    #: switch-CPU time to generate one unicast invalidation packet (the
    #: ablation's cost; the data-plane multicast pays none of this).
    UNICAST_CPU_US = 8.0

    def __init__(self, ctx: "CoherenceProtocol"):
        self.ctx = ctx

    def make_inval(
        self, region: Region, req, targets: List[int], downgrade: bool
    ) -> InvalidationRequest:
        return InvalidationRequest(
            region_base=region.base,
            region_size=region.size,
            sharers=frozenset(targets),
            requester_port=req.src_port,
            target_va=align_down(req.va, PAGE_SIZE),
            downgrade_to_shared=downgrade,
        )

    def make_eviction_inval(
        self, victim: Region, targets: List[int]
    ) -> InvalidationRequest:
        return InvalidationRequest(
            region_base=victim.base,
            region_size=victim.size,
            sharers=frozenset(targets),
            requester_port=-1,
            target_va=-1,  # capacity eviction: every page is collateral
        )

    def invalidate_all(
        self, inval: InvalidationRequest, targets: List[int], region: Region
    ) -> Generator:
        """Deliver an invalidation to every target; returns True if a reset
        was required (some target never ACKed).

        Multicast mode replicates in the traffic manager: all targets are
        in flight after one pipeline pass.  Unicast mode serializes packet
        generation on the switch CPU (plus PCIe), which is exactly what
        makes software invalidation fan-out scale poorly with sharers.
        """
        ctx = self.ctx
        if not targets:
            return False
        procs = []
        for port_id in targets:
            if ctx.invalidation_mode == "unicast-cpu":
                ctx.stats.incr("unicast_invalidations_generated")
                if ctx.control_cpu is not None:
                    yield ctx.engine.process(self._unicast_generate())
                else:
                    yield self.UNICAST_CPU_US
            procs.append(
                ctx.engine.process(self._invalidate_with_retry(inval, port_id, region))
            )
        results = yield ctx.engine.all_of(procs)
        return any(r is None for r in results)

    def _unicast_generate(self) -> Generator:
        """One unicast invalidation's generation at the switch CPU."""
        yield self.UNICAST_CPU_US
        self.ctx.control_cpu.busy_us += self.UNICAST_CPU_US

    def _invalidate_with_retry(
        self, inval: InvalidationRequest, port_id: int, region: Region
    ) -> Generator:
        """One target: deliver, await ACK, retransmit on loss with
        exponential backoff, reset after MAX_RETRIES (Section 4.4)."""
        ctx = self.ctx
        for attempt in range(ctx.MAX_RETRIES + 1):
            dropped_out = (
                ctx.fault_injector is not None
                and ctx.fault_injector.should_drop_invalidation()
            )
            if not dropped_out:
                ack = yield from self._invalidate_at(inval, port_id, region)
                dropped_back = (
                    ctx.fault_injector is not None
                    and ctx.fault_injector.should_drop_ack()
                )
                # ``ack is None``: a link-level fault window ate one of the
                # legs -- indistinguishable, to the switch, from the
                # protocol-level drops the injector models.
                if ack is not None and not dropped_back:
                    return ack
            # Lost somewhere: wait out the (growing) timeout, retransmit.
            ctx.stats.incr("retransmissions")
            yield ctx.backoff.timeout_us(attempt)
        yield from self.reset_region(region)
        return None

    def _invalidate_at(
        self, inval: InvalidationRequest, port_id: int, region: Region
    ) -> Generator:
        """Deliver to one blade, run its handler, carry the ACK back.

        Returns None when a link-level fault drops either leg: a dropped
        outbound leg means the blade never saw the request; a dropped ACK
        leg means the blade *did* the work (accounting still happens -- the
        retry is idempotent) but the switch cannot know, and must resend.
        """
        ctx = self.ctx
        engine = ctx.engine
        port = ctx._blade_ports[port_id]
        ctx.stats.incr("invalidations_sent")
        link = port.from_switch
        if (leg := link.try_leg(CONTROL_MSG_BYTES)) >= 0.0:
            yield leg
        elif (ser := link.try_start(CONTROL_MSG_BYTES)) >= 0.0:
            yield ser
            yield link.finish(CONTROL_MSG_BYTES)
        elif not (yield engine.process(link.transfer(CONTROL_MSG_BYTES))):
            return None
        ack: InvalidationAck = yield ctx.engine.process(
            ctx._inval_handlers[port_id](inval)
        )
        link = port.to_switch
        if (leg := link.try_leg(CONTROL_MSG_BYTES)) >= 0.0:
            yield leg
            acked = True
        elif (ser := link.try_start(CONTROL_MSG_BYTES)) >= 0.0:
            yield ser
            yield link.finish(CONTROL_MSG_BYTES)
            acked = True
        else:
            acked = yield engine.process(link.transfer(CONTROL_MSG_BYTES))
        # Fold the blade's report into directory + stats accounting.  The
        # "invalidation" breakdown (queue/tlb of Fig. 7 right) is recorded
        # by the blade's own span instrumentation, not here.
        region.false_invalidations += ack.false_invalidations
        ctx.stats.incr("flushed_pages", ack.flushed_pages)
        ctx.stats.incr("dropped_pages", ack.dropped_pages)
        ctx.stats.incr("false_invalidations", ack.false_invalidations)
        if not inval.downgrade_to_shared:
            region.sharers.discard(port_id)
        if not acked:
            return None
        return ack

    def reset_region(self, region: Region) -> Generator:
        """The Section 4.4 reset: force every blade to flush the region's
        data and drop the directory entry, breaking any wedged transition."""
        ctx = self.ctx
        ctx.stats.incr("resets")
        reset_inval = InvalidationRequest(
            region_base=region.base,
            region_size=region.size,
            sharers=frozenset(ctx._inval_handlers),
            requester_port=-1,
            target_va=-1,
        )
        procs = []
        for port_id, handler in ctx._inval_handlers.items():
            port = ctx._blade_ports[port_id]

            # Reset messages must land (a lost reset would leave a wedged
            # region wedged), so each leg is delivered reliably.
            def deliver(h=handler, p=port):
                yield from ctx.fetch.deliver(
                    lambda: p.from_switch.transfer(CONTROL_MSG_BYTES)
                )
                yield ctx.engine.process(h(reset_inval))
                yield from ctx.fetch.deliver(
                    lambda: p.to_switch.transfer(CONTROL_MSG_BYTES)
                )

            procs.append(ctx.engine.process(deliver()))
        yield ctx.engine.all_of(procs)
        region.state = CoherenceState.INVALID
        region.sharers.clear()
        region.owner = None
        if ctx.directory.find(region.base) is region:
            ctx.directory.release(region)
