"""Materialized coherence state-transition tables (Section 6.3).

A single MAU cannot look up a directory entry, compute the transition, and
write the entry back in one pass, so MIND *materializes* the protocol's
transition function as a match table in a second MAU: the STT.  Keys are
``(current state, access type, requester role)``; values name the next
state and the data-path actions.  Trading table entries for compute this
way is what makes the protocol realizable at line rate.

MSI is the protocol MIND ships (Section 4.3.2).  Section 8 notes that
richer protocols like MESI/MOESI only cost tens more STT entries; we
include MESI as a working extension used by the ablation benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from ..switchsim.packets import AccessType
from .directory import CoherenceState


class RequesterRole(enum.Enum):
    """The requesting blade's relationship to the region's directory entry."""

    NONE = "none"      # not in the sharer list, not the owner
    SHARER = "sharer"  # holds (some pages of) the region in Shared mode
    OWNER = "owner"    # owns the region in Modified mode


class TransitionAction(enum.Enum):
    """Data-path action selected by the STT."""

    #: Fetch the page from its memory blade; no invalidation needed.
    FETCH_ONLY = "fetch-only"
    #: Invalidate sharers via multicast, *in parallel* with the fetch: the
    #: memory blade holds clean data, so the fetch need not wait (S->M).
    INVALIDATE_PARALLEL = "invalidate-parallel"
    #: Invalidate the current owner first (flushing its dirty pages), then
    #: fetch -- two sequential network phases (M->S, M->M), ~2x latency.
    INVALIDATE_OWNER_THEN_FETCH = "invalidate-owner-then-fetch"
    #: MOESI: serve the page straight from the owner's cache in the same
    #: trip that downgrades it -- no memory write-back, one network phase.
    FETCH_FROM_OWNER = "fetch-from-owner"
    #: MOESI: the owner upgrades in place (O->M): invalidate the other
    #: sharers, move no data -- the owner already holds the latest bytes.
    LOCAL_UPGRADE = "local-upgrade"


@dataclass(frozen=True)
class Transition:
    """One STT entry's action set."""

    next_state: CoherenceState
    action: TransitionAction
    #: the paper's transition label, used for latency bucketing (Fig. 7 left).
    label: str
    #: whether the previous owner retains the region in Shared mode (M->S).
    owner_downgrades: bool = False


SttKey = Tuple[CoherenceState, AccessType, RequesterRole]

I, S, M = CoherenceState.INVALID, CoherenceState.SHARED, CoherenceState.MODIFIED
O = CoherenceState.OWNED
R, W = AccessType.READ, AccessType.WRITE
NONE, SHARER, OWNER = RequesterRole.NONE, RequesterRole.SHARER, RequesterRole.OWNER


def build_msi_stt() -> Dict[SttKey, Transition]:
    """The MSI transition table MIND installs in the STT MAU."""
    return {
        # Reads.
        (I, R, NONE): Transition(S, TransitionAction.FETCH_ONLY, "I->S"),
        (S, R, NONE): Transition(S, TransitionAction.FETCH_ONLY, "S->S"),
        # A sharer faulting on a page of an S region it already shares is a
        # plain capacity miss: fetch, no transition.
        (S, R, SHARER): Transition(S, TransitionAction.FETCH_ONLY, "S->S"),
        (M, R, OWNER): Transition(M, TransitionAction.FETCH_ONLY, "M(own)"),
        (M, R, NONE): Transition(
            S, TransitionAction.INVALIDATE_OWNER_THEN_FETCH, "M->S", owner_downgrades=True
        ),
        (M, R, SHARER): Transition(
            S, TransitionAction.INVALIDATE_OWNER_THEN_FETCH, "M->S", owner_downgrades=True
        ),
        # Writes.
        (I, W, NONE): Transition(M, TransitionAction.FETCH_ONLY, "I->M"),
        (S, W, NONE): Transition(M, TransitionAction.INVALIDATE_PARALLEL, "S->M"),
        (S, W, SHARER): Transition(M, TransitionAction.INVALIDATE_PARALLEL, "S->M"),
        (M, W, OWNER): Transition(M, TransitionAction.FETCH_ONLY, "M(own)"),
        (M, W, NONE): Transition(
            M, TransitionAction.INVALIDATE_OWNER_THEN_FETCH, "M->M"
        ),
        (M, W, SHARER): Transition(
            M, TransitionAction.INVALIDATE_OWNER_THEN_FETCH, "M->M"
        ),
    }


class ExclusiveState:
    """Marker: MESI's E state is folded into the directory's M slot with a
    ``clean`` flag, matching how a real STT would encode it in metadata bits.
    """


def build_mesi_stt() -> Dict[SttKey, Transition]:
    """MESI variant (Section 8 extension).

    The directory-visible difference from MSI: a sole reader is granted an
    exclusive copy, so its *subsequent write* needs no directory transition
    at all.  In the region directory we encode E as Modified-with-clean-data;
    the observable effect modelled here is that an I->read by a sole sharer
    lands in M (exclusive) rather than S, eliminating the S->M upgrade
    invalidation for private read-then-write patterns.
    """
    stt = build_msi_stt()
    stt[(I, R, NONE)] = Transition(M, TransitionAction.FETCH_ONLY, "I->E")
    return stt


def build_moesi_stt() -> Dict[SttKey, Transition]:
    """MOESI variant (the Section 8 extension, implemented).

    What changes versus MSI:

    - A read stealing a Modified region moves it to **Owned**: the old
      owner keeps its dirty pages (write-protected, unflushed) and serves
      the data directly, so the transition costs one network phase and no
      memory write-back (vs MSI's flush-then-fetch).
    - Further readers of an Owned region fetch from the owner likewise.
    - The owner upgrades O -> M locally: invalidate the other sharers,
      move no data.
    - A non-owner writing an Owned region invalidates owner+sharers (the
      owner's flush) and fetches -- the one case that still pays two
      phases.
    - Like MESI, a sole reader is granted an exclusive (clean-M) copy.
    """
    stt = build_msi_stt()
    stt[(I, R, NONE)] = Transition(M, TransitionAction.FETCH_ONLY, "I->E")
    # Read-steals keep the dirty data at the owner.
    stt[(M, R, NONE)] = Transition(
        O, TransitionAction.FETCH_FROM_OWNER, "M->O", owner_downgrades=True
    )
    stt[(M, R, SHARER)] = Transition(
        O, TransitionAction.FETCH_FROM_OWNER, "M->O", owner_downgrades=True
    )
    # Owned-region behaviour.
    stt[(O, R, NONE)] = Transition(
        O, TransitionAction.FETCH_FROM_OWNER, "O->O", owner_downgrades=True
    )
    stt[(O, R, SHARER)] = Transition(
        O, TransitionAction.FETCH_FROM_OWNER, "O->O", owner_downgrades=True
    )
    stt[(O, R, OWNER)] = Transition(O, TransitionAction.FETCH_ONLY, "O(own)")
    stt[(O, W, OWNER)] = Transition(M, TransitionAction.LOCAL_UPGRADE, "O->M")
    stt[(O, W, NONE)] = Transition(
        M, TransitionAction.INVALIDATE_OWNER_THEN_FETCH, "O->M(steal)"
    )
    stt[(O, W, SHARER)] = Transition(
        M, TransitionAction.INVALIDATE_OWNER_THEN_FETCH, "O->M(steal)"
    )
    return stt


def stt_size(stt: Dict[SttKey, Transition]) -> int:
    """Number of TCAM entries the materialized table occupies."""
    return len(stt)


def role_of(region, port: int) -> RequesterRole:
    """The requester's relationship to the directory entry (the STT key's
    third component)."""
    if region.owner == port and region.state in (
        CoherenceState.MODIFIED,
        CoherenceState.OWNED,
    ):
        return RequesterRole.OWNER
    if port in region.sharers:
        return RequesterRole.SHARER
    return RequesterRole.NONE


def apply_transition(region, transition: Transition, requester_port: int) -> None:
    """Directory entry update selected by the STT (applied on recirculation)."""
    region.state = transition.next_state
    if transition.next_state is CoherenceState.MODIFIED:
        region.owner = requester_port
        region.sharers = {requester_port}
    elif transition.next_state is CoherenceState.OWNED:
        # MOESI: the previous owner keeps ownership (and its dirty data);
        # the requester joins as a reader.
        new_sharers = set(region.sharers)
        if region.owner is not None:
            new_sharers.add(region.owner)
        new_sharers.add(requester_port)
        region.sharers = new_sharers
    else:  # SHARED
        new_sharers = set(region.sharers)
        if transition.owner_downgrades and region.owner is not None:
            new_sharers.add(region.owner)
        new_sharers.add(requester_port)
        region.owner = None
        region.sharers = new_sharers
