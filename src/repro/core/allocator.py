"""Memory allocation: per-blade first-fit plus global load balancing.

MIND's control plane decouples *allocation* from *addressing* (P1): the
global allocator picks the memory blade with the least allocated bytes for
every new vma (near-optimal load balancing, validated by Jain's index in
Fig. 8 right), and a classical first-fit allocator inside each blade's
contiguous virtual/physical range keeps external fragmentation low
(Section 4.1).  Allocations are power-of-two sized and aligned so that each
vma is representable as a single TCAM protection entry (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim.network import PAGE_SIZE
from .vma import align_up, round_up_pow2


class OutOfMemoryError(RuntimeError):
    """The requested allocation cannot be satisfied (maps to ENOMEM)."""


class FirstFitAllocator:
    """First-fit allocator over one contiguous address range.

    Holds a sorted list of free holes ``(base, size)``; allocation scans for
    the first hole that can fit an aligned block, frees coalesce adjacent
    holes.  This mirrors the boot-memory-allocator style scheme the paper
    cites [57].
    """

    def __init__(self, base: int, size: int):
        if size <= 0:
            raise ValueError("allocator range must be non-empty")
        self.base = base
        self.size = size
        self._holes: List[Tuple[int, int]] = [(base, size)]
        self._allocated: Dict[int, int] = {}

    @property
    def allocated_bytes(self) -> int:
        return sum(self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return sum(s for _b, s in self._holes)

    @property
    def largest_hole(self) -> int:
        return max((s for _b, s in self._holes), default=0)

    def allocate(self, length: int, alignment: int) -> int:
        """Return the base of the first aligned hole fitting ``length``."""
        if length <= 0:
            raise ValueError("allocation length must be positive")
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a power of two")
        for i, (hole_base, hole_size) in enumerate(self._holes):
            start = align_up(hole_base, alignment)
            waste = start - hole_base
            if waste + length > hole_size:
                continue
            # Carve [start, start+length) out of the hole.
            del self._holes[i]
            remainder = []
            if waste:
                remainder.append((hole_base, waste))
            tail = hole_size - waste - length
            if tail:
                remainder.append((start + length, tail))
            self._holes[i:i] = remainder
            self._allocated[start] = length
            return start
        raise OutOfMemoryError(
            f"no hole fits {length:#x} bytes aligned to {alignment:#x}"
        )

    def allocate_at(self, base: int, length: int) -> int:
        """Claim an exact range (fail-over replay of a prior allocation)."""
        if length <= 0:
            raise ValueError("allocation length must be positive")
        for i, (hole_base, hole_size) in enumerate(self._holes):
            if hole_base <= base and base + length <= hole_base + hole_size:
                del self._holes[i]
                remainder = []
                if base > hole_base:
                    remainder.append((hole_base, base - hole_base))
                tail = (hole_base + hole_size) - (base + length)
                if tail:
                    remainder.append((base + length, tail))
                self._holes[i:i] = remainder
                self._allocated[base] = length
                return base
        raise OutOfMemoryError(f"range [{base:#x}, {base + length:#x}) not free")

    def free(self, base: int) -> int:
        """Release an allocation; coalesces with adjacent holes."""
        length = self._allocated.pop(base, None)
        if length is None:
            raise KeyError(f"no allocation at {base:#x}")
        # Insert hole in sorted position, then coalesce with neighbours.
        idx = 0
        while idx < len(self._holes) and self._holes[idx][0] < base:
            idx += 1
        self._holes.insert(idx, (base, length))
        # Coalesce right then left.
        if idx + 1 < len(self._holes):
            nb, ns = self._holes[idx + 1]
            if base + length == nb:
                self._holes[idx] = (base, length + ns)
                del self._holes[idx + 1]
        if idx > 0:
            pb, ps = self._holes[idx - 1]
            b, s = self._holes[idx]
            if pb + ps == b:
                self._holes[idx - 1] = (pb, ps + s)
                del self._holes[idx]
        return length

    def holes(self) -> List[Tuple[int, int]]:
        return list(self._holes)


@dataclass
class BladeAllocation:
    """Result of a global allocation: where a vma landed."""

    blade_id: int
    va_base: int
    length: int


class GlobalAllocator:
    """Least-allocated-blade placement over per-blade first-fit allocators.

    The control plane's global view (P2) is simply the per-blade allocated
    byte counts; each allocation goes to the blade with the least.  Because
    the VA space is range-partitioned one-to-one onto blades, choosing a
    blade fixes the VA range the first-fit allocator carves from.
    """

    def __init__(self) -> None:
        self._blades: Dict[int, FirstFitAllocator] = {}

    def add_blade(self, blade_id: int, va_base: int, size: int) -> None:
        if blade_id in self._blades:
            raise ValueError(f"blade {blade_id} already registered")
        self._blades[blade_id] = FirstFitAllocator(va_base, size)

    def remove_blade(self, blade_id: int, force: bool = False) -> None:
        """Retire a blade.  ``force`` skips the emptiness check -- used
        after migration has evacuated the data but VA ranges of live vmas
        still point (via outliers) elsewhere."""
        alloc = self._blades.get(blade_id)
        if alloc is None:
            raise KeyError(f"no blade {blade_id}")
        if alloc.allocated_bytes and not force:
            raise RuntimeError(
                f"blade {blade_id} still has {alloc.allocated_bytes} bytes allocated; "
                "migrate before retiring"
            )
        del self._blades[blade_id]

    def blade(self, blade_id: int) -> FirstFitAllocator:
        return self._blades[blade_id]

    @property
    def blade_ids(self) -> List[int]:
        return sorted(self._blades)

    def allocated_per_blade(self) -> Dict[int, int]:
        return {bid: alloc.allocated_bytes for bid, alloc in self._blades.items()}

    def allocate(self, length: int) -> BladeAllocation:
        """Place a new vma on the least-allocated blade that can fit it.

        The length is rounded up to a power of two (min one page) and the
        base aligned to it, so the vma is a single TCAM prefix.
        """
        if not self._blades:
            raise OutOfMemoryError("no memory blades registered")
        padded = round_up_pow2(max(length, PAGE_SIZE))
        # Least-allocated first; fall back to others if it cannot fit.
        order = sorted(
            self._blades.items(), key=lambda kv: (kv[1].allocated_bytes, kv[0])
        )
        for blade_id, alloc in order:
            try:
                base = alloc.allocate(padded, alignment=padded)
            except OutOfMemoryError:
                continue
            return BladeAllocation(blade_id, base, padded)
        raise OutOfMemoryError(f"no blade can fit {padded:#x} bytes")

    def free(self, blade_id: int, va_base: int) -> int:
        return self._blades[blade_id].free(va_base)

    def jain_fairness(self) -> float:
        """Jain's fairness index over per-blade allocated bytes (Fig. 8 right).

        1.0 means perfectly balanced; 1/n means all load on one blade.
        """
        loads = [a.allocated_bytes for a in self._blades.values()]
        if not loads or sum(loads) == 0:
            return 1.0
        num = sum(loads) ** 2
        den = len(loads) * sum(x * x for x in loads)
        return num / den
