"""Deprecated location of the allocator -- moved to :mod:`repro.alloc`.

The allocation path is now a pluggable policy subsystem (first-fit, slab,
buddy, arena, bump) with cost accounting; see ``repro.alloc``.  This module
re-exports the legacy names with a :class:`DeprecationWarning` so existing
imports keep working one release longer.
"""

from __future__ import annotations

import warnings

_MOVED = ("FirstFitAllocator", "GlobalAllocator", "BladeAllocation", "OutOfMemoryError")


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.core.allocator.{name} is deprecated; "
            "import it from repro.alloc",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro import alloc

        return getattr(alloc, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
