"""Virtual memory areas (vmas) and permission classes.

A vma -- identified by base virtual address and length -- is MIND's basic
unit of memory *protection* (Section 4.1/4.2).  This is decoupled from the
unit of *translation* (the per-memory-blade range) and the unit of
*coherence* (the dynamically sized region), per design principle P1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..sim.network import PAGE_SIZE


class PermissionClass(enum.Enum):
    """What a protection domain may do to a vma (Linux-compatible classes).

    MIND supports arbitrary permission classes; for unmodified applications
    it uses the Linux ones below, with the PID as the protection domain id.
    """

    NONE = 0
    READ_ONLY = 1
    READ_WRITE = 2

    def allows_read(self) -> bool:
        return self in (PermissionClass.READ_ONLY, PermissionClass.READ_WRITE)

    def allows_write(self) -> bool:
        return self is PermissionClass.READ_WRITE


def align_down(value: int, alignment: int) -> int:
    return value - (value % alignment)


def align_up(value: int, alignment: int) -> int:
    return align_down(value + alignment - 1, alignment)


def round_up_pow2(value: int) -> int:
    """Smallest power of two >= value (vmas are allocated at pow2 sizes so
    each fits in a single TCAM entry, Section 4.2)."""
    if value <= 0:
        raise ValueError("value must be positive")
    return 1 << (value - 1).bit_length()


@dataclass(frozen=True)
class Vma:
    """A contiguous virtual memory area owned by one protection domain."""

    base: int
    length: int
    pdid: int
    perm: PermissionClass = PermissionClass.READ_WRITE

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("vma base must be non-negative")
        if self.length <= 0:
            raise ValueError("vma length must be positive")

    @property
    def end(self) -> int:
        """One past the last byte of the area."""
        return self.base + self.length

    @property
    def num_pages(self) -> int:
        first = align_down(self.base, PAGE_SIZE)
        last = align_up(self.end, PAGE_SIZE)
        return (last - first) // PAGE_SIZE

    def contains(self, va: int) -> bool:
        return self.base <= va < self.end

    def overlaps(self, other: "Vma") -> bool:
        return self.base < other.end and other.base < self.end

    def with_perm(self, perm: PermissionClass) -> "Vma":
        return Vma(self.base, self.length, self.pdid, perm)
