"""MIND core: in-network memory management (the paper's contribution).

Subpackages split by memory-management function, following the paper's own
decoupling (P1): allocation (`allocator`), addressing (`addressing`),
protection (`protection`), caching/coherence (`directory`, `stt`,
`coherence`), region sizing (`bounded_splitting`), the control plane
(`controller`), fail-over (`failures`) and the assembled switch (`mmu`).
"""

from ..alloc import (
    BladeAllocation,
    FirstFitAllocator,
    GlobalAllocator,
    OutOfMemoryError,
)
from .addressing import AddressSpace, Translation, TranslationFault
from .bounded_splitting import (
    BoundedSplittingConfig,
    BoundedSplittingController,
    worst_case_subregions,
)
from .coherence import COMPUTE_BLADE_GROUP, CoherenceProtocol
from .controller import SwitchController, SyscallError, TaskStruct, ThreadInfo
from .directory import (
    CoherenceState,
    DirectoryFullError,
    Region,
    RegionDirectory,
)
from .failures import (
    ControlPlaneReplicator,
    ControlPlaneSnapshot,
    RebuiltDataPlane,
    rebuild_data_plane,
)
from .fetch import DataPath
from .invalidation import InvalidationEngine
from .mmu import InNetworkMmu, MindConfig
from .protection import PDID_WIDTH, ProtectionTable, pack_key
from .stt import (
    RequesterRole,
    Transition,
    TransitionAction,
    build_mesi_stt,
    build_moesi_stt,
    build_msi_stt,
    stt_size,
)
from .txn import (
    AdmissionController,
    FaultResult,
    PendingTransactionTable,
    Transaction,
    TxnPhase,
)
from .vma import PermissionClass, Vma, align_down, align_up, round_up_pow2


def __getattr__(name: str):
    # Deprecated re-exports that moved to repro.faults; resolved lazily so
    # the DeprecationWarning from repro.core.coherence fires on access.
    if name in ("MessageLossInjector", "FaultInjector"):
        from . import coherence

        return getattr(coherence, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AddressSpace",
    "AdmissionController",
    "BladeAllocation",
    "BoundedSplittingConfig",
    "BoundedSplittingController",
    "COMPUTE_BLADE_GROUP",
    "CoherenceProtocol",
    "CoherenceState",
    "ControlPlaneReplicator",
    "ControlPlaneSnapshot",
    "DataPath",
    "DirectoryFullError",
    "FaultInjector",
    "FaultResult",
    "FirstFitAllocator",
    "GlobalAllocator",
    "InNetworkMmu",
    "InvalidationEngine",
    "MessageLossInjector",
    "MindConfig",
    "OutOfMemoryError",
    "PDID_WIDTH",
    "PendingTransactionTable",
    "PermissionClass",
    "ProtectionTable",
    "RebuiltDataPlane",
    "Region",
    "RegionDirectory",
    "RequesterRole",
    "SwitchController",
    "SyscallError",
    "TaskStruct",
    "ThreadInfo",
    "Transaction",
    "Transition",
    "TransitionAction",
    "Translation",
    "TranslationFault",
    "TxnPhase",
    "Vma",
    "align_down",
    "align_up",
    "build_mesi_stt",
    "build_moesi_stt",
    "build_msi_stt",
    "pack_key",
    "rebuild_data_plane",
    "round_up_pow2",
    "stt_size",
    "worst_case_subregions",
]
