"""Page/region migration between memory blades (Section 4.1, "Transparency
via outlier entries").

MIND's one-to-one VA->PA mapping still supports OS-style page migration:
the control plane moves a region's backing store to another memory blade
and installs a more-specific *outlier* translation entry; TCAM
longest-prefix match makes the new route take effect atomically for the
data path, with no application-visible change.

Migration is how a rack rebalances memory hotspots and -- the operational
payoff -- how a memory blade is *retired*: :meth:`evacuate_blade` drains
every allocation off a blade so it can be removed live.

The flow for one region:

1. **Quiesce**: invalidate the region at every compute blade (flushing
   dirty pages), so the source memory blade holds the ground truth.
2. **Copy**: RDMA-read each page from the source and RDMA-write it to the
   destination, through the switch.
3. **Re-route**: install the outlier entry (PCIe rule update); subsequent
   faults fetch from the destination blade.
4. **Release**: return the source physical range to its allocator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..sim.engine import Engine
from ..sim.network import CONTROL_MSG_BYTES, PAGE_SIZE
from ..sim.stats import StatsCollector
from ..switchsim.control_cpu import ControlCpu
from ..switchsim.packets import InvalidationRequest
from .addressing import AddressSpace
from ..alloc import GlobalAllocator, OutOfMemoryError
from .coherence import CoherenceProtocol
from .directory import CoherenceState


class MigrationError(RuntimeError):
    """A migration could not be performed."""


@dataclass
class MigrationRecord:
    """Bookkeeping for one migrated range (needed to undo / free later)."""

    va_base: int
    length: int
    src_blade: int
    dst_blade: int
    dst_pa: int
    #: the shadow allocation on the destination backing the data.
    dst_shadow_va: int


class MigrationManager:
    """Control-plane migration engine."""

    def __init__(
        self,
        engine: Engine,
        coherence: CoherenceProtocol,
        address_space: AddressSpace,
        allocator: GlobalAllocator,
        control_cpu: ControlCpu,
        stats: StatsCollector,
    ):
        self.engine = engine
        self.coherence = coherence
        self.address_space = address_space
        self.allocator = allocator
        self.control_cpu = control_cpu
        self.stats = stats
        #: va_base -> record, for migrated ranges currently in effect.
        self.records: Dict[int, MigrationRecord] = {}

    # -- the core flow -----------------------------------------------------

    def migrate_range(self, va_base: int, length: int, dst_blade: int) -> Generator:
        """Move ``[va_base, va_base+length)`` to ``dst_blade``.

        ``length`` must be a naturally aligned power of two (one outlier
        prefix).  Returns the :class:`MigrationRecord`.
        """
        if length <= 0 or length & (length - 1):
            raise MigrationError("migration length must be a power of two")
        if va_base % length:
            raise MigrationError("migration range must be naturally aligned")
        src = self.address_space.translate(va_base)
        if src.blade_id == dst_blade:
            raise MigrationError("source and destination blade are the same")
        prior = self.records.get(va_base)
        if prior is not None and prior.length != length:
            raise MigrationError(
                "re-migration must cover the same range as the prior one"
            )
        # Reserve physical space on the destination via a shadow allocation.
        dst_base_va = self.address_space.blade_va_base(dst_blade)
        try:
            shadow = self.allocator.blade(dst_blade).allocate(length, alignment=length)
        except OutOfMemoryError as exc:
            raise MigrationError(f"destination blade {dst_blade} full") from exc
        dst_pa = shadow - dst_base_va

        # 1. Quiesce the range so the source holds the latest bytes.
        yield from self._quiesce(va_base, length)

        # 2. Copy page by page through the switch.
        src_blade_obj = self.coherence.memory_blade(src.blade_id)
        dst_blade_obj = self.coherence.memory_blade(dst_blade)
        for offset in range(0, length, PAGE_SIZE):
            yield from self._copy_page(
                src_blade_obj, src.pa + offset, dst_blade_obj, dst_pa + offset
            )
        self.stats.incr("pages_migrated", length // PAGE_SIZE)

        # 3. Re-route: the outlier entry shadows the blade-range entry.  A
        # re-migration first retires the previous hop's route and shadow.
        if prior is not None:
            self.address_space.remove_outlier(prior.va_base, prior.length)
            try:
                self.allocator.blade(prior.dst_blade).free(prior.dst_shadow_va)
            except KeyError:
                pass  # the prior destination blade has been retired
        self.address_space.add_outlier(va_base, length, dst_blade, dst_pa)
        yield from self.control_cpu.apply_rule_update()

        record = MigrationRecord(
            va_base=va_base,
            length=length,
            src_blade=src.blade_id,
            dst_blade=dst_blade,
            dst_pa=dst_pa,
            dst_shadow_va=shadow,
        )
        self.records[va_base] = record
        self.stats.incr("migrations")
        # Note: the *source* physical range stays reserved -- the vma still
        # owns that VA under the identity mapping, and releasing it would
        # let a future allocation collide with the outlier route.  It is
        # returned at munmap time (see release_migration), or abandoned
        # wholesale when the source blade is retired.
        return record

    def release_migration(self, va_base: int) -> None:
        """Undo a migration's bookkeeping at munmap time: remove the
        outlier route and free the destination shadow allocation."""
        record = self.records.pop(va_base, None)
        if record is None:
            return
        self.address_space.remove_outlier(record.va_base, record.length)
        self.allocator.blade(record.dst_blade).free(record.dst_shadow_va)

    def migrated_blade_for(self, va_base: int) -> Optional[int]:
        record = self.records.get(va_base)
        return record.dst_blade if record else None

    def _quiesce(self, va_base: int, length: int) -> Generator:
        """Invalidate + flush the range everywhere; reset directory state."""
        directory = self.coherence.directory
        for region in list(directory.regions()):
            if region.base >= va_base + length or region.end <= va_base:
                continue
            gate = yield from self.coherence.pending.admit_control(
                region.base, region
            )
            try:
                if directory.find(region.base) is not region:
                    continue
                targets = sorted(
                    region.sharers
                    | ({region.owner} if region.owner is not None else set())
                )
                if targets:
                    inval = InvalidationRequest(
                        region_base=region.base,
                        region_size=region.size,
                        sharers=frozenset(targets),
                        requester_port=-1,
                        target_va=-1,
                    )
                    yield from self.coherence.invalidation.invalidate_all(
                        inval, targets, region
                    )
                region.state = CoherenceState.INVALID
                region.sharers.clear()
                region.owner = None
                directory.release(region)
            finally:
                self.coherence.pending.release_control(gate)
        # Wait out any still-in-flight asynchronous flushes for the range.
        yield from self.coherence.drain_writebacks(va_base, length)

    def _copy_page(self, src_blade, src_pa, dst_blade, dst_pa) -> Generator:
        """One page: RDMA read from source, RDMA write to destination."""
        config = self.coherence.config
        # Switch -> source: read request; source streams the page back.
        yield from self.engine.subtask(
            src_blade.port.from_switch.transfer(CONTROL_MSG_BYTES)
        )
        yield config.memory_service_us + config.dram_access_us
        data = src_blade.read_page(src_pa)
        yield from self.engine.subtask(src_blade.port.to_switch.transfer(PAGE_SIZE))
        # Switch -> destination: write the page; destination ACKs.
        yield from self.engine.subtask(dst_blade.port.from_switch.transfer(PAGE_SIZE))
        yield config.memory_service_us + config.dram_access_us
        dst_blade.write_page(dst_pa, data)
        yield from self.engine.subtask(
            dst_blade.port.to_switch.transfer(CONTROL_MSG_BYTES)
        )

    # -- operational commands --------------------------------------------------

    def evacuate_blade(self, blade_id: int, tasks: List) -> Generator:
        """Drain every vma backed by ``blade_id`` to the other blades.

        ``tasks`` is the controller's task list; each task's vmas currently
        routed to the retiring blade are migrated.  After this completes
        the blade holds no live data; :meth:`retire_blade` then removes it
        from translation and allocation.  Returns the migrated vma count.
        """
        others = [b for b in self.allocator.blade_ids if b != blade_id]
        if not others:
            raise MigrationError("no destination blades available")
        migrated = 0
        for task in tasks:
            for base, (vma, _home_blade) in list(task.vmas.items()):
                current = self.address_space.translate(base)
                if current.blade_id != blade_id:
                    continue
                # Least-loaded destination among the survivors.
                dst = min(
                    others,
                    key=lambda b: self.allocator.blade(b).allocated_bytes,
                )
                yield from self.migrate_range(vma.base, vma.length, dst)
                migrated += 1
        return migrated

    def retire_blade(self, blade_id: int, tasks: List) -> Generator:
        """Full live-retirement: evacuate, then drop the blade's
        translation entry and allocator range."""
        migrated = yield from self.evacuate_blade(blade_id, tasks)
        self.address_space.remove_blade(blade_id)
        self.allocator.remove_blade(blade_id, force=True)
        self.stats.incr("blades_retired")
        return migrated
