"""The in-network MMU: MIND's complete switch-side program.

This assembles the pieces into the artifact the paper names in its title:
an MMU living in the network fabric.  One :class:`InNetworkMmu` owns

- the data plane: translation TCAM (one prefix per memory blade plus
  outliers), protection TCAM (``<PDID, vma> -> PC``), directory SRAM, the
  MAU pipeline with recirculation, and the multicast engine;
- the coherence engine executing the materialized MSI STT;
- the control plane: the controller (syscalls, allocation, placement), the
  Bounded Splitting epoch process, and the control CPU cost model.

Resource budgets default to the paper's switch: 30 k directory slots and a
45 k match-action rule budget split between translation and protection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from ..sim.engine import Engine
from ..sim.network import Network
from ..sim.stats import StatsCollector
from ..switchsim.control_cpu import ControlCpu
from ..switchsim.multicast import MulticastEngine
from ..switchsim.pipeline import SwitchPipeline
from ..alloc import AllocCostModel, GlobalAllocator
from ..switchsim.sram import MetadataSram, RegisterArray
from ..switchsim.tcam import Tcam
from .addressing import AddressSpace
from .bounded_splitting import BoundedSplittingConfig, BoundedSplittingController
from .coherence import CoherenceProtocol
from .controller import SwitchController
from .directory import RegionDirectory
from .migration import MigrationManager
from .protection import ProtectionTable
from .stt import build_mesi_stt, build_moesi_stt, build_msi_stt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.message_loss import MessageLossInjector


@dataclass
class MindConfig:
    """Switch-resource and algorithm parameters (paper defaults)."""

    #: directory SRAM slots (Section 7.2: 30 k entries).
    directory_capacity: int = 30_000
    #: total match-action rule budget (Section 7.2: ~45 k).
    match_action_capacity: int = 45_000
    #: share of the rule budget given to the protection table.
    protection_share: float = 0.5
    #: physical capacity per memory blade (must be a power of two).
    memory_blade_capacity: int = 1 << 34  # 16 GB
    #: base of this switch's VA partition (0 for a single rack; the
    #: multi-rack extension gives each rack an aligned slice).
    va_base: int = 0
    #: Bounded Splitting initial region size (paper default 16 kB).
    initial_region_size: int = 16 * 1024
    #: Bounded Splitting maximum region size M (paper's analysis uses 2 MB).
    max_region_size: int = 2 * 1024 * 1024
    #: epoch length (paper default 100 ms).
    epoch_us: float = 100_000.0
    #: coherence protocol: "msi" (paper), or the Section 8
    #: extensions "mesi" / "moesi".
    protocol: str = "msi"
    #: invalidation fan-out: "multicast" (the paper's P3 design) or
    #: "unicast-cpu" (ablation: switch CPU generates per-sharer packets).
    invalidation_mode: str = "multicast"
    #: cap on concurrently admitted fault transactions at the switch (the
    #: MSHR-style pending-transaction table's occupancy).
    pending_table_capacity: int = 256
    #: start the Bounded Splitting epoch loop automatically.
    enable_bounded_splitting: bool = True
    #: allocation-policy axis ("first-fit", "slab", "buddy", "arena",
    #: "bump").  ``None`` keeps the paper's first-fit with allocation-cost
    #: modeling OFF -- the default path stays bit-identical to the
    #: pre-refactor behaviour.  Setting any name (including "first-fit")
    #: activates the cost model, ``alloc`` latency samples, ``alloc:*``
    #: gauges, and SRAM banking of allocator metadata.
    allocator: Optional[str] = None
    #: switch SRAM budget for allocator metadata (free lists, boundary
    #: tags, buddy bitmaps) when the allocator axis is active.
    alloc_metadata_capacity: int = 1 << 22
    bounded_splitting: BoundedSplittingConfig = field(default=None)

    def __post_init__(self) -> None:
        if self.bounded_splitting is None:
            self.bounded_splitting = BoundedSplittingConfig(epoch_us=self.epoch_us)


class InNetworkMmu:
    """The programmable switch running MIND."""

    def __init__(
        self,
        engine: Engine,
        network: Network,
        config: Optional[MindConfig] = None,
        stats: Optional[StatsCollector] = None,
        fault_injector: Optional["MessageLossInjector"] = None,
    ):
        self.engine = engine
        self.network = network
        self.config = config or MindConfig()
        self.stats = stats or StatsCollector()

        cfg = self.config
        protection_budget = int(cfg.match_action_capacity * cfg.protection_share)
        translation_budget = cfg.match_action_capacity - protection_budget
        self.translation_tcam = Tcam(translation_budget, name="translation")
        self.protection_tcam = Tcam(protection_budget, name="protection")
        self.directory_sram = RegisterArray(cfg.directory_capacity, name="directory")

        self.pipeline = SwitchPipeline(engine, network.config)
        self.multicast = MulticastEngine()
        self.control_cpu = ControlCpu(engine)

        self.address_space = AddressSpace(
            self.translation_tcam, cfg.memory_blade_capacity, base_va=cfg.va_base
        )
        alloc_modeled = cfg.allocator is not None
        self.alloc_metadata_sram = (
            MetadataSram(cfg.alloc_metadata_capacity, name="alloc-metadata")
            if alloc_modeled
            else None
        )
        self.allocator = GlobalAllocator(
            policy=cfg.allocator or "first-fit",
            cost_model=AllocCostModel() if alloc_modeled else None,
            metadata_sram=self.alloc_metadata_sram,
        )
        self.protection = ProtectionTable(self.protection_tcam)
        self.directory = RegionDirectory(
            self.directory_sram,
            initial_region_size=cfg.initial_region_size,
            max_region_size=cfg.max_region_size,
        )

        stt = {
            "msi": build_msi_stt,
            "mesi": build_mesi_stt,
            "moesi": build_moesi_stt,
        }[cfg.protocol]()
        self.coherence = CoherenceProtocol(
            engine=engine,
            network=network,
            pipeline=self.pipeline,
            multicast=self.multicast,
            directory=self.directory,
            address_space=self.address_space,
            protection=self.protection,
            stt=stt,
            stats=self.stats,
            fault_injector=fault_injector,
            invalidation_mode=cfg.invalidation_mode,
            control_cpu=self.control_cpu,
            pending_table_capacity=cfg.pending_table_capacity,
        )
        self.controller = SwitchController(
            control_cpu=self.control_cpu,
            allocator=self.allocator,
            address_space=self.address_space,
            protection=self.protection,
            directory=self.directory,
            stats=self.stats,
        )
        self.migration = MigrationManager(
            engine=engine,
            coherence=self.coherence,
            address_space=self.address_space,
            allocator=self.allocator,
            control_cpu=self.control_cpu,
            stats=self.stats,
        )
        self.controller.set_migration_manager(self.migration)
        self.splitter = BoundedSplittingController(
            engine=engine,
            directory=self.directory,
            pending=self.coherence.pending,
            control_cpu=self.control_cpu,
            stats=self.stats,
            config=cfg.bounded_splitting,
        )
        self._splitter_started = False

    # -- membership -------------------------------------------------------------

    def add_memory_blade(self, blade) -> None:
        """Bring a memory blade online: translation entry + allocator range."""
        va_base = self.address_space.add_blade(blade.blade_id)
        self.allocator.add_blade(
            blade.blade_id, va_base, self.config.memory_blade_capacity
        )
        self.coherence.register_memory_blade(blade.blade_id, blade)
        blade.register()

    def start(self) -> None:
        """Start background control-plane processes (the epoch loop)."""
        if self.config.enable_bounded_splitting and not self._splitter_started:
            self.splitter.start()
            self._splitter_started = True

    # -- fail-over ---------------------------------------------------------------

    def adopt_data_plane(
        self,
        plane,
        translation_tcam: Tcam,
        protection_tcam: Tcam,
        directory_sram: RegisterArray,
    ) -> None:
        """Switch every control/data-path component over to a rebuilt data
        plane (Section 4.4: the backup switch takes over with tables
        reprogrammed from the replicated control-plane state).

        ``plane`` is a :class:`~repro.core.failures.RebuiltDataPlane`; the
        TCAM/SRAM arguments are the backup switch's physical tables it was
        programmed into.  The directory arrives all-Invalid -- re-faults
        re-warm it -- while translation, protection and allocator occupancy
        are exact replicas.
        """
        self.translation_tcam = translation_tcam
        self.protection_tcam = protection_tcam
        self.directory_sram = directory_sram
        self.address_space = plane.address_space
        self.protection = plane.protection
        self.directory = plane.directory
        self.allocator = plane.allocator
        if self.alloc_metadata_sram is not None:
            # The backup switch banks the rebuilt allocator's metadata in
            # its own SRAM; occupancy snaps to the replica's footprint.
            self.allocator.attach_metadata_sram(self.alloc_metadata_sram)
        self.coherence.adopt_plane(
            plane.directory, plane.address_space, plane.protection
        )
        ctl = self.controller
        ctl.allocator = plane.allocator
        ctl.address_space = plane.address_space
        ctl.protection = plane.protection
        ctl.directory = plane.directory
        self.splitter.directory = plane.directory
        self.migration.address_space = plane.address_space
        self.migration.allocator = plane.allocator

    # -- observability -------------------------------------------------------------

    def match_action_rules(self) -> Dict[str, int]:
        """Rule counts per table, the quantity Fig. 8 (center) plots."""
        return {
            "translation": len(self.translation_tcam),
            "protection": len(self.protection_tcam),
            "total": len(self.translation_tcam) + len(self.protection_tcam),
        }

    def directory_entries(self) -> int:
        return len(self.directory)
