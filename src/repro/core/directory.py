"""In-switch cache directory with variable-granularity regions (Section 4.3).

The directory tracks coherence state at *region* granularity -- decoupled
from the 4 KB page granularity of cache fills and evictions (P1).  Each
region is a buddy-aligned power-of-two block of the virtual address space
between ``PAGE_SIZE`` (4 KB) and ``max_region_size`` (the paper's M, 2 MB by
default).  Entries live in a bounded SRAM register array (30 k slots in the
paper's switch); slot pressure is what the Bounded Splitting algorithm
manages.

Regions are created lazily on first access at ``initial_region_size``
(16 kB default), split/merged by the epoch controller, and reclaimed when
they return to Invalid with no sharers.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from ..sim.network import PAGE_SIZE
from ..switchsim.sram import RegisterArray, SramFullError
from .vma import align_down


class CoherenceState(enum.Enum):
    """Coherence states tracked per region.

    MSI uses I/S/M (the paper's protocol).  OWNED exists for the MOESI
    extension sketched in Section 8: the owner holds dirty data read-only
    and supplies it to readers, avoiding write-backs to memory blades.
    """

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"
    OWNED = "O"


@dataclass
class Region:
    """One directory entry: a buddy-aligned block and its MSI metadata."""

    base: int
    size: int
    state: CoherenceState = CoherenceState.INVALID
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None
    #: false invalidation count in the current epoch (Bounded Splitting).
    false_invalidations: int = 0
    #: total accesses routed through this entry in the current epoch.
    accesses: int = 0
    #: transient-state flag maintained by the pending-transaction table:
    #: "" (quiescent), "shared" or "exclusive" while transactions are in
    #: flight.  Split/merge/eviction avoid entries mid-transition.
    transient: str = ""

    def __post_init__(self) -> None:
        if self.size < PAGE_SIZE or self.size & (self.size - 1):
            raise ValueError(f"region size {self.size:#x} must be pow2 >= page")
        if self.base % self.size:
            raise ValueError(f"region base {self.base:#x} not aligned to {self.size:#x}")

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def num_pages(self) -> int:
        return self.size // PAGE_SIZE

    def contains(self, va: int) -> bool:
        return self.base <= va < self.end

    def buddy_base(self) -> int:
        """Base of this region's buddy (the other half of the parent)."""
        return self.base ^ self.size

    def reset_epoch_counters(self) -> None:
        self.false_invalidations = 0
        self.accesses = 0


class DirectoryFullError(RuntimeError):
    """No SRAM slot available and nothing could be reclaimed."""


class RegionDirectory:
    """The SRAM-backed set of non-overlapping regions, keyed by base VA."""

    def __init__(
        self,
        sram: RegisterArray,
        initial_region_size: int = 16 * 1024,
        max_region_size: int = 2 * 1024 * 1024,
    ):
        if initial_region_size < PAGE_SIZE or initial_region_size & (initial_region_size - 1):
            raise ValueError("initial region size must be a power of two >= 4KB")
        if max_region_size < initial_region_size or max_region_size & (max_region_size - 1):
            raise ValueError("max region size must be a power of two >= initial size")
        self.sram = sram
        self.initial_region_size = initial_region_size
        self.max_region_size = max_region_size
        self._bases: List[int] = []  # sorted region bases
        self._regions: Dict[int, Region] = {}
        self.splits = 0
        self.merges = 0
        self.reclaims = 0
        self._clock_hand = 0

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return (self._regions[b] for b in self._bases)

    @property
    def utilization(self) -> float:
        return self.sram.utilization()

    def regions(self) -> List[Region]:
        return [self._regions[b] for b in self._bases]

    # -- lookup ----------------------------------------------------------

    def find(self, va: int) -> Optional[Region]:
        """The region containing ``va``, if a directory entry exists."""
        idx = bisect.bisect_right(self._bases, va) - 1
        if idx < 0:
            return None
        region = self._regions[self._bases[idx]]
        return region if region.contains(va) else None

    # -- entry lifecycle ---------------------------------------------------

    def _insert(self, region: Region) -> Region:
        self.sram.allocate(region.base, region)
        bisect.insort(self._bases, region.base)
        self._regions[region.base] = region
        return region

    def _remove(self, region: Region) -> None:
        self.sram.release(region.base)
        idx = bisect.bisect_left(self._bases, region.base)
        del self._bases[idx]
        del self._regions[region.base]

    def _creation_size(self, va: int) -> int:
        """Largest size <= initial_region_size whose window at ``va`` is free.

        After splits and reclaims, part of the initial window may already be
        covered by other entries; shrink until the window is unoccupied.
        """
        size = self.initial_region_size
        while size > PAGE_SIZE:
            base = align_down(va, size)
            if not self._overlaps_existing(base, size):
                return size
            size //= 2
        return PAGE_SIZE

    def _overlaps_existing(self, base: int, size: int) -> bool:
        idx = bisect.bisect_left(self._bases, base + size)
        if idx > 0:
            prev = self._regions[self._bases[idx - 1]]
            if prev.end > base:
                return True
        return False

    def ensure_region(self, va: int, reclaim: bool = True) -> Region:
        """The region entry covering ``va``, creating one if necessary.

        Raises :class:`DirectoryFullError` when SRAM is exhausted and no
        Invalid entry can be reclaimed -- the coherence layer then falls
        back to forced merging (which causes false invalidations).
        """
        region = self.find(va)
        if region is not None:
            return region
        size = self._creation_size(va)
        new = Region(align_down(va, size), size)
        try:
            return self._insert(new)
        except SramFullError:
            if reclaim and self.reclaim_invalid(limit=1):
                return self._insert(new)
            raise DirectoryFullError(
                f"directory SRAM full ({self.sram.capacity} slots)"
            ) from None

    def release(self, region: Region) -> None:
        """Drop an entry (region back to Invalid with no cached copies)."""
        self._remove(region)

    def reclaim_invalid(self, limit: int = 1_000_000) -> int:
        """Free slots held by Invalid regions with no sharers (skipping
        entries with transactions in flight)."""
        victims = [
            r
            for r in self.regions()
            if r.state is CoherenceState.INVALID and not r.sharers and not r.transient
        ]
        count = 0
        for region in victims[:limit]:
            self._remove(region)
            count += 1
        self.reclaims += count
        return count

    # -- split / merge (driven by Bounded Splitting) -----------------------

    def split(self, region: Region) -> Optional[tuple]:
        """Split a region into its two buddy halves (metadata-only).

        Both halves inherit the parent's state/sharers/owner: any page of
        the parent may be cached anywhere the parent was, so the children
        must conservatively assume the same.  Returns ``(left, right)`` or
        None if the region is already at page granularity or no slot is
        free for the second entry.
        """
        if region.size <= PAGE_SIZE:
            return None
        if self.sram.free < 1 and not self.reclaim_invalid(limit=1):
            return None
        half = region.size // 2
        self._remove(region)
        left = Region(
            region.base, half, region.state, set(region.sharers), region.owner
        )
        right = Region(
            region.base + half, half, region.state, set(region.sharers), region.owner
        )
        self._insert(left)
        self._insert(right)
        self.splits += 1
        return left, right

    def mergeable(
        self, region: Region, ignore_transient: bool = False
    ) -> Optional[Region]:
        """The buddy of ``region`` if the pair can merge without invalidation.

        A metadata-only merge requires compatible states: both Invalid, both
        Shared, or both Modified/Owned by the *same* owner (or one side
        Invalid).  Anything else would leave the merged entry unable to
        describe where dirty data lives, and needs an invalidation first
        (forced merge).  Entries with transactions in flight (transient
        state set by the pending table) are never merge candidates --
        unless the caller already holds both entries' admission gates
        (``ignore_transient``), in which case its own gate IS the transient
        flag and there is nothing else in flight.
        """
        if region.size >= self.max_region_size:
            return None
        if region.transient and not ignore_transient:
            return None
        buddy = self._regions.get(region.buddy_base())
        if buddy is None or buddy.size != region.size:
            return None
        if buddy.transient and not ignore_transient:
            return None
        a, b = region.state, buddy.state
        if a is CoherenceState.INVALID or b is CoherenceState.INVALID:
            return buddy
        if a is CoherenceState.SHARED and b is CoherenceState.SHARED:
            return buddy
        dirty_states = (CoherenceState.MODIFIED, CoherenceState.OWNED)
        if a in dirty_states and b in dirty_states and region.owner == buddy.owner:
            return buddy
        return None

    def merge_any(self, limit: int = 8) -> int:
        """Opportunistically merge up to ``limit`` compatible buddy pairs.

        Used under capacity pressure: each merge frees one SRAM slot with no
        invalidation traffic.  Returns the number of merges performed.
        """
        merged = 0
        idx = 0
        while merged < limit and idx < len(self._bases):
            region = self._regions[self._bases[idx]]
            buddy = self.mergeable(region)
            if buddy is not None:
                self.merge(region, buddy)
                # Restart near the merge point; bases list shifted.
                idx = max(0, idx - 1)
                merged += 1
            else:
                idx += 1
        return merged

    def clock_victim(self, probe: int = 16) -> Optional[Region]:
        """Pick a capacity-eviction victim with a clock sweep.

        Probes up to ``probe`` entries from the rotating hand, preferring a
        Shared region (dropping clean copies is cheaper than flushing an
        owner) and colder entries.  Returns None if every probed entry is
        Invalid (those are reclaimable without eviction).
        """
        _invalid, victim = self.sweep(probe)
        return victim

    def sweep(self, probe: int = 16):
        """One O(probe) clock sweep; returns ``(invalid, victim)``.

        ``invalid`` is a reclaimable Invalid entry if one was probed (free
        to release); ``victim`` is the preferred eviction candidate
        otherwise.  This is the capacity-pressure workhorse -- it must stay
        O(probe), never O(entries), because contended workloads (M_A/M_C)
        hit it on a large share of faults (Fig. 8 left).
        """
        if not self._bases:
            return None, None
        n = len(self._bases)
        invalid: Optional[Region] = None
        best: Optional[Region] = None
        fallback: Optional[Region] = None
        for i in range(min(probe, n)):
            region = self._regions[self._bases[(self._clock_hand + i) % n]]
            if region.transient:
                # Mid-transition (pending-table entry open): not reclaimable
                # and only evictable as a last resort -- the eviction path
                # queues behind the in-flight transactions anyway.
                if region.state is not CoherenceState.INVALID and fallback is None:
                    fallback = region
                continue
            if region.state is CoherenceState.INVALID:
                if invalid is None:
                    invalid = region
                continue
            if best is None:
                best = region
            elif region.state is CoherenceState.SHARED and best.state in (
                CoherenceState.MODIFIED,
                CoherenceState.OWNED,
            ):
                best = region
            elif region.state is best.state and region.accesses < best.accesses:
                best = region
        self._clock_hand = (self._clock_hand + min(probe, n)) % max(n, 1)
        return invalid, best if best is not None else fallback

    def merge(self, region: Region, buddy: Region) -> Region:
        """Merge a buddy pair into the parent region (metadata-only)."""
        if buddy.base != region.buddy_base() or buddy.size != region.size:
            raise ValueError("regions are not buddies")
        left, right = (region, buddy) if region.base < buddy.base else (buddy, region)
        state = CoherenceState.INVALID
        owner = None
        sharers: Set[int] = set()
        dirty_states = (CoherenceState.MODIFIED, CoherenceState.OWNED)
        for part in (left, right):
            if part.state in dirty_states:
                # OWNED dominates MODIFIED: the merged entry must remember
                # that sharers may hold read copies alongside the owner.
                if state is not CoherenceState.OWNED:
                    state = part.state
                owner = part.owner
                sharers |= part.sharers
            elif part.state is CoherenceState.SHARED and state not in dirty_states:
                state = CoherenceState.SHARED
                sharers |= part.sharers
        merged = Region(left.base, left.size * 2, state, sharers, owner)
        merged.false_invalidations = left.false_invalidations + right.false_invalidations
        merged.accesses = left.accesses + right.accesses
        self._remove(left)
        self._remove(right)
        self._insert(merged)
        self.merges += 1
        return merged
