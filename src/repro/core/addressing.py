"""Storage-efficient in-network address translation (Section 4.1).

MIND uses one global virtual address space, range-partitioned across memory
blades so the whole VA space maps onto a contiguous physical space: *one*
translation entry per memory blade, stored as a TCAM prefix.  Outlier
entries -- for migrated pages or static addresses baked into binaries --
are more-specific prefixes; TCAM longest-prefix match guarantees the most
specific entry wins, so an outlier transparently shadows the blade-level
range that contains it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..switchsim.tcam import Tcam, TcamEntry, VA_WIDTH


class TranslationFault(RuntimeError):
    """No translation entry covers the virtual address."""


@dataclass(frozen=True)
class Translation:
    """Result of translating a VA: target blade and physical address."""

    blade_id: int
    pa: int
    outlier: bool = False


@dataclass(frozen=True)
class _XlateData:
    """TCAM entry payload: target blade + additive VA->PA delta."""

    blade_id: int
    pa_delta: int
    outlier: bool


class AddressSpace:
    """The global VA space and its TCAM-backed translation table.

    ``base_va`` offsets this switch's partition of the global space: a
    single rack uses 0; in the multi-rack extension (Section 8) each
    rack's switch owns ``[base_va, base_va + blades * capacity)``.
    """

    def __init__(self, tcam: Tcam, blade_capacity: int, base_va: int = 0):
        if blade_capacity <= 0 or blade_capacity & (blade_capacity - 1):
            raise ValueError("blade capacity must be a power of two")
        if base_va % blade_capacity:
            raise ValueError("base_va must be aligned to the blade capacity")
        self.tcam = tcam
        self.blade_capacity = blade_capacity
        self.base_va = base_va
        self._blade_entries: Dict[int, TcamEntry] = {}
        self._outlier_entries: List[TcamEntry] = []
        self._next_slot = 0
        #: memoized va -> Translation.  Pure software memoization of the
        #: (deterministic) TCAM LPM result; flushed on any entry mutation.
        #: Models nothing -- the hardware does the lookup per packet either
        #: way -- it just keeps the simulator off the O(entries) scan.
        self._xlate_cache: Dict[int, Translation] = {}

    # -- blade membership -------------------------------------------------

    def add_blade(self, blade_id: int) -> int:
        """Register a memory blade; returns the base VA of its range.

        The VA range is ``[slot * capacity, (slot+1) * capacity)`` and maps
        one-to-one onto the blade's physical range ``[0, capacity)``.
        """
        if blade_id in self._blade_entries:
            raise ValueError(f"blade {blade_id} already has a translation entry")
        va_base = self.base_va + self._next_slot * self.blade_capacity
        self._next_slot += 1
        data = _XlateData(blade_id, pa_delta=-va_base, outlier=False)
        entry = self.tcam.insert_prefix(va_base, self.blade_capacity, data)
        self._blade_entries[blade_id] = entry
        self._xlate_cache.clear()
        return va_base

    def remove_blade(self, blade_id: int) -> None:
        entry = self._blade_entries.pop(blade_id, None)
        if entry is None:
            raise KeyError(f"no translation entry for blade {blade_id}")
        self.tcam.remove(entry)
        self._xlate_cache.clear()

    def blade_va_base(self, blade_id: int) -> int:
        entry = self._blade_entries[blade_id]
        return entry.value

    @property
    def num_blade_entries(self) -> int:
        return len(self._blade_entries)

    @property
    def num_outlier_entries(self) -> int:
        return len(self._outlier_entries)

    # -- translation -------------------------------------------------------

    def translate(self, va: int) -> Translation:
        """LPM lookup: the most specific (outlier first) entry wins."""
        va = int(va)  # tolerate numpy integer inputs
        cached = self._xlate_cache.get(va)
        if cached is not None:
            return cached
        if not 0 <= va < (1 << VA_WIDTH):
            raise TranslationFault(f"va {va:#x} outside the {VA_WIDTH}-bit space")
        entry = self.tcam.lookup(va)
        if entry is None or not isinstance(entry.data, _XlateData):
            raise TranslationFault(f"no translation for va {va:#x}")
        data: _XlateData = entry.data
        result = Translation(data.blade_id, va + data.pa_delta, data.outlier)
        self._xlate_cache[va] = result
        return result

    # -- outliers (page migration, static binary addresses) ---------------

    def add_outlier(self, va_base: int, size: int, blade_id: int, pa_base: int) -> None:
        """Install a more-specific mapping for a migrated/static region.

        ``size`` must be an aligned power of two (a single prefix).  LPM
        makes this entry shadow the containing blade-range entry.
        """
        data = _XlateData(blade_id, pa_delta=pa_base - va_base, outlier=True)
        entry = self.tcam.insert_prefix(va_base, size, data)
        self._outlier_entries.append(entry)
        self._xlate_cache.clear()

    def remove_outlier(self, va_base: int, size: int) -> None:
        for entry in self._outlier_entries:
            if entry.value == va_base and isinstance(entry.data, _XlateData) and entry.data.outlier:
                entry_size = ((~entry.mask) & ((1 << VA_WIDTH) - 1)) + 1
                if entry_size == size:
                    self._outlier_entries.remove(entry)
                    self.tcam.remove(entry)
                    self._xlate_cache.clear()
                    return
        raise KeyError(f"no outlier entry at {va_base:#x} size {size:#x}")

    def migrate(self, va_base: int, size: int, dst_blade: int, dst_pa: int) -> None:
        """Move a region to another blade by installing an outlier entry.

        The data copy itself is performed by the caller (control plane);
        this updates addressing so subsequent accesses route to ``dst_blade``.
        """
        self.add_outlier(va_base, size, dst_blade, dst_pa)
