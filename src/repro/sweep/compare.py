"""Baseline comparison: the perf-regression gate over sweep documents.

``compare(baseline, current, tolerance)`` matches aggregation cells by
identity and classifies each gated metric as *improved*, *regressed* or
*unchanged* based on the relative change of its across-seed mean.
Direction matters: ``runtime_us`` and latency metrics regress when they
grow, ``throughput_iops`` regresses when it shrinks.

Only headline perf metrics gate (runtime, throughput, fault-latency mean
and p99): counters move legitimately whenever behaviour changes and would
make the gate permanently red.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

#: metrics the regression gate inspects, with their "better" direction.
#: True = higher is better; False = lower is better.
GATED_METRICS: Dict[str, bool] = {
    "runtime_us": False,
    "throughput_iops": True,
    "latency:fault:mean": False,
    "latency:fault:p99": False,
    # Tail-of-the-tail: present in documents produced since the telemetry
    # layer landed; compare() skips metrics a baseline lacks, so older
    # baselines remain comparable.
    "latency:fault:p999": False,
}

IMPROVED = "improved"
REGRESSED = "regressed"
UNCHANGED = "unchanged"


@dataclass
class ComparisonEntry:
    """One (cell, metric) verdict."""

    cell_id: str
    label: str
    metric: str
    baseline: float
    current: float
    delta: float  # (current - baseline) / baseline, signed
    status: str   # improved | regressed | unchanged

    def describe(self) -> str:
        return (
            f"{self.status:<9s} {self.label}  {self.metric}: "
            f"{self.baseline:.6g} -> {self.current:.6g} "
            f"({self.delta:+.1%})"
        )


@dataclass
class ComparisonReport:
    """All verdicts plus the cells only one document knows about."""

    tolerance: float
    entries: List[ComparisonEntry] = field(default_factory=list)
    #: cell labels present in the baseline but missing from the current
    #: run (grid shrank or points failed) -- surfaced, never fatal.
    missing_cells: List[str] = field(default_factory=list)
    #: cell labels new in the current run (no baseline yet).
    new_cells: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparisonEntry]:
        return [e for e in self.entries if e.status == REGRESSED]

    @property
    def improvements(self) -> List[ComparisonEntry]:
        return [e for e in self.entries if e.status == IMPROVED]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def render(self) -> str:
        lines = [
            f"perf comparison vs baseline (tolerance +/-{self.tolerance:.0%}): "
            f"{len(self.regressions)} regressed, "
            f"{len(self.improvements)} improved, "
            f"{len(self.entries) - len(self.regressions) - len(self.improvements)}"
            " unchanged"
        ]
        lines.extend(
            f"  {entry.describe()}"
            for entry in self.entries
            if entry.status != UNCHANGED
        )
        lines.extend(f"  missing from current run: {label}" for label in self.missing_cells)
        lines.extend(f"  new cell (no baseline): {label}" for label in self.new_cells)
        if not self.has_regressions:
            lines.append("  gate: OK")
        else:
            lines.append("  gate: FAILED")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "tolerance": self.tolerance,
            "regressed": [e.__dict__ for e in self.regressions],
            "improved": [e.__dict__ for e in self.improvements],
            "missing_cells": list(self.missing_cells),
            "new_cells": list(self.new_cells),
            "gate_ok": not self.has_regressions,
        }


def _cell_label(cell: Mapping[str, Any]) -> str:
    bits = [
        str(cell.get("system")),
        str(cell.get("workload")),
        f"{cell.get('num_blades')}b x {cell.get('threads_per_blade')}t",
    ]
    bits.extend(
        f"{key}={value}"
        for key, value in sorted(dict(cell.get("workload_params", {})).items())
    )
    return " ".join(bits)


def compare(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    tolerance: float = 0.15,
) -> ComparisonReport:
    """Classify every gated metric of every shared cell.

    ``baseline`` and ``current`` are sweep documents (see
    :meth:`repro.sweep.engine.SweepResults.to_doc` /
    :meth:`~repro.sweep.engine.SweepResults.load_doc`).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    base_cells = {c["cell_id"]: c for c in baseline.get("aggregates", [])}
    cur_cells = {c["cell_id"]: c for c in current.get("aggregates", [])}
    report = ComparisonReport(tolerance=tolerance)
    for cell_id, base in base_cells.items():
        cur = cur_cells.get(cell_id)
        if cur is None:
            report.missing_cells.append(_cell_label(base))
            continue
        for metric, higher_is_better in GATED_METRICS.items():
            base_metric = base["metrics"].get(metric)
            cur_metric = cur["metrics"].get(metric)
            if base_metric is None or cur_metric is None:
                continue
            base_mean = float(base_metric["mean"])
            cur_mean = float(cur_metric["mean"])
            if base_mean == 0.0:
                delta = 0.0 if cur_mean == 0.0 else float("inf")
            else:
                delta = (cur_mean - base_mean) / abs(base_mean)
            if abs(delta) <= tolerance:
                status = UNCHANGED
            elif (delta > 0) == higher_is_better:
                status = IMPROVED
            else:
                status = REGRESSED
            report.entries.append(
                ComparisonEntry(
                    cell_id=cell_id,
                    label=_cell_label(base),
                    metric=metric,
                    baseline=base_mean,
                    current=cur_mean,
                    delta=delta,
                    status=status,
                )
            )
    report.new_cells.extend(
        _cell_label(cur)
        for cell_id, cur in cur_cells.items()
        if cell_id not in base_cells
    )
    return report
