"""Declarative experiment sweeps: grids of (system, config, seed) points.

Every figure in the paper's evaluation is a sweep -- systems x blade
counts x workload knobs x seeds -- and MIND's deterministic event engine
makes each point an isolated, order-independent simulation.  This package
turns that into infrastructure:

- :mod:`repro.sweep.spec` -- the grid language: axes -> cartesian product
  of :class:`SweepPoint`\\ s, each a picklable handle that a worker process
  can rebuild into a workload + runner config.
- :mod:`repro.sweep.engine` -- fan-out across worker processes
  (spawn-safe ``ProcessPoolExecutor``), deterministic result ordering,
  resumable partial runs, and aggregation into a schema-versioned JSON
  document (``BENCH_sweep.json``) with mean/p50/p99 per metric across
  seeds.
- :mod:`repro.sweep.compare` -- classify each metric of each grid cell as
  improved / regressed / unchanged against a baseline document (the CI
  perf-regression gate).
- :mod:`repro.sweep.presets` -- named grids for the paper's figures and
  the quick CI subset.

CLI: ``python -m repro sweep --grid ... --seeds ... --jobs N --out
BENCH_sweep.json --compare-to benchmarks/BENCH_baseline.json``.
"""

from .compare import ComparisonEntry, ComparisonReport, compare
from .engine import (
    PointRecord,
    SweepResults,
    execute_point,
    extract_metrics,
    run_sweep,
)
from .presets import PRESETS, preset_grids
from .spec import (
    SCHEMA,
    GridSpec,
    SweepPoint,
    SweepSpec,
    WORKLOAD_BUILDERS,
    build_workload_cached,
    parse_grid,
)

__all__ = [
    "SCHEMA",
    "ComparisonEntry",
    "ComparisonReport",
    "GridSpec",
    "PRESETS",
    "PointRecord",
    "SweepPoint",
    "SweepResults",
    "SweepSpec",
    "WORKLOAD_BUILDERS",
    "build_workload_cached",
    "compare",
    "execute_point",
    "extract_metrics",
    "parse_grid",
    "preset_grids",
    "run_sweep",
]
