"""``python -m repro sweep``: run experiment grids, gate on baselines.

Examples::

    # a 3x3x2 grid across 4 worker processes
    python -m repro sweep \\
        --grid "system=mind,gam,fastswap;workload=tf;blades=1;threads_per_blade=1,2,4" \\
        --seeds 1,2 --jobs 4 --out BENCH_sweep.json

    # the CI perf gate: quick subset vs the checked-in baseline
    python -m repro sweep --preset ci-quick --seeds 1,2 --jobs 2 \\
        --out BENCH_sweep.json \\
        --compare-to benchmarks/BENCH_baseline.json --tolerance 0.15

Exit status: 0 on success, 1 when ``--compare-to`` detects a regression.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .compare import compare
from .engine import SweepResults, run_sweep
from .presets import PRESETS, preset_grids
from .spec import GridSpec, SweepPoint, SweepSpec, parse_grid


def _parse_seeds(text: str) -> List[int]:
    try:
        seeds = [int(part) for part in text.split(",") if part.strip() != ""]
    except ValueError:
        raise SystemExit(f"bad --seeds {text!r}: expected comma-separated ints")
    if not seeds:
        raise SystemExit(f"bad --seeds {text!r}: no seeds")
    return seeds


def add_sweep_parser(sub: argparse._SubParsersAction) -> None:
    parser = sub.add_parser(
        "sweep",
        help="run an experiment grid across worker processes",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="AXES",
        help="grid in 'axis=v1,v2;axis2=...' syntax (repeatable)",
    )
    parser.add_argument(
        "--preset",
        action="append",
        default=[],
        metavar="NAME",
        help=f"named grid from {sorted(PRESETS)} (repeatable)",
    )
    parser.add_argument(
        "--seeds",
        default="1",
        metavar="S1,S2,...",
        help="seed list crossed with every grid (default: 1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1; results are identical at any N)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_sweep.json",
        metavar="PATH",
        help="sweep document path (default BENCH_sweep.json)",
    )
    parser.add_argument(
        "--compare-to",
        metavar="BASELINE",
        help="baseline sweep document; exit 1 if any metric regresses",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        metavar="FRAC",
        help="relative tolerance for the regression gate (default 0.15)",
    )
    parser.add_argument(
        "--rack-parallel",
        type=int,
        default=None,
        metavar="N",
        help=(
            "simulate independent rack components of a multirack point in "
            "up to N concurrent worker processes (byte-identical to the "
            "serial run; effective for in-process points, i.e. --jobs 1)"
        ),
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore a matching partial document in --out; rerun all points",
    )
    parser.add_argument(
        "--list-presets", action="store_true", help="print preset grids and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress"
    )
    parser.set_defaults(fn=main)


def _progress(done: int, total: int, point: SweepPoint) -> None:
    print(f"  [{done}/{total}] {point.label()}", file=sys.stderr)


def main(args: argparse.Namespace) -> int:
    if args.list_presets:
        for name in sorted(PRESETS):
            print(name)
            for text in PRESETS[name]:
                print(f"  {text}")
        return 0
    grids: List[GridSpec] = []
    for name in args.preset:
        grids.extend(preset_grids(name))
    grids.extend(parse_grid(text) for text in args.grid)
    if not grids:
        raise SystemExit("nothing to run: pass --grid and/or --preset")
    if args.rack_parallel is not None:
        from ..multirack.parallel import set_rack_parallelism

        set_rack_parallelism(args.rack_parallel)
    spec = SweepSpec(grids, _parse_seeds(args.seeds))
    points = spec.points()
    if not args.quiet:
        print(
            f"sweep {spec.digest()}: {len(points)} points, "
            f"{args.jobs} worker(s) -> {args.out}",
            file=sys.stderr,
        )
    results = run_sweep(
        spec,
        jobs=args.jobs,
        out=args.out,
        resume=not args.no_resume,
        progress=None if args.quiet else _progress,
    )
    print(
        f"wrote {args.out}: {len(results)} points, "
        f"{len(results.to_doc()['aggregates'])} cells"
    )
    if args.compare_to:
        baseline = SweepResults.load_doc(args.compare_to)
        report = compare(baseline, results.to_doc(), tolerance=args.tolerance)
        print(report.render())
        if report.has_regressions:
            return 1
    return 0
