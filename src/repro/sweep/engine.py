"""Sweep execution: process fan-out, aggregation, resumable documents.

Every sweep point is an isolated deterministic simulation, so points can
run in any order on any number of worker processes and the result is a
pure function of the spec.  The engine exploits that:

- workers are spawned (``multiprocessing`` *spawn* context -- no
  inherited RNG state, no fork-unsafe locks), receive picklable
  :class:`~repro.sweep.spec.SweepPoint` handles, and rebuild workloads
  locally through the per-process cache;
- results are keyed by point index, so the output document is
  byte-identical whatever the completion order (``--jobs 4`` equals
  ``--jobs 1`` exactly);
- after every completed point the partial document is checkpointed to
  ``--out``; re-running the same spec resumes from completed points;
- fault plans are re-seeded *per point* from the point's seed, so a
  plan-bearing point replayed in a worker process produces the same
  bytes as the same point replayed in-process (spawn-context
  determinism).

The document layout (schema ``repro.sweep/v1``)::

    {"schema": ..., "spec_digest": ..., "spec": {...}, "complete": bool,
     "points": [{point..., "metrics": {...}}, ...],
     "aggregates": [{cell..., "seeds": [...],
                     "metrics": {name: {mean,p50,p99,min,max,n}}}, ...]}

No wall-clock data is recorded: documents from different machines and
worker counts diff clean.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import FaultPlan
from ..runner import run_system
from ..sim.stats import RunResult
from ..workloads import stable_seed
from .spec import (
    ALLOC_WORKLOADS,
    SCHEMA,
    SERVICE_WORKLOADS,
    TOPOLOGY_WORKLOADS,
    SweepPoint,
    SweepSpec,
    build_workload_cached,
)

#: metric-extraction hook signature (kept simple for mypy's benefit).
ProgressFn = Callable[[int, int, SweepPoint], None]


def reseed_plan_for_point(plan: FaultPlan, point: SweepPoint) -> FaultPlan:
    """Derive a point-local fault plan from the point's seed.

    The plan's own seed is folded in (two different plans stay
    distinguishable) but the result depends only on *plan contents and
    point identity* -- never on parent-process RNG state -- so in-process
    and spawned-worker executions of the same point are byte-identical.
    """
    return plan.reseeded(stable_seed("sweep.fault", plan.seed, point.seed))


def extract_metrics(result: RunResult) -> Dict[str, float]:
    """Flatten a RunResult into the sweep document's metric namespace.

    - top-level: ``runtime_us``, ``throughput_iops``, ``total_accesses``
    - ``counter:<name>`` for every stats counter
    - ``latency:<category>:{mean,p50,p99,p999}`` for every latency category
    - ``gauge:<name>`` for every end-of-run gauge
    - ``slo:<objective>:{compliance,violations}`` and
      ``telemetry:windows`` when the point ran with telemetry enabled
      (burn rates stay out of the namespace: an exhausted error budget is
      infinite burn, and ``Infinity`` is not valid JSON)
    """
    metrics: Dict[str, float] = {
        "runtime_us": float(result.runtime_us),
        "throughput_iops": float(result.throughput_iops),
        "total_accesses": float(result.total_accesses),
    }
    for name in sorted(result.stats.counters):
        metrics[f"counter:{name}"] = float(result.stats.counters[name])
    for category, summary in result.stats.snapshot().items():
        metrics[f"latency:{category}:mean"] = summary.mean
        metrics[f"latency:{category}:p50"] = summary.p50
        metrics[f"latency:{category}:p99"] = summary.p99
        metrics[f"latency:{category}:p999"] = summary.p999
    for name in sorted(result.stats.gauges):
        metrics[f"gauge:{name}"] = float(result.stats.gauges[name])
    timeline = result.stats.timeline
    if timeline is not None:
        from ..telemetry import evaluate_slos

        metrics["telemetry:windows"] = float(timeline.num_windows)
        for slo_result in evaluate_slos(timeline).results:
            prefix = f"slo:{slo_result.objective.name}"
            metrics[f"{prefix}:compliance"] = slo_result.compliance
            metrics[f"{prefix}:violations"] = float(slo_result.windows_violating)
    return metrics


@dataclass
class PointRecord:
    """One executed point: its identity plus flattened metrics."""

    point: SweepPoint
    metrics: Dict[str, float]
    #: trace JSONL (only when the point ran with tracing; never stored in
    #: sweep documents -- used by the determinism tests).
    trace_jsonl: Optional[str] = field(default=None, repr=False)
    #: windowed telemetry document (``repro.telemetry/v1``) -- only when
    #: the point ran with telemetry enabled, so telemetry-off sweep
    #: documents are byte-identical to pre-telemetry ones.
    timeline: Optional[Dict[str, Any]] = field(default=None, repr=False)

    def to_json(self) -> Dict[str, Any]:
        doc = self.point.to_json()
        doc["metrics"] = {k: self.metrics[k] for k in sorted(self.metrics)}
        if self.timeline is not None:
            doc["timeline"] = self.timeline
        return doc

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "PointRecord":
        return cls(
            point=SweepPoint.from_json(data),
            metrics=dict(data["metrics"]),
            timeline=data.get("timeline"),
        )


def _execute_service_point(point: SweepPoint) -> PointRecord:
    """Run a ``repro.service`` scenario point (e.g. ``kvs_service``).

    Grid axes map onto :class:`~repro.service.ServiceConfig` fields;
    structural axes translate as blades -> rack size, threads_per_blade ->
    initial serving slots, seed -> scenario seed.  The scenario builds its
    own chaos plan from ``stable_seed`` children of that seed, so service
    sweeps are byte-identical at any ``--jobs`` with no plan re-seeding.
    """
    from ..service import config_from_params, run_service

    params = dict(point.workload_params)
    params.update(dict(point.runner_params))
    # An explicit initial_slots axis wins over the structural default.
    params.setdefault("initial_slots", point.threads_per_blade)
    config = config_from_params(
        params,
        num_compute_blades=point.num_blades,
        seed=point.seed,
    )
    sr = run_service(config)
    record = PointRecord(point=point, metrics=extract_metrics(sr.result))
    if sr.result.stats.timeline is not None:
        record.timeline = sr.result.stats.timeline.to_json()
    return record


def _execute_topology_point(point: SweepPoint) -> PointRecord:
    """Run a ``repro.multirack`` topology point (the ``multirack`` workload).

    Grid axes map onto :class:`~repro.multirack.MultiRackScenarioConfig`
    fields; structural axes translate as blades -> compute blades *per
    rack*, threads_per_blade -> threads per blade, seed -> scenario seed.
    Every access stream derives from ``stable_seed`` children of that
    seed, so topology sweeps are byte-identical at any ``--jobs``.
    """
    from ..multirack import config_from_params
    from ..multirack.parallel import run_multirack_auto

    params = dict(point.workload_params)
    params.update(dict(point.runner_params))
    config = config_from_params(
        params,
        compute_blades_per_rack=point.num_blades,
        threads_per_blade=point.threads_per_blade,
        seed=point.seed,
    )
    # Serial unless --rack-parallel armed the process-wide toggle; the
    # parallel path is byte-identical, so documents never depend on it.
    result = run_multirack_auto(config)
    record = PointRecord(point=point, metrics=extract_metrics(result))
    if result.stats.timeline is not None:
        record.timeline = result.stats.timeline.to_json()
    return record


def _execute_alloc_point(point: SweepPoint) -> PointRecord:
    """Run a ``repro.alloc.scenario`` churn point (the allocator ablation).

    Grid axes map onto :class:`~repro.alloc.scenario.ChurnScenarioConfig`
    fields (``allocator``, ``size_dist``, ``ops_per_thread`` ...);
    structural axes translate as blades -> compute blades, seed ->
    scenario seed.  Op streams derive from ``stable_seed`` children of
    that seed, so allocator sweeps are byte-identical at any ``--jobs``.
    """
    from ..alloc.scenario import config_from_params, run_churn

    params = dict(point.workload_params)
    params.update(dict(point.runner_params))
    config = config_from_params(
        params,
        compute_blades=point.num_blades,
        threads_per_blade=point.threads_per_blade,
        seed=point.seed,
    )
    result = run_churn(config)
    return PointRecord(point=point, metrics=extract_metrics(result))


def execute_point(
    point: SweepPoint,
    fault_plan: Optional[FaultPlan] = None,
    with_trace: bool = False,
) -> PointRecord:
    """Run one sweep point to completion in this process."""
    scenario_kind = None
    if point.workload in SERVICE_WORKLOADS:
        scenario_kind = "service"
    elif point.workload in TOPOLOGY_WORKLOADS:
        scenario_kind = "topology"
    elif point.workload in ALLOC_WORKLOADS:
        scenario_kind = "allocation"
    if scenario_kind is not None:
        if fault_plan is not None:
            raise ValueError(
                f"{scenario_kind} points build their own chaos plan / fault "
                "schedule; an external --fault plan cannot be combined with "
                "them"
            )
        if with_trace:
            raise ValueError(
                f"{scenario_kind} points do not record event traces"
            )
        if point.workload in SERVICE_WORKLOADS:
            return _execute_service_point(point)
        if point.workload in TOPOLOGY_WORKLOADS:
            return _execute_topology_point(point)
        return _execute_alloc_point(point)
    workload = build_workload_cached(point)
    extra: Dict[str, Any] = {}
    if fault_plan is not None:
        extra["fault_plan"] = reseed_plan_for_point(fault_plan, point)
    if with_trace:
        extra["trace"] = True
    config = point.runner_config(**extra)
    result = run_system(point.system, workload, point.num_blades, config)
    record = PointRecord(point=point, metrics=extract_metrics(result))
    if with_trace and result.trace is not None:
        record.trace_jsonl = result.trace.to_jsonl()
    if result.stats.timeline is not None:
        record.timeline = result.stats.timeline.to_json()
    return record


def _execute_task(
    task: Tuple[int, SweepPoint, Optional[FaultPlan]]
) -> Tuple[int, PointRecord]:
    """Spawn-safe worker entry point (must be module-level to pickle)."""
    index, point, plan = task
    return index, execute_point(point, fault_plan=plan)


# -- aggregation -------------------------------------------------------------


def _summary(values: Sequence[float]) -> Dict[str, float]:
    values = list(values)
    if len(values) == 1:
        # All summary statistics of one value are that value; skip numpy
        # (this runs once per metric per cell, thousands of times a sweep).
        value = float(values[0])
        return {
            "mean": value, "p50": value, "p99": value,
            "min": value, "max": value, "n": 1.0,
        }
    arr = np.asarray(values, dtype=np.float64)
    p50, p99 = np.percentile(arr, (50, 99))
    return {
        "mean": float(arr.mean()),
        "p50": float(p50),
        "p99": float(p99),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "n": float(len(arr)),
    }


def aggregate(
    records: Sequence[PointRecord],
    cache: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Group records by cell (identity minus seed); summarize across seeds.

    ``cache`` (keyed by cell id, keeping the member point ids alongside the
    aggregated entry) lets per-point checkpointing skip re-summarizing
    cells whose membership has not changed since the previous checkpoint;
    a cell entry is a pure function of its members, so the cached and
    freshly computed documents are identical.
    """
    cells: Dict[str, List[PointRecord]] = {}
    for record in records:
        cells.setdefault(record.point.cell_id, []).append(record)
    out = []
    for cell_id, members in cells.items():
        members = sorted(members, key=lambda r: r.point.seed)
        key = tuple(m.point.point_id for m in members)
        if cache is not None:
            hit = cache.get(cell_id)
            if hit is not None and hit[0] == key:
                out.append(hit[1])
                continue
        head = members[0].point
        names = sorted({name for m in members for name in m.metrics})
        entry = {
            "cell_id": cell_id,
            "system": head.system,
            "workload": head.workload,
            "num_blades": head.num_blades,
            "threads_per_blade": head.threads_per_blade,
            "workload_params": dict(head.workload_params),
            "runner_params": dict(head.runner_params),
            "seeds": [m.point.seed for m in members],
            "metrics": {
                name: _summary(
                    [m.metrics[name] for m in members if name in m.metrics]
                )
                for name in names
            },
        }
        if cache is not None:
            cache[cell_id] = (key, entry)
        out.append(entry)
    return out


# -- documents ---------------------------------------------------------------


class SweepResults:
    """An executed (possibly partial) sweep plus its JSON document."""

    def __init__(
        self,
        spec: SweepSpec,
        records: Sequence[PointRecord],
        complete: bool = True,
        agg_cache: Optional[Dict[str, Any]] = None,
    ):
        self.spec = spec
        self.records = list(records)
        self.complete = complete
        #: shared across per-point checkpoints of one run_sweep call so an
        #: unchanged cell is aggregated once, not once per checkpoint.
        self._agg_cache = agg_cache

    def __len__(self) -> int:
        return len(self.records)

    # -- querying (used by benchmarks/tests) -----------------------------

    def lookup(self, **criteria: Any) -> List[PointRecord]:
        """Records whose point fields / params match all ``criteria``."""
        out = []
        for record in self.records:
            point = record.point
            params = dict(point.workload_params) | dict(point.runner_params)
            for key, want in criteria.items():
                have = getattr(point, key, params.get(key, _MISSING))
                if have is _MISSING or have != want:
                    break
            else:
                out.append(record)
        return out

    def one(self, **criteria: Any) -> PointRecord:
        matches = self.lookup(**criteria)
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one point for {criteria}, got {len(matches)}"
            )
        return matches[0]

    # -- serialization ---------------------------------------------------

    def to_doc(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "spec_digest": self.spec.digest(),
            "spec": self.spec.to_json(),
            "complete": self.complete,
            "num_points": len(self.records),
            "points": [r.to_json() for r in self.records],
            "aggregates": aggregate(self.records, cache=self._agg_cache),
        }

    def to_json_text(self) -> str:
        return json.dumps(self.to_doc(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            fh.write(self.to_json_text())
        os.replace(tmp, path)

    @staticmethod
    def load_doc(path: str) -> Dict[str, Any]:
        with open(path) as fh:
            doc = json.load(fh)
        if doc.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: schema {doc.get('schema')!r} != {SCHEMA!r}"
            )
        return doc


_MISSING = object()


# -- the sweep driver --------------------------------------------------------


def _load_resume_records(
    out: Optional[str], spec: SweepSpec
) -> Dict[str, PointRecord]:
    """Completed records from a previous partial run of the *same* spec."""
    if not out or not os.path.exists(out):
        return {}
    try:
        doc = SweepResults.load_doc(out)
    except (ValueError, json.JSONDecodeError, OSError):
        return {}
    if doc.get("spec_digest") != spec.digest():
        return {}
    records = {}
    for data in doc.get("points", []):
        record = PointRecord.from_json(data)
        records[record.point.point_id] = record
    return records


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    out: Optional[str] = None,
    resume: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    progress: Optional[ProgressFn] = None,
) -> SweepResults:
    """Execute every point of ``spec``; return ordered, aggregated results.

    ``jobs > 1`` fans points out across spawned worker processes; the
    output is byte-identical to a serial run.  When ``out`` is given the
    document is checkpointed after every completed point, and (with
    ``resume=True``) a matching previous document seeds the run, so
    interrupted sweeps continue where they stopped.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    points = spec.points()
    done: Dict[str, PointRecord] = _load_resume_records(out, spec) if resume else {}
    records: List[Optional[PointRecord]] = [done.get(p.point_id) for p in points]
    pending = [
        (i, point, fault_plan)
        for i, point in enumerate(points)
        if records[i] is None
    ]
    completed = len(points) - len(pending)

    agg_cache: Dict[str, Any] = {}

    def checkpoint(final: bool = False) -> None:
        if out is None:
            return
        finished = [r for r in records if r is not None]
        SweepResults(
            spec,
            finished,
            complete=final and len(finished) == len(points),
            agg_cache=agg_cache,
        ).save(out)

    def note(index: int) -> None:
        nonlocal completed
        completed += 1
        if progress is not None:
            progress(completed, len(points), points[index])

    if jobs == 1 or len(pending) <= 1:
        for index, point, plan in pending:
            records[index] = execute_point(point, fault_plan=plan)
            note(index)
            checkpoint()
    else:
        context = multiprocessing.get_context("spawn")
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {pool.submit(_execute_task, task) for task in pending}
            while futures:
                finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    index, record = future.result()
                    records[index] = record
                    note(index)
                checkpoint()

    final = [r for r in records if r is not None]
    results = SweepResults(
        spec, final, complete=len(final) == len(points), agg_cache=agg_cache
    )
    if out is not None:
        results.save(out)
    return results
