"""The sweep grid language: axes, points, and picklable workload handles.

A *grid* is an ordered mapping ``axis -> [values]`` whose cartesian
product enumerates experiment points.  Four axes are structural and
consumed by the runner:

- ``system``             -- one of :data:`repro.runner.SYSTEMS`
- ``workload``           -- a key of :data:`WORKLOAD_BUILDERS`
- ``blades``             -- compute-blade count
- ``threads_per_blade``  -- workload threads per blade
- ``seed``               -- workload seed (usually supplied via
  ``SweepSpec.seeds`` rather than as a grid axis)

Axes whose names match :class:`repro.runner.RunnerConfig` fields become
runner-config overrides (``num_memory_blades``, ``epoch_us``,
``cache_capacity_pages`` ...); every remaining axis is passed to the
workload constructor (``accesses_per_thread``, ``read_ratio`` ...).

A :class:`SweepPoint` is deliberately a *handle*, not a built workload:
it pickles as a few strings and numbers, and worker processes rebuild
(and cache) the actual trace workload locally.  Points that differ only
in ``system`` share one cached workload -- the trace is generated once
per worker instead of once per run.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..runner import SYSTEMS, RunnerConfig
from ..workloads import (
    GraphLikeWorkload,
    MemcachedYcsbWorkload,
    NativeKvsWorkload,
    TensorFlowLikeWorkload,
    TraceWorkload,
    UniformSharingWorkload,
)

#: schema tag stamped on every sweep document this package writes.
SCHEMA = "repro.sweep/v1"

#: structural axes the runner consumes (never workload kwargs).
STRUCTURAL_AXES = ("system", "workload", "blades", "threads_per_blade", "seed")

#: RunnerConfig fields a grid may override per point.  ``fault_plan`` and
#: the trace knobs are excluded: plans are supplied (and re-seeded) by the
#: engine, and tracing is an execution-time decision, not a grid axis.
RUNNER_AXES = tuple(
    f.name
    for f in fields(RunnerConfig)
    if f.name not in ("fault_plan", "mind", "network")
)

#: workload registry: name -> builder(num_threads, seed, **params).
WORKLOAD_BUILDERS: Dict[str, Callable[..., TraceWorkload]] = {
    "tf": lambda num_threads, seed, **kw: TensorFlowLikeWorkload(
        num_threads, seed=seed, **kw
    ),
    "gc": lambda num_threads, seed, **kw: GraphLikeWorkload(
        num_threads, seed=seed, **kw
    ),
    "ycsb_a": lambda num_threads, seed, **kw: MemcachedYcsbWorkload.workload_a(
        num_threads, seed=seed, **kw
    ),
    "ycsb_c": lambda num_threads, seed, **kw: MemcachedYcsbWorkload.workload_c(
        num_threads, seed=seed, **kw
    ),
    "kvs": lambda num_threads, seed, **kw: NativeKvsWorkload(
        num_threads, seed=seed, **kw
    ),
    "uniform": lambda num_threads, seed, **kw: UniformSharingWorkload(
        num_threads, seed=seed, **kw
    ),
}

#: scenario workloads executed through ``repro.service`` instead of the
#: trace-replay runner.  They only run on the MIND system, build their
#: own chaos plan from the point seed, and expose ``ServiceConfig``
#: fields (plus the runner sizing knobs they share) as grid axes.
SERVICE_WORKLOADS = ("kvs_service",)

#: topology scenarios executed through ``repro.multirack`` instead of the
#: trace-replay runner.  Like service workloads they are MIND-only; their
#: grid axes map onto ``MultiRackScenarioConfig`` fields, with the
#: structural ``blades`` axis meaning compute blades *per rack*.
TOPOLOGY_WORKLOADS = ("multirack",)

#: allocation scenarios executed through ``repro.alloc.scenario`` -- the
#: malloc/free churn benchmark behind the allocator ablation.  MIND-only;
#: grid axes map onto ``ChurnScenarioConfig`` fields (most importantly
#: ``allocator`` and ``size_dist``).
ALLOC_WORKLOADS = ("churn",)


def _digest(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(canonical.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class SweepPoint:
    """One experiment point: a picklable (system, config, seed) handle."""

    system: str
    workload: str
    num_blades: int
    threads_per_blade: int
    seed: int
    #: workload-constructor overrides, sorted for a stable identity.
    workload_params: Tuple[Tuple[str, Any], ...] = ()
    #: RunnerConfig overrides, sorted for a stable identity.
    runner_params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def num_threads(self) -> int:
        return self.num_blades * self.threads_per_blade

    # -- identity ---------------------------------------------------------

    def _cell_key(self) -> Dict[str, Any]:
        """Everything that identifies the point except the seed."""
        return {
            "system": self.system,
            "workload": self.workload,
            "num_blades": self.num_blades,
            "threads_per_blade": self.threads_per_blade,
            "workload_params": list(map(list, self.workload_params)),
            "runner_params": list(map(list, self.runner_params)),
        }

    @property
    def cell_id(self) -> str:
        """Identity of the seed-aggregation cell this point belongs to."""
        return _digest(self._cell_key())

    @property
    def point_id(self) -> str:
        return _digest({**self._cell_key(), "seed": self.seed})

    def label(self) -> str:
        bits = [
            self.system,
            self.workload,
            f"{self.num_blades}b x {self.threads_per_blade}t",
        ]
        bits.extend(f"{k}={v}" for k, v in self.workload_params)
        bits.extend(f"{k}={v}" for k, v in self.runner_params)
        bits.append(f"seed={self.seed}")
        return " ".join(bits)

    # -- materialization --------------------------------------------------

    def build_workload(self) -> TraceWorkload:
        if self.workload in SERVICE_WORKLOADS:
            raise ValueError(
                f"{self.workload!r} is a service scenario, not a trace "
                "workload; the sweep engine runs it through repro.service"
            )
        if self.workload in TOPOLOGY_WORKLOADS:
            raise ValueError(
                f"{self.workload!r} is a topology scenario, not a trace "
                "workload; the sweep engine runs it through repro.multirack"
            )
        if self.workload in ALLOC_WORKLOADS:
            raise ValueError(
                f"{self.workload!r} is an allocation scenario, not a trace "
                "workload; the sweep engine runs it through "
                "repro.alloc.scenario"
            )
        try:
            builder = WORKLOAD_BUILDERS[self.workload]
        except KeyError:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"choose from {sorted(WORKLOAD_BUILDERS)}"
            ) from None
        return builder(self.num_threads, self.seed, **dict(self.workload_params))

    def runner_config(self, **extra: Any) -> RunnerConfig:
        return RunnerConfig(**dict(self.runner_params), **extra)

    # -- (de)serialization ------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "point_id": self.point_id,
            "cell_id": self.cell_id,
            "system": self.system,
            "workload": self.workload,
            "num_blades": self.num_blades,
            "threads_per_blade": self.threads_per_blade,
            "num_threads": self.num_threads,
            "seed": self.seed,
            "workload_params": dict(self.workload_params),
            "runner_params": dict(self.runner_params),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "SweepPoint":
        return cls(
            system=data["system"],
            workload=data["workload"],
            num_blades=int(data["num_blades"]),
            threads_per_blade=int(data["threads_per_blade"]),
            seed=int(data["seed"]),
            workload_params=tuple(sorted(data.get("workload_params", {}).items())),
            runner_params=tuple(sorted(data.get("runner_params", {}).items())),
        )


# -- the per-process workload cache -----------------------------------------

#: worker-local cache: identical workload handles (same workload, thread
#: count, seed, params -- the system does not matter) rebuild the trace
#: workload once per process, not once per point.
_WORKLOAD_CACHE: Dict[Tuple, TraceWorkload] = {}


def build_workload_cached(point: SweepPoint) -> TraceWorkload:
    """Build ``point``'s workload, reusing a per-process cached instance.

    Workloads memoize their generated per-thread streams (see
    :meth:`repro.workloads.trace.TraceWorkload.thread_trace`), so points
    that share a workload also share the generated trace arrays -- the
    dominant part of per-point setup when the same workload is replayed
    on several systems.
    """
    key = (
        point.workload,
        point.num_threads,
        point.seed,
        point.workload_params,
    )
    workload = _WORKLOAD_CACHE.get(key)
    if workload is None:
        workload = _WORKLOAD_CACHE[key] = point.build_workload()
    return workload


def clear_workload_cache() -> None:
    _WORKLOAD_CACHE.clear()


# -- grids -------------------------------------------------------------------


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_grid(text: str) -> "GridSpec":
    """Parse the CLI grid syntax into a :class:`GridSpec`.

    Syntax: semicolon-separated axes, comma-separated values::

        system=mind,gam;workload=tf;blades=1,2,4;accesses_per_thread=500

    Values parse as int, then float, then bool/none, then string.  Axis
    order is preserved and determines point enumeration order (later axes
    vary fastest).
    """
    axes: Dict[str, List[Any]] = {}
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if "=" not in clause:
            raise ValueError(f"bad grid clause {clause!r}: expected axis=v1,v2,...")
        name, _, values = clause.partition("=")
        name = name.strip()
        if not name:
            raise ValueError(f"bad grid clause {clause!r}: empty axis name")
        if name in axes:
            raise ValueError(f"duplicate grid axis {name!r}")
        parsed = [_parse_scalar(v) for v in values.split(",") if v.strip() != ""]
        if not parsed:
            raise ValueError(f"grid axis {name!r} has no values")
        axes[name] = parsed
    if not axes:
        raise ValueError("empty grid")
    return GridSpec(axes)


@dataclass
class GridSpec:
    """An ordered ``axis -> values`` mapping; expands to sweep points."""

    axes: Dict[str, List[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "GridSpec":
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"grid axis {name!r} has no values")
        for system in self.axes.get("system", []):
            if system not in SYSTEMS:
                raise ValueError(
                    f"unknown system {system!r}; choose from {SYSTEMS}"
                )
        for workload in self.axes.get("workload", []):
            scenario_kinds = {
                **{w: "service" for w in SERVICE_WORKLOADS},
                **{w: "topology" for w in TOPOLOGY_WORKLOADS},
                **{w: "allocation" for w in ALLOC_WORKLOADS},
            }
            if (
                workload not in WORKLOAD_BUILDERS
                and workload not in scenario_kinds
            ):
                raise ValueError(
                    f"unknown workload {workload!r}; choose from "
                    f"{sorted([*WORKLOAD_BUILDERS, *scenario_kinds])}"
                )
            if workload in scenario_kinds:
                kind = scenario_kinds[workload]
                for system in self.axes.get("system", ["mind"]):
                    if system != "mind":
                        raise ValueError(
                            f"{kind} workload {workload!r} only runs on "
                            f"the mind system, not {system!r}"
                        )
        return self

    def expand(self, seeds: Sequence[int] = (1,)) -> List[SweepPoint]:
        """Cartesian product of the axes, crossed with ``seeds``.

        Enumeration order is deterministic: axes in declaration order
        (later axes vary fastest), then seeds innermost.  A ``seed`` axis
        in the grid overrides the ``seeds`` argument.
        """
        axes = dict(self.axes)
        axes.setdefault("system", ["mind"])
        axes.setdefault("workload", ["uniform"])
        axes.setdefault("blades", [1])
        axes.setdefault("threads_per_blade", [1])
        if "seed" not in axes:
            axes["seed"] = list(seeds)
        names = list(axes)
        points = []
        for combo in itertools.product(*(axes[n] for n in names)):
            bound = dict(zip(names, combo))
            workload_params = tuple(
                sorted(
                    (k, v)
                    for k, v in bound.items()
                    if k not in STRUCTURAL_AXES and k not in RUNNER_AXES
                )
            )
            runner_params = tuple(
                sorted((k, v) for k, v in bound.items() if k in RUNNER_AXES)
            )
            points.append(
                SweepPoint(
                    system=str(bound["system"]),
                    workload=str(bound["workload"]),
                    num_blades=int(bound["blades"]),
                    threads_per_blade=int(bound["threads_per_blade"]),
                    seed=int(bound["seed"]),
                    workload_params=workload_params,
                    runner_params=runner_params,
                )
            )
        return points

    def to_json(self) -> Dict[str, Any]:
        return {"axes": {k: list(v) for k, v in self.axes.items()}}


@dataclass
class SweepSpec:
    """A full sweep: one or more grids crossed with a seed list."""

    grids: List[GridSpec]
    seeds: List[int] = field(default_factory=lambda: [1])

    def __post_init__(self) -> None:
        if not self.grids:
            raise ValueError("a sweep needs at least one grid")
        if not self.seeds:
            raise ValueError("a sweep needs at least one seed")

    @classmethod
    def from_grids(
        cls, grids: Iterable[Any], seeds: Optional[Sequence[int]] = None
    ) -> "SweepSpec":
        parsed = [g if isinstance(g, GridSpec) else parse_grid(str(g)) for g in grids]
        return cls(parsed, list(seeds) if seeds else [1])

    def points(self) -> List[SweepPoint]:
        """All points, deduplicated by identity, in enumeration order."""
        seen: Dict[str, SweepPoint] = {}
        for grid in self.grids:
            for point in grid.expand(self.seeds):
                seen.setdefault(point.point_id, point)
        return list(seen.values())

    def digest(self) -> str:
        """Stable identity of the sweep; resume refuses on mismatch."""
        return _digest(
            {
                "schema": SCHEMA,
                "grids": [g.to_json() for g in self.grids],
                "seeds": list(self.seeds),
            }
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "grids": [g.to_json() for g in self.grids],
            "seeds": list(self.seeds),
        }
