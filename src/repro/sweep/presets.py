"""Named sweep grids: the paper's figure sweeps plus the CI quick subset.

Presets are written in the CLI grid syntax (one string per grid) so the
same text works on the command line, in CI, and in the benchmark
drivers.  ``python -m repro sweep --preset fig5-intra`` expands a name;
``--list-presets`` prints this registry.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import GridSpec, parse_grid

#: name -> list of grid strings (a preset may span several grids).
PRESETS: Dict[str, List[str]] = {
    # Fig. 5 (left): thread scaling on a single compute blade.
    "fig5-intra": [
        "system=mind,gam,fastswap;workload=tf;blades=1;"
        "threads_per_blade=1,2,4,10;accesses_per_thread=2000;"
        "num_memory_blades=2;epoch_us=2000"
    ],
    # Fig. 5 (center): scaling across compute blades, 10 threads each.
    "fig5-inter": [
        "system=mind,mind-pso,mind-pso+,gam;workload=tf,gc,ycsb_a,ycsb_c;"
        "blades=1,2,4,8;threads_per_blade=10;accesses_per_thread=2000;"
        "num_memory_blades=4;epoch_us=2000"
    ],
    # Fig. 7 (center): throughput vs read-ratio x sharing-ratio.
    "fig7-throughput": [
        "system=mind;workload=uniform;blades=8;threads_per_blade=1;"
        "read_ratio=1.0,0.5,0.0;sharing_ratio=0.0,0.5,1.0;"
        "accesses_per_thread=8000;shared_pages=800;"
        "private_pages_per_thread=512;burst=4;"
        "cache_capacity_pages=6144;num_memory_blades=4;epoch_us=2000"
    ],
    # Protocol ablation: MSI vs MESI vs MOESI across the read mix on a
    # shared-heavy point -- the regime where MSHR coalescing (read-mostly)
    # and cache-to-cache transfers (MOESI) separate the protocols.  The
    # transaction-engine counters (coalesced_fetches, txn_conflict_waits,
    # pending_table_peak) land in each point's metrics automatically.
    "protocol-ablation": [
        "system=mind,mind-mesi,mind-moesi;workload=uniform;blades=4;"
        "threads_per_blade=2;read_ratio=1.0,0.8,0.5,0.0;sharing_ratio=0.8;"
        "accesses_per_thread=4000;shared_pages=400;"
        "private_pages_per_thread=256;burst=4;"
        "cache_capacity_pages=3072;num_memory_blades=4;epoch_us=2000"
    ],
    # CI-sized protocol ablation: uploaded as a bench artifact (not gated).
    "protocol-ablation-quick": [
        "system=mind,mind-mesi,mind-moesi;workload=uniform;blades=2;"
        "threads_per_blade=1;read_ratio=1.0,0.5,0.0;sharing_ratio=0.8;"
        "accesses_per_thread=800;shared_pages=200;"
        "private_pages_per_thread=128;burst=4;"
        "cache_capacity_pages=1536;num_memory_blades=2;epoch_us=2000"
    ],
    # CI perf gate: compressed fig5-intra + fig7-throughput corners.
    # Small enough for a PR gate, wide enough to cover the page-fault,
    # eviction, invalidation and baseline-system hot paths.
    "ci-quick": [
        "system=mind,gam,fastswap;workload=tf;blades=1;"
        "threads_per_blade=1,4;accesses_per_thread=600;"
        "num_memory_blades=2;epoch_us=2000",
        "system=mind;workload=uniform;blades=4;threads_per_blade=1;"
        "read_ratio=1.0,0.0;sharing_ratio=0.0,1.0;"
        "accesses_per_thread=1500;shared_pages=400;"
        "private_pages_per_thread=256;burst=4;"
        "cache_capacity_pages=3072;num_memory_blades=4;epoch_us=2000",
    ],
    # ci-quick with windowed telemetry + SLO accounting enabled, plus an
    # open-loop point: exercises the timeline record path and the
    # per-point timeline documents in sweep output.  Used by the CI smoke
    # step (not perf-gated: telemetry-on runs are measured separately).
    "ci-quick-telemetry": [
        "system=mind,gam,fastswap;workload=tf;blades=1;"
        "threads_per_blade=1,4;accesses_per_thread=600;"
        "num_memory_blades=2;epoch_us=2000;telemetry=true",
        "system=mind;workload=uniform;blades=2;threads_per_blade=1;"
        "read_ratio=0.5;sharing_ratio=0.5;accesses_per_thread=800;"
        "shared_pages=200;private_pages_per_thread=128;burst=4;"
        "cache_capacity_pages=1536;num_memory_blades=2;epoch_us=2000;"
        "telemetry=true;arrival_process=poisson;"
        "arrival_rate_per_thread=0.01;request_size=8",
    ],
    # Serving under chaos: the multi-tenant elastic-KVS scenario across
    # chaos intensity x storm defense.  Per-tenant availability, SLO
    # compliance and burn land in each point's gauges (``gauge:svc:*``);
    # the defense=false column reproduces the retry storm.
    "kvs-service": [
        "system=mind;workload=kvs_service;blades=4;threads_per_blade=2;"
        "chaos=none,loss,crash,full;storm_defense=true,false"
    ],
    # CI-sized serving smoke: two tenants, short run, crash chaos only.
    # Asserted deterministic and availability-metric-complete by CI.
    "kvs-service-quick": [
        "system=mind;workload=kvs_service;blades=2;threads_per_blade=2;"
        "tenants=2;clients_per_tenant=2;requests_per_client=48;"
        "max_slots=4;chaos=none,crash;chaos_crash_at_us=1200;"
        "storm_defense=true,false"
    ],
    # Datacenter-scale topology sweep: racks 1 -> 32 (64 blades/rack --
    # 2048 blades at the top) across cross-rack sharing mixes, both
    # closed-loop and Poisson open-loop.  The ``latency:fault:intra`` vs
    # ``latency:fault:cross`` metrics chart the directory-sharding
    # crossover; ``gauge:tier:spine:*`` exposes the oversubscribed
    # spine's load.  Byte-identical at any ``--jobs``.
    "multirack-scale": [
        "system=mind;workload=multirack;blades=64;threads_per_blade=1;"
        "racks=1,2,4,8,16,32;cross_fraction=0.05,0.2,0.5;"
        "accesses_per_thread=120;pages_per_rack=512;read_ratio=0.7;"
        "cache_capacity_pages=512",
        "system=mind;workload=multirack;blades=64;threads_per_blade=1;"
        "racks=4,16;cross_fraction=0.2;accesses_per_thread=120;"
        "pages_per_rack=512;read_ratio=0.7;cache_capacity_pages=512;"
        "arrival_process=poisson;arrival_rate_per_thread=0.01",
    ],
    # CI-sized topology smoke: three rack counts, one spine-heavy point.
    # Run twice (spawn workers vs serial) and byte-compared, then gated
    # against benchmarks/BENCH_multirack.json.
    "multirack-quick": [
        "system=mind;workload=multirack;blades=4;threads_per_blade=1;"
        "racks=1,2,4;cross_fraction=0.2;accesses_per_thread=120;"
        "pages_per_rack=128;read_ratio=0.7;cache_capacity_pages=256",
        "system=mind;workload=multirack;blades=4;threads_per_blade=1;"
        "racks=2;cross_fraction=0.5;accesses_per_thread=120;"
        "pages_per_rack=128;read_ratio=0.7;cache_capacity_pages=256;"
        "arrival_process=poisson;arrival_rate_per_thread=0.01",
    ],
    # The rack-scale malloc ablation: five allocation policies x three
    # object-size mixes under steady heap churn.  Fragmentation
    # (``gauge:alloc:frag:*``), switch-SRAM metadata footprint
    # (``gauge:alloc:metadata_bytes``) and modeled control-CPU allocation
    # latency (``latency:alloc:*``) land in each point's metrics.
    "malloc-bench": [
        "system=mind;workload=churn;blades=4;threads_per_blade=4;"
        "allocator=first-fit,slab,buddy,arena,bump;"
        "size_dist=small,mixed,large;ops_per_thread=1500;live_target=64;"
        "num_memory_blades=8;cache_capacity_pages=256"
    ],
    # CI-sized malloc smoke: all five policies on the mixed size mix.
    # Run twice (spawn workers vs serial) and byte-compared, then gated
    # against benchmarks/BENCH_alloc.json.
    "malloc-bench-quick": [
        "system=mind;workload=churn;blades=2;threads_per_blade=2;"
        "allocator=first-fit,slab,buddy,arena,bump;size_dist=mixed;"
        "ops_per_thread=300;live_target=32;num_memory_blades=4;"
        "cache_capacity_pages=256"
    ],
    # Latency under load: open-loop arrival-rate sweep against the MIND
    # data path (the hockey-stick curve).  Windowed p99/p99.9 and queueing
    # delay come from the per-point timeline documents.
    "openloop-load": [
        "system=mind;workload=uniform;blades=4;threads_per_blade=2;"
        "read_ratio=0.5;sharing_ratio=0.5;accesses_per_thread=4000;"
        "shared_pages=400;private_pages_per_thread=256;burst=4;"
        "cache_capacity_pages=3072;num_memory_blades=4;epoch_us=2000;"
        "telemetry=true;arrival_process=poisson,diurnal;"
        "arrival_rate_per_thread=0.005,0.01,0.02,0.04,0.08;request_size=8",
    ],
}


def preset_grids(name: str) -> List[GridSpec]:
    """Expand a preset name into parsed grids."""
    try:
        texts = PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return [parse_grid(text) for text in texts]
